//! A downstream-user scenario: solve the Poisson boundary-value problem
//! `-Δu = f` on the unit square with a manufactured solution, using the 3D
//! sparse LU solver as the linear-algebra engine, and verify second-order
//! discretization convergence as the mesh refines.
//!
//! This is the classic acceptance test for a direct solver inside a PDE
//! code: if the linear solves were inexact, the discretization error would
//! stop decreasing.
//!
//! ```sh
//! cargo run --release --example poisson_bvp
//! ```

use salu::prelude::*;
use std::f64::consts::PI;

/// Manufactured solution `u(x,y) = sin(pi x) sin(pi y)` on the unit square,
/// so `-Δu = 2 pi^2 u` and `u = 0` on the boundary (matching the 5-point
/// Laplacian's implicit Dirichlet condition).
fn manufactured(k: usize) -> (Vec<f64>, Vec<f64>, f64) {
    let h = 1.0 / (k + 1) as f64;
    let mut u = Vec::with_capacity(k * k);
    let mut f = Vec::with_capacity(k * k);
    for yi in 0..k {
        for xi in 0..k {
            let (x, y) = ((xi + 1) as f64 * h, (yi + 1) as f64 * h);
            let val = (PI * x).sin() * (PI * y).sin();
            u.push(val);
            // RHS scaled by h^2 to match the unscaled 5-point stencil.
            f.push(2.0 * PI * PI * val * h * h);
        }
    }
    (u, f, h)
}

fn main() {
    println!("-Laplace(u) = f on the unit square, u = sin(pi x) sin(pi y)\n");
    println!(
        "{:>6} {:>10} {:>14} {:>12} {:>10}",
        "grid", "n", "max error", "rate", "resid"
    );
    let mut prev_err: Option<f64> = None;
    for k in [16usize, 32, 64, 96] {
        // Pure Laplacian: drop the generator's diagonal shift by building
        // the Helmholtz variant with the shift equal to the generator's
        // regularization.
        let a = salu::sparsemat::matgen::grid2d_helmholtz(k, k, 0.01, 0);
        let (u_exact, f_rhs, _h) = manufactured(k);
        let prep = Prepared::new(a, Geometry::Grid2d { nx: k, ny: k }, 32, 32);
        let cfg = SolverConfig {
            pr: 2,
            pc: 2,
            pz: 2,
            refine_steps: 1,
            ..Default::default()
        };
        let out = factor_and_solve(&prep, &cfg, Some(f_rhs.clone()));
        let u = out.x.expect("solution");
        let err = u
            .iter()
            .zip(&u_exact)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        let resid = prep.a.residual_inf(&u, &f_rhs);
        let rate = prev_err.map(|p| p / err).unwrap_or(f64::NAN);
        println!(
            "{:>4}^2 {:>10} {:>14.3e} {:>12.2} {:>10.1e}",
            k,
            k * k,
            err,
            rate,
            resid
        );
        prev_err = Some(err);
    }
    println!(
        "\nDoubling the grid should cut the max error ~4x (second-order\n\
         stencil); the linear-solve residual stays at rounding level, so\n\
         all visible error is discretization error — the solver is exact."
    );
}
