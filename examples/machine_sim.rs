//! Simulated-machine demo: use `simgrid` directly — SPMD ranks, tree
//! collectives, traffic phases, and the α-β clock — independent of the LU
//! stack. Useful as a template for building other distributed algorithms on
//! the same substrate.
//!
//! ```sh
//! cargo run --release --example machine_sim
//! ```

use salu::simgrid::topology::build_grid_comms;
use salu::simgrid::{Grid3d, Machine, Payload, TimeModel};

fn main() {
    let grid = Grid3d::new(2, 2, 2); // 8 ranks as 2 stacked 2x2 grids
    let machine = Machine::new(grid.size(), TimeModel::edison_like());

    let out = machine.run(move |rank| {
        let comms = build_grid_comms(rank, &grid);
        let (r, c, z) = comms.coords;

        // Phase 1: "fact" traffic — a row broadcast and a column reduce,
        // the communication shapes of the 2D panel kernels.
        rank.set_phase("fact");
        let row_data = if comms.row.local_rank() == 0 {
            Some(Payload::F64s(vec![rank.id() as f64; 1000]))
        } else {
            None
        };
        let panel = rank.bcast(&comms.row, 0, row_data, 1).into_f64s();
        let colsum = rank.reduce_sum(&comms.col, 0, vec![panel[0]; 500], 2);

        // Phase 2: "reduce" traffic — the z-axis point-to-point exchange of
        // the ancestor-reduction step.
        rank.set_phase("reduce");
        if z == 1 {
            rank.send(&comms.zline, 0, 3, Payload::F64s(vec![1.0; 2000]));
        } else {
            let _ = rank.recv(&comms.zline, 1, 3);
        }

        // Simulate some local compute: 50 Mflop.
        rank.advance_compute(50_000_000);
        (r, c, z, colsum.is_some())
    });

    println!(
        "{:>6} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "rank", "(r,c,z)", "clock", "t_comp", "t_comm", "words"
    );
    for (i, rep) in out.reports.iter().enumerate() {
        let (r, c, z, _) = out.results[i];
        println!(
            "{:>6} {:>8} {:>10.6} {:>10.6} {:>10.6} {:>10}",
            i,
            format!("({r},{c},{z})"),
            rep.clock,
            rep.t_comp,
            rep.t_comm,
            rep.total_sent_words()
        );
    }
    let s = out.summary();
    println!(
        "\nmakespan = {:.6}s; max per-rank sent = {} words ({} in 'fact', {} in 'reduce')",
        s.makespan,
        s.max_sent_words,
        salu::simgrid::TrafficSummary::max_sent_words_in(&out.reports, "fact"),
        salu::simgrid::TrafficSummary::max_sent_words_in(&out.reports, "reduce"),
    );
}
