//! Quickstart: factor and solve a 2D Poisson system with the 3D algorithm
//! and print the communication statistics the paper optimizes.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use salu::prelude::*;

fn main() {
    // The planar model problem from the paper (K2D5pt), scaled to run in
    // a few seconds: a 96x96 five-point Laplacian, n = 9216.
    let nx = 96;
    let a = salu::sparsemat::matgen::grid2d_5pt(nx, nx, 0.1, 42);
    println!(
        "matrix: 2D 5-point Laplacian, n = {}, nnz = {}",
        a.nrows,
        a.nnz()
    );

    // A manufactured solution gives us a residual check.
    let x_true: Vec<f64> = (0..a.nrows).map(|i| ((i % 11) as f64) - 5.0).collect();
    let b = a.matvec(&x_true);

    // Phase 1: ordering + symbolic analysis (shared by all grid configs).
    let prep = Prepared::new(a, Geometry::Grid2d { nx, ny: nx }, 32, 32);
    println!(
        "symbolic: {} supernodes, {:.2} Mwords of LU factors, {:.0} Mflops predicted",
        prep.sym.nsup(),
        prep.sym.stats().factor_words as f64 / 1e6,
        prep.sym.stats().total_flops as f64 / 1e6,
    );

    // Phase 2: factor + solve on a simulated 2 x 2 x 4 machine (16 ranks,
    // Pz = 4 stacked grids).
    let cfg = SolverConfig {
        pr: 2,
        pc: 2,
        pz: 4,
        model: TimeModel::edison_like(),
        ..Default::default()
    };
    let out = factor_and_solve(&prep, &cfg, Some(b.clone()));

    let x = out.x.as_ref().expect("solution");
    let resid = prep.a.residual_inf(x, &b);
    // Re-run factor-only so the timing comparison below excludes the solve
    // phase on both sides (the paper times factorization only).
    let fact3d = factor_only(&prep, &cfg);
    println!(
        "\n3D factorization on a {}x{}x{} grid:",
        cfg.pr, cfg.pc, cfg.pz
    );
    println!(
        "  relative residual      = {:.2e}",
        resid / b.iter().fold(1.0f64, |m, v| m.max(v.abs()))
    );
    println!("  static pivot perturbs  = {}", out.perturbations);
    println!(
        "  simulated makespan     = {:.4} s (factorization)",
        fact3d.makespan()
    );
    println!("  W_fact (max per rank)  = {} words", fact3d.w_fact());
    println!("  W_red  (max per rank)  = {} words", fact3d.w_red());
    println!(
        "  peak factor storage    = {:.2} Mwords/rank",
        fact3d.max_store_words as f64 / 1e6
    );

    // Compare with the 2D baseline on the same number of ranks (4x4x1).
    let cfg2d = SolverConfig {
        pr: 4,
        pc: 4,
        pz: 1,
        model: TimeModel::edison_like(),
        ..Default::default()
    };
    let base = factor_only(&prep, &cfg2d);
    println!("\n2D baseline on a 4x4 grid (same 16 ranks):");
    println!("  simulated makespan     = {:.4} s", base.makespan());
    println!("  W_fact (max per rank)  = {} words", base.w_fact());
    println!(
        "\nspeedup of 3D over 2D  = {:.2}x, communication reduction = {:.2}x",
        base.makespan() / fact3d.makespan(),
        base.w_fact() as f64 / (fact3d.w_fact() + fact3d.w_red()).max(1) as f64,
    );
}
