//! Non-planar study: the KKT (nlpkkt80-proxy) matrix, where big separators
//! make ancestor replication expensive. Shows the communication crossover
//! and the steep memory growth of Fig. 10/11's non-planar columns.
//!
//! ```sh
//! cargo run --release --example nonplanar_kkt
//! ```

use salu::prelude::*;

fn main() {
    let a = salu::sparsemat::matgen::kkt_3d(10, 10, 10, 1e-2, 3);
    println!(
        "KKT saddle-point problem (nlpkkt proxy): n = {}, nnz = {}",
        a.nrows,
        a.nnz()
    );
    // No usable geometry: the multilevel (METIS-style) orderer runs.
    let prep = Prepared::new(a, Geometry::General, 32, 32);
    println!(
        "symbolic: {} supernodes, top separator ~{} columns",
        prep.sym.nsup(),
        prep.tree.nodes[prep.tree.root()].width()
    );

    println!(
        "\n{:>10} {:>12} {:>12} {:>12} {:>14} {:>12}",
        "grid", "T_sim (s)", "W_fact", "W_red", "W_total", "mem total"
    );
    let mut w2d = None;
    let mut m2d = None;
    for &(pr, pc, pz) in &[
        (4usize, 4usize, 1usize),
        (2, 4, 2),
        (2, 2, 4),
        (1, 2, 8),
        (1, 1, 16),
    ] {
        let cfg = SolverConfig {
            pr,
            pc,
            pz,
            model: TimeModel::edison_like(),
            ..Default::default()
        };
        let out = factor_only(&prep, &cfg);
        let wt = out.w_fact() + out.w_red();
        w2d.get_or_insert(wt);
        m2d.get_or_insert(out.total_store_words);
        println!(
            "{:>4}x{}x{:<3} {:>12.4} {:>12} {:>12} {:>14} {:>10.2}M ({:+.0}%)",
            pr,
            pc,
            pz,
            out.makespan(),
            out.w_fact(),
            out.w_red(),
            wt,
            out.total_store_words as f64 / 1e6,
            100.0 * (out.total_store_words as f64 / *m2d.as_ref().unwrap() as f64 - 1.0),
        );
    }
    println!(
        "\nPaper's observations to compare against (§V-D, §V-E):\n\
         - W_red grows ~linearly with Pz for non-planar matrices, so W_total\n\
         \x20  eventually re-increases (nlpkkt80 crossed over at Pz=8->16);\n\
         - memory overhead is steep: ~200% at Pz=16 for nlpkkt80, vs ~30%\n\
         \x20  for planar matrices."
    );
}
