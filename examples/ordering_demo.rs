//! Ordering demo: run both nested-dissection engines on the same problem
//! and inspect separator cascades, fill, and the tree-forest partition.
//!
//! ```sh
//! cargo run --release --example ordering_demo
//! ```

use salu::ordering::{nested_dissection, Graph, NdOptions};
use salu::prelude::*;
use salu::symbolic::Symbolic;

fn main() {
    let nx = 64;
    let a = salu::sparsemat::matgen::grid2d_5pt(nx, nx, 0.0, 0);
    let g = Graph::from_matrix(&a);
    println!("graph: {} vertices, {} edges", g.n(), g.num_edges());

    for (name, geometry) in [
        (
            "geometric ND (exact plane separators)",
            Geometry::Grid2d { nx, ny: nx },
        ),
        ("multilevel ND (METIS-style)", Geometry::General),
    ] {
        let tree = nested_dissection(
            &g,
            NdOptions {
                leaf_size: 32,
                geometry,
                ..Default::default()
            },
        );
        let pa = a.permute_sym(&tree.perm).symmetrize_pattern();
        let sym = Symbolic::analyze(&pa, &tree, 32);
        let stats = sym.stats();
        println!("\n== {name} ==");
        println!("  tree height          = {}", tree.height());
        let sizes = tree.separator_sizes_by_level();
        println!(
            "  separator sizes/level: {:?}",
            &sizes[..sizes.len().min(6)]
        );
        println!(
            "  sqrt-law reference    : top separator {} vs sqrt(n) = {:.0}",
            tree.nodes[tree.root()].width(),
            (a.nrows as f64).sqrt()
        );
        println!(
            "  fill: {:.2} Mwords of LU factors ({:.1}x the matrix), {:.1} Mflops",
            stats.factor_words as f64 / 1e6,
            stats.factor_words as f64 / a.nnz() as f64,
            stats.total_flops as f64 / 1e6
        );

        // Partition the elimination tree-forest for 4 grids and report the
        // critical-path improvement of the greedy heuristic.
        let forest = EtreeForest::build(&tree, &sym, 4);
        let t3d = forest.critical_path_cost(&tree, &sym);
        let t2d = EtreeForest::build(&tree, &sym, 1).critical_path_cost(&tree, &sym);
        println!(
            "  E_f for Pz=4: critical path {:.1} Mflops vs sequential {:.1} Mflops ({:.2}x shorter)",
            t3d as f64 / 1e6,
            t2d as f64 / 1e6,
            t2d as f64 / t3d as f64
        );
    }
}
