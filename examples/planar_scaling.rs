//! Planar scaling study: sweep `Pz` on a fixed total process count for the
//! paper's planar model problem and watch communication and simulated time
//! fall — a miniature of the paper's Fig. 9/10 planar columns.
//!
//! ```sh
//! cargo run --release --example planar_scaling
//! ```

use salu::prelude::*;

fn main() {
    let nx = 96;
    let a = salu::sparsemat::matgen::grid2d_5pt(nx, nx, 0.1, 7);
    let n = a.nrows;
    println!("planar problem: n = {n}, nnz = {}", a.nnz());
    let prep = Prepared::new(a, Geometry::Grid2d { nx, ny: nx }, 32, 32);

    // Fixed P = 16 ranks; trade layer size for z-depth.
    let configs: &[(usize, usize, usize)] =
        &[(4, 4, 1), (2, 4, 2), (2, 2, 4), (1, 2, 8), (1, 1, 16)];
    println!(
        "\n{:>10} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "grid", "T_sim (s)", "T_scu (s)", "T_comm (s)", "W_fact+red", "mem/rank"
    );
    let mut base_t = None;
    let mut best_t = f64::INFINITY;
    for &(pr, pc, pz) in configs {
        let cfg = SolverConfig {
            pr,
            pc,
            pz,
            model: TimeModel::edison_like(),
            ..Default::default()
        };
        let out = factor_only(&prep, &cfg);
        let s = out.summary();
        // Critical-path rank decomposition.
        let crit = out
            .reports
            .iter()
            .max_by(|a, b| a.clock.partial_cmp(&b.clock).unwrap())
            .unwrap();
        let t = out.makespan();
        base_t.get_or_insert(t);
        best_t = best_t.min(t);
        println!(
            "{:>4}x{}x{:<3} {:>12.4} {:>12.4} {:>12.4} {:>12} {:>9.2}M",
            pr,
            pc,
            pz,
            t,
            crit.t_comp,
            crit.t_comm,
            out.w_fact() + out.w_red(),
            out.max_peak_bytes() as f64 / 8e6,
        );
        let _ = s;
    }
    println!(
        "\nbest speedup over the 2D baseline: {:.2}x",
        base_t.unwrap() / best_t
    );
    println!("(the paper reports 2-11.6x for planar matrices on 16 nodes, Fig. 9)");

    // Refresh the pinned observability artifacts (see `salu::sample`): a
    // Chrome trace, a metrics dump, a memory profile, and a wire-volume
    // report of a small deterministic traced run. The `observability` test
    // asserts the committed copies match.
    let (trace, metrics, memprof, commvol) = salu::sample::sample_artifacts();
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/sample_trace.json", trace).expect("write trace");
    std::fs::write("results/sample_metrics.json", metrics).expect("write metrics");
    std::fs::write("results/sample_memprof.json", memprof).expect("write memprof");
    std::fs::write("results/sample_commvol.json", commvol).expect("write commvol");
    println!(
        "\nwrote results/sample_trace.json, results/sample_metrics.json,\n\
         results/sample_memprof.json, and results/sample_commvol.json"
    );
}
