//! Derive the static communication program from symbolic analysis alone.
//!
//! The builder enumerates Algorithm 1's logical operations *globally* —
//! every (level, layer) iteration once — and appends the resulting
//! point-to-point events to each participating rank's sequence. Because
//! each rank belongs to exactly one layer, one row, one column, and one
//! z-line, the global enumeration preserves every rank's program order:
//!
//! - panels are enumerated in the exact `factor_nodes` lookahead schedule
//!   (replicated here from the shared symbolic state, like every rank does
//!   at runtime), and each panel's broadcasts in kernel order (diagonal
//!   row, diagonal column, L panel, U panel);
//! - broadcasts are expanded into their binomial-tree edges with the same
//!   relative-rank arithmetic as `simgrid::coll::bcast_inner`, so the plan
//!   predicts not just totals but each intermediate forward hop;
//! - ancestor reductions are enumerated per z-pair in `(l_a desc, s asc)`
//!   order with the packed-block word count derived from the same
//!   owned-blocks rule the runtime store implements.

use crate::{CommPlan, Dir, OpKind, OpMeta, PlanEvent};
use lu3d::EtreeForest;
use obs::CommClass;
use simgrid::tags::{coll_tag, PH_BCAST, T_DIAG_COL, T_DIAG_ROW, T_LPANEL, T_REDUCE, T_UPANEL};
use simgrid::Grid3d;
use std::collections::HashMap;
use symbolic::Symbolic;

/// Communicator context ids, mirroring `build_grid_comms` creation order
/// (`Rank::subset` hands out ids from a per-rank counter starting at 1;
/// world is 0): all layers, then all rows, then all columns, then all
/// z-lines.
struct CtxIds {
    pr: usize,
    pc: usize,
    pz: usize,
}

impl CtxIds {
    fn row(&self, z: usize, r: usize) -> u64 {
        (1 + self.pz + z * self.pr + r) as u64
    }
    fn col(&self, z: usize, c: usize) -> u64 {
        (1 + self.pz + self.pz * self.pr + z * self.pc + c) as u64
    }
    fn zline(&self, r: usize, c: usize) -> u64 {
        (1 + self.pz + self.pz * self.pr + self.pz * self.pc + r * self.pc + c) as u64
    }
}

struct Builder<'a> {
    sym: &'a Symbolic,
    forest: &'a EtreeForest,
    grid: Grid3d,
    ctx: CtxIds,
    plan: CommPlan,
}

/// Build the complete static communication program for one factorization
/// (`fact` + `reduce` phases; the solve adds traffic only when a right-hand
/// side is supplied, so plans are compared against factor-only ledgers).
///
/// `lookahead` must match `FactorOpts::lookahead`: it permutes the panel
/// schedule (and therefore per-channel event order), though aggregate
/// volumes are lookahead-invariant. The other solver options do not touch
/// communication: `batched_schur` is local arithmetic and pivoting only
/// perturbs values.
pub fn build_plan(
    sym: &Symbolic,
    forest: &EtreeForest,
    grid: Grid3d,
    lookahead: usize,
) -> CommPlan {
    let (pr, pc, pz) = (grid.grid2d.pr, grid.grid2d.pc, grid.pz);
    assert_eq!(pz, forest.pz(), "grid/forest Pz mismatch");
    let mut b = Builder {
        sym,
        forest,
        grid,
        ctx: CtxIds { pr, pc, pz },
        plan: CommPlan {
            grid,
            events: vec![Vec::new(); grid.size()],
            ops: Vec::new(),
        },
    };

    let l = forest.l;
    // Per-layer `done` state, evolved across levels exactly like each
    // rank's copy: supernodes whose node this layer never keeps are done up
    // front (their contributions arrive via ancestor reduction).
    let mut done: Vec<Vec<bool>> = (0..pz)
        .map(|z| {
            (0..sym.nsup())
                .map(|s| !forest.keeps(sym.part.node_of_sn[s], z))
                .collect()
        })
        .collect();

    for lvl in (0..=l).rev() {
        let step = 1usize << (l - lvl);
        for z in (0..pz).step_by(step) {
            let q = z >> (l - lvl);
            let nodes = forest.supernodes_of(lvl, q, &sym.part);
            for k in panel_order(sym, &nodes, &mut done[z], lookahead) {
                b.plan_panel(lvl, z, k);
            }
            if lvl == 0 {
                continue;
            }
            // Ancestor reduction: pair (k even) <- (k odd) along z. The odd
            // member of each active pair sends; enumerate at the sender so
            // each pair is planned exactly once. The receiver (z - step)
            // was enumerated earlier in this level, so its reduce receives
            // land after its fact events, matching its program order.
            if (z / step) % 2 == 1 {
                b.plan_reduce_pair(lvl, z - step, z);
            }
        }
    }
    b.plan
}

/// Replicate the `factor_nodes` lookahead schedule: the order panels (and
/// therefore their broadcasts) happen in. All ranks of a layer compute this
/// same schedule from shared symbolic state; `done` is the layer's copy and
/// is advanced for the next level.
fn panel_order(sym: &Symbolic, nodes: &[usize], done: &mut [bool], lookahead: usize) -> Vec<usize> {
    let children = sym.fill.children();
    let mut pending: HashMap<usize, usize> = HashMap::new();
    for &k in nodes {
        pending.insert(k, children[k].iter().filter(|&&c| !done[c]).count());
    }
    let mut paneled = vec![false; nodes.len()];
    let mut order = Vec::with_capacity(nodes.len());
    for idx in 0..nodes.len() {
        let k = nodes[idx];
        let w_end = (idx + lookahead + 1).min(nodes.len());
        for j in idx..w_end {
            let m = nodes[j];
            if paneled[j] || pending[&m] > 0 {
                continue;
            }
            order.push(m);
            paneled[j] = true;
        }
        done[k] = true;
        if let Some(p) = sym.fill.parent[k] {
            if let Some(cnt) = pending.get_mut(&p) {
                *cnt -= 1;
            }
        }
    }
    order
}

impl Builder<'_> {
    /// Plan the four broadcasts of one panel step (`factor_step_panel`):
    /// diagonal across the owner row and down the owner column, then one
    /// packed L-panel broadcast per participating row and one packed
    /// U-panel broadcast per participating column. A supernode with no
    /// off-diagonal structure communicates nothing.
    fn plan_panel(&mut self, lvl: usize, z: usize, k: usize) {
        let (pr, pc) = (self.grid.grid2d.pr, self.grid.grid2d.pc);
        let struct_k: &[usize] = &self.sym.fill.struct_of[k];
        if struct_k.is_empty() {
            return;
        }
        let (kr, kc) = (k % pr, k % pc);
        let wk = self.sym.part.width(k) as u64;

        let grid = self.grid;
        let row_members =
            |r: usize| -> Vec<usize> { (0..pc).map(|c| grid.rank_of(r, c, z)).collect() };
        let col_members =
            |c: usize| -> Vec<usize> { (0..pr).map(|r| grid.rank_of(r, c, z)).collect() };

        // Diagonal broadcasts: w(k)^2 words, classified Collective at
        // runtime via the COLL tag namespace fallback.
        self.plan_bcast(
            &row_members(kr),
            kc,
            self.ctx.row(z, kr),
            coll_tag(PH_BCAST, T_DIAG_ROW | k as u64),
            wk * wk,
            CommClass::Collective,
            lvl,
            format!("fact L{lvl} z{z} k{k} diag-row"),
        );
        self.plan_bcast(
            &col_members(kc),
            kr,
            self.ctx.col(z, kc),
            coll_tag(PH_BCAST, T_DIAG_COL | k as u64),
            wk * wk,
            CommClass::Collective,
            lvl,
            format!("fact L{lvl} z{z} k{k} diag-col"),
        );

        // L-panel broadcast per process row holding L blocks: the packed
        // payload ships (id, rows, cols) metadata plus column-major data.
        for r in 0..pr {
            let block_words: u64 = struct_k
                .iter()
                .filter(|&&i| i % pr == r)
                .map(|&i| self.sym.part.width(i) as u64 * wk)
                .sum();
            let cnt = struct_k.iter().filter(|&&i| i % pr == r).count() as u64;
            if cnt == 0 {
                continue;
            }
            self.plan_bcast(
                &row_members(r),
                kc,
                self.ctx.row(z, r),
                coll_tag(PH_BCAST, T_LPANEL | k as u64),
                1 + 3 * cnt + block_words,
                CommClass::LPanel,
                lvl,
                format!("fact L{lvl} z{z} k{k} lpanel r{r}"),
            );
        }
        // U-panel broadcast per process column holding U blocks.
        for c in 0..pc {
            let block_words: u64 = struct_k
                .iter()
                .filter(|&&j| j % pc == c)
                .map(|&j| wk * self.sym.part.width(j) as u64)
                .sum();
            let cnt = struct_k.iter().filter(|&&j| j % pc == c).count() as u64;
            if cnt == 0 {
                continue;
            }
            self.plan_bcast(
                &col_members(c),
                kr,
                self.ctx.col(z, c),
                coll_tag(PH_BCAST, T_UPANEL | k as u64),
                1 + 3 * cnt + block_words,
                CommClass::UPanel,
                lvl,
                format!("fact L{lvl} z{z} k{k} upanel c{c}"),
            );
        }
    }

    /// Expand one broadcast into its binomial-tree point-to-point edges,
    /// mirroring `simgrid::coll::bcast_inner` exactly: ranks are rotated so
    /// the root is relative 0, each non-root receives from its parent
    /// (lowest set bit cleared), and every rank forwards to children in
    /// decreasing bit order. `p - 1` messages total, zero when `p <= 1`.
    #[allow(clippy::too_many_arguments)]
    fn plan_bcast(
        &mut self,
        members: &[usize],
        root: usize,
        ctx: u64,
        tag: u64,
        words: u64,
        class: CommClass,
        lvl: usize,
        label: String,
    ) {
        let p = members.len();
        if p <= 1 {
            return;
        }
        let op = self.plan.ops.len() as u32;
        self.plan.ops.push(OpMeta {
            label,
            kind: OpKind::Bcast {
                members: members.to_vec(),
                root,
            },
            ctx,
            tag,
        });
        let phase = "fact";
        for local in 0..p {
            let relative = (local + p - root) % p;
            let world = members[local];
            let mut mask = 1usize;
            if relative == 0 {
                while mask < p {
                    mask <<= 1;
                }
            } else {
                loop {
                    if relative & mask != 0 {
                        let src = ((relative - mask) + root) % p;
                        self.plan.events[world].push(PlanEvent {
                            dir: Dir::Recv,
                            peer: members[src],
                            ctx,
                            tag,
                            words,
                            phase,
                            class,
                            level: lvl as u32,
                            op,
                        });
                        break;
                    }
                    mask <<= 1;
                }
            }
            let mut bit = mask >> 1;
            while bit > 0 {
                if relative + bit < p {
                    let dst = ((relative + bit) + root) % p;
                    self.plan.events[world].push(PlanEvent {
                        dir: Dir::Send,
                        peer: members[dst],
                        ctx,
                        tag,
                        words,
                        phase,
                        class,
                        level: lvl as u32,
                        op,
                    });
                }
                bit >>= 1;
            }
        }
    }

    /// Plan the level-`lvl` ancestor reduction for the active pair
    /// `(recv_z <- send_z)`: for every ancestor forest level `l_a < lvl`
    /// (descending) and supernode `s` of the shared ancestor part
    /// (ascending), each `(r, c)` position with owned blocks sends one
    /// packed message up its z-line. Sender and receiver derive identical
    /// block lists from shared symbolic state, so both sides are planned
    /// from the same owned-blocks rule.
    fn plan_reduce_pair(&mut self, lvl: usize, recv_z: usize, send_z: usize) {
        let (pr, pc) = (self.grid.grid2d.pr, self.grid.grid2d.pc);
        let l = self.forest.l;
        for l_a in (0..lvl).rev() {
            let q_a = send_z >> (l - l_a);
            for s in self.forest.supernodes_of(l_a, q_a, &self.sym.part) {
                for r in 0..pr {
                    for c in 0..pc {
                        let words = self.packed_ancestor_words(s, r, c, send_z);
                        if words == 0 {
                            continue;
                        }
                        let tag = T_REDUCE | s as u64;
                        let ctx = self.ctx.zline(r, c);
                        let op = self.plan.ops.len() as u32;
                        let src = self.grid.rank_of(r, c, send_z);
                        let dst = self.grid.rank_of(r, c, recv_z);
                        self.plan.ops.push(OpMeta {
                            label: format!(
                                "reduce L{lvl} la{l_a} s{s} ({r},{c}) z{send_z}->z{recv_z}"
                            ),
                            kind: OpKind::P2p { src, dst },
                            ctx,
                            tag,
                        });
                        let base = PlanEvent {
                            dir: Dir::Send,
                            peer: dst,
                            ctx,
                            tag,
                            words,
                            phase: "reduce",
                            class: CommClass::ZReduction,
                            level: lvl as u32,
                            op,
                        };
                        self.plan.events[src].push(base.clone());
                        self.plan.events[dst].push(PlanEvent {
                            dir: Dir::Recv,
                            peer: src,
                            ..base
                        });
                    }
                }
            }
        }
    }

    /// Packed words of the ancestor-reduction message for supernode `s`
    /// from grid position `(r, c)`: the owned-blocks rule of
    /// `owned_ancestor_blocks` evaluated symbolically. A block `(i, j)`
    /// exists on `(r, c, z)` iff the cyclic owner matches and the forest
    /// keeps both supernodes' nodes on layer `z` (the store's allocation
    /// predicate). Returns 0 when no blocks are owned (no message).
    fn packed_ancestor_words(&self, s: usize, r: usize, c: usize, z: usize) -> u64 {
        let g2 = self.grid.grid2d;
        let keep = |sn: usize| self.forest.keeps(self.sym.part.node_of_sn[sn], z);
        let ws = self.sym.part.width(s) as u64;
        let mut cnt = 0u64;
        let mut data = 0u64;
        if g2.owner(s, s) == (r, c) && keep(s) {
            cnt += 1;
            data += ws * ws;
        }
        for &i in &self.sym.fill.struct_of[s] {
            if !keep(i) || !keep(s) {
                continue;
            }
            let wi = self.sym.part.width(i) as u64;
            if g2.owner(i, s) == (r, c) {
                cnt += 1;
                data += wi * ws;
            }
            if g2.owner(s, i) == (r, c) {
                cnt += 1;
                data += ws * wi;
            }
        }
        if cnt == 0 {
            0
        } else {
            1 + 3 * cnt + data
        }
    }
}
