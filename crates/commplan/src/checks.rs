//! Plan-time static checks: properties provable from the plan alone,
//! before (or without) any execution.

use crate::{CommPlan, Dir, OpKind};
use costmodel::{Alg, PlanarModel};
use std::collections::BTreeMap;

/// Result of [`check_plan`]: summary counters plus every violation found.
#[derive(Clone, Debug)]
pub struct PlanAudit {
    /// Human-readable violations; empty means the plan passed every check.
    pub findings: Vec<String>,
    pub ops: usize,
    pub msgs: u64,
    pub words: u64,
    pub ranks: usize,
}

impl PlanAudit {
    pub fn ok(&self) -> bool {
        self.findings.is_empty()
    }
}

const MAX_FINDINGS: usize = 32;

fn push(findings: &mut Vec<String>, extra: &mut usize, msg: String) {
    if findings.len() < MAX_FINDINGS {
        findings.push(msg);
    } else {
        *extra += 1;
    }
}

/// Run every static check on the plan:
///
/// 1. **Tag-registry audit** — `simgrid::tags::audit()`: declared tag
///    bases are aligned and pairwise disjoint, collective phase/round
///    fields cannot alias (the plan-time form of the PR-4 fixes).
/// 2. **Send/recv matching** — per channel `(src, dst, ctx, tag)`, the
///    sender's planned word sequence equals the receiver's, in FIFO order;
///    an unmatched or reordered message names the edge.
/// 3. **Channel single-writer** — each channel carries messages of exactly
///    one logical operation, so no two collectives or reductions can
///    alias on a (ctx, tag) pair even transiently.
/// 4. **Collective rosters** — every planned broadcast reaches each
///    non-root member exactly once, the root never receives, and all
///    `p - 1` edges stay inside the communicator.
/// 5. **Deadlock freedom** — the dependence graph (per-rank program order
///    plus k-th-send-enables-k-th-recv per channel) is acyclic, so the
///    blocking-receive schedule cannot cycle.
pub fn check_plan(plan: &CommPlan) -> PlanAudit {
    let mut findings = Vec::new();
    let mut extra = 0usize;

    // 1. Tag-registry audit.
    if let Err(e) = simgrid::tags::audit() {
        push(&mut findings, &mut extra, format!("tag registry: {e}"));
    }

    // Channel table: (src, dst, ctx, tag) -> (send event ids+words in src
    // program order, recv event ids+words in dst program order, op ids).
    type Chan = (usize, usize, u64, u64);
    #[derive(Default)]
    struct ChanState {
        sends: Vec<(usize, u64)>, // (global event id, words)
        recvs: Vec<(usize, u64)>,
        ops: Vec<u32>,
    }
    let mut chans: BTreeMap<Chan, ChanState> = BTreeMap::new();
    let mut offsets = Vec::with_capacity(plan.events.len());
    let mut next = 0usize;
    for evs in &plan.events {
        offsets.push(next);
        next += evs.len();
    }
    let total_events = next;
    let gid = |rank: usize, idx: usize| offsets[rank] + idx;

    let mut msgs = 0u64;
    let mut words = 0u64;
    for (rank, evs) in plan.events.iter().enumerate() {
        for (idx, ev) in evs.iter().enumerate() {
            let (chan, entry) = match ev.dir {
                Dir::Send => {
                    msgs += 1;
                    words += ev.words;
                    ((rank, ev.peer, ev.ctx, ev.tag), true)
                }
                Dir::Recv => ((ev.peer, rank, ev.ctx, ev.tag), false),
            };
            let st = chans.entry(chan).or_default();
            if entry {
                st.sends.push((gid(rank, idx), ev.words));
            } else {
                st.recvs.push((gid(rank, idx), ev.words));
            }
            if !st.ops.contains(&ev.op) {
                st.ops.push(ev.op);
            }
        }
    }

    // 2 + 3. Matching and single-writer, per channel.
    for ((src, dst, ctx, tag), st) in &chans {
        let tagname = simgrid::tags::describe(*tag);
        if st.sends.len() != st.recvs.len() {
            push(
                &mut findings,
                &mut extra,
                format!(
                    "unmatched channel {src}->{dst} ctx={ctx} {tagname}: \
                     {} planned sends vs {} planned recvs",
                    st.sends.len(),
                    st.recvs.len()
                ),
            );
        } else {
            for (i, ((_, sw), (_, rw))) in st.sends.iter().zip(&st.recvs).enumerate() {
                if sw != rw {
                    push(
                        &mut findings,
                        &mut extra,
                        format!(
                            "word mismatch on channel {src}->{dst} ctx={ctx} {tagname} \
                             message {i}: send plans {sw} words, recv expects {rw}"
                        ),
                    );
                }
            }
        }
        if st.ops.len() > 1 {
            let labels: Vec<&str> = st
                .ops
                .iter()
                .map(|&o| plan.ops[o as usize].label.as_str())
                .collect();
            push(
                &mut findings,
                &mut extra,
                format!(
                    "tag aliasing: channel {src}->{dst} ctx={ctx} {tagname} is used by \
                     {} distinct operations: {labels:?}",
                    st.ops.len()
                ),
            );
        }
    }

    // 4. Collective rosters.
    let mut op_events: Vec<Vec<(usize, &crate::PlanEvent)>> = vec![Vec::new(); plan.ops.len()];
    for (rank, evs) in plan.events.iter().enumerate() {
        for ev in evs {
            op_events[ev.op as usize].push((rank, ev));
        }
    }
    for (opid, meta) in plan.ops.iter().enumerate() {
        let OpKind::Bcast { members, root } = &meta.kind else {
            continue;
        };
        let p = members.len();
        let label = &meta.label;
        let mut recv_count = vec![0usize; p];
        let mut send_total = 0usize;
        for &(rank, ev) in &op_events[opid] {
            let Some(local) = members.iter().position(|&m| m == rank) else {
                push(
                    &mut findings,
                    &mut extra,
                    format!("collective {label}: rank {rank} outside the roster participates"),
                );
                continue;
            };
            match ev.dir {
                Dir::Send => send_total += 1,
                Dir::Recv => recv_count[local] += 1,
            }
        }
        if send_total != p - 1 {
            push(
                &mut findings,
                &mut extra,
                format!(
                    "collective {label}: {send_total} planned edges, expected {}",
                    p - 1
                ),
            );
        }
        for (local, &n) in recv_count.iter().enumerate() {
            let expected = usize::from(local != *root);
            if n != expected {
                push(
                    &mut findings,
                    &mut extra,
                    format!(
                        "collective {label}: member {local} (world {}) receives {n} times, \
                         expected {expected}",
                        members[local]
                    ),
                );
            }
        }
    }

    // 5. Deadlock freedom: Kahn's algorithm over program-order and
    // send-enables-recv edges.
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); total_events];
    let mut indeg = vec![0u32; total_events];
    for (rank, evs) in plan.events.iter().enumerate() {
        for idx in 1..evs.len() {
            succs[gid(rank, idx - 1)].push(gid(rank, idx));
            indeg[gid(rank, idx)] += 1;
        }
    }
    for st in chans.values() {
        for ((s, _), (r, _)) in st.sends.iter().zip(&st.recvs) {
            succs[*s].push(*r);
            indeg[*r] += 1;
        }
    }
    let mut stack: Vec<usize> = (0..total_events).filter(|&e| indeg[e] == 0).collect();
    let mut popped = 0usize;
    while let Some(e) = stack.pop() {
        popped += 1;
        for &n in &succs[e] {
            indeg[n] -= 1;
            if indeg[n] == 0 {
                stack.push(n);
            }
        }
    }
    if popped != total_events {
        let stuck = indeg.iter().position(|&d| d > 0).unwrap_or(0);
        let (rank, ev) = plan
            .events
            .iter()
            .enumerate()
            .find_map(|(r, evs)| {
                let base = offsets[r];
                (stuck >= base && stuck < base + evs.len()).then(|| (r, &evs[stuck - base]))
            })
            .expect("stuck event is in range");
        push(
            &mut findings,
            &mut extra,
            format!(
                "dependence cycle: {} events cannot be scheduled; e.g. rank {rank} \
                 {:?} peer {} {} ({})",
                total_events - popped,
                ev.dir,
                ev.peer,
                simgrid::tags::describe(ev.tag),
                plan.ops[ev.op as usize].label
            ),
        );
    }

    if extra > 0 {
        findings.push(format!("... and {extra} more findings"));
    }
    PlanAudit {
        findings,
        ops: plan.ops.len(),
        msgs,
        words,
        ranks: plan.events.len(),
    }
}

/// Check the planned per-rank communication volume against the paper's
/// planar cost model (§IV-B): the busiest rank's planned words must sit
/// within an order-of-magnitude band of `W_3D = W_xy + W_z` for the
/// problem size. This is a sanity bound for planar-geometry problems (the
/// models assume `sqrt(n)`-separator nested dissection) — a plan that
/// drifts outside it has planned structurally wrong traffic (e.g. a
/// replication factor scaling with `Pz`). Returns a summary line on pass.
pub fn check_planar_volume(plan: &CommPlan, n: usize) -> Result<String, String> {
    let p = plan.grid.size();
    let pz = plan.grid.pz;
    let model = PlanarModel::new(n as f64, p as f64);
    let predicted = model.comm(Alg::ThreeD, pz as f64);
    let planned = plan.max_rank_sent_words() as f64;
    let ratio = planned / predicted;
    let (lo, hi) = (1.0 / 32.0, 32.0);
    let line = format!(
        "planar volume: planned max-rank {planned:.0} words vs model {predicted:.0} \
         (ratio {ratio:.3}, band [{lo:.3}, {hi:.0}])"
    );
    if ratio.is_finite() && ratio >= lo && ratio <= hi {
        Ok(line)
    } else {
        Err(line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CommPlan, Dir, OpMeta, PlanEvent};
    use obs::CommClass;
    use simgrid::Grid3d;

    fn ev(dir: Dir, peer: usize, tag: u64, words: u64, op: u32) -> PlanEvent {
        PlanEvent {
            dir,
            peer,
            ctx: 1,
            tag,
            words,
            phase: "fact",
            class: CommClass::Control,
            level: 0,
            op,
        }
    }

    fn plan(events: Vec<Vec<PlanEvent>>, ops: Vec<OpMeta>) -> CommPlan {
        CommPlan {
            grid: Grid3d::new(events.len(), 1, 1),
            events,
            ops,
        }
    }

    fn p2p_op(label: &str, src: usize, dst: usize, tag: u64) -> OpMeta {
        OpMeta {
            label: label.into(),
            kind: OpKind::P2p { src, dst },
            ctx: 1,
            tag,
        }
    }

    /// Regression for the PR-4 barrier-tag collision, promoted to a
    /// plan-time failure. The legacy encoding computed per-round collective
    /// tags as `base + round`, so round 1 of the barrier at `base` aliased
    /// the collective at `base + 1` on the same communicator. A plan using
    /// that arithmetic must be rejected by the single-writer channel check
    /// before anything runs.
    #[test]
    fn legacy_additive_round_tags_are_rejected() {
        let barrier_base = 0x40u64;
        let other_base = 0x41u64;
        // Op 0: barrier round 1 under the legacy `base + round` scheme.
        // Op 1: a different collective whose base is the adjacent integer.
        // Both produce a message on channel (0 -> 1, ctx 1, tag 0x41).
        let p = plan(
            vec![
                vec![
                    ev(Dir::Send, 1, barrier_base + 1, 1, 0),
                    ev(Dir::Send, 1, other_base, 7, 1),
                ],
                vec![
                    ev(Dir::Recv, 0, barrier_base + 1, 1, 0),
                    ev(Dir::Recv, 0, other_base, 7, 1),
                ],
            ],
            vec![
                p2p_op("barrier round 1 (legacy tag)", 0, 1, barrier_base + 1),
                p2p_op("collective at adjacent base", 0, 1, other_base),
            ],
        );
        let audit = check_plan(&p);
        assert!(
            audit.findings.iter().any(|f| f.contains("tag aliasing")),
            "legacy additive round tag not flagged: {:?}",
            audit.findings
        );
    }

    /// A send/recv cross dependency (both ranks receive before they send)
    /// is statically detected as a dependence cycle.
    #[test]
    fn cyclic_wait_is_detected() {
        let p = plan(
            vec![
                vec![ev(Dir::Recv, 1, 0x10, 4, 0), ev(Dir::Send, 1, 0x11, 4, 1)],
                vec![ev(Dir::Recv, 0, 0x11, 4, 1), ev(Dir::Send, 0, 0x10, 4, 0)],
            ],
            vec![p2p_op("b to a", 1, 0, 0x10), p2p_op("a to b", 0, 1, 0x11)],
        );
        let audit = check_plan(&p);
        assert!(
            audit
                .findings
                .iter()
                .any(|f| f.contains("dependence cycle")),
            "cyclic wait not flagged: {:?}",
            audit.findings
        );
    }

    /// Word-count disagreement between the send and recv side of a channel
    /// is a static finding naming the message index.
    #[test]
    fn word_mismatch_is_detected() {
        let p = plan(
            vec![
                vec![ev(Dir::Send, 1, 0x10, 4, 0)],
                vec![ev(Dir::Recv, 0, 0x10, 5, 0)],
            ],
            vec![p2p_op("payload", 0, 1, 0x10)],
        );
        let audit = check_plan(&p);
        assert!(
            audit.findings.iter().any(|f| f.contains("word mismatch")),
            "word mismatch not flagged: {:?}",
            audit.findings
        );
    }

    /// An incomplete broadcast roster (a member the tree never reaches) is
    /// a static finding.
    #[test]
    fn incomplete_bcast_roster_is_detected() {
        let members = vec![0usize, 1, 2];
        let p = plan(
            vec![
                vec![ev(Dir::Send, 1, 0x20, 9, 0)],
                vec![ev(Dir::Recv, 0, 0x20, 9, 0)],
                vec![],
            ],
            vec![OpMeta {
                label: "bcast missing a member".into(),
                kind: OpKind::Bcast { members, root: 0 },
                ctx: 1,
                tag: 0x20,
            }],
        );
        let audit = check_plan(&p);
        assert!(
            audit
                .findings
                .iter()
                .any(|f| f.contains("collective") && f.contains("expected")),
            "incomplete roster not flagged: {:?}",
            audit.findings
        );
    }
}
