#![forbid(unsafe_code)]

//! Static communication-plan analyzer for the 3D sparse LU factorization.
//!
//! The paper's central structural claim is that the 3D algorithm's
//! communication is *fully determined before numeric execution*: the
//! supernodal elimination forest, the `Pz`-replicated process grid, and the
//! solver options fix every message — who sends, who receives, on which
//! communicator, with which tag, and exactly how many words. This crate
//! makes that claim executable:
//!
//! - [`build_plan`] derives the complete expected communication program
//!   from symbolic analysis alone — per-rank event sequences (sends and
//!   receives in program order) for Algorithm 1's `fact` panel broadcasts
//!   (binomial trees, mirroring `simgrid`'s collective algorithms
//!   edge-for-edge) and `reduce` z-line ancestor reductions, keyed by the
//!   wire-ledger taxonomy (`obs::CommClass`, tree level, grid axis).
//! - [`check_plan`] verifies the plan statically, before any run: every
//!   planned receive has a matching planned send with identical words (and
//!   vice versa, per-channel FIFO order), collective rosters are complete,
//!   the tag space is collision-free (re-running the `simgrid::tags`
//!   registry audit plus a per-channel single-writer check — the plan-time
//!   promotion of the PR-4 runtime tag fixes), and the planned dependence
//!   graph is acyclic (static deadlock freedom).
//! - [`check_planar_volume`] bounds the planned per-rank volume against the
//!   `costmodel` planar predictions.
//! - [`compare_with_measured`] asserts a runtime `obs::commvol` ledger
//!   matches the plan *exactly* — per (phase, class, level, axis) cell and
//!   per peer edge, message counts and word volumes — replacing band-based
//!   conformance with equality for scheduled traffic. Recovered fault runs
//!   must also match: retransmissions are segregated into `fault.resent_*`
//!   and never touch the ledger.
//!
//! The plan is the static schedule the future event-driven backend
//! (ROADMAP item 1) will execute directly.

mod build;
mod checks;
mod compare;

pub use build::build_plan;
pub use checks::{check_plan, check_planar_volume, PlanAudit};
pub use compare::{compare_with_measured, plan_json, CompareStats};

use obs::{CommClass, GridAxis};
use simgrid::Grid3d;
use std::collections::BTreeMap;

/// Direction of a planned event, from the owning rank's perspective.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Dir {
    Send,
    Recv,
}

/// One planned point-to-point message endpoint on one rank. A collective is
/// planned as its constituent point-to-point tree edges, exactly as
/// `simgrid::coll` executes it.
#[derive(Clone, Debug)]
pub struct PlanEvent {
    pub dir: Dir,
    /// World rank of the other endpoint.
    pub peer: usize,
    /// Communicator context id, mirroring `build_grid_comms` creation order.
    pub ctx: u64,
    /// Full wire tag (collective-internal tags included).
    pub tag: u64,
    /// Exact payload words on the wire.
    pub words: u64,
    /// Ledger phase this event is charged to (`fact` or `reduce`).
    pub phase: &'static str,
    pub class: CommClass,
    /// Elimination-forest level active when the event happens (the sticky
    /// `set_tree_level` value, i.e. the *outer* loop level — ancestor
    /// reductions are charged at the level that triggers them).
    pub level: u32,
    /// Logical operation instance (one broadcast, one reduction message)
    /// this event belongs to; indexes [`CommPlan::ops`].
    pub op: u32,
}

/// What kind of logical operation an op id denotes.
#[derive(Clone, Debug)]
pub enum OpKind {
    /// A broadcast over `members` (world ranks, communicator order) rooted
    /// at local rank `root`.
    Bcast { members: Vec<usize>, root: usize },
    /// A single point-to-point message.
    P2p { src: usize, dst: usize },
}

/// Metadata for one logical operation in the plan.
#[derive(Clone, Debug)]
pub struct OpMeta {
    /// Human-readable description, e.g. `fact L2 k=17 lpanel row r=1 z=0`.
    pub label: String,
    pub kind: OpKind,
    pub ctx: u64,
    pub tag: u64,
}

/// The complete static communication program for one solver configuration.
#[derive(Clone, Debug)]
pub struct CommPlan {
    pub grid: Grid3d,
    /// Per world rank, in program order.
    pub events: Vec<Vec<PlanEvent>>,
    pub ops: Vec<OpMeta>,
}

/// A rank's planned wire ledger: the static mirror of `obs::CommReport`,
/// minus `struct_words` (zero-row detection is numeric, not symbolic).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PlannedRank {
    /// (phase, class, level, axis) -> (msgs, words), sends only — exactly
    /// the key space of `obs::CommEntry`.
    pub entries: BTreeMap<(String, CommClass, u32, GridAxis), (u64, u64)>,
    /// Destination world rank -> (msgs, words).
    pub sent_to: BTreeMap<usize, (u64, u64)>,
    /// Source world rank -> (msgs, words).
    pub recv_from: BTreeMap<usize, (u64, u64)>,
}

impl CommPlan {
    /// Grid axis of an edge between two world ranks, mirroring the runtime
    /// classification (`Rank::comm_axis`).
    pub fn axis(&self, a: usize, b: usize) -> GridAxis {
        let (r0, c0, z0) = self.grid.coords_of(a);
        let (r1, c1, z1) = self.grid.coords_of(b);
        match (r0 != r1, c0 != c1, z0 != z1) {
            (false, true, false) => GridAxis::X,
            (true, false, false) => GridAxis::Y,
            (false, false, true) => GridAxis::Z,
            _ => GridAxis::Cross,
        }
    }

    /// Aggregate one rank's events into its planned ledger.
    pub fn rank_ledger(&self, rank: usize) -> PlannedRank {
        let mut out = PlannedRank::default();
        for ev in &self.events[rank] {
            match ev.dir {
                Dir::Send => {
                    let key = (
                        ev.phase.to_string(),
                        ev.class,
                        ev.level,
                        self.axis(rank, ev.peer),
                    );
                    let cell = out.entries.entry(key).or_insert((0, 0));
                    cell.0 += 1;
                    cell.1 += ev.words;
                    let edge = out.sent_to.entry(ev.peer).or_insert((0, 0));
                    edge.0 += 1;
                    edge.1 += ev.words;
                }
                Dir::Recv => {
                    let edge = out.recv_from.entry(ev.peer).or_insert((0, 0));
                    edge.0 += 1;
                    edge.1 += ev.words;
                }
            }
        }
        out
    }

    /// Planned ledgers for every rank.
    pub fn ledgers(&self) -> Vec<PlannedRank> {
        (0..self.events.len())
            .map(|r| self.rank_ledger(r))
            .collect()
    }

    /// Total planned messages (each message counted once, at its sender).
    pub fn total_msgs(&self) -> u64 {
        self.events
            .iter()
            .flatten()
            .filter(|e| e.dir == Dir::Send)
            .count() as u64
    }

    /// Total planned words (counted at senders).
    pub fn total_words(&self) -> u64 {
        self.events
            .iter()
            .flatten()
            .filter(|e| e.dir == Dir::Send)
            .map(|e| e.words)
            .sum()
    }

    /// Largest planned per-rank sent volume — the static analogue of
    /// `Output3d::max_rank_sent_words`.
    pub fn max_rank_sent_words(&self) -> u64 {
        self.events
            .iter()
            .map(|evs| {
                evs.iter()
                    .filter(|e| e.dir == Dir::Send)
                    .map(|e| e.words)
                    .sum()
            })
            .max()
            .unwrap_or(0)
    }
}
