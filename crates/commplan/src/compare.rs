//! Plan-vs-measured comparison and JSON export.
//!
//! The comparison is *exact equality*, not a band: scheduled traffic is
//! deterministic, so the measured `obs::commvol` ledger of a factor-only
//! run must reproduce the plan cell-for-cell and edge-for-edge. The one
//! quantity excluded is `struct_words` (padding-waste audit): zero-row
//! detection inspects numeric block contents, which symbolic analysis
//! cannot predict.

use crate::{CommPlan, PlanAudit, PlannedRank};
use obs::{CommReport, Json};
use std::collections::BTreeMap;

/// Summary of a successful plan-vs-ledger comparison.
#[derive(Clone, Copy, Debug)]
pub struct CompareStats {
    pub ranks: usize,
    pub entries: usize,
    pub edges: usize,
    pub msgs: u64,
    pub words: u64,
}

const MAX_MISMATCHES: usize = 24;

/// Compare the static plan against the measured per-rank wire ledgers of a
/// factor-only run (`reports[i]` is world rank `i`'s). Checks, per rank:
/// every (phase, class, level, axis) ledger cell's message count and word
/// volume, and every per-peer sent/received edge. Returns every mismatch,
/// each naming the rank, the cell or edge, and both values.
pub fn compare_with_measured(
    plan: &CommPlan,
    reports: &[CommReport],
) -> Result<CompareStats, Vec<String>> {
    let mut mismatches = Vec::new();
    let mut extra = 0usize;
    let mut push = |v: &mut Vec<String>, msg: String| {
        if v.len() < MAX_MISMATCHES {
            v.push(msg);
        } else {
            extra += 1;
        }
    };
    if reports.len() != plan.events.len() {
        return Err(vec![format!(
            "rank count mismatch: plan has {}, ledger has {}",
            plan.events.len(),
            reports.len()
        )]);
    }
    let mut stats = CompareStats {
        ranks: reports.len(),
        entries: 0,
        edges: 0,
        msgs: 0,
        words: 0,
    };
    for (rank, report) in reports.iter().enumerate() {
        let planned = plan.rank_ledger(rank);
        stats.entries += planned.entries.len();
        stats.edges += planned.sent_to.len() + planned.recv_from.len();
        stats.msgs += planned.sent_to.values().map(|&(m, _)| m).sum::<u64>();
        stats.words += planned.sent_to.values().map(|&(_, w)| w).sum::<u64>();

        let mut measured: BTreeMap<_, (u64, u64)> = BTreeMap::new();
        for e in &report.entries {
            // The ledger never emits zero cells, but be tolerant: fold
            // duplicates and drop empties so the comparison is on content.
            if e.cell.msgs == 0 && e.cell.words == 0 {
                continue;
            }
            let cell = measured
                .entry((e.phase.clone(), e.class, e.level, e.axis))
                .or_insert((0, 0));
            cell.0 += e.cell.msgs;
            cell.1 += e.cell.words;
        }
        for (key, planned_cell) in &planned.entries {
            let (phase, class, level, axis) = key;
            match measured.remove(key) {
                Some(m) if m == *planned_cell => {}
                got => {
                    let (gm, gw) = got.unwrap_or((0, 0));
                    push(
                        &mut mismatches,
                        format!(
                            "rank {rank} cell ({phase}, {}, L{level}, {}): planned \
                             {} msgs / {} words, measured {gm} msgs / {gw} words",
                            class.as_str(),
                            axis.as_str(),
                            planned_cell.0,
                            planned_cell.1
                        ),
                    );
                }
            }
        }
        for ((phase, class, level, axis), (m, w)) in measured {
            push(
                &mut mismatches,
                format!(
                    "rank {rank} cell ({phase}, {}, L{level}, {}): unplanned \
                     measured traffic {m} msgs / {w} words",
                    class.as_str(),
                    axis.as_str()
                ),
            );
        }

        for (what, planned_edges, measured_edges) in [
            ("sent_to", &planned.sent_to, &report.sent_to),
            ("recv_from", &planned.recv_from, &report.recv_from),
        ] {
            let mut measured: BTreeMap<usize, (u64, u64)> = measured_edges
                .iter()
                .filter(|e| e.msgs > 0 || e.words > 0)
                .map(|e| (e.peer, (e.msgs, e.words)))
                .collect();
            for (&peer, cell) in planned_edges {
                match measured.remove(&peer) {
                    Some(m) if m == *cell => {}
                    got => {
                        let (gm, gw) = got.unwrap_or((0, 0));
                        push(
                            &mut mismatches,
                            format!(
                                "rank {rank} edge {what} peer {peer}: planned {} msgs / \
                                 {} words, measured {gm} msgs / {gw} words",
                                cell.0, cell.1
                            ),
                        );
                    }
                }
            }
            for (peer, (m, w)) in measured {
                push(
                    &mut mismatches,
                    format!(
                        "rank {rank} edge {what} peer {peer}: unplanned measured \
                         traffic {m} msgs / {w} words"
                    ),
                );
            }
        }
    }
    if extra > 0 {
        mismatches.push(format!("... and {extra} more mismatches"));
    }
    if mismatches.is_empty() {
        Ok(stats)
    } else {
        Err(mismatches)
    }
}

fn ledger_json(pl: &PlannedRank) -> Json {
    let edges = |edges: &BTreeMap<usize, (u64, u64)>| {
        Json::Arr(
            edges
                .iter()
                .map(|(&peer, &(msgs, words))| {
                    Json::Obj(vec![
                        ("peer".into(), Json::num(peer as f64)),
                        ("msgs".into(), Json::num(msgs as f64)),
                        ("words".into(), Json::num(words as f64)),
                    ])
                })
                .collect(),
        )
    };
    Json::Obj(vec![
        (
            "entries".into(),
            Json::Arr(
                pl.entries
                    .iter()
                    .map(|((phase, class, level, axis), &(msgs, words))| {
                        Json::Obj(vec![
                            ("phase".into(), Json::str(phase.clone())),
                            ("class".into(), Json::str(class.as_str())),
                            ("level".into(), Json::num(*level as f64)),
                            ("axis".into(), Json::str(axis.as_str())),
                            ("msgs".into(), Json::num(msgs as f64)),
                            ("words".into(), Json::num(words as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("sent_to".into(), edges(&pl.sent_to)),
        ("recv_from".into(), edges(&pl.recv_from)),
    ])
}

/// Machine-readable plan document: grid shape, totals, static-check
/// verdicts, and each rank's planned ledger in `commvol` schema (entries
/// keyed by phase/class/level/axis plus per-peer edges).
pub fn plan_json(plan: &CommPlan, audit: &PlanAudit) -> Json {
    let g = plan.grid;
    Json::Obj(vec![
        ("schema".into(), Json::str("salu-commplan/1")),
        (
            "grid".into(),
            Json::Obj(vec![
                ("pr".into(), Json::num(g.grid2d.pr as f64)),
                ("pc".into(), Json::num(g.grid2d.pc as f64)),
                ("pz".into(), Json::num(g.pz as f64)),
            ]),
        ),
        ("ops".into(), Json::num(audit.ops as f64)),
        ("msgs".into(), Json::num(audit.msgs as f64)),
        ("words".into(), Json::num(audit.words as f64)),
        (
            "max_rank_sent_words".into(),
            Json::num(plan.max_rank_sent_words() as f64),
        ),
        ("checks_ok".into(), Json::Bool(audit.ok())),
        (
            "findings".into(),
            Json::Arr(audit.findings.iter().map(Json::str).collect()),
        ),
        (
            "per_rank".into(),
            Json::Arr(
                (0..plan.events.len())
                    .map(|r| ledger_json(&plan.rank_ledger(r)))
                    .collect(),
            ),
        ),
    ])
}
