//! Chrome trace-event (Perfetto / `chrome://tracing`) exporter.
//!
//! One process, one thread track per rank. Spans and activities become
//! `"X"` complete events (timestamps in microseconds of *simulated* time);
//! each matched send→recv pair becomes an `"s"`/`"f"` flow-arrow pair bound
//! by the message uid. Load the emitted file in <https://ui.perfetto.dev>.

use crate::commvol::CommClass;
use crate::hostprof::HostPhase;
use crate::json::Json;
use crate::memprof::MemClass;
use crate::span::{ActivityKind, RankObs};
use std::collections::{BTreeMap, HashSet};

const US: f64 = 1.0e6;

/// Build the trace document for a finished run.
pub fn chrome_trace(obs: &[RankObs]) -> Json {
    let mut events = Vec::new();
    // Which messages have a traced receive: only those get flow arrows, so
    // a dangling "s" never appears (e.g. unconsumed eager sends).
    let received: HashSet<u64> = obs
        .iter()
        .flat_map(|r| r.activities.iter())
        .filter(|a| a.kind == ActivityKind::Recv)
        .filter_map(|a| a.msg_uid())
        .collect();

    for r in obs {
        events.push(Json::Obj(vec![
            ("ph".into(), Json::str("M")),
            ("name".into(), Json::str("thread_name")),
            ("pid".into(), Json::num(0.0)),
            ("tid".into(), Json::num(r.rank as f64)),
            (
                "args".into(),
                Json::Obj(vec![("name".into(), Json::str(format!("rank {}", r.rank)))]),
            ),
        ]));
        for s in &r.spans {
            events.push(Json::Obj(vec![
                ("ph".into(), Json::str("X")),
                ("name".into(), Json::str(s.name.clone())),
                ("cat".into(), Json::str(s.cat.as_str())),
                ("ts".into(), Json::num(s.start * US)),
                ("dur".into(), Json::num((s.end - s.start) * US)),
                ("pid".into(), Json::num(0.0)),
                ("tid".into(), Json::num(r.rank as f64)),
                (
                    "args".into(),
                    Json::Obj(vec![("depth".into(), Json::num(s.depth as f64))]),
                ),
            ]));
        }
        for a in &r.activities {
            let mut args = Vec::new();
            if let Some(p) = a.peer {
                args.push(("peer".into(), Json::num(p as f64)));
            }
            if a.words > 0 {
                args.push(("words".into(), Json::num(a.words as f64)));
            }
            // Message identity for the offline commcheck linter: pairing,
            // FIFO order, and collective participation are all derived
            // from (uid, ctx, tag).
            if let Some(m) = a.msg {
                args.push(("uid".into(), Json::num(m.uid as f64)));
                args.push(("ctx".into(), Json::num(m.ctx as f64)));
                args.push(("tag".into(), Json::num(m.tag as f64)));
            }
            events.push(Json::Obj(vec![
                ("ph".into(), Json::str("X")),
                ("name".into(), Json::str(a.kind.as_str())),
                ("cat".into(), Json::str("activity")),
                ("ts".into(), Json::num(a.start * US)),
                ("dur".into(), Json::num((a.end - a.start) * US)),
                ("pid".into(), Json::num(0.0)),
                ("tid".into(), Json::num(r.rank as f64)),
                ("args".into(), Json::Obj(args)),
            ]));
            // Flow arrows: start at the middle of the send slice, finish at
            // the middle of the recv slice ("e" binds to the enclosing X).
            if let Some(uid) = a.msg_uid() {
                let (ph, extra): (&str, Option<(&str, Json)>) = match a.kind {
                    ActivityKind::Send if received.contains(&uid) => ("s", None),
                    ActivityKind::Recv => ("f", Some(("bp", Json::str("e")))),
                    _ => continue,
                };
                let mut flow = vec![
                    ("ph".into(), Json::str(ph)),
                    ("id".into(), Json::num(uid as f64)),
                    ("name".into(), Json::str("msg")),
                    ("cat".into(), Json::str("dep")),
                    ("ts".into(), Json::num((a.start + a.end) * 0.5 * US)),
                    ("pid".into(), Json::num(0.0)),
                    ("tid".into(), Json::num(r.rank as f64)),
                ];
                if let Some((k, v)) = extra {
                    flow.push((k.into(), v));
                }
                events.push(Json::Obj(flow));
            }
        }
        // Memory counter track: one "C" sample per distinct ledger
        // timestamp, args = cumulative bytes per class (summed over tree
        // levels). Perfetto renders each (pid, name) counter as a stacked
        // area chart beside the rank's span track.
        if !r.mem.is_empty() {
            let live: Vec<MemClass> = MemClass::ALL
                .iter()
                .copied()
                .filter(|&c| r.mem.iter().any(|e| e.class == c))
                .collect();
            let mut totals: BTreeMap<MemClass, i64> = BTreeMap::new();
            let mut i = 0;
            while i < r.mem.len() {
                let t = r.mem[i].t;
                while i < r.mem.len() && r.mem[i].t == t {
                    *totals.entry(r.mem[i].class).or_insert(0) += r.mem[i].delta;
                    i += 1;
                }
                let args = live
                    .iter()
                    .map(|&c| {
                        let v = totals.get(&c).copied().unwrap_or(0);
                        (c.as_str().to_string(), Json::num(v as f64))
                    })
                    .collect();
                events.push(Json::Obj(vec![
                    ("ph".into(), Json::str("C")),
                    ("name".into(), Json::str(format!("mem rank {}", r.rank))),
                    ("cat".into(), Json::str("mem")),
                    ("ts".into(), Json::num(t * US)),
                    ("pid".into(), Json::num(0.0)),
                    ("tid".into(), Json::num(r.rank as f64)),
                    ("args".into(), Json::Obj(args)),
                ]));
            }
        }
        // Wire counter track: one "C" sample per distinct send timestamp,
        // args = cumulative words shipped per communication class. The
        // series are monotone by construction (sends only add words).
        if !r.comm.is_empty() {
            let live: Vec<CommClass> = CommClass::ALL
                .iter()
                .copied()
                .filter(|&c| r.comm.iter().any(|e| e.class == c))
                .collect();
            let mut totals: BTreeMap<CommClass, u64> = BTreeMap::new();
            let mut i = 0;
            while i < r.comm.len() {
                let t = r.comm[i].t;
                while i < r.comm.len() && r.comm[i].t == t {
                    *totals.entry(r.comm[i].class).or_insert(0) += r.comm[i].words;
                    i += 1;
                }
                let args = live
                    .iter()
                    .map(|&c| {
                        let v = totals.get(&c).copied().unwrap_or(0);
                        (c.as_str().to_string(), Json::num(v as f64))
                    })
                    .collect();
                events.push(Json::Obj(vec![
                    ("ph".into(), Json::str("C")),
                    ("name".into(), Json::str(format!("wire rank {}", r.rank))),
                    ("cat".into(), Json::str("wire")),
                    ("ts".into(), Json::num(t * US)),
                    ("pid".into(), Json::num(0.0)),
                    ("tid".into(), Json::num(r.rank as f64)),
                    ("args".into(), Json::Obj(args)),
                ]));
            }
        }
        // Host-profiler counter track: one "C" sample per distinct
        // simulated open time, args = cumulative host self-nanoseconds per
        // phase. Timestamps are simulated (deterministic placement); only
        // the values carry nondeterministic host measurements.
        if !r.host.is_empty() {
            let live: Vec<HostPhase> = HostPhase::ALL
                .iter()
                .copied()
                .filter(|&p| r.host.iter().any(|e| e.phase == p))
                .collect();
            let mut totals: BTreeMap<HostPhase, u64> = BTreeMap::new();
            let mut i = 0;
            while i < r.host.len() {
                let t = r.host[i].t;
                while i < r.host.len() && r.host[i].t == t {
                    *totals.entry(r.host[i].phase).or_insert(0) += r.host[i].ns;
                    i += 1;
                }
                let args = live
                    .iter()
                    .map(|&p| {
                        let v = totals.get(&p).copied().unwrap_or(0);
                        (p.as_str().to_string(), Json::num(v as f64))
                    })
                    .collect();
                events.push(Json::Obj(vec![
                    ("ph".into(), Json::str("C")),
                    ("name".into(), Json::str(format!("host rank {}", r.rank))),
                    ("cat".into(), Json::str("host")),
                    ("ts".into(), Json::num(t * US)),
                    ("pid".into(), Json::num(0.0)),
                    ("tid".into(), Json::num(r.rank as f64)),
                    ("args".into(), Json::Obj(args)),
                ]));
            }
        }
    }
    Json::Obj(vec![
        ("traceEvents".into(), Json::Arr(events)),
        ("displayTimeUnit".into(), Json::str("ms")),
    ])
}

/// Structural facts established by [`validate_chrome_trace`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ChromeTraceStats {
    /// Total events of any phase type.
    pub events: usize,
    /// Number of distinct thread tracks.
    pub tracks: usize,
    /// Maximum `"X"`-slice nesting depth over all tracks (1 = flat).
    pub max_nesting: usize,
    /// Matched send→recv flow pairs.
    pub flow_pairs: usize,
    /// `"C"` counter samples (memory tracks).
    pub counter_events: usize,
}

/// Validate a parsed Chrome trace document: required fields on every
/// event, strictly nested (never partially overlapping) `"X"` slices per
/// track, and every flow-finish matched by a flow-start with the same id.
pub fn validate_chrome_trace(doc: &Json) -> Result<ChromeTraceStats, String> {
    let events = doc
        .get("traceEvents")
        .and_then(|e| e.as_arr())
        .ok_or("missing traceEvents array")?;
    let mut stats = ChromeTraceStats {
        events: events.len(),
        ..Default::default()
    };
    // tid -> [(ts, dur)] for X events
    let mut slices: BTreeMap<i64, Vec<(f64, f64)>> = BTreeMap::new();
    let mut flow_starts: HashSet<i64> = HashSet::new();
    let mut flow_ends: Vec<i64> = Vec::new();

    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(|p| p.as_str())
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        let tid = ev
            .get("tid")
            .and_then(|t| t.as_f64())
            .ok_or_else(|| format!("event {i}: missing tid"))? as i64;
        match ph {
            "X" => {
                let ts = ev
                    .get("ts")
                    .and_then(|t| t.as_f64())
                    .ok_or_else(|| format!("event {i}: X without ts"))?;
                let dur = ev
                    .get("dur")
                    .and_then(|d| d.as_f64())
                    .ok_or_else(|| format!("event {i}: X without dur"))?;
                if ev.get("name").and_then(|n| n.as_str()).is_none() {
                    return Err(format!("event {i}: X without name"));
                }
                if dur < 0.0 {
                    return Err(format!("event {i}: negative duration"));
                }
                slices.entry(tid).or_default().push((ts, dur));
            }
            "s" => {
                let id = ev
                    .get("id")
                    .and_then(|d| d.as_f64())
                    .ok_or_else(|| format!("event {i}: flow without id"))?;
                flow_starts.insert(id as i64);
            }
            "f" => {
                let id = ev
                    .get("id")
                    .and_then(|d| d.as_f64())
                    .ok_or_else(|| format!("event {i}: flow without id"))?;
                flow_ends.push(id as i64);
            }
            "C" => {
                if ev.get("name").and_then(|n| n.as_str()).is_none() {
                    return Err(format!("event {i}: C without name"));
                }
                if ev.get("ts").and_then(|t| t.as_f64()).is_none() {
                    return Err(format!("event {i}: C without ts"));
                }
                let args = ev
                    .get("args")
                    .and_then(|a| a.as_obj())
                    .ok_or_else(|| format!("event {i}: C without args object"))?;
                for (k, v) in args {
                    let n = v
                        .as_f64()
                        .ok_or_else(|| format!("event {i}: counter series {k:?} not numeric"))?;
                    if n < 0.0 {
                        return Err(format!("event {i}: counter series {k:?} negative ({n})"));
                    }
                }
                stats.counter_events += 1;
            }
            "M" => {}
            other => return Err(format!("event {i}: unexpected ph {other:?}")),
        }
    }

    stats.tracks = slices.len();
    // Slice containment per track: sort by (ts asc, dur desc) and sweep a
    // stack. A slice must either start after the top ends or end within it.
    for (tid, track) in slices.iter_mut() {
        track.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap()
                .then(b.1.partial_cmp(&a.1).unwrap())
        });
        let mut stack: Vec<(f64, f64)> = Vec::new();
        for &(ts, dur) in track.iter() {
            let end = ts + dur;
            // Tolerance comparable to f64 rounding at µs scale.
            let eps = 1e-6 * (1.0 + end.abs());
            while let Some(&(_, top_end)) = stack.last() {
                if ts >= top_end - eps {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(&(_, top_end)) = stack.last() {
                if end > top_end + eps {
                    return Err(format!(
                        "track {tid}: slice [{ts}, {end}) partially overlaps \
                         enclosing slice ending at {top_end}"
                    ));
                }
            }
            stack.push((ts, end));
            stats.max_nesting = stats.max_nesting.max(stack.len());
        }
    }

    for id in &flow_ends {
        if !flow_starts.contains(id) {
            return Err(format!("flow finish id {id} has no matching start"));
        }
    }
    stats.flow_pairs = flow_ends.len();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{ActivityKind, MsgInfo, Recorder, SpanCat};

    fn two_rank_obs() -> Vec<RankObs> {
        let mut r0 = Recorder::new(0);
        let lvl = r0.enter(SpanCat::Level, "level0", 0.0);
        let ph = r0.enter(SpanCat::Phase, "fact", 0.0);
        let node = r0.enter(SpanCat::Node, "sn0", 0.0);
        r0.activity(ActivityKind::Compute, 0.0, 2.0, None, 0, None);
        r0.activity(
            ActivityKind::Send,
            2.0,
            2.5,
            Some(1),
            16,
            Some(MsgInfo {
                uid: 7,
                ctx: 0,
                tag: 3,
            }),
        );
        r0.exit(node, 2.5);
        r0.exit(ph, 2.5);
        r0.exit(lvl, 2.5);

        let mut r1 = Recorder::new(1);
        let ph1 = r1.enter(SpanCat::Phase, "fact", 0.0);
        r1.activity(ActivityKind::Wait, 0.0, 2.5, Some(0), 0, None);
        r1.activity(
            ActivityKind::Recv,
            2.5,
            3.0,
            Some(0),
            16,
            Some(MsgInfo {
                uid: 7,
                ctx: 0,
                tag: 3,
            }),
        );
        r1.exit(ph1, 3.0);
        vec![r0.finish(2.5), r1.finish(3.0)]
    }

    #[test]
    fn export_validates_with_depth_and_flows() {
        let doc = chrome_trace(&two_rank_obs());
        let stats = validate_chrome_trace(&doc).unwrap();
        assert_eq!(stats.tracks, 2);
        // level > phase > node > activity on rank 0.
        assert!(stats.max_nesting >= 4, "nesting {}", stats.max_nesting);
        assert_eq!(stats.flow_pairs, 1);
    }

    #[test]
    fn export_roundtrips_through_text() {
        let doc = chrome_trace(&two_rank_obs());
        let text = doc.dump();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
        validate_chrome_trace(&back).unwrap();
    }

    #[test]
    fn unreceived_send_gets_no_flow_start() {
        let mut r0 = Recorder::new(0);
        r0.activity(
            ActivityKind::Send,
            0.0,
            1.0,
            Some(1),
            8,
            Some(MsgInfo {
                uid: 99,
                ctx: 0,
                tag: 1,
            }),
        );
        let doc = chrome_trace(&[r0.finish(1.0)]);
        let stats = validate_chrome_trace(&doc).unwrap();
        assert_eq!(stats.flow_pairs, 0);
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert!(events
            .iter()
            .all(|e| e.get("ph").unwrap().as_str() != Some("s")));
    }

    #[test]
    fn counter_track_roundtrips_and_counts() {
        use crate::memprof::{MemClass, MemLedger};
        let mut led = MemLedger::new(true);
        led.charge(MemClass::LPanel, 128, 0.0);
        led.charge(MemClass::MsgInFlight, 64, 1.0);
        led.credit(MemClass::MsgInFlight, 64, 2.0);
        let mut obs = two_rank_obs();
        obs[0].mem = led.take_timeline();
        let doc = chrome_trace(&obs);
        let stats = validate_chrome_trace(&doc).unwrap();
        assert_eq!(stats.counter_events, 3);
        // Parse back through text and check the cumulative series.
        let back = Json::parse(&doc.dump()).unwrap();
        let counters: Vec<&Json> = back
            .get("traceEvents")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("C"))
            .collect();
        assert_eq!(counters.len(), 3);
        let series = |ev: &Json, k: &str| ev.get("args").unwrap().get(k).unwrap().as_f64().unwrap();
        assert_eq!(series(counters[0], "LPanel"), 128.0);
        assert_eq!(series(counters[0], "MsgInFlight"), 0.0);
        assert_eq!(series(counters[1], "MsgInFlight"), 64.0);
        assert_eq!(series(counters[2], "MsgInFlight"), 0.0);
        assert_eq!(series(counters[2], "LPanel"), 128.0);
        validate_chrome_trace(&back).unwrap();
    }

    #[test]
    fn wire_counter_track_is_cumulative_per_class() {
        use crate::commvol::{CommClass, CommLedger, GridAxis};
        let mut led = CommLedger::new(true);
        led.charge_send("fact", CommClass::LPanel, GridAxis::X, 1, 16, 8, 0.0);
        led.charge_send("fact", CommClass::LPanel, GridAxis::X, 1, 4, 4, 1.0);
        led.charge_send("reduce", CommClass::ZReduction, GridAxis::Z, 2, 10, 5, 1.0);
        let mut obs = two_rank_obs();
        obs[0].comm = led.take_timeline();
        let doc = chrome_trace(&obs);
        let stats = validate_chrome_trace(&doc).unwrap();
        assert_eq!(stats.counter_events, 2, "two distinct timestamps");
        let back = Json::parse(&doc.dump()).unwrap();
        let counters: Vec<&Json> = back
            .get("traceEvents")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("C"))
            .collect();
        assert!(counters
            .iter()
            .all(|e| e.get("name").unwrap().as_str() == Some("wire rank 0")));
        let series = |ev: &Json, k: &str| ev.get("args").unwrap().get(k).unwrap().as_f64().unwrap();
        assert_eq!(series(counters[0], "LPanel"), 16.0);
        assert_eq!(series(counters[0], "ZReduction"), 0.0);
        assert_eq!(series(counters[1], "LPanel"), 20.0);
        assert_eq!(series(counters[1], "ZReduction"), 10.0);
    }

    #[test]
    fn host_counter_track_is_cumulative_per_phase() {
        use crate::hostprof::{HostEvent, HostPhase};
        let mut obs = two_rank_obs();
        obs[0].host = vec![
            HostEvent {
                t: 0.0,
                phase: HostPhase::PanelFactor,
                ns: 500,
            },
            HostEvent {
                t: 1.0,
                phase: HostPhase::Gemm,
                ns: 2_000,
            },
            HostEvent {
                t: 1.0,
                phase: HostPhase::PanelFactor,
                ns: 300,
            },
        ];
        let doc = chrome_trace(&obs);
        let stats = validate_chrome_trace(&doc).unwrap();
        assert_eq!(stats.counter_events, 2, "two distinct timestamps");
        let back = Json::parse(&doc.dump()).unwrap();
        let counters: Vec<&Json> = back
            .get("traceEvents")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("C"))
            .collect();
        assert!(counters
            .iter()
            .all(|e| e.get("name").unwrap().as_str() == Some("host rank 0")));
        let series = |ev: &Json, k: &str| ev.get("args").unwrap().get(k).unwrap().as_f64().unwrap();
        assert_eq!(series(counters[0], "panel-factor"), 500.0);
        assert_eq!(series(counters[0], "gemm"), 0.0);
        assert_eq!(series(counters[1], "panel-factor"), 800.0);
        assert_eq!(series(counters[1], "gemm"), 2000.0);
    }

    #[test]
    fn validator_rejects_negative_counter_series() {
        let doc = Json::parse(
            r#"{"traceEvents":[
                {"ph":"C","name":"mem rank 0","ts":0,"pid":0,"tid":0,
                 "args":{"LPanel":-8}}
            ]}"#,
        )
        .unwrap();
        assert!(validate_chrome_trace(&doc).is_err());
    }

    #[test]
    fn validator_rejects_partial_overlap() {
        let doc = Json::parse(
            r#"{"traceEvents":[
                {"ph":"X","name":"a","ts":0,"dur":10,"pid":0,"tid":0},
                {"ph":"X","name":"b","ts":5,"dur":10,"pid":0,"tid":0}
            ]}"#,
        )
        .unwrap();
        assert!(validate_chrome_trace(&doc).is_err());
    }

    #[test]
    fn validator_rejects_orphan_flow_finish() {
        let doc = Json::parse(
            r#"{"traceEvents":[
                {"ph":"f","bp":"e","id":3,"ts":1,"pid":0,"tid":0}
            ]}"#,
        )
        .unwrap();
        assert!(validate_chrome_trace(&doc).is_err());
    }
}
