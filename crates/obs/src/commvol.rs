//! Wire-volume observatory: a per-rank, simulated-time communication
//! ledger.
//!
//! Every algorithmic send is charged to a
//! `(phase, class, tree level, grid axis)` key plus a per-edge
//! `(src, dst)` entry, at the simulated time of the send — the same design
//! as the memory profiler ([`crate::memprof`]), aimed at the quantity the
//! paper is actually about: words moved per process.
//!
//! Two audits ride on the ledger:
//!
//! - **Padding waste**: blocks travel zero-padded dense, so each charge
//!   records both the padded words actually shipped and the struct-nonzero
//!   words a zero-row-compressed encoding would ship (the per-tile
//!   compression the GEMM microkernel already performs on arrival). The
//!   gap, per class, is the headroom a SpComm3D-style sparse wire format
//!   would recover.
//! - **Replication**: per-class/per-level volumes let the conformance
//!   gates compare measured z-axis reduction traffic against the analytic
//!   per-level bounds of the cost model (paper §IV, eq. 10).
//!
//! Fault-injected retransmits and duplicates are *not* charged here: the
//! ledger records algorithmic volume, so a recovered chaos run reports
//! bitwise the same ledger as a fault-free run. Transport overhead lands
//! in the `fault.resent_*` metrics instead.
//!
//! When tracing is on, the ledger records each send as a [`CommEvent`];
//! the Chrome exporter turns that timeline into cumulative `"ph":"C"`
//! counter tracks per class ("wire rank N").

use crate::json::Json;
use std::collections::BTreeMap;

/// What a message carries. The taxonomy follows the communication story of
/// the paper: panel broadcasts inside a 2D grid, Schur-complement
/// contributions, the z-axis ancestor reductions that the 3D algorithm
/// adds, collective internals, and small control traffic.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CommClass {
    /// L-factor panel blocks broadcast along a process row.
    LPanel,
    /// U-factor panel blocks broadcast down a process column.
    UPanel,
    /// Schur-complement contribution blocks exchanged between ranks
    /// (reserved: the current owner-computes schedule keeps Schur updates
    /// local, so this class is zero until ROADMAP item 3 redistributes
    /// them).
    SchurContrib,
    /// Ancestor-replica blocks pairwise-reduced along the z axis
    /// (Algorithm 1's reduction ladder — the `W_red` of Fig. 10).
    ZReduction,
    /// Collective-internal traffic (barrier rounds, allreduce halves)
    /// not claimed by a more specific class.
    Collective,
    /// Everything else: diagonal-block broadcasts, pivot metadata, solve
    /// traffic, and other small control messages.
    Control,
}

impl CommClass {
    /// All classes, in the fixed order used by every report and track.
    pub const ALL: [CommClass; 6] = [
        CommClass::LPanel,
        CommClass::UPanel,
        CommClass::SchurContrib,
        CommClass::ZReduction,
        CommClass::Collective,
        CommClass::Control,
    ];

    pub fn as_str(self) -> &'static str {
        match self {
            CommClass::LPanel => "LPanel",
            CommClass::UPanel => "UPanel",
            CommClass::SchurContrib => "SchurContrib",
            CommClass::ZReduction => "ZReduction",
            CommClass::Collective => "Collective",
            CommClass::Control => "Control",
        }
    }
}

/// Which axis of the 3D process grid an edge runs along.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum GridAxis {
    /// Same process row, same layer: varying column coordinate.
    X,
    /// Same process column, same layer: varying row coordinate.
    Y,
    /// Same `(r, c)` position across layers: a z-line edge.
    Z,
    /// Any edge that changes more than one coordinate, or traffic on a
    /// machine with no registered grid.
    Cross,
}

impl GridAxis {
    pub const ALL: [GridAxis; 4] = [GridAxis::X, GridAxis::Y, GridAxis::Z, GridAxis::Cross];

    pub fn as_str(self) -> &'static str {
        match self {
            GridAxis::X => "x",
            GridAxis::Y => "y",
            GridAxis::Z => "z",
            GridAxis::Cross => "cross",
        }
    }
}

/// One send on the wire timeline (recorded only when tracing).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CommEvent {
    /// Simulated seconds at which the send started.
    pub t: f64,
    pub class: CommClass,
    /// Padded words shipped.
    pub words: u64,
}

/// Accumulated volume under one ledger key.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommCell {
    pub msgs: u64,
    /// Padded words actually shipped.
    pub words: u64,
    /// Struct-nonzero words: what a zero-row-compressed encoding would
    /// ship. Always `<= words`.
    pub struct_words: u64,
}

/// Volume over one directed edge (this rank ↔ one peer).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EdgeVolume {
    pub peer: usize,
    pub msgs: u64,
    pub words: u64,
}

/// Running per-key volumes for one rank.
#[derive(Clone, Debug, Default)]
pub struct CommLedger {
    /// Current tree level, stamped onto send charges.
    level: u32,
    sent: BTreeMap<(String, CommClass, u32, GridAxis), CommCell>,
    sent_to: BTreeMap<usize, (u64, u64)>,
    recv_from: BTreeMap<usize, (u64, u64)>,
    /// Per-event timeline, recorded only when tracing.
    timeline: Option<Vec<CommEvent>>,
}

impl CommLedger {
    /// `timeline = true` records every send for counter-track export;
    /// the keyed volumes are always on.
    pub fn new(timeline: bool) -> Self {
        CommLedger {
            timeline: if timeline { Some(Vec::new()) } else { None },
            ..Default::default()
        }
    }

    /// Set the elimination-tree level subsequent send charges are
    /// attributed to (mirrors [`crate::memprof::MemLedger::set_level`]).
    pub fn set_level(&mut self, level: u32) {
        self.level = level;
    }

    pub fn level(&self) -> u32 {
        self.level
    }

    /// Charge one algorithmic send: `words` padded words (with
    /// `struct_words` of them structurally nonzero) to `dst` along `axis`,
    /// under `phase` and `class` at the current tree level. Zero-word
    /// messages (barriers) still count as messages.
    #[allow(clippy::too_many_arguments)] // one scalar per ledger dimension; called once from Rank
    pub fn charge_send(
        &mut self,
        phase: &str,
        class: CommClass,
        axis: GridAxis,
        dst: usize,
        words: u64,
        struct_words: u64,
        t: f64,
    ) {
        debug_assert!(
            struct_words <= words,
            "struct {struct_words} > padded {words}"
        );
        let cell = self
            .sent
            .entry((phase.to_string(), class, self.level, axis))
            .or_default();
        cell.msgs += 1;
        cell.words += words;
        cell.struct_words += struct_words.min(words);
        let e = self.sent_to.entry(dst).or_default();
        e.0 += 1;
        e.1 += words;
        if words > 0 {
            if let Some(tl) = &mut self.timeline {
                tl.push(CommEvent { t, class, words });
            }
        }
    }

    /// Record one algorithmic receive of `words` words from `src`.
    pub fn charge_recv(&mut self, src: usize, words: u64) {
        let e = self.recv_from.entry(src).or_default();
        e.0 += 1;
        e.1 += words;
    }

    /// Padded words sent so far, all keys.
    pub fn sent_words(&self) -> u64 {
        self.sent.values().map(|c| c.words).sum()
    }

    /// Take the recorded event timeline (empty when tracing was off).
    pub fn take_timeline(&mut self) -> Vec<CommEvent> {
        self.timeline.take().unwrap_or_default()
    }

    /// Freeze into a report. Call at the end of the run.
    pub fn report(&self) -> CommReport {
        let edges = |m: &BTreeMap<usize, (u64, u64)>| {
            m.iter()
                .map(|(&peer, &(msgs, words))| EdgeVolume { peer, msgs, words })
                .collect::<Vec<_>>()
        };
        CommReport {
            entries: self
                .sent
                .iter()
                .map(|((phase, class, level, axis), &cell)| CommEntry {
                    phase: phase.clone(),
                    class: *class,
                    level: *level,
                    axis: *axis,
                    cell,
                })
                .collect(),
            sent_to: edges(&self.sent_to),
            recv_from: edges(&self.recv_from),
        }
    }
}

/// One `(phase, class, level, axis)` ledger row.
#[derive(Clone, Debug, PartialEq)]
pub struct CommEntry {
    pub phase: String,
    pub class: CommClass,
    pub level: u32,
    pub axis: GridAxis,
    pub cell: CommCell,
}

/// Frozen per-rank wire-volume profile: the full keyed breakdown plus
/// per-edge sent/received volumes.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CommReport {
    /// Keyed volumes, in BTreeMap (deterministic) order.
    pub entries: Vec<CommEntry>,
    /// Words this rank sent, per destination world rank.
    pub sent_to: Vec<EdgeVolume>,
    /// Words this rank received, per source world rank.
    pub recv_from: Vec<EdgeVolume>,
}

impl CommReport {
    pub fn sent_words(&self) -> u64 {
        self.entries.iter().map(|e| e.cell.words).sum()
    }

    pub fn sent_msgs(&self) -> u64 {
        self.entries.iter().map(|e| e.cell.msgs).sum()
    }

    pub fn recv_words(&self) -> u64 {
        self.recv_from.iter().map(|e| e.words).sum()
    }

    pub fn recv_msgs(&self) -> u64 {
        self.recv_from.iter().map(|e| e.msgs).sum()
    }

    /// Aggregate volume of one class over phases, levels, and axes.
    pub fn class_cell(&self, class: CommClass) -> CommCell {
        let mut out = CommCell::default();
        for e in self.entries.iter().filter(|e| e.class == class) {
            out.msgs += e.cell.msgs;
            out.words += e.cell.words;
            out.struct_words += e.cell.struct_words;
        }
        out
    }

    /// Padded words sent along one grid axis.
    pub fn axis_words(&self, axis: GridAxis) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.axis == axis)
            .map(|e| e.cell.words)
            .sum()
    }

    /// Padded words sent at one tree level.
    pub fn level_words(&self, level: u32) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.level == level)
            .map(|e| e.cell.words)
            .sum()
    }

    /// Padded words sent under one phase label.
    pub fn phase_words(&self, phase: &str) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.phase == phase)
            .map(|e| e.cell.words)
            .sum()
    }

    /// Fraction of one class's shipped words that are padding
    /// (`0.0` = fully dense, also when the class sent nothing).
    pub fn waste_ratio(&self, class: CommClass) -> f64 {
        let c = self.class_cell(class);
        if c.words == 0 {
            0.0
        } else {
            (c.words - c.struct_words) as f64 / c.words as f64
        }
    }

    /// Largest per-destination sent volume.
    pub fn max_edge_words(&self) -> u64 {
        self.sent_to.iter().map(|e| e.words).max().unwrap_or(0)
    }

    pub fn to_json(&self) -> Json {
        let edges = |v: &[EdgeVolume]| {
            Json::Arr(
                v.iter()
                    .map(|e| {
                        Json::Obj(vec![
                            ("peer".into(), Json::num(e.peer as f64)),
                            ("msgs".into(), Json::num(e.msgs as f64)),
                            ("words".into(), Json::num(e.words as f64)),
                        ])
                    })
                    .collect(),
            )
        };
        Json::Obj(vec![
            ("sent_words".into(), Json::num(self.sent_words() as f64)),
            ("sent_msgs".into(), Json::num(self.sent_msgs() as f64)),
            ("recv_words".into(), Json::num(self.recv_words() as f64)),
            ("recv_msgs".into(), Json::num(self.recv_msgs() as f64)),
            (
                "entries".into(),
                Json::Arr(
                    self.entries
                        .iter()
                        .map(|e| {
                            Json::Obj(vec![
                                ("phase".into(), Json::str(e.phase.clone())),
                                ("class".into(), Json::str(e.class.as_str())),
                                ("level".into(), Json::num(e.level as f64)),
                                ("axis".into(), Json::str(e.axis.as_str())),
                                ("msgs".into(), Json::num(e.cell.msgs as f64)),
                                ("words".into(), Json::num(e.cell.words as f64)),
                                ("struct_words".into(), Json::num(e.cell.struct_words as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("sent_to".into(), edges(&self.sent_to)),
            ("recv_from".into(), edges(&self.recv_from)),
        ])
    }
}

/// Machine-wide wire-volume document: per-rank reports plus a summary —
/// totals and waste ratios per class, volumes per axis and per level, and
/// the per-edge max/mean across the whole machine.
pub fn commvol_json(per_rank: &[CommReport]) -> Json {
    let total_sent: u64 = per_rank.iter().map(|r| r.sent_words()).sum();
    let max_rank_sent = per_rank.iter().map(|r| r.sent_words()).max().unwrap_or(0);
    let by_class = Json::Obj(
        CommClass::ALL
            .iter()
            .map(|&c| {
                let mut cell = CommCell::default();
                for r in per_rank {
                    let rc = r.class_cell(c);
                    cell.msgs += rc.msgs;
                    cell.words += rc.words;
                    cell.struct_words += rc.struct_words;
                }
                let waste = if cell.words == 0 {
                    0.0
                } else {
                    (cell.words - cell.struct_words) as f64 / cell.words as f64
                };
                (
                    c.as_str().to_string(),
                    Json::Obj(vec![
                        ("msgs".into(), Json::num(cell.msgs as f64)),
                        ("words".into(), Json::num(cell.words as f64)),
                        ("struct_words".into(), Json::num(cell.struct_words as f64)),
                        ("waste_ratio".into(), Json::num(waste)),
                    ]),
                )
            })
            .collect(),
    );
    let by_axis = Json::Obj(
        GridAxis::ALL
            .iter()
            .map(|&a| {
                let words: u64 = per_rank.iter().map(|r| r.axis_words(a)).sum();
                (a.as_str().to_string(), Json::num(words as f64))
            })
            .collect(),
    );
    let mut levels: BTreeMap<u32, u64> = BTreeMap::new();
    for r in per_rank {
        for e in &r.entries {
            *levels.entry(e.level).or_insert(0) += e.cell.words;
        }
    }
    let by_level = Json::Obj(
        levels
            .iter()
            .map(|(&l, &w)| (l.to_string(), Json::num(w as f64)))
            .collect(),
    );
    // Per-(src, dst) edge volumes across the machine, from the sender side.
    let mut n_edges = 0u64;
    let mut max_edge = 0u64;
    let mut edge_sum = 0u64;
    for r in per_rank {
        for e in &r.sent_to {
            if e.words > 0 {
                n_edges += 1;
                edge_sum += e.words;
                max_edge = max_edge.max(e.words);
            }
        }
    }
    let mean_edge = if n_edges == 0 {
        0.0
    } else {
        edge_sum as f64 / n_edges as f64
    };
    Json::Obj(vec![
        ("total_sent_words".into(), Json::num(total_sent as f64)),
        (
            "max_rank_sent_words".into(),
            Json::num(max_rank_sent as f64),
        ),
        ("edges".into(), Json::num(n_edges as f64)),
        ("max_edge_words".into(), Json::num(max_edge as f64)),
        ("mean_edge_words".into(), Json::num(mean_edge)),
        ("by_class".into(), by_class),
        ("by_axis".into(), by_axis),
        ("by_level".into(), by_level),
        (
            "ranks".into(),
            Json::Arr(per_rank.iter().map(|r| r.to_json()).collect()),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_separate_phase_class_level_axis() {
        let mut l = CommLedger::new(false);
        l.charge_send("fact", CommClass::LPanel, GridAxis::X, 1, 100, 60, 0.0);
        l.charge_send("fact", CommClass::LPanel, GridAxis::X, 2, 50, 50, 1.0);
        l.set_level(3);
        l.charge_send("reduce", CommClass::ZReduction, GridAxis::Z, 4, 80, 40, 2.0);
        let r = l.report();
        assert_eq!(r.entries.len(), 2);
        assert_eq!(r.sent_words(), 230);
        assert_eq!(r.sent_msgs(), 3);
        assert_eq!(r.class_cell(CommClass::LPanel).words, 150);
        assert_eq!(r.class_cell(CommClass::LPanel).struct_words, 110);
        assert_eq!(r.axis_words(GridAxis::Z), 80);
        assert_eq!(r.level_words(3), 80);
        assert_eq!(r.level_words(0), 150);
        assert_eq!(r.phase_words("reduce"), 80);
        assert_eq!(r.class_cell(CommClass::SchurContrib).words, 0);
    }

    #[test]
    fn waste_ratio_is_padding_fraction() {
        let mut l = CommLedger::new(false);
        l.charge_send("fact", CommClass::UPanel, GridAxis::Y, 1, 200, 50, 0.0);
        let r = l.report();
        assert_eq!(r.waste_ratio(CommClass::UPanel), 0.75);
        // A class that sent nothing has zero waste, not NaN.
        assert_eq!(r.waste_ratio(CommClass::LPanel), 0.0);
    }

    #[test]
    fn edges_accumulate_per_peer() {
        let mut l = CommLedger::new(false);
        l.charge_send("fact", CommClass::Control, GridAxis::X, 1, 10, 10, 0.0);
        l.charge_send("fact", CommClass::Control, GridAxis::X, 1, 5, 5, 1.0);
        l.charge_send("fact", CommClass::Control, GridAxis::Y, 2, 7, 7, 2.0);
        l.charge_recv(3, 9);
        l.charge_recv(3, 1);
        let r = l.report();
        assert_eq!(r.sent_to.len(), 2);
        assert_eq!(
            r.sent_to[0],
            EdgeVolume {
                peer: 1,
                msgs: 2,
                words: 15
            }
        );
        assert_eq!(r.max_edge_words(), 15);
        assert_eq!(
            r.recv_from,
            vec![EdgeVolume {
                peer: 3,
                msgs: 2,
                words: 10
            }]
        );
        assert_eq!(r.recv_words(), 10);
        assert_eq!(r.recv_msgs(), 2);
    }

    #[test]
    fn zero_word_messages_count_msgs_not_timeline() {
        let mut l = CommLedger::new(true);
        l.charge_send("fact", CommClass::Collective, GridAxis::Cross, 1, 0, 0, 0.0);
        l.charge_send("fact", CommClass::Collective, GridAxis::Cross, 1, 4, 4, 1.0);
        let r = l.report();
        assert_eq!(r.sent_msgs(), 2);
        assert_eq!(r.sent_words(), 4);
        let tl = l.take_timeline();
        assert_eq!(tl.len(), 1, "barriers stay off the counter track");
        assert_eq!(tl[0].words, 4);
    }

    #[test]
    fn report_json_is_deterministic_and_parses_back() {
        let mut l = CommLedger::new(false);
        l.charge_send("fact", CommClass::LPanel, GridAxis::X, 1, 64, 48, 0.25);
        l.set_level(1);
        l.charge_send("reduce", CommClass::ZReduction, GridAxis::Z, 2, 32, 16, 0.5);
        l.charge_recv(2, 32);
        let doc = commvol_json(&[l.report()]);
        let text = doc.dump();
        assert_eq!(Json::parse(&text).unwrap().dump(), text);
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.get("total_sent_words").unwrap().as_f64(), Some(96.0));
        assert_eq!(back.get("max_edge_words").unwrap().as_f64(), Some(64.0));
        assert_eq!(back.get("edges").unwrap().as_f64(), Some(2.0));
        let lp = back.get("by_class").unwrap().get("LPanel").unwrap();
        assert_eq!(lp.get("words").unwrap().as_f64(), Some(64.0));
        assert_eq!(lp.get("waste_ratio").unwrap().as_f64(), Some(0.25));
        assert_eq!(
            back.get("by_axis").unwrap().get("z").unwrap().as_f64(),
            Some(32.0)
        );
        assert_eq!(
            back.get("by_level").unwrap().get("1").unwrap().as_f64(),
            Some(32.0)
        );
    }

    #[test]
    fn timeline_replays_to_ledger_totals() {
        let mut l = CommLedger::new(true);
        for i in 0..5u64 {
            l.charge_send(
                "fact",
                CommClass::UPanel,
                GridAxis::Y,
                1,
                8 + i,
                8,
                i as f64,
            );
        }
        let total = l.sent_words();
        let tl = l.take_timeline();
        assert_eq!(tl.iter().map(|e| e.words).sum::<u64>(), total);
        assert!(tl.windows(2).all(|w| w[0].t <= w[1].t));
    }
}
