//! Minimal JSON value type with a writer and a recursive-descent parser.
//!
//! The workspace builds offline (no serde), so the trace and metrics
//! exporters serialize through this module, and the test suite parses the
//! emitted files back with [`Json::parse`] to validate them structurally.
//!
//! Object keys keep insertion order, so emitted documents are byte-stable
//! for golden-file tests as long as the producer inserts deterministically.

use std::fmt::Write as _;

/// A JSON document node.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    pub fn num(v: f64) -> Json {
        Json::Num(v)
    }

    /// Object member by key (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Serialize compactly (no whitespace).
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_num(*v, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Serialize with one array element or object member per line — still
    /// deterministic, but diffable in review.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    for _ in 0..indent + 1 {
                        out.push_str("  ");
                    }
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                for _ in 0..indent {
                    out.push_str("  ");
                }
                out.push(']');
            }
            Json::Obj(members) if !members.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    for _ in 0..indent + 1 {
                        out.push_str("  ");
                    }
                    write_str(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                for _ in 0..indent {
                    out.push_str("  ");
                }
                out.push('}');
            }
            other => other.write(out),
        }
    }

    /// Parse a JSON document. Returns the value and rejects trailing junk.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(value)
    }
}

/// Integers print without a fractional part so files stay compact and
/// stable; everything else uses Rust's shortest-roundtrip formatting.
fn write_num(v: f64, out: &mut String) {
    if !v.is_finite() {
        // JSON has no Inf/NaN; null is the least-bad encoding.
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 9.0e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    let mut chars = std::str::from_utf8(&bytes[*pos..])
        .map_err(|_| "invalid utf-8".to_string())?
        .char_indices();
    loop {
        let Some((off, ch)) = chars.next() else {
            return Err("unterminated string".into());
        };
        match ch {
            '"' => {
                *pos += off + 1;
                return Ok(out);
            }
            '\\' => {
                let Some((_, esc)) = chars.next() else {
                    return Err("unterminated escape".into());
                };
                match esc {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'n' => out.push('\n'),
                    't' => out.push('\t'),
                    'r' => out.push('\r'),
                    'b' => out.push('\u{8}'),
                    'f' => out.push('\u{c}'),
                    'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let Some((_, h)) = chars.next() else {
                                return Err("truncated \\u escape".into());
                            };
                            code = code * 16 + h.to_digit(16).ok_or("bad hex in \\u escape")?;
                        }
                        // Surrogate pairs are not needed by our own output.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("unknown escape \\{other}")),
                }
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_document() {
        let doc = Json::Obj(vec![
            ("name".into(), Json::str("trace \"x\"\n")),
            ("count".into(), Json::num(42.0)),
            ("ratio".into(), Json::num(0.125)),
            ("flag".into(), Json::Bool(true)),
            ("none".into(), Json::Null),
            (
                "items".into(),
                Json::Arr(vec![Json::num(1.0), Json::num(-2.5e-3)]),
            ),
        ]);
        let text = doc.dump();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
        // Pretty form parses to the same value.
        assert_eq!(Json::parse(&doc.pretty()).unwrap(), doc);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::num(3.0).dump(), "3");
        assert_eq!(Json::num(-7.0).dump(), "-7");
        assert_eq!(Json::num(1.5).dump(), "1.5");
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2,]").is_err());
        assert!(Json::parse("true false").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn accessors_navigate() {
        let doc = Json::parse("{\"a\": {\"b\": [1, \"x\"]}}").unwrap();
        let arr = doc.get("a").unwrap().get("b").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_str(), Some("x"));
        assert!(doc.get("missing").is_none());
    }
}
