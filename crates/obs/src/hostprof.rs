//! Host-time profiler: a per-rank wall-clock ledger over a fixed phase
//! taxonomy.
//!
//! `memprof` answers "where did the bytes go" and `commvol` answers "where
//! did the words go"; this module answers "where did the *host seconds*
//! go". Algorithm layers open scoped RAII timers ([`HostScope`]) tagged
//! with a [`HostPhase`] (and optionally a supernode); the profiler keeps a
//! strict LIFO frame stack so nested scopes attribute **self time** —
//! elapsed minus time spent in children — and the per-phase totals
//! therefore partition the covered wall time with no double counting.
//! Whatever the run's measured wall clock is *not* covered by an explicit
//! scope is reported as [`HostPhase::Orchestration`], so the attribution
//! sums to 100% of the wall by construction (tests assert it).
//!
//! Frozen reports carry derived gauges against the simulator's existing
//! ledgers — host flop rate from the flop counter, host wire bandwidth
//! from the wire-volume ledger — plus a folded-stack export
//! (`rank 0;gemm 12345` lines) that `inferno`/`flamegraph.pl` render
//! directly.
//!
//! Unlike the simulated-time ledgers this one reads the **host** clock,
//! which is inherently nondeterministic; it therefore never touches
//! simulated time, results, or golden artifacts. Timeline events for the
//! Chrome counter tracks are stamped with the *simulated* time captured at
//! scope open, so their placement in the trace is deterministic even
//! though their values (nanoseconds) are not.

use crate::json::Json;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
// det-lint: allow(wall-clock): this module is the host-time profiler; reading the host clock is its job
use std::time::Instant;

/// What the host was doing. The taxonomy follows the hot path of the 2D
/// kernel under the 3D schedule plus the triangular solves.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HostPhase {
    /// Dense panel factorization of a diagonal supernode.
    PanelFactor,
    /// Packing panel pairs into batched GEMM operands.
    Gather,
    /// The Schur-complement GEMM itself (per-block or batched).
    Gemm,
    /// Scattering batched GEMM results back into destination blocks.
    Scatter,
    /// Forward triangular solve.
    SolveFwd,
    /// Backward triangular solve.
    SolveBwd,
    /// Blocked in a receive whose message had not yet arrived on the
    /// physical channel.
    CommWait,
    /// Everything not covered by an explicit scope: scheduling, symbolic
    /// lookups, message packing in the simulator, allocator churn. Never
    /// opened as a scope — it is the residual `wall - sum(self times)`.
    Orchestration,
}

impl HostPhase {
    /// All phases, in the fixed order used by every report and track.
    pub const ALL: [HostPhase; 8] = [
        HostPhase::PanelFactor,
        HostPhase::Gather,
        HostPhase::Gemm,
        HostPhase::Scatter,
        HostPhase::SolveFwd,
        HostPhase::SolveBwd,
        HostPhase::CommWait,
        HostPhase::Orchestration,
    ];

    /// The phases that do arithmetic — the denominator of the derived
    /// host flop rate.
    pub const COMPUTE: [HostPhase; 6] = [
        HostPhase::PanelFactor,
        HostPhase::Gather,
        HostPhase::Gemm,
        HostPhase::Scatter,
        HostPhase::SolveFwd,
        HostPhase::SolveBwd,
    ];

    pub fn as_str(self) -> &'static str {
        match self {
            HostPhase::PanelFactor => "panel-factor",
            HostPhase::Gather => "gather",
            HostPhase::Gemm => "gemm",
            HostPhase::Scatter => "scatter",
            HostPhase::SolveFwd => "solve-fwd",
            HostPhase::SolveBwd => "solve-bwd",
            HostPhase::CommWait => "comm-wait",
            HostPhase::Orchestration => "orchestration",
        }
    }
}

/// One closed scope on the host timeline: `ns` of **self** time under
/// `phase`, stamped with the simulated time at which the scope opened (so
/// Chrome counter samples land at deterministic trace positions).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HostEvent {
    /// Simulated seconds at scope open.
    pub t: f64,
    pub phase: HostPhase,
    /// Host self-time nanoseconds.
    pub ns: u64,
}

/// One open frame on the scope stack.
#[derive(Debug)]
struct Frame {
    phase: HostPhase,
    sn: Option<usize>,
    start: Instant,
    /// Total elapsed nanoseconds of already-closed child scopes.
    child_ns: u64,
    /// Simulated time at open, stamped onto the timeline event.
    t_sim: f64,
}

#[derive(Debug, Default)]
struct Inner {
    stack: Vec<Frame>,
    /// Phase path of the open stack, root first (mirror of `stack`).
    path: Vec<HostPhase>,
    /// Self-time nanoseconds per full phase path (folded stacks).
    folded: BTreeMap<Vec<HostPhase>, u64>,
    /// Self-time nanoseconds per phase, summed over paths.
    per_phase: BTreeMap<HostPhase, u64>,
    /// Self-time nanoseconds per supernode (scopes opened with one).
    per_sn: BTreeMap<usize, u64>,
    /// Per-scope timeline, recorded only when tracing.
    timeline: Option<Vec<HostEvent>>,
}

/// Per-rank host-time profiler. The owning rank thread is the only writer,
/// so the interior mutex is uncontended; `Arc` lets RAII guards outlive a
/// `&mut Rank` borrow.
#[derive(Debug)]
pub struct HostProf {
    inner: Mutex<Inner>,
}

impl HostProf {
    /// Lock the interior state, tolerating poison: a panic elsewhere on
    /// the rank thread (e.g. a failed report assertion) must not turn the
    /// RAII guard's drop into a double panic during unwind.
    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// `timeline = true` additionally records one [`HostEvent`] per closed
    /// scope for counter-track export (costs memory proportional to scope
    /// count); the phase/supernode/folded totals are always on.
    pub fn new(timeline: bool) -> Self {
        HostProf {
            inner: Mutex::new(Inner {
                timeline: if timeline { Some(Vec::new()) } else { None },
                ..Default::default()
            }),
        }
    }

    /// Open a scope. The returned guard closes it on drop; scopes must
    /// nest (LIFO), which the RAII discipline enforces. `t_sim` is the
    /// simulated clock at open, used only to place timeline samples.
    pub fn scope(self: &Arc<Self>, phase: HostPhase, sn: Option<usize>, t_sim: f64) -> HostScope {
        {
            let mut inner = self.lock();
            inner.path.push(phase);
            inner.stack.push(Frame {
                phase,
                sn,
                // det-lint: allow(wall-clock): host-time profiler scope open
                start: Instant::now(),
                child_ns: 0,
                t_sim,
            });
        }
        HostScope {
            prof: Some(Arc::clone(self)),
        }
    }

    /// Close the innermost scope (called by [`HostScope::drop`]).
    fn close_scope(&self) {
        let mut inner = self.lock();
        let frame = inner
            .stack
            .pop()
            .expect("hostprof: scope closed with empty stack");
        // det-lint: allow(wall-clock): host-time profiler scope close
        let elapsed = frame.start.elapsed().as_nanos() as u64;
        let self_ns = elapsed.saturating_sub(frame.child_ns);
        let key = inner.path.clone();
        inner.path.pop();
        *inner.folded.entry(key).or_insert(0) += self_ns;
        *inner.per_phase.entry(frame.phase).or_insert(0) += self_ns;
        if let Some(sn) = frame.sn {
            *inner.per_sn.entry(sn).or_insert(0) += self_ns;
        }
        if let Some(parent) = inner.stack.last_mut() {
            parent.child_ns += elapsed;
        }
        if let Some(tl) = &mut inner.timeline {
            tl.push(HostEvent {
                t: frame.t_sim,
                phase: frame.phase,
                ns: self_ns,
            });
        }
    }

    /// Take the recorded timeline, sorted by simulated open time (scopes
    /// close in drop order, which is non-monotone under nesting). Empty
    /// when tracing was off.
    pub fn take_timeline(&self) -> Vec<HostEvent> {
        let mut tl = self
            .inner
            .lock()
            .unwrap()
            .timeline
            .take()
            .unwrap_or_default();
        tl.sort_by(|a, b| a.t.partial_cmp(&b.t).unwrap());
        tl
    }

    /// Freeze into a report at the end of the run. `wall_secs` is the
    /// rank thread's measured wall time; `flops` and `wire_words` come
    /// from the rank's flop counter and wire ledger and feed the derived
    /// gauges. Panics if scopes are still open — an unbalanced scope is a
    /// wiring bug.
    pub fn report(&self, wall_secs: f64, flops: u64, wire_words: u64) -> HostReport {
        let inner = self.lock();
        assert!(
            inner.stack.is_empty(),
            "hostprof: report with {} scope(s) still open",
            inner.stack.len()
        );
        let mut phase_ns: Vec<(HostPhase, u64)> = HostPhase::ALL
            .iter()
            .map(|&p| (p, inner.per_phase.get(&p).copied().unwrap_or(0)))
            .collect();
        let covered_ns: u64 = phase_ns.iter().map(|&(_, ns)| ns).sum();
        let wall_ns = (wall_secs.max(0.0) * 1.0e9) as u64;
        let orch_ns = wall_ns.saturating_sub(covered_ns);
        for (p, ns) in phase_ns.iter_mut() {
            if *p == HostPhase::Orchestration {
                *ns = orch_ns;
            }
        }
        let folded = inner
            .folded
            .iter()
            .map(|(path, &ns)| {
                let s = path
                    .iter()
                    .map(|p| p.as_str())
                    .collect::<Vec<_>>()
                    .join(";");
                (s, ns)
            })
            .collect();
        HostReport {
            wall_secs,
            phase_ns,
            per_supernode_ns: inner.per_sn.iter().map(|(&sn, &ns)| (sn, ns)).collect(),
            folded,
            flops,
            wire_words,
        }
    }
}

/// RAII guard for one open [`HostProf`] scope. Obtained from
/// [`HostProf::scope`] (or [`HostScope::noop`] when profiling is off, so
/// call sites never branch).
#[must_use = "the scope closes when this guard drops"]
#[derive(Debug)]
pub struct HostScope {
    prof: Option<Arc<HostProf>>,
}

impl HostScope {
    /// A guard that does nothing — profiling disabled.
    pub fn noop() -> Self {
        HostScope { prof: None }
    }
}

impl Drop for HostScope {
    fn drop(&mut self) {
        if let Some(p) = self.prof.take() {
            p.close_scope();
        }
    }
}

/// Frozen per-rank host-time profile: self-time per phase (including the
/// [`HostPhase::Orchestration`] residual, so the entries partition the
/// wall), per-supernode attribution, folded stacks for flamegraphs, and
/// the ledger inputs for the derived gauges.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HostReport {
    /// Measured wall seconds of the rank thread.
    pub wall_secs: f64,
    /// Self-time nanoseconds per phase, in [`HostPhase::ALL`] order. The
    /// `Orchestration` entry is the residual `wall - covered`.
    pub phase_ns: Vec<(HostPhase, u64)>,
    /// Self-time nanoseconds per supernode (scopes that named one).
    pub per_supernode_ns: Vec<(usize, u64)>,
    /// Folded phase paths (`"gemm"`, `"gemm;comm-wait"`, ...) with
    /// self-time nanoseconds — `folded_stacks` prepends the rank frame.
    pub folded: Vec<(String, u64)>,
    /// Total flops the rank charged (from the simulator's flop counter).
    pub flops: u64,
    /// Total algorithmic words the rank sent (from the wire ledger).
    pub wire_words: u64,
}

impl HostReport {
    /// Self time of one phase in seconds.
    pub fn phase_secs(&self, phase: HostPhase) -> f64 {
        self.phase_ns
            .iter()
            .filter(|&&(p, _)| p == phase)
            .map(|&(_, ns)| ns as f64 * 1.0e-9)
            .sum()
    }

    /// Sum of all phase self times including the orchestration residual —
    /// equals `wall_secs` up to nanosecond rounding; tests assert it.
    pub fn attributed_secs(&self) -> f64 {
        self.phase_ns
            .iter()
            .map(|&(_, ns)| ns as f64 * 1.0e-9)
            .sum()
    }

    /// Seconds spent in compute phases (the flop-rate denominator).
    pub fn compute_secs(&self) -> f64 {
        HostPhase::COMPUTE.iter().map(|&p| self.phase_secs(p)).sum()
    }

    /// Derived host flop rate: ledger flops over compute-phase seconds
    /// (0 when no compute time was measured).
    pub fn flop_rate(&self) -> f64 {
        let s = self.compute_secs();
        if s > 0.0 {
            self.flops as f64 / s
        } else {
            0.0
        }
    }

    /// Derived host wire bandwidth in bytes/sec: ledger words × 8 over
    /// the measured wall (0 when the wall is unmeasured).
    pub fn wire_bandwidth(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.wire_words as f64 * 8.0 / self.wall_secs
        } else {
            0.0
        }
    }

    /// Folded-stack lines for flamegraph tools: one
    /// `"<root>;<phase>;... <ns>"` line per distinct path, with `root`
    /// (conventionally `"rank N"`) prepended, plus the orchestration
    /// residual as its own root-level frame.
    pub fn folded_stacks(&self, root: &str) -> String {
        let mut out = String::new();
        for (path, ns) in &self.folded {
            if *ns == 0 {
                continue;
            }
            out.push_str(&format!("{root};{path} {ns}\n"));
        }
        let orch = self
            .phase_ns
            .iter()
            .find(|&&(p, _)| p == HostPhase::Orchestration)
            .map_or(0, |&(_, ns)| ns);
        if orch > 0 {
            out.push_str(&format!(
                "{root};{} {orch}\n",
                HostPhase::Orchestration.as_str()
            ));
        }
        out
    }

    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("wall_secs".into(), Json::num(self.wall_secs)),
            (
                "phase_ns".into(),
                Json::Obj(
                    self.phase_ns
                        .iter()
                        .map(|&(p, ns)| (p.as_str().to_string(), Json::num(ns as f64)))
                        .collect(),
                ),
            ),
            (
                "per_supernode_ns".into(),
                Json::Arr(
                    self.per_supernode_ns
                        .iter()
                        .map(|&(sn, ns)| {
                            Json::Obj(vec![
                                ("sn".into(), Json::num(sn as f64)),
                                ("ns".into(), Json::num(ns as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "folded".into(),
                Json::Arr(
                    self.folded
                        .iter()
                        .map(|(path, ns)| {
                            Json::Obj(vec![
                                ("path".into(), Json::str(path.clone())),
                                ("ns".into(), Json::num(*ns as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("flops".into(), Json::num(self.flops as f64)),
            ("wire_words".into(), Json::num(self.wire_words as f64)),
            ("flop_rate".into(), Json::num(self.flop_rate())),
            ("wire_bandwidth".into(), Json::num(self.wire_bandwidth())),
        ])
    }
}

/// Machine-wide host profile document: per-rank reports plus a summary —
/// max wall, per-phase seconds summed over ranks, aggregate flop rate,
/// and the full folded-stack text ready for a flamegraph renderer.
pub fn hostprof_json(per_rank: &[HostReport]) -> Json {
    let max_wall = per_rank.iter().map(|r| r.wall_secs).fold(0.0, f64::max);
    let by_phase = Json::Obj(
        HostPhase::ALL
            .iter()
            .map(|&p| {
                let secs: f64 = per_rank.iter().map(|r| r.phase_secs(p)).sum();
                (p.as_str().to_string(), Json::num(secs))
            })
            .collect(),
    );
    let total_flops: u64 = per_rank.iter().map(|r| r.flops).sum();
    let total_compute: f64 = per_rank.iter().map(|r| r.compute_secs()).sum();
    let flop_rate = if total_compute > 0.0 {
        total_flops as f64 / total_compute
    } else {
        0.0
    };
    let mut folded = String::new();
    for (i, r) in per_rank.iter().enumerate() {
        folded.push_str(&r.folded_stacks(&format!("rank {i}")));
    }
    Json::Obj(vec![
        ("max_wall_secs".into(), Json::num(max_wall)),
        ("phase_secs".into(), by_phase),
        ("flop_rate".into(), Json::num(flop_rate)),
        ("folded_stacks".into(), Json::str(folded)),
        (
            "ranks".into(),
            Json::Arr(per_rank.iter().map(|r| r.to_json()).collect()),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin_ns(ns: u64) {
        let t0 = Instant::now();
        while (t0.elapsed().as_nanos() as u64) < ns {
            std::hint::spin_loop();
        }
    }

    #[test]
    fn self_time_excludes_children() {
        let p = Arc::new(HostProf::new(false));
        {
            let _outer = p.scope(HostPhase::Gemm, Some(3), 0.0);
            spin_ns(200_000);
            {
                let _inner = p.scope(HostPhase::CommWait, None, 0.5);
                spin_ns(200_000);
            }
            spin_ns(200_000);
        }
        let r = p.report(1.0, 0, 0);
        let gemm = r.phase_secs(HostPhase::Gemm);
        let wait = r.phase_secs(HostPhase::CommWait);
        assert!(gemm > 0.0 && wait > 0.0);
        // Gemm self time excludes the nested wait: both sides spun
        // ~400k/~200k ns, so gemm self must be well below outer elapsed
        // (600k+) and wait must hold its own share.
        assert!(wait >= 200_000.0 * 1.0e-9, "wait {wait}");
        assert!(gemm >= 400_000.0 * 1.0e-9, "gemm {gemm}");
        // Folded paths carry the nesting.
        let paths: Vec<&str> = r.folded.iter().map(|(s, _)| s.as_str()).collect();
        assert!(paths.contains(&"gemm"));
        assert!(paths.contains(&"gemm;comm-wait"));
        // Supernode attribution saw only the outer scope's self time.
        assert_eq!(r.per_supernode_ns.len(), 1);
        assert_eq!(r.per_supernode_ns[0].0, 3);
    }

    #[test]
    fn attribution_sums_to_wall_via_orchestration() {
        let p = Arc::new(HostProf::new(false));
        {
            let _g = p.scope(HostPhase::PanelFactor, None, 0.0);
            spin_ns(100_000);
        }
        let wall = 0.0123;
        let r = p.report(wall, 0, 0);
        assert!(
            (r.attributed_secs() - wall).abs() < 1e-8,
            "sum {} wall {wall}",
            r.attributed_secs()
        );
        // Residual is positive: the scope covered far less than the wall.
        assert!(r.phase_secs(HostPhase::Orchestration) > 0.0);
    }

    #[test]
    fn covered_beyond_wall_saturates_orchestration_to_zero() {
        let p = Arc::new(HostProf::new(false));
        {
            let _g = p.scope(HostPhase::Gemm, None, 0.0);
            spin_ns(1_000_000);
        }
        let r = p.report(1.0e-9, 0, 0);
        assert_eq!(r.phase_secs(HostPhase::Orchestration), 0.0);
    }

    #[test]
    fn timeline_sorted_by_sim_time_not_drop_order() {
        let p = Arc::new(HostProf::new(true));
        {
            // Outer opens at sim 1.0 but closes *after* the inner, which
            // opened at sim 2.0 — drop order is (2.0, 1.0).
            let _outer = p.scope(HostPhase::Gemm, None, 1.0);
            let _inner = p.scope(HostPhase::Gather, None, 2.0);
        }
        let tl = p.take_timeline();
        assert_eq!(tl.len(), 2);
        assert_eq!(tl[0].t, 1.0);
        assert_eq!(tl[0].phase, HostPhase::Gemm);
        assert_eq!(tl[1].t, 2.0);
        assert_eq!(tl[1].phase, HostPhase::Gather);
    }

    #[test]
    fn derived_gauges_use_ledger_inputs() {
        let p = Arc::new(HostProf::new(false));
        {
            let _g = p.scope(HostPhase::Gemm, None, 0.0);
            spin_ns(1_000_000); // ≥ 1ms of compute-phase time
        }
        let r = p.report(0.01, 2_000_000, 1_000);
        assert!(r.flop_rate() > 0.0);
        // 1000 words × 8 B over 0.01 s = 800 kB/s.
        assert!((r.wire_bandwidth() - 800_000.0).abs() < 1e-6);
        // Zero-wall guard.
        let r0 = HostReport::default();
        assert_eq!(r0.wire_bandwidth(), 0.0);
        assert_eq!(r0.flop_rate(), 0.0);
    }

    #[test]
    fn noop_scope_records_nothing() {
        let _g = HostScope::noop();
        drop(_g);
        let p = HostProf::new(false);
        let r = p.report(0.0, 0, 0);
        assert_eq!(r.folded.len(), 0);
        assert_eq!(r.per_supernode_ns.len(), 0);
    }

    #[test]
    #[should_panic(expected = "still open")]
    fn report_with_open_scope_panics() {
        let p = Arc::new(HostProf::new(false));
        let _g = p.scope(HostPhase::Gemm, None, 0.0);
        let _ = p.report(1.0, 0, 0);
    }

    #[test]
    fn folded_stacks_render_with_root_and_residual() {
        let p = Arc::new(HostProf::new(false));
        {
            let _g = p.scope(HostPhase::PanelFactor, None, 0.0);
            spin_ns(50_000);
        }
        let r = p.report(1.0, 0, 0);
        let txt = r.folded_stacks("rank 7");
        assert!(txt.contains("rank 7;panel-factor "));
        assert!(txt.contains("rank 7;orchestration "));
        for line in txt.lines() {
            let (_, ns) = line.rsplit_once(' ').unwrap();
            let _: u64 = ns.parse().unwrap();
        }
    }

    #[test]
    fn json_roundtrips_and_aggregates() {
        let p = Arc::new(HostProf::new(false));
        {
            let _g = p.scope(HostPhase::Gemm, Some(0), 0.0);
            spin_ns(50_000);
        }
        let doc = hostprof_json(&[p.report(0.5, 100, 10)]);
        let text = doc.dump();
        assert_eq!(Json::parse(&text).unwrap().dump(), text);
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.get("max_wall_secs").unwrap().as_f64(), Some(0.5));
        assert!(back.get("phase_secs").unwrap().get("gemm").is_some());
        assert!(back
            .get("folded_stacks")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("rank 0;gemm"));
    }
}
