//! Cross-crate metrics registry: counters, gauges, and log2-bucket
//! histograms, mergeable across ranks and dumpable as JSON.
//!
//! Every simulated rank owns a registry; algorithm layers record into it
//! through [`crate::span`]-agnostic names like `"gemm.flops_per_supernode"`
//! or `"msg.send_words"`. After a run the per-rank registries are merged
//! into one machine-wide view for the metrics dump.

use crate::json::Json;
use std::collections::BTreeMap;

/// Power-of-two bucketed histogram of nonnegative samples.
///
/// Bucket key `k` holds samples in `[2^k, 2^(k+1))`; key `i32::MIN` holds
/// exact zeros. Log2 bucketing matches the quantities we histogram —
/// message sizes and per-supernode flop counts spanning many decades.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Histogram {
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
    pub buckets: BTreeMap<i32, u64>,
}

impl Histogram {
    pub fn observe(&mut self, v: f64) {
        debug_assert!(v >= 0.0 && v.is_finite(), "histogram sample {v}");
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        let key = if v > 0.0 {
            v.log2().floor() as i32
        } else {
            i32::MIN
        };
        *self.buckets.entry(key).or_insert(0) += 1;
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Bucketed quantile estimate: find the bucket holding the `q`-th
    /// sample and interpolate linearly inside it, clamped to the observed
    /// [min, max]. Exact for the zero bucket; within a factor of 2
    /// otherwise, which is enough to expose tails the mean hides.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = q.clamp(0.0, 1.0) * self.count as f64;
        let mut seen = 0u64;
        for (&k, &n) in &self.buckets {
            if (seen + n) as f64 >= target {
                if k == i32::MIN {
                    return 0.0;
                }
                let lo = 2f64.powi(k);
                let hi = 2f64.powi(k + 1);
                let frac = if n == 0 {
                    0.0
                } else {
                    ((target - seen as f64) / n as f64).clamp(0.0, 1.0)
                };
                return (lo + frac * (hi - lo)).max(self.min).min(self.max);
            }
            seen += n;
        }
        self.max
    }

    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (&k, &n) in &other.buckets {
            *self.buckets.entry(k).or_insert(0) += n;
        }
    }

    fn to_json(&self) -> Json {
        let buckets = self
            .buckets
            .iter()
            .map(|(&k, &n)| {
                let lo = if k == i32::MIN {
                    "0".to_string()
                } else {
                    format!("2^{k}")
                };
                Json::Obj(vec![
                    ("ge".into(), Json::str(lo)),
                    ("count".into(), Json::num(n as f64)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("count".into(), Json::num(self.count as f64)),
            ("sum".into(), Json::num(self.sum)),
            ("min".into(), Json::num(self.min)),
            ("max".into(), Json::num(self.max)),
            ("mean".into(), Json::num(self.mean())),
            ("p50".into(), Json::num(self.quantile(0.50))),
            ("p95".into(), Json::num(self.quantile(0.95))),
            ("p99".into(), Json::num(self.quantile(0.99))),
            ("buckets".into(), Json::Arr(buckets)),
        ])
    }
}

/// Named counters, gauges, and histograms for one rank (or, after
/// [`MetricsRegistry::merge`], a whole machine).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsRegistry {
    pub counters: BTreeMap<String, u64>,
    /// Gauges keep the maximum observed value (the only reduction the
    /// stack needs: peak memory, peak queue depth, ...).
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    pub fn inc(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    pub fn gauge_max(&mut self, name: &str, v: f64) {
        let g = self.gauges.entry(name.to_string()).or_insert(f64::MIN);
        if v > *g {
            *g = v;
        }
    }

    pub fn observe(&mut self, name: &str, v: f64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .observe(v);
    }

    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Fold another registry into this one (sum counters, max gauges,
    /// merge histograms).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, &v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, &v) in &other.gauges {
            let g = self.gauges.entry(k.clone()).or_insert(f64::MIN);
            if v > *g {
                *g = v;
            }
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Deterministic JSON view (BTreeMap order).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "counters".into(),
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, &v)| (k.clone(), Json::num(v as f64)))
                        .collect(),
                ),
            ),
            (
                "gauges".into(),
                Json::Obj(
                    self.gauges
                        .iter()
                        .map(|(k, &v)| (k.clone(), Json::num(v)))
                        .collect(),
                ),
            ),
            (
                "histograms".into(),
                Json::Obj(
                    self.histograms
                        .iter()
                        .map(|(k, h)| (k.clone(), h.to_json()))
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    #[test]
    fn counters_and_gauges_accumulate() {
        let mut m = MetricsRegistry::default();
        m.inc("msgs", 2);
        m.inc("msgs", 3);
        m.gauge_max("peak", 10.0);
        m.gauge_max("peak", 4.0);
        assert_eq!(m.counter("msgs"), 5);
        assert_eq!(m.gauges["peak"], 10.0);
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let mut h = Histogram::default();
        for v in [0.0, 1.0, 1.5, 2.0, 1000.0] {
            h.observe(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.min, 0.0);
        assert_eq!(h.max, 1000.0);
        assert_eq!(h.buckets[&i32::MIN], 1); // the zero
        assert_eq!(h.buckets[&0], 2); // 1.0 and 1.5 in [1, 2)
        assert_eq!(h.buckets[&1], 1); // 2.0 in [2, 4)
        assert_eq!(h.buckets[&9], 1); // 1000 in [512, 1024)
    }

    #[test]
    fn quantiles_bracket_the_samples() {
        let mut h = Histogram::default();
        for v in 1..=100u32 {
            h.observe(v as f64);
        }
        let p50 = h.quantile(0.50);
        let p95 = h.quantile(0.95);
        let p99 = h.quantile(0.99);
        // Log2 buckets: estimates are within a factor of 2 of the truth.
        assert!((25.0..=100.0).contains(&p50), "p50 = {p50}");
        assert!(p50 <= p95 && p95 <= p99, "p50={p50} p95={p95} p99={p99}");
        assert!(p99 <= h.max);
        assert_eq!(h.quantile(0.0), h.min);
        assert_eq!(h.quantile(1.0), h.max);
        // All-zero histogram quantiles are exactly zero.
        let mut z = Histogram::default();
        z.observe(0.0);
        z.observe(0.0);
        assert_eq!(z.quantile(0.99), 0.0);
        // Empty histogram is defined as 0.
        assert_eq!(Histogram::default().quantile(0.5), 0.0);
    }

    #[test]
    fn merge_is_a_sum() {
        let mut a = MetricsRegistry::default();
        a.inc("n", 1);
        a.observe("sz", 8.0);
        a.gauge_max("g", 1.0);
        let mut b = MetricsRegistry::default();
        b.inc("n", 2);
        b.observe("sz", 16.0);
        b.gauge_max("g", 5.0);
        a.merge(&b);
        assert_eq!(a.counter("n"), 3);
        assert_eq!(a.histogram("sz").unwrap().count, 2);
        assert_eq!(a.histogram("sz").unwrap().sum, 24.0);
        assert_eq!(a.gauges["g"], 5.0);
    }

    #[test]
    fn json_dump_parses_back() {
        let mut m = MetricsRegistry::default();
        m.inc("a.count", 7);
        m.observe("b.hist", 12.0);
        m.gauge_max("c.gauge", 2.5);
        let doc = Json::parse(&m.to_json().dump()).unwrap();
        assert_eq!(
            doc.get("counters")
                .unwrap()
                .get("a.count")
                .unwrap()
                .as_f64(),
            Some(7.0)
        );
        let h = doc.get("histograms").unwrap().get("b.hist").unwrap();
        assert_eq!(h.get("count").unwrap().as_f64(), Some(1.0));
        assert_eq!(h.get("mean").unwrap().as_f64(), Some(12.0));
    }
}
