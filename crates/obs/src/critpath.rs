//! Critical-path extraction over the send→recv dependency graph.
//!
//! Walks backward from the rank that finishes last. Local activities
//! (compute, send, transfer) extend the chain on the same rank; a receive
//! that was *arrival-bound* — the receiver became ready exactly when the
//! message arrived — hops to the sender's timeline at the moment the send
//! completed, because the sender, not the receiver, determined that
//! instant. The resulting segments tile `[0, makespan]` exactly, so the
//! per-phase attribution percentages sum to 100% of the makespan.

use crate::span::{ActivityKind, RankObs};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Attribution bucket of one segment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SegKind {
    /// Floating-point work.
    Comp,
    /// Transfer charges (send or receive side).
    Comm,
    /// Blocked waiting (rare on the path; usually replaced by a hop).
    Wait,
    /// No recorded activity: before a rank's first event or between
    /// events.
    Idle,
}

impl SegKind {
    pub fn as_str(self) -> &'static str {
        match self {
            SegKind::Comp => "comp",
            SegKind::Comm => "comm",
            SegKind::Wait => "wait",
            SegKind::Idle => "idle",
        }
    }
}

/// One maximal interval of the critical path on a single rank.
#[derive(Clone, Debug)]
pub struct CritSegment {
    pub rank: usize,
    pub start: f64,
    pub end: f64,
    /// Phase label (nearest enclosing `Phase` span), `"idle"`, or
    /// `"(untracked)"` for activity outside any phase span.
    pub label: String,
    pub kind: SegKind,
}

impl CritSegment {
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// The makespan-determining chain of a finished run.
#[derive(Clone, Debug, Default)]
pub struct CriticalPath {
    pub makespan: f64,
    /// Segments in chronological order, tiling `[0, makespan]`.
    pub segments: Vec<CritSegment>,
    /// Number of times the path hopped between ranks.
    pub rank_hops: usize,
}

const EPS: f64 = 1e-12;

impl CriticalPath {
    /// Extract the critical path of a traced run. Returns an empty path
    /// when no simulated time elapsed (e.g. `TimeModel::zero`).
    pub fn analyze(obs: &[RankObs]) -> CriticalPath {
        let makespan = obs.iter().map(|r| r.end_time()).fold(0.0f64, f64::max);
        if makespan <= 0.0 || obs.is_empty() {
            return CriticalPath::default();
        }
        // Message uid -> (rank, activity index) of the Send.
        let mut sends: BTreeMap<u64, (usize, usize)> = BTreeMap::new();
        let mut total_acts = 0usize;
        for (ri, r) in obs.iter().enumerate() {
            total_acts += r.activities.len();
            for (ai, a) in r.activities.iter().enumerate() {
                if a.kind == ActivityKind::Send {
                    if let Some(uid) = a.msg_uid() {
                        sends.insert(uid, (ri, ai));
                    }
                }
            }
        }

        let mut cur_rank = obs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.end_time().partial_cmp(&b.1.end_time()).unwrap())
            .map(|(i, _)| i)
            .unwrap_or(0);
        let mut cur_t = makespan;
        let mut segments: Vec<CritSegment> = Vec::new();
        let mut rank_hops = 0usize;
        let mut guard = 4 * total_acts + 64;

        while cur_t > EPS && guard > 0 {
            guard -= 1;
            let acts = &obs[cur_rank].activities;
            // Last activity starting strictly before cur_t.
            let idx = acts.partition_point(|a| a.start < cur_t - EPS);
            if idx == 0 {
                segments.push(CritSegment {
                    rank: cur_rank,
                    start: 0.0,
                    end: cur_t,
                    label: "idle".into(),
                    kind: SegKind::Idle,
                });
                cur_t = 0.0;
                break;
            }
            let a = acts[idx - 1];
            if a.end < cur_t - EPS {
                segments.push(CritSegment {
                    rank: cur_rank,
                    start: a.end,
                    end: cur_t,
                    label: "idle".into(),
                    kind: SegKind::Idle,
                });
                cur_t = a.end;
                continue;
            }
            let label = obs[cur_rank]
                .phase_of(a.span)
                .unwrap_or("(untracked)")
                .to_string();
            let seg_start = a.start.min(cur_t);
            let kind = match a.kind {
                ActivityKind::Compute => SegKind::Comp,
                ActivityKind::Send | ActivityKind::Recv => SegKind::Comm,
                ActivityKind::Wait => SegKind::Wait,
            };
            segments.push(CritSegment {
                rank: cur_rank,
                start: seg_start,
                end: cur_t,
                label,
                kind,
            });
            cur_t = seg_start;
            // Arrival-bound receive: the receiver became ready exactly when
            // the message landed, so the chain continues on the sender.
            if a.kind == ActivityKind::Recv {
                if let Some((srank, sidx)) = a.msg_uid().and_then(|u| sends.get(&u)).copied() {
                    let s_end = obs[srank].activities[sidx].end;
                    if (s_end - a.start).abs() <= EPS * (1.0 + s_end.abs()) && srank != cur_rank {
                        cur_rank = srank;
                        rank_hops += 1;
                    }
                }
            }
        }
        if cur_t > EPS {
            // Guard tripped (pathological tie loop); close the tiling.
            segments.push(CritSegment {
                rank: cur_rank,
                start: 0.0,
                end: cur_t,
                label: "idle".into(),
                kind: SegKind::Idle,
            });
        }
        segments.reverse();
        CriticalPath {
            makespan,
            segments,
            rank_hops,
        }
    }

    /// Seconds attributed to each phase label. Keys are phase names plus
    /// `"idle"` / `"(untracked)"`. Values sum to the makespan.
    pub fn attribution(&self) -> BTreeMap<String, f64> {
        let mut by_label: BTreeMap<String, f64> = BTreeMap::new();
        for s in &self.segments {
            *by_label.entry(s.label.clone()).or_insert(0.0) += s.duration();
        }
        by_label
    }

    /// Fraction of the makespan attributed to each phase label (sums to 1).
    pub fn attribution_fractions(&self) -> BTreeMap<String, f64> {
        if self.makespan <= 0.0 {
            return BTreeMap::new();
        }
        self.attribution()
            .into_iter()
            .map(|(k, v)| (k, v / self.makespan))
            .collect()
    }

    /// Seconds attributed to each activity kind.
    pub fn kind_attribution(&self) -> BTreeMap<&'static str, f64> {
        let mut by_kind: BTreeMap<&'static str, f64> = BTreeMap::new();
        for s in &self.segments {
            *by_kind.entry(s.kind.as_str()).or_insert(0.0) += s.duration();
        }
        by_kind
    }

    /// Fraction of the makespan the segments cover (1.0 when the walk
    /// tiled cleanly).
    pub fn coverage(&self) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        self.segments.iter().map(|s| s.duration()).sum::<f64>() / self.makespan
    }

    /// Human-readable two-line attribution report.
    pub fn render(&self) -> String {
        if self.makespan <= 0.0 {
            return "critical path: (no simulated time elapsed)\n".to_string();
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "critical path: makespan {:.6}s, {} segments, {} rank hops",
            self.makespan,
            self.segments.len(),
            self.rank_hops
        );
        let fmt_map = |items: Vec<(String, f64)>| {
            items
                .into_iter()
                .map(|(k, v)| format!("{k} {:.1}%", 100.0 * v / self.makespan))
                .collect::<Vec<_>>()
                .join(" | ")
        };
        let _ = writeln!(
            out,
            "  by phase: {}",
            fmt_map(self.attribution().into_iter().collect())
        );
        let _ = writeln!(
            out,
            "  by kind:  {}",
            fmt_map(
                self.kind_attribution()
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect()
            )
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::MsgInfo;

    fn mi(uid: u64) -> Option<MsgInfo> {
        Some(MsgInfo {
            uid,
            ctx: 0,
            tag: 1,
        })
    }
    use crate::span::{ActivityKind, Recorder, SpanCat};

    /// r0: compute [0,2], send [2,2.5] (uid 7). r1: wait [0,2.5],
    /// recv [2.5,3]. The path must hop from r1's receive to r0.
    fn arrival_bound_pair() -> Vec<RankObs> {
        let mut r0 = Recorder::new(0);
        let ph = r0.enter(SpanCat::Phase, "fact", 0.0);
        r0.activity(ActivityKind::Compute, 0.0, 2.0, None, 0, None);
        r0.activity(ActivityKind::Send, 2.0, 2.5, Some(1), 16, mi(7));
        r0.exit(ph, 2.5);
        let mut r1 = Recorder::new(1);
        let ph1 = r1.enter(SpanCat::Phase, "fact", 0.0);
        r1.activity(ActivityKind::Wait, 0.0, 2.5, Some(0), 0, None);
        r1.activity(ActivityKind::Recv, 2.5, 3.0, Some(0), 16, mi(7));
        r1.exit(ph1, 3.0);
        vec![r0.finish(2.5), r1.finish(3.0)]
    }

    #[test]
    fn path_hops_through_arrival_bound_recv() {
        let cp = CriticalPath::analyze(&arrival_bound_pair());
        assert_eq!(cp.makespan, 3.0);
        assert_eq!(cp.rank_hops, 1);
        // Tiles [0, 3]: compute[r0 0-2], send[r0 2-2.5], recv[r1 2.5-3].
        assert_eq!(cp.segments.len(), 3);
        assert!((cp.coverage() - 1.0).abs() < 1e-12);
        assert_eq!(cp.segments[0].rank, 0);
        assert_eq!(cp.segments[2].rank, 1);
        // The receiver's wait is NOT on the path — the sender's work is.
        assert!(cp.segments.iter().all(|s| s.kind != SegKind::Wait));
        let frac = cp.attribution_fractions();
        assert!((frac["fact"] - 1.0).abs() < 1e-12);
        let kinds = cp.kind_attribution();
        assert!((kinds["comp"] - 2.0).abs() < 1e-12);
        assert!((kinds["comm"] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn self_bound_recv_stays_local() {
        // r1 computes past the arrival; the path never leaves r1.
        let mut r0 = Recorder::new(0);
        r0.activity(ActivityKind::Send, 0.0, 0.5, Some(1), 8, mi(9));
        let mut r1 = Recorder::new(1);
        let ph = r1.enter(SpanCat::Phase, "solve", 0.0);
        r1.activity(ActivityKind::Compute, 0.0, 4.0, None, 0, None);
        r1.activity(ActivityKind::Recv, 4.0, 4.5, Some(0), 8, mi(9));
        r1.exit(ph, 4.5);
        let cp = CriticalPath::analyze(&[r0.finish(0.5), r1.finish(4.5)]);
        assert_eq!(cp.rank_hops, 0);
        assert!(cp.segments.iter().all(|s| s.rank == 1));
        assert!((cp.coverage() - 1.0).abs() < 1e-12);
        let frac = cp.attribution_fractions();
        assert!((frac["solve"] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gaps_become_idle_segments() {
        let mut r0 = Recorder::new(0);
        r0.activity(ActivityKind::Compute, 1.0, 2.0, None, 0, None);
        let cp = CriticalPath::analyze(&[r0.finish(2.0)]);
        assert_eq!(cp.segments.len(), 2);
        assert_eq!(cp.segments[0].kind, SegKind::Idle);
        assert_eq!(cp.segments[0].label, "idle");
        assert!((cp.coverage() - 1.0).abs() < 1e-12);
        // Untracked compute gets its own label.
        assert_eq!(cp.segments[1].label, "(untracked)");
    }

    #[test]
    fn empty_run_yields_empty_path() {
        let cp = CriticalPath::analyze(&[Recorder::new(0).finish(0.0)]);
        assert_eq!(cp.makespan, 0.0);
        assert!(cp.segments.is_empty());
        assert!(cp.render().contains("no simulated time"));
    }

    #[test]
    fn render_reports_percentages() {
        let cp = CriticalPath::analyze(&arrival_bound_pair());
        let text = cp.render();
        assert!(text.contains("by phase"), "{text}");
        assert!(text.contains("fact 100.0%"), "{text}");
        assert!(text.contains("1 rank hops"), "{text}");
    }
}
