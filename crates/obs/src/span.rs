//! Hierarchical spans and low-level activities in simulated time.
//!
//! A rank's timeline has two layers:
//!
//! - **Spans** are nested, labeled intervals opened and closed by the
//!   algorithm code: elimination-tree level → phase (`fact`/`reduce`/
//!   `solve`) → per-supernode step → collective. They carry *structure*.
//! - **Activities** are the machine-level intervals the simulator charges
//!   time for — compute, send, receive, blocking wait. Each activity
//!   remembers the innermost span it ran under, which is how traffic and
//!   time roll up to phases.
//!
//! Point-to-point activities also carry a machine-unique message id so the
//! Chrome exporter can draw send→recv flow arrows and the critical-path
//! analyzer can hop from a blocked receive to the sender's timeline.

/// Index of a span within one rank's [`RankObs::spans`].
pub type SpanId = usize;

/// Structural category of a span; becomes the `cat` field in Chrome traces.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanCat {
    /// One elimination-forest level of the 3D schedule.
    Level,
    /// An algorithm phase: `fact`, `reduce`, or `solve`.
    Phase,
    /// One supernode step (panel factorization or Schur update).
    Node,
    /// A collective operation (broadcast, reduction, barrier, gather).
    Coll,
    /// A fault-injection event (retransmit burst, stall window) from
    /// `simgrid::faultlab`, so chaos runs show their injected/recovered
    /// events directly in the Chrome trace.
    Fault,
    /// Anything else.
    Other,
}

impl SpanCat {
    pub fn as_str(self) -> &'static str {
        match self {
            SpanCat::Level => "level",
            SpanCat::Phase => "phase",
            SpanCat::Node => "node",
            SpanCat::Coll => "coll",
            SpanCat::Fault => "fault",
            SpanCat::Other => "other",
        }
    }
}

/// One closed span on one rank's timeline.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    pub id: SpanId,
    /// Enclosing span, if any.
    pub parent: Option<SpanId>,
    pub name: String,
    pub cat: SpanCat,
    /// Simulated seconds.
    pub start: f64,
    pub end: f64,
    /// Nesting depth: 0 for top-level spans.
    pub depth: usize,
}

/// What the machine was charging time for during one activity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ActivityKind {
    Compute,
    Send,
    Recv,
    /// Blocked waiting for a message that had not yet arrived.
    Wait,
}

impl ActivityKind {
    pub fn as_str(self) -> &'static str {
        match self {
            ActivityKind::Compute => "compute",
            ActivityKind::Send => "send",
            ActivityKind::Recv => "recv",
            ActivityKind::Wait => "wait",
        }
    }

    /// Glyph used by the text Gantt renderer.
    pub fn glyph(self) -> char {
        match self {
            ActivityKind::Compute => '#',
            ActivityKind::Send => '>',
            ActivityKind::Recv => '<',
            ActivityKind::Wait => '.',
        }
    }
}

/// Identity of the message behind a point-to-point activity: the
/// machine-unique id linking a Send to its Recv, plus the communicator
/// context and tag the message was matched under. The offline trace
/// linter (`commcheck`) reconstructs send↔recv pairing and per-`(ctx,
/// tag)` FIFO order from these fields.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MsgInfo {
    pub uid: u64,
    pub ctx: u64,
    pub tag: u64,
}

/// One machine-level interval of simulated time.
#[derive(Clone, Copy, Debug)]
pub struct Activity {
    pub kind: ActivityKind,
    pub start: f64,
    pub end: f64,
    /// Innermost span open when the activity was charged.
    pub span: Option<SpanId>,
    /// World rank of the communication peer (Send: destination,
    /// Recv/Wait: source).
    pub peer: Option<usize>,
    /// Payload size in 8-byte words (communication activities).
    pub words: u64,
    /// Message identity linking a Send to its Recv (uid + ctx + tag).
    pub msg: Option<MsgInfo>,
}

impl Activity {
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }

    /// Machine-unique message id, when this is a point-to-point activity.
    pub fn msg_uid(&self) -> Option<u64> {
        self.msg.map(|m| m.uid)
    }
}

/// Everything one rank observed during a traced run.
#[derive(Clone, Debug, Default)]
pub struct RankObs {
    pub rank: usize,
    /// All spans, closed, in creation order (so `id` indexes this vec).
    pub spans: Vec<SpanRecord>,
    /// All activities in chronological order.
    pub activities: Vec<Activity>,
    /// Memory ledger events in chronological order (empty unless the run
    /// recorded a [`crate::memprof::MemLedger`] timeline); the Chrome
    /// exporter turns these into `"ph":"C"` counter tracks.
    pub mem: Vec<crate::memprof::MemEvent>,
    /// Wire-volume ledger events in chronological order (empty unless the
    /// run recorded a [`crate::commvol::CommLedger`] timeline); exported
    /// as cumulative per-class counter tracks beside the memory curves.
    pub comm: Vec<crate::commvol::CommEvent>,
    /// Host-profiler scope events sorted by simulated open time (empty
    /// unless the run recorded a [`crate::hostprof::HostProf`] timeline);
    /// exported as cumulative per-phase host-nanosecond counter tracks.
    pub host: Vec<crate::hostprof::HostEvent>,
}

impl RankObs {
    /// Simulated time of the last recorded interval on this rank.
    pub fn end_time(&self) -> f64 {
        let a = self.activities.last().map_or(0.0, |a| a.end);
        let s = self.spans.iter().map(|s| s.end).fold(0.0, f64::max);
        a.max(s)
    }

    /// Name of the nearest enclosing `Phase` span of `span`, walking up
    /// the parent chain.
    pub fn phase_of(&self, span: Option<SpanId>) -> Option<&str> {
        let mut cur = span;
        while let Some(id) = cur {
            let s = self.spans.get(id)?;
            if s.cat == SpanCat::Phase {
                return Some(&s.name);
            }
            cur = s.parent;
        }
        None
    }

    /// Maximum span nesting depth (+1 per level; 0 when no spans).
    pub fn max_span_depth(&self) -> usize {
        self.spans.iter().map(|s| s.depth + 1).max().unwrap_or(0)
    }
}

/// Builder collecting spans and activities for one rank as simulated time
/// advances. The simulator owns one per traced rank.
#[derive(Debug, Default)]
pub struct Recorder {
    rank: usize,
    spans: Vec<SpanRecord>,
    /// Open spans, outermost first.
    stack: Vec<SpanId>,
    activities: Vec<Activity>,
}

impl Recorder {
    pub fn new(rank: usize) -> Self {
        Recorder {
            rank,
            ..Default::default()
        }
    }

    /// Open a span at simulated time `t`; returns its id for `exit`.
    pub fn enter(&mut self, cat: SpanCat, name: &str, t: f64) -> SpanId {
        let id = self.spans.len();
        self.spans.push(SpanRecord {
            id,
            parent: self.stack.last().copied(),
            name: name.to_string(),
            cat,
            start: t,
            end: t,
            depth: self.stack.len(),
        });
        self.stack.push(id);
        id
    }

    /// Close span `id` at time `t`. Any spans opened inside it and still
    /// open are closed too, so a forgotten inner `exit` cannot corrupt the
    /// nesting. Closing a span that is not open is a no-op.
    pub fn exit(&mut self, id: SpanId, t: f64) {
        let Some(pos) = self.stack.iter().rposition(|&s| s == id) else {
            return;
        };
        for &open in &self.stack[pos..] {
            self.spans[open].end = t;
        }
        self.stack.truncate(pos);
    }

    /// Innermost open span.
    pub fn current(&self) -> Option<SpanId> {
        self.stack.last().copied()
    }

    /// Is `id` still open?
    pub fn is_open(&self, id: SpanId) -> bool {
        self.stack.contains(&id)
    }

    /// Record one activity, tagged with the innermost open span.
    /// Contiguous same-kind activities under the same span with no message
    /// id merge into one record, which keeps long compute stretches from
    /// bloating the store.
    pub fn activity(
        &mut self,
        kind: ActivityKind,
        start: f64,
        end: f64,
        peer: Option<usize>,
        words: u64,
        msg: Option<MsgInfo>,
    ) {
        if end <= start {
            return;
        }
        let span = self.current();
        if msg.is_none() {
            if let Some(last) = self.activities.last_mut() {
                if last.kind == kind
                    && last.span == span
                    && last.msg.is_none()
                    && last.peer == peer
                    && (start - last.end).abs() < 1e-15
                {
                    last.end = end;
                    last.words += words;
                    return;
                }
            }
        }
        self.activities.push(Activity {
            kind,
            start,
            end,
            span,
            peer,
            words,
            msg,
        });
    }

    /// Close every open span at time `t` and produce the final store.
    pub fn finish(mut self, t: f64) -> RankObs {
        while let Some(&top) = self.stack.last() {
            self.exit(top, t);
        }
        RankObs {
            rank: self.rank,
            spans: self.spans,
            activities: self.activities,
            mem: Vec::new(),
            comm: Vec::new(),
            host: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_close_in_order() {
        let mut r = Recorder::new(0);
        let outer = r.enter(SpanCat::Level, "level1", 0.0);
        let mid = r.enter(SpanCat::Phase, "fact", 1.0);
        let inner = r.enter(SpanCat::Node, "sn0", 2.0);
        assert_eq!(r.current(), Some(inner));
        r.exit(inner, 3.0);
        r.exit(mid, 4.0);
        r.exit(outer, 5.0);
        let obs = r.finish(5.0);
        assert_eq!(obs.spans.len(), 3);
        assert_eq!(obs.spans[0].depth, 0);
        assert_eq!(obs.spans[1].depth, 1);
        assert_eq!(obs.spans[2].depth, 2);
        assert_eq!(obs.spans[2].parent, Some(mid));
        assert_eq!(obs.spans[1].parent, Some(outer));
        assert_eq!(obs.max_span_depth(), 3);
    }

    #[test]
    fn exiting_outer_span_closes_inner_spans() {
        let mut r = Recorder::new(0);
        let outer = r.enter(SpanCat::Level, "level0", 0.0);
        let inner = r.enter(SpanCat::Phase, "fact", 1.0);
        r.exit(outer, 7.0);
        assert!(!r.is_open(inner));
        assert!(r.current().is_none());
        let obs = r.finish(9.0);
        assert_eq!(obs.spans[inner].end, 7.0);
        assert_eq!(obs.spans[outer].end, 7.0);
    }

    #[test]
    fn phase_lookup_walks_ancestors() {
        let mut r = Recorder::new(0);
        r.enter(SpanCat::Level, "level2", 0.0);
        let phase = r.enter(SpanCat::Phase, "reduce", 0.0);
        r.enter(SpanCat::Node, "sn3", 0.0);
        r.activity(ActivityKind::Compute, 0.0, 1.0, None, 0, None);
        let obs = r.finish(1.0);
        let act = obs.activities[0];
        assert_eq!(act.span, Some(phase + 1));
        assert_eq!(obs.phase_of(act.span), Some("reduce"));
        assert_eq!(obs.phase_of(None), None);
    }

    #[test]
    fn contiguous_activities_merge_within_a_span() {
        let mut r = Recorder::new(0);
        r.enter(SpanCat::Phase, "fact", 0.0);
        for i in 0..10 {
            r.activity(
                ActivityKind::Compute,
                i as f64,
                i as f64 + 1.0,
                None,
                0,
                None,
            );
        }
        // A send never merges (it must keep its msg uid).
        r.activity(
            ActivityKind::Send,
            10.0,
            11.0,
            Some(1),
            8,
            Some(MsgInfo {
                uid: 42,
                ctx: 0,
                tag: 1,
            }),
        );
        r.activity(
            ActivityKind::Send,
            11.0,
            12.0,
            Some(1),
            8,
            Some(MsgInfo {
                uid: 43,
                ctx: 0,
                tag: 1,
            }),
        );
        let obs = r.finish(12.0);
        assert_eq!(obs.activities.len(), 3);
        assert_eq!(obs.activities[0].duration(), 10.0);
        assert_eq!(obs.activities[1].msg_uid(), Some(42));
    }

    #[test]
    fn merge_stops_at_span_boundary() {
        let mut r = Recorder::new(0);
        let a = r.enter(SpanCat::Node, "sn0", 0.0);
        r.activity(ActivityKind::Compute, 0.0, 1.0, None, 0, None);
        r.exit(a, 1.0);
        r.enter(SpanCat::Node, "sn1", 1.0);
        r.activity(ActivityKind::Compute, 1.0, 2.0, None, 0, None);
        let obs = r.finish(2.0);
        assert_eq!(obs.activities.len(), 2, "merge must not cross spans");
    }
}
