//! Memory profiler: a per-rank, simulated-time allocation ledger.
//!
//! Every buffer the stack allocates is tagged with a [`MemClass`] and
//! charged/credited against the rank's [`MemLedger`] at the simulated time
//! of the allocation. The ledger keeps running balances per
//! `(class, tree level)`, the high-water mark, and — crucially — a
//! snapshot of the balances *at the peak instant*, so peak attribution
//! sums to 100% of the peak by construction.
//!
//! When tracing is on the ledger additionally records every charge/credit
//! as a [`MemEvent`]; the Chrome exporter turns that timeline into
//! `"ph":"C"` counter tracks that render as stacked memory curves beside
//! the span Gantt in Perfetto.
//!
//! Like the rest of this crate, the module is a leaf: the simulator wires
//! the ledger into its `Rank`, the algorithm layers pick the classes, and
//! everything here just does deterministic arithmetic.

use crate::json::Json;
use std::collections::BTreeMap;

/// What a tracked buffer holds. The taxonomy follows the memory story of
/// the paper: 2D panels, the Pz-replicated ancestor copies that buy the
/// communication reduction, transient Schur-update panels, bytes parked in
/// the simulated network, and symbolic bookkeeping.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MemClass {
    /// Blocks of the L factor on or below the diagonal of a leaf-owned
    /// supernode column.
    LPanel,
    /// Blocks of the U factor right of the diagonal.
    UPanel,
    /// Blocks of an ancestor supernode replicated onto this rank's grid
    /// layer (the Pz copies of §IV; released after ancestor-reduction).
    AncestorReplica,
    /// Transient panel buffers held for a pending Schur-complement update
    /// (the lookahead window in the 2D kernel).
    SchurBuf,
    /// Message bytes that have arrived at this rank but have not yet been
    /// consumed by a receive — buffer bloat at the destination.
    MsgInFlight,
    /// Symbolic metadata: block keys, headers, and index maps.
    SymbolicMeta,
}

impl MemClass {
    /// All classes, in the fixed order used by every report and track.
    pub const ALL: [MemClass; 6] = [
        MemClass::LPanel,
        MemClass::UPanel,
        MemClass::AncestorReplica,
        MemClass::SchurBuf,
        MemClass::MsgInFlight,
        MemClass::SymbolicMeta,
    ];

    pub fn as_str(self) -> &'static str {
        match self {
            MemClass::LPanel => "LPanel",
            MemClass::UPanel => "UPanel",
            MemClass::AncestorReplica => "AncestorReplica",
            MemClass::SchurBuf => "SchurBuf",
            MemClass::MsgInFlight => "MsgInFlight",
            MemClass::SymbolicMeta => "SymbolicMeta",
        }
    }
}

/// One charge (`delta > 0`) or credit (`delta < 0`) on the timeline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MemEvent {
    /// Simulated seconds.
    pub t: f64,
    pub class: MemClass,
    /// Elimination-tree level the rank was working at (0 for 2D runs).
    pub level: u32,
    /// Signed byte delta.
    pub delta: i64,
}

/// Running balances, high-water mark, and peak-instant attribution for
/// one rank.
#[derive(Clone, Debug, Default)]
pub struct MemLedger {
    /// Current balance per (class, tree level), in bytes. Zero entries are
    /// removed so iteration only sees live classes.
    cur: BTreeMap<(MemClass, u32), u64>,
    total: u64,
    peak: u64,
    peak_t: f64,
    /// Snapshot of `cur` at the instant `peak` was set.
    peak_by: BTreeMap<(MemClass, u32), u64>,
    /// Current tree level; stamped onto charges (credits look up the
    /// level a balance was charged under).
    level: u32,
    /// Per-event timeline, recorded only when tracing.
    timeline: Option<Vec<MemEvent>>,
}

impl MemLedger {
    /// `timeline = true` records every event for counter-track export
    /// (costs memory proportional to allocation count); balances and peak
    /// attribution are always on.
    pub fn new(timeline: bool) -> Self {
        MemLedger {
            timeline: if timeline { Some(Vec::new()) } else { None },
            ..Default::default()
        }
    }

    /// Set the elimination-tree level subsequent charges are attributed
    /// to. The 3D driver calls this once per level loop; 2D runs stay at
    /// the default level 0.
    pub fn set_level(&mut self, level: u32) {
        self.level = level;
    }

    pub fn level(&self) -> u32 {
        self.level
    }

    /// Charge `bytes` of `class` at simulated time `t`, attributed to the
    /// current tree level.
    pub fn charge(&mut self, class: MemClass, bytes: u64, t: f64) {
        self.charge_at(class, self.level, bytes, t)
    }

    /// Charge against an explicit level (used when the allocation's level
    /// is known statically, e.g. ancestor replicas at store build).
    pub fn charge_at(&mut self, class: MemClass, level: u32, bytes: u64, t: f64) {
        if bytes == 0 {
            return;
        }
        *self.cur.entry((class, level)).or_insert(0) += bytes;
        self.total += bytes;
        if self.total > self.peak {
            self.peak = self.total;
            self.peak_t = t;
            self.peak_by = self.cur.clone();
        }
        if let Some(tl) = &mut self.timeline {
            tl.push(MemEvent {
                t,
                class,
                level,
                delta: bytes as i64,
            });
        }
    }

    /// Credit (free) `bytes` of `class` at time `t` against the current
    /// tree level. Panics if the balance would go negative — a credit
    /// without a matching charge is a wiring bug.
    pub fn credit(&mut self, class: MemClass, bytes: u64, t: f64) {
        self.credit_at(class, self.level, bytes, t)
    }

    /// Credit against an explicit level.
    pub fn credit_at(&mut self, class: MemClass, level: u32, bytes: u64, t: f64) {
        if bytes == 0 {
            return;
        }
        let bal = self.cur.get_mut(&(class, level)).unwrap_or_else(|| {
            panic!(
                "memprof: credit of {bytes} B against empty balance \
                 ({} @ level {level})",
                class.as_str()
            )
        });
        assert!(
            *bal >= bytes,
            "memprof: credit of {bytes} B exceeds balance {bal} B \
             ({} @ level {level})",
            class.as_str()
        );
        *bal -= bytes;
        if *bal == 0 {
            self.cur.remove(&(class, level));
        }
        self.total -= bytes;
        if let Some(tl) = &mut self.timeline {
            tl.push(MemEvent {
                t,
                class,
                level,
                delta: -(bytes as i64),
            });
        }
    }

    /// Current balance of one class summed over levels.
    pub fn balance(&self, class: MemClass) -> u64 {
        self.cur
            .iter()
            .filter(|((c, _), _)| *c == class)
            .map(|(_, &b)| b)
            .sum()
    }

    /// Current total across all classes.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// High-water mark in bytes.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Simulated time at which the high-water mark was set.
    pub fn peak_t(&self) -> f64 {
        self.peak_t
    }

    /// Take the recorded event timeline (empty when tracing was off).
    pub fn take_timeline(&mut self) -> Vec<MemEvent> {
        self.timeline.take().unwrap_or_default()
    }

    /// Freeze into a report. Call at the end of the run.
    pub fn report(&self) -> MemReport {
        let attr = |m: &BTreeMap<(MemClass, u32), u64>| {
            m.iter()
                .map(|(&(class, level), &bytes)| MemAttr {
                    class,
                    level,
                    bytes,
                })
                .collect::<Vec<_>>()
        };
        MemReport {
            peak_bytes: self.peak,
            peak_t: self.peak_t,
            peak_by: attr(&self.peak_by),
            final_bytes: self.total,
            final_by: attr(&self.cur),
        }
    }
}

/// One `(class, level)` attribution entry.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MemAttr {
    pub class: MemClass,
    pub level: u32,
    pub bytes: u64,
}

/// Frozen per-rank memory profile: the high-water mark with full
/// class+level attribution of the peak instant, plus end-of-run balances
/// (nonzero `final_bytes` means factors still resident, which is expected;
/// transient classes should have drained).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MemReport {
    pub peak_bytes: u64,
    pub peak_t: f64,
    pub peak_by: Vec<MemAttr>,
    pub final_bytes: u64,
    pub final_by: Vec<MemAttr>,
}

impl MemReport {
    /// Peak-instant bytes of one class, summed over levels.
    pub fn peak_class_bytes(&self, class: MemClass) -> u64 {
        self.peak_by
            .iter()
            .filter(|a| a.class == class)
            .map(|a| a.bytes)
            .sum()
    }

    /// Sum of the peak attribution — equals `peak_bytes` by construction;
    /// tests assert it.
    pub fn peak_attr_sum(&self) -> u64 {
        self.peak_by.iter().map(|a| a.bytes).sum()
    }

    pub fn to_json(&self) -> Json {
        let attr = |v: &[MemAttr]| {
            Json::Arr(
                v.iter()
                    .map(|a| {
                        Json::Obj(vec![
                            ("class".into(), Json::str(a.class.as_str())),
                            ("level".into(), Json::num(a.level as f64)),
                            ("bytes".into(), Json::num(a.bytes as f64)),
                        ])
                    })
                    .collect(),
            )
        };
        Json::Obj(vec![
            ("peak_bytes".into(), Json::num(self.peak_bytes as f64)),
            ("peak_t".into(), Json::num(self.peak_t)),
            ("peak_by".into(), attr(&self.peak_by)),
            ("final_bytes".into(), Json::num(self.final_bytes as f64)),
            ("final_by".into(), attr(&self.final_by)),
        ])
    }
}

/// Machine-wide memory profile document: per-rank reports plus a summary
/// (max/sum of peaks, and per-class totals taken at each rank's own peak
/// instant — "where was memory when it mattered").
pub fn memprof_json(per_rank: &[MemReport]) -> Json {
    let max_peak = per_rank.iter().map(|r| r.peak_bytes).max().unwrap_or(0);
    let sum_peak: u64 = per_rank.iter().map(|r| r.peak_bytes).sum();
    let by_class = Json::Obj(
        MemClass::ALL
            .iter()
            .map(|&c| {
                let total: u64 = per_rank.iter().map(|r| r.peak_class_bytes(c)).sum();
                (c.as_str().to_string(), Json::num(total as f64))
            })
            .collect(),
    );
    Json::Obj(vec![
        ("max_peak_bytes".into(), Json::num(max_peak as f64)),
        ("sum_peak_bytes".into(), Json::num(sum_peak as f64)),
        ("peak_by_class".into(), by_class),
        (
            "ranks".into(),
            Json::Arr(per_rank.iter().map(|r| r.to_json()).collect()),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_attribution_sums_to_peak() {
        let mut l = MemLedger::new(false);
        l.charge(MemClass::LPanel, 100, 0.0);
        l.charge(MemClass::UPanel, 50, 1.0);
        l.set_level(2);
        l.charge(MemClass::AncestorReplica, 30, 2.0); // peak = 180
        l.credit(MemClass::AncestorReplica, 30, 3.0);
        l.charge(MemClass::SchurBuf, 10, 4.0); // 160 < 180
        let r = l.report();
        assert_eq!(r.peak_bytes, 180);
        assert_eq!(r.peak_t, 2.0);
        assert_eq!(r.peak_attr_sum(), r.peak_bytes);
        assert_eq!(r.peak_class_bytes(MemClass::AncestorReplica), 30);
        assert_eq!(r.final_bytes, 160);
    }

    #[test]
    fn peak_tracks_running_max_over_timeline() {
        let mut l = MemLedger::new(true);
        let deltas: [(u64, bool); 6] = [
            (10, true),
            (5, false),
            (20, true),
            (25, false),
            (40, true),
            (40, false),
        ];
        let mut running = 0u64;
        let mut max = 0u64;
        for (i, &(b, charge)) in deltas.iter().enumerate() {
            if charge {
                l.charge(MemClass::SchurBuf, b, i as f64);
                running += b;
            } else {
                l.credit(MemClass::SchurBuf, b, i as f64);
                running -= b;
            }
            max = max.max(running);
        }
        assert_eq!(l.peak(), max);
        assert_eq!(l.total(), running);
        // Replay the timeline: peak must equal max prefix sum.
        let tl = l.take_timeline();
        assert_eq!(tl.len(), 6);
        let mut run = 0i64;
        let mut tl_max = 0i64;
        for e in &tl {
            run += e.delta;
            tl_max = tl_max.max(run);
        }
        assert_eq!(tl_max as u64, max);
    }

    #[test]
    #[should_panic(expected = "exceeds balance")]
    fn credit_beyond_balance_panics() {
        let mut l = MemLedger::new(false);
        l.charge(MemClass::LPanel, 8, 0.0);
        l.credit(MemClass::LPanel, 16, 1.0);
    }

    #[test]
    #[should_panic(expected = "empty balance")]
    fn credit_without_charge_panics() {
        let mut l = MemLedger::new(false);
        l.credit(MemClass::MsgInFlight, 1, 0.0);
    }

    #[test]
    fn levels_are_tracked_separately() {
        let mut l = MemLedger::new(false);
        l.charge_at(MemClass::AncestorReplica, 1, 100, 0.0);
        l.charge_at(MemClass::AncestorReplica, 0, 7, 0.5);
        let r = l.report();
        assert_eq!(r.peak_class_bytes(MemClass::AncestorReplica), 107);
        let lv1: Vec<_> = r.peak_by.iter().filter(|a| a.level == 1).collect();
        assert_eq!(lv1.len(), 1);
        assert_eq!(lv1[0].bytes, 100);
    }

    #[test]
    fn report_json_is_deterministic_and_parses_back() {
        let mut l = MemLedger::new(false);
        l.charge(MemClass::UPanel, 64, 0.25);
        l.charge(MemClass::SymbolicMeta, 32, 0.5);
        let doc = memprof_json(&[l.report()]);
        let text = doc.dump();
        assert_eq!(Json::parse(&text).unwrap().dump(), text);
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.get("max_peak_bytes").unwrap().as_f64(), Some(96.0));
        assert_eq!(
            back.get("peak_by_class")
                .unwrap()
                .get("UPanel")
                .unwrap()
                .as_f64(),
            Some(64.0)
        );
    }

    #[test]
    fn zero_byte_ops_are_noops() {
        let mut l = MemLedger::new(true);
        l.charge(MemClass::LPanel, 0, 0.0);
        l.credit(MemClass::LPanel, 0, 0.0);
        assert_eq!(l.total(), 0);
        assert_eq!(l.peak(), 0);
        assert!(l.take_timeline().is_empty());
    }
}
