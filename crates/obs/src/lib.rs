#![forbid(unsafe_code)]

//! Observability for the simulated 3D LU stack: hierarchical span tracing,
//! a cross-crate metrics registry, Chrome trace export, and critical-path
//! attribution.
//!
//! This crate is a leaf — it knows nothing about the simulator or the
//! factorization. The `simgrid` machine owns a [`Recorder`] per rank and
//! feeds it spans (opened by algorithm layers via `Rank` methods) and
//! activities (charged by the machine itself); everything here consumes
//! the resulting [`RankObs`] stores.
//!
//! # The pieces
//!
//! - [`span`]: nested spans (`level → phase → supernode → collective`) over
//!   simulated time, plus the machine-level activity stream.
//! - [`metrics`]: counters, max-gauges, and log2-bucket histograms,
//!   mergeable across ranks and dumpable as JSON.
//! - [`memprof`]: the tagged allocation ledger — per-rank high-water
//!   marks with class+tree-level attribution of the peak instant.
//! - [`commvol`]: the wire-volume ledger — per-rank sent/received words
//!   keyed by `(phase, class, tree level, grid axis)` and by edge, with
//!   padding-waste accounting per class.
//! - [`hostprof`]: the host-time profiler — scoped RAII wall-clock timers
//!   over a fixed phase taxonomy, with self-time attribution that sums to
//!   100% of the measured wall and folded-stack export for flamegraphs.
//! - [`chrome`]: trace-event JSON for <https://ui.perfetto.dev>, with
//!   send→recv flow arrows, and a structural validator.
//! - [`critpath`]: backward walk over the send→recv dependency graph
//!   yielding the makespan-determining chain and per-phase attribution
//!   that sums to 100% of the makespan.
//! - [`json`]: the dependency-free JSON value type the exporters use.
//!
//! # Example
//!
//! ```
//! use obs::{Recorder, SpanCat, ActivityKind, CriticalPath, chrome_trace};
//!
//! let mut rec = Recorder::new(0);
//! let phase = rec.enter(SpanCat::Phase, "fact", 0.0);
//! rec.activity(ActivityKind::Compute, 0.0, 1.0, None, 0, None);
//! rec.exit(phase, 1.0);
//! let obs = rec.finish(1.0);
//!
//! let path = CriticalPath::analyze(std::slice::from_ref(&obs));
//! assert!((path.attribution_fractions()["fact"] - 1.0).abs() < 1e-12);
//! let doc = chrome_trace(&[obs]);
//! assert!(doc.get("traceEvents").is_some());
//! ```

pub mod chrome;
pub mod commvol;
pub mod critpath;
pub mod hostprof;
pub mod json;
pub mod memprof;
pub mod metrics;
pub mod span;

pub use chrome::{chrome_trace, validate_chrome_trace, ChromeTraceStats};
pub use commvol::{
    commvol_json, CommClass, CommEntry, CommEvent, CommLedger, CommReport, EdgeVolume, GridAxis,
};
pub use critpath::{CritSegment, CriticalPath, SegKind};
pub use hostprof::{hostprof_json, HostEvent, HostPhase, HostProf, HostReport, HostScope};
pub use json::Json;
pub use memprof::{memprof_json, MemAttr, MemClass, MemEvent, MemLedger, MemReport};
pub use metrics::{Histogram, MetricsRegistry};
pub use span::{Activity, ActivityKind, MsgInfo, RankObs, Recorder, SpanCat, SpanId, SpanRecord};
