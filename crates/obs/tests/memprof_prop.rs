//! Property tests for the allocation ledger: for *any* interleaving of
//! charges and credits that never frees more than was allocated, the
//! ledger's running totals, peak, and attribution stay consistent.
//!
//! The op stream is generated from a sampled seed with a xorshift PRNG
//! (the proptest shim supplies range strategies only, no collections).

use obs::memprof::{MemClass, MemLedger};
use proptest::prelude::*;

struct Xorshift(u64);

impl Xorshift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Drive a random alloc/free stream, mirroring it in a shadow list of live
/// allocations. Frees always pick a live allocation, so the stream is
/// well-formed by construction.
fn run_stream(seed: u64, len: usize) -> (MemLedger, Vec<(MemClass, u32, u64)>) {
    let mut rng = Xorshift(seed | 1);
    let mut ledger = MemLedger::new(true);
    let mut live: Vec<(MemClass, u32, u64)> = Vec::new();
    for step in 0..len {
        let t = step as f64;
        if rng.below(3) == 0 && !live.is_empty() {
            let idx = rng.below(live.len() as u64) as usize;
            let (c, l, b) = live.remove(idx);
            ledger.credit_at(c, l, b, t);
        } else {
            let class = MemClass::ALL[rng.below(MemClass::ALL.len() as u64) as usize];
            let level = rng.below(4) as u32;
            let bytes = rng.below(10_000) + 1;
            ledger.charge_at(class, level, bytes, t);
            live.push((class, level, bytes));
        }
    }
    (ledger, live)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn ledger_invariants_hold_for_any_stream(
        seed in 0u64..1_000_000,
        len in 0usize..150,
    ) {
        let (mut ledger, live) = run_stream(seed, len);

        // 1. The running total equals the sum of per-class balances, and
        //    matches the shadow model's live bytes exactly.
        let by_class: u64 = MemClass::ALL.iter().map(|&c| ledger.balance(c)).sum();
        prop_assert_eq!(ledger.total(), by_class);
        let shadow: u64 = live.iter().map(|&(_, _, b)| b).sum();
        prop_assert_eq!(ledger.total(), shadow);

        // 2. Peak equals the max prefix sum of the recorded timeline, and
        //    is never below the final balance.
        let timeline = ledger.take_timeline();
        let mut run = 0i64;
        let mut max_run = 0i64;
        for ev in &timeline {
            run += ev.delta;
            prop_assert!(run >= 0, "running balance dipped negative");
            max_run = max_run.max(run);
        }
        prop_assert_eq!(ledger.peak(), max_run as u64);
        prop_assert!(ledger.peak() >= ledger.total());

        // 3. The peak attribution sums to exactly the peak.
        let report = ledger.report();
        prop_assert_eq!(report.peak_attr_sum(), report.peak_bytes);
        prop_assert_eq!(report.peak_bytes, max_run as u64);
    }

    #[test]
    fn draining_everything_returns_to_zero(
        seed in 0u64..1_000_000,
        len in 0usize..100,
    ) {
        let (mut ledger, live) = run_stream(seed, len);
        let mut t = 1e6;
        for (c, l, b) in live {
            t += 1.0;
            ledger.credit_at(c, l, b, t);
        }
        prop_assert_eq!(ledger.total(), 0);
        for &c in &MemClass::ALL {
            prop_assert_eq!(ledger.balance(c), 0);
        }
        // Final attribution in the report is empty; the peak survives.
        let report = ledger.report();
        prop_assert_eq!(report.final_bytes, 0);
        prop_assert!(report.final_by.is_empty());
        prop_assert_eq!(report.peak_attr_sum(), report.peak_bytes);
    }
}
