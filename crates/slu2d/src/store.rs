//! Per-rank storage of supernodal blocks, plus panel packing for messages.
//!
//! Blocks are stored as zero-padded dense panels (`n_I x n_J` for block
//! `(I, J)`), the granularity substitution documented in DESIGN.md: it
//! preserves the block sparsity, distribution, and communication pattern of
//! SuperLU_DIST while making every Schur update a plain GEMM.

use densela::Mat;
use simgrid::{Grid2d, MemClass, Payload, Rank};
use std::collections::HashMap;
use symbolic::Symbolic;

/// Bytes of symbolic bookkeeping charged to the memory ledger per stored
/// block: the `(i, j)` key, the dimension header, and the owner-map entry
/// (4 machine words).
pub const SYMBOLIC_META_BYTES: u64 = 32;

/// Which blocks a store holds values for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InitValues {
    /// Scatter the matrix values into owned blocks (normal case).
    FromMatrix,
    /// Allocate owned blocks but initialize them to zero — the replicated
    /// ancestor copies on non-primary grids in the 3D algorithm (paper
    /// §III-A: "In grid-1, we initialize the blocks of A(S) with zeros").
    Zero,
}

/// The blocks a simulated rank owns, keyed by `(block_row, block_col)`
/// supernode ids.
#[derive(Clone, Debug, Default)]
pub struct BlockStore {
    blocks: HashMap<(usize, usize), Mat>,
}

impl BlockStore {
    /// Empty store.
    pub fn new() -> Self {
        BlockStore::default()
    }

    /// Build the store for one rank of a 2D grid: allocates every block of
    /// the symbolic pattern whose supernodes pass `keep` and whose
    /// block-cyclic owner is `(my_r, my_c)`, then scatters matrix values
    /// (or zeros, per `init`).
    ///
    /// `keep(j)` selects the supernodes this grid handles — the full set in
    /// pure 2D mode, a subtree forest plus replicated ancestors in 3D mode.
    /// A block `(I, J)` is allocated when *both* endpoints are kept.
    ///
    /// `a` is the reordered, pattern-symmetric matrix (shared, read-only).
    pub fn build(
        a: &sparsemat::Csr,
        sym: &Symbolic,
        grid: &Grid2d,
        my_r: usize,
        my_c: usize,
        keep: &dyn Fn(usize) -> bool,
        init: InitValues,
    ) -> BlockStore {
        let value_pred: &dyn Fn(usize, usize) -> bool = match init {
            InitValues::FromMatrix => &|_, _| true,
            InitValues::Zero => &|_, _| false,
        };
        Self::build_with_value_pred(a, sym, grid, my_r, my_c, keep, value_pred)
    }

    /// Like [`BlockStore::build`], but with per-block control over value
    /// initialization: `value_pred(i, j)` decides whether block `(i, j)`
    /// receives the values of `A` (true) or starts at zero (false). The 3D
    /// algorithm initializes each replicated block's values on exactly one
    /// grid — the factoring grid of the deeper endpoint — and zeros
    /// elsewhere (paper §III-A).
    pub fn build_with_value_pred(
        a: &sparsemat::Csr,
        sym: &Symbolic,
        grid: &Grid2d,
        my_r: usize,
        my_c: usize,
        keep: &dyn Fn(usize) -> bool,
        value_pred: &dyn Fn(usize, usize) -> bool,
    ) -> BlockStore {
        let part = &sym.part;
        let mut blocks = HashMap::new();
        let mine = |i: usize, j: usize| grid.owner(i, j) == (my_r, my_c);

        // Allocate pattern blocks.
        for j in 0..part.nsup() {
            if !keep(j) {
                continue;
            }
            let wj = part.width(j);
            if mine(j, j) {
                blocks.insert((j, j), Mat::zeros(wj, wj));
            }
            for &i in &sym.fill.struct_of[j] {
                if !keep(i) {
                    continue;
                }
                let wi = part.width(i);
                if mine(i, j) {
                    blocks.insert((i, j), Mat::zeros(wi, wj)); // L side
                }
                if mine(j, i) {
                    blocks.insert((j, i), Mat::zeros(wj, wi)); // U side
                }
            }
        }

        // Scatter matrix values.
        for row in 0..a.nrows {
            let bi = part.sn_of_col[row];
            if !keep(bi) {
                continue;
            }
            let r_off = row - part.ranges[bi].start;
            for (col, val) in a.row_cols(row).iter().zip(a.row_vals(row)) {
                let bj = part.sn_of_col[*col];
                if !keep(bj) || !mine(bi, bj) || !value_pred(bi, bj) {
                    continue;
                }
                if let Some(m) = blocks.get_mut(&(bi, bj)) {
                    let c_off = col - part.ranges[bj].start;
                    *m.at_mut(r_off, c_off) += *val;
                }
                // Entries whose block is absent from the symbolic pattern
                // cannot exist: the pattern contains all of A.
            }
        }

        BlockStore { blocks }
    }

    /// Borrow a block.
    pub fn get(&self, i: usize, j: usize) -> Option<&Mat> {
        self.blocks.get(&(i, j))
    }

    /// Borrow a block mutably.
    pub fn get_mut(&mut self, i: usize, j: usize) -> Option<&mut Mat> {
        self.blocks.get_mut(&(i, j))
    }

    /// Insert (or replace) a block.
    pub fn insert(&mut self, i: usize, j: usize, m: Mat) {
        self.blocks.insert((i, j), m);
    }

    /// Remove a block, returning it.
    pub fn take(&mut self, i: usize, j: usize) -> Option<Mat> {
        self.blocks.remove(&(i, j))
    }

    /// Whether a block is present.
    pub fn contains(&self, i: usize, j: usize) -> bool {
        self.blocks.contains_key(&(i, j))
    }

    /// Number of stored blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True when no blocks are stored.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Total words of block storage — the per-rank memory statistic behind
    /// the paper's Fig. 11.
    pub fn total_words(&self) -> u64 {
        self.blocks
            .values()
            .map(|m| (m.rows() * m.cols()) as u64)
            .sum()
    }

    /// Iterate over `(block_row, block_col)` keys (arbitrary order).
    pub fn keys(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        // det-lint: allow(unordered): documented arbitrary order; ordered consumers sort
        self.blocks.keys().copied()
    }

    /// Charge every stored block (plus [`SYMBOLIC_META_BYTES`] of metadata
    /// each) to `rank`'s memory ledger, classifying each block with
    /// `class_of(i, j) -> (class, tree level)`. Keys are sorted so the
    /// ledger timeline is deterministic despite the hash-map backing.
    pub fn charge_to_ledger(
        &self,
        rank: &mut Rank,
        class_of: impl Fn(usize, usize) -> (MemClass, u32),
    ) {
        let mut keys: Vec<(usize, usize)> = self.keys().collect();
        keys.sort_unstable();
        for (i, j) in keys {
            let m = &self.blocks[&(i, j)];
            let (class, level) = class_of(i, j);
            rank.mem_charge_at(class, level, (m.rows() * m.cols()) as u64 * 8);
            rank.mem_charge_at(MemClass::SymbolicMeta, level, SYMBOLIC_META_BYTES);
        }
    }
}

/// Reusable per-rank scratch arena for the batched gather-GEMM-scatter
/// Schur update: one contiguous panel each for the gathered L-blocks and
/// the gathered U-panel pieces (the Schur targets are updated in place by
/// the tiled GEMM, so they need no scratch). The panels are reshaped in
/// place per supernode (keeping their allocations), and the arena's
/// high-water footprint is charged to [`MemClass::SchurBuf`] on the owning
/// rank's memory ledger — charged as it grows, credited once when the
/// factorization loop releases the arena.
#[derive(Debug)]
pub struct SchurScratch {
    /// Stacked L-blocks: `(sum of owned row widths) x width(k)`.
    pub l: Mat,
    /// Concatenated U pieces: `width(k) x (sum of owned col widths)`.
    pub u: Mat,
    /// Bytes currently charged to the ledger (the arena's high water).
    charged_bytes: u64,
}

impl Default for SchurScratch {
    fn default() -> Self {
        SchurScratch {
            l: Mat::zeros(0, 0),
            u: Mat::zeros(0, 0),
            charged_bytes: 0,
        }
    }
}

impl SchurScratch {
    pub fn new() -> Self {
        SchurScratch::default()
    }

    /// Shape the panels for one supernode's update (`m` gathered rows,
    /// supernode width `w`, `n` gathered columns), reusing prior
    /// allocations; contents are unspecified until the gathers fill them.
    /// Ledger charge grows monotonically to the arena's high water;
    /// shrinking shapes keep the charge (the backing memory stays
    /// allocated).
    pub fn shape(&mut self, rank: &mut Rank, m: usize, w: usize, n: usize) {
        // Every entry of every panel is overwritten by the gathers before
        // the GEMM reads it, so stale values need not be cleared.
        self.l.reshape_for_overwrite(m, w);
        self.u.reshape_for_overwrite(w, n);
        let bytes = 8 * (m * w + w * n) as u64;
        if bytes > self.charged_bytes {
            rank.mem_charge(MemClass::SchurBuf, bytes - self.charged_bytes);
            self.charged_bytes = bytes;
        }
    }

    /// Release the arena: credit the full high-water charge back to the
    /// ledger. Must run at the same tree level as the charges (the arena
    /// lives within one `factor_nodes` call).
    pub fn release(&mut self, rank: &mut Rank) {
        if self.charged_bytes > 0 {
            rank.mem_credit(MemClass::SchurBuf, self.charged_bytes);
            self.charged_bytes = 0;
        }
    }
}

/// Pack a list of `(block_id, Mat)` into one wire payload: the shape of a
/// SuperLU packed panel message. Meta layout: `[count, id0, rows0, cols0,
/// id1, ...]`, data: concatenated column-major buffers.
pub fn pack_blocks(items: &[(usize, &Mat)]) -> Payload {
    let mut meta = Vec::with_capacity(1 + 3 * items.len());
    meta.push(items.len());
    let mut total = 0usize;
    for (id, m) in items {
        meta.push(*id);
        meta.push(m.rows());
        meta.push(m.cols());
        total += m.rows() * m.cols();
    }
    let mut data = Vec::with_capacity(total);
    for (_, m) in items {
        data.extend_from_slice(m.as_slice());
    }
    Payload::Packed { meta, data }
}

/// Unpack a payload produced by [`pack_blocks`] into `(block_id, Mat)`
/// pairs.
pub fn unpack_blocks(payload: Payload) -> Vec<(usize, Mat)> {
    let (meta, data) = payload.into_packed();
    let count = meta[0];
    let mut out = Vec::with_capacity(count);
    let mut off = 0usize;
    for k in 0..count {
        let id = meta[1 + 3 * k];
        let rows = meta[2 + 3 * k];
        let cols = meta[3 + 3 * k];
        let len = rows * cols;
        out.push((id, Mat::from_vec(rows, cols, data[off..off + len].to_vec())));
        off += len;
    }
    debug_assert_eq!(off, data.len());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ordering::{nested_dissection, Graph, NdOptions};
    use sparsemat::matgen::grid2d_5pt;
    use sparsemat::testmats::Geometry;

    fn setup(k: usize) -> (sparsemat::Csr, Symbolic) {
        let a = grid2d_5pt(k, k, 0.1, 0);
        let g = Graph::from_matrix(&a);
        let tree = nested_dissection(
            &g,
            NdOptions {
                leaf_size: 8,
                geometry: Geometry::Grid2d { nx: k, ny: k },
                ..Default::default()
            },
        );
        let pa = a.permute_sym(&tree.perm).symmetrize_pattern();
        let sym = Symbolic::analyze(&pa, &tree, 8);
        (pa, sym)
    }

    #[test]
    fn distributed_stores_partition_all_values() {
        let (pa, sym) = setup(8);
        let grid = Grid2d::new(2, 2);
        let stores: Vec<BlockStore> = (0..4)
            .map(|p| {
                let (r, c) = grid.coords_of(p);
                BlockStore::build(&pa, &sym, &grid, r, c, &|_| true, InitValues::FromMatrix)
            })
            .collect();
        // Every matrix entry appears in exactly one store with its value.
        for i in 0..pa.nrows {
            let bi = sym.part.sn_of_col[i];
            for (j, v) in pa.row_cols(i).iter().zip(pa.row_vals(i)) {
                let bj = sym.part.sn_of_col[*j];
                let (r, c) = grid.owner(bi, bj);
                let store = &stores[grid.rank_of(r, c)];
                let m = store.get(bi, bj).expect("owner must hold the block");
                let got = m.at(i - sym.part.ranges[bi].start, j - sym.part.ranges[bj].start);
                assert_eq!(got, *v);
                // And in no other store.
                for (p, other) in stores.iter().enumerate() {
                    if p != grid.rank_of(r, c) {
                        assert!(other.get(bi, bj).is_none());
                    }
                }
            }
        }
    }

    #[test]
    fn zero_init_allocates_but_blank() {
        let (pa, sym) = setup(8);
        let grid = Grid2d::new(1, 1);
        let z = BlockStore::build(&pa, &sym, &grid, 0, 0, &|_| true, InitValues::Zero);
        let f = BlockStore::build(&pa, &sym, &grid, 0, 0, &|_| true, InitValues::FromMatrix);
        assert_eq!(z.len(), f.len());
        assert!(z
            .keys()
            .all(|(i, j)| z.get(i, j).unwrap().as_slice().iter().all(|&v| v == 0.0)));
    }

    #[test]
    fn keep_filter_limits_blocks() {
        let (pa, sym) = setup(8);
        let grid = Grid2d::new(1, 1);
        let nsup = sym.nsup();
        let half = nsup / 2;
        let s = BlockStore::build(
            &pa,
            &sym,
            &grid,
            0,
            0,
            &|j| j < half,
            InitValues::FromMatrix,
        );
        for (i, j) in s.keys() {
            assert!(i < half && j < half);
        }
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let m1 = Mat::from_fn(3, 2, |i, j| (i + 10 * j) as f64);
        let m2 = Mat::from_fn(1, 4, |_, j| j as f64);
        let p = pack_blocks(&[(7, &m1), (9, &m2)]);
        assert_eq!(p.words(), (1 + 6) as u64 + (6 + 4) as u64);
        let out = unpack_blocks(p);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, 7);
        assert_eq!(out[0].1, m1);
        assert_eq!(out[1].0, 9);
        assert_eq!(out[1].1, m2);
    }

    #[test]
    fn pack_empty_list() {
        let p = pack_blocks(&[]);
        assert_eq!(unpack_blocks(p).len(), 0);
    }

    #[test]
    fn memory_accounting_matches_block_sizes() {
        let (pa, sym) = setup(8);
        let grid = Grid2d::new(1, 1);
        let s = BlockStore::build(&pa, &sym, &grid, 0, 0, &|_| true, InitValues::FromMatrix);
        let manual: u64 = s
            .keys()
            .map(|(i, j)| {
                let m = s.get(i, j).unwrap();
                (m.rows() * m.cols()) as u64
            })
            .sum();
        assert_eq!(s.total_words(), manual);
        // Must equal the symbolic prediction.
        let predicted: u64 = sym.cost.factor_words.iter().sum();
        assert_eq!(s.total_words(), predicted);
    }
}
