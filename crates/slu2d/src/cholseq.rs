//! Sequential supernodal Cholesky (LL^T): the symmetric variant the paper's
//! §VII proposes extending the 3D principles to.
//!
//! Works on the same supernode partition and block fill pattern as the LU
//! path, but stores **only the diagonal and L-side blocks** — half the
//! memory and (asymptotically) half the flops. Serves as the reference
//! implementation of the future-work direction and as a cross-check: on a
//! value-symmetric SPD matrix it must produce the same solutions as the LU
//! path.

use crate::store::BlockStore;
use densela::gemm::gemm_nt;
use densela::{chol_backward, chol_forward, potrf, trsm_right_ltrans, Mat};
use sparsemat::Csr;
use symbolic::Symbolic;

/// Build the symmetric (lower-triangle-only) block store for a Cholesky
/// factorization: the diagonal blocks and the `L(I, J)` blocks of the fill
/// pattern, initialized from the values of `a` (which must be symmetric).
pub fn build_chol_store(a: &Csr, sym: &Symbolic) -> BlockStore {
    let part = &sym.part;
    let mut store = BlockStore::new();
    for j in 0..part.nsup() {
        let wj = part.width(j);
        store.insert(j, j, Mat::zeros(wj, wj));
        for &i in &sym.fill.struct_of[j] {
            store.insert(i, j, Mat::zeros(part.width(i), wj));
        }
    }
    // Scatter values: diagonal blocks get both triangles, off-diagonal
    // entries go to the lower-block side only.
    for row in 0..a.nrows {
        let bi = part.sn_of_col[row];
        let r_off = row - part.ranges[bi].start;
        for (col, val) in a.row_cols(row).iter().zip(a.row_vals(row)) {
            let bj = part.sn_of_col[*col];
            if bi >= bj {
                let c_off = col - part.ranges[bj].start;
                if let Some(m) = store.get_mut(bi, bj) {
                    *m.at_mut(r_off, c_off) += *val;
                }
            }
        }
    }
    store
}

/// Error from a Cholesky factorization.
#[derive(Debug, PartialEq)]
pub struct NotSpd {
    /// Supernode whose diagonal block failed.
    pub supernode: usize,
    /// Column within the block.
    pub column: usize,
}

/// Factor a symmetric store in place as `A = L L^T`. Fails (without
/// perturbation — Cholesky has no static-pivoting analogue) if a diagonal
/// block turns out numerically indefinite.
pub fn chol_factor(store: &mut BlockStore, sym: &Symbolic) -> Result<(), NotSpd> {
    let nsup = sym.nsup();
    for k in 0..nsup {
        let info = {
            let d = store.get_mut(k, k).expect("diagonal block");
            potrf(d)
        };
        if let Some(col) = info.not_spd_at {
            return Err(NotSpd {
                supernode: k,
                column: col,
            });
        }
        let d = store.get(k, k).unwrap().clone();
        let struct_k = sym.fill.struct_of[k].clone();
        // Panel solve: L(I,k) = A(I,k) * L_kk^{-T}.
        for &i in &struct_k {
            trsm_right_ltrans(&d, store.get_mut(i, k).expect("L block"));
        }
        // Symmetric Schur update on the lower triangle:
        // A(I,J) -= L(I,k) * L(J,k)^T for I >= J in struct(k).
        for (pos, &j) in struct_k.iter().enumerate() {
            let ljk = store.get(j, k).unwrap().clone();
            for &i in &struct_k[pos..] {
                let lik = store.get(i, k).unwrap().clone();
                let t = store
                    .get_mut(i, j)
                    .unwrap_or_else(|| panic!("missing symmetric Schur target ({i},{j})"));
                gemm_nt(-1.0, &lik, &ljk, 1.0, t);
            }
        }
    }
    Ok(())
}

/// Solve `L L^T x = b` given a factored symmetric store; `b` and the result
/// are in the permuted ordering.
pub fn chol_solve(store: &BlockStore, sym: &Symbolic, b: &[f64]) -> Vec<f64> {
    let part = &sym.part;
    let n = part.n();
    assert_eq!(b.len(), n);
    let nsup = sym.nsup();
    let mut x = b.to_vec();

    // Forward: y = L^{-1} b.
    for k in 0..nsup {
        let r = part.ranges[k].clone();
        let d = store.get(k, k).unwrap();
        let mut seg = x[r.clone()].to_vec();
        chol_forward(d, &mut seg);
        x[r].copy_from_slice(&seg);
        for &i in &sym.fill.struct_of[k] {
            let l = store.get(i, k).unwrap();
            let contrib = l.matvec(&seg);
            for (xv, c) in x[part.ranges[i].clone()].iter_mut().zip(contrib) {
                *xv -= c;
            }
        }
    }

    // Backward: x = L^{-T} y, using L(I,k)^T through tr_matvec.
    for k in (0..nsup).rev() {
        let r = part.ranges[k].clone();
        let mut seg = x[r.clone()].to_vec();
        for &i in &sym.fill.struct_of[k] {
            let l = store.get(i, k).unwrap();
            let contrib = l.tr_matvec(&x[part.ranges[i].clone()]);
            for (s, c) in seg.iter_mut().zip(contrib) {
                *s -= c;
            }
        }
        let d = store.get(k, k).unwrap();
        chol_backward(d, &mut seg);
        x[r].copy_from_slice(&seg);
    }
    x
}

/// Words of factor storage of a symmetric store relative to the full LU
/// store for the same pattern: the memory advantage of the variant.
pub fn chol_vs_lu_storage(sym: &Symbolic) -> (u64, u64) {
    let mut chol = 0u64;
    for s in 0..sym.nsup() {
        let ns = sym.part.width(s) as u64;
        let m: u64 = sym.fill.struct_of[s]
            .iter()
            .map(|&i| sym.part.width(i) as u64)
            .sum();
        chol += ns * ns + m * ns;
    }
    let lu: u64 = sym.cost.factor_words.iter().sum();
    (chol, lu)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::{seq_factor, seq_solve};
    use crate::store::InitValues;
    use ordering::{nested_dissection, Graph, NdOptions};
    use simgrid::Grid2d;
    use sparsemat::matgen::{grid2d_5pt, grid3d_7pt};
    use sparsemat::testmats::Geometry;
    use symbolic::Symbolic;

    fn prep(a: &Csr, geom: Geometry) -> (Csr, Symbolic) {
        let g = Graph::from_matrix(a);
        let tree = nested_dissection(
            &g,
            NdOptions {
                leaf_size: 8,
                geometry: geom,
                ..Default::default()
            },
        );
        let pa = a.permute_sym(&tree.perm).symmetrize_pattern();
        let sym = Symbolic::analyze(&pa, &tree, 8);
        (pa, sym)
    }

    #[test]
    fn solves_spd_laplacian() {
        // unsym = 0 keeps the Laplacian symmetric; +0.01 shift keeps it SPD.
        let a = grid2d_5pt(10, 10, 0.0, 0);
        let (pa, sym) = prep(&a, Geometry::Grid2d { nx: 10, ny: 10 });
        let mut store = build_chol_store(&pa, &sym);
        chol_factor(&mut store, &sym).expect("SPD");
        let x_true: Vec<f64> = (0..pa.nrows).map(|i| ((i % 5) as f64) - 2.0).collect();
        let b = pa.matvec(&x_true);
        let x = chol_solve(&store, &sym, &b);
        for (u, v) in x.iter().zip(&x_true) {
            assert!((u - v).abs() < 1e-9);
        }
    }

    #[test]
    fn matches_lu_on_symmetric_input() {
        let a = grid3d_7pt(4, 4, 4, 0.0, 0);
        let (pa, sym) = prep(
            &a,
            Geometry::Grid3d {
                nx: 4,
                ny: 4,
                nz: 4,
            },
        );
        let b: Vec<f64> = (0..pa.nrows).map(|i| (i as f64).cos()).collect();

        let mut cs = build_chol_store(&pa, &sym);
        chol_factor(&mut cs, &sym).expect("SPD");
        let x_chol = chol_solve(&cs, &sym, &b);

        let grid = Grid2d::new(1, 1);
        let mut ls = BlockStore::build(&pa, &sym, &grid, 0, 0, &|_| true, InitValues::FromMatrix);
        seq_factor(&mut ls, &sym, 1e-10);
        let x_lu = seq_solve(&ls, &sym, &b);

        let scale = x_lu.iter().fold(1.0f64, |m, v| m.max(v.abs()));
        for (u, v) in x_chol.iter().zip(&x_lu) {
            assert!((u - v).abs() / scale < 1e-9, "Cholesky/LU divergence");
        }
    }

    #[test]
    fn storage_is_nearly_half_of_lu() {
        let a = grid2d_5pt(16, 16, 0.0, 0);
        let (_, sym) = prep(&a, Geometry::Grid2d { nx: 16, ny: 16 });
        let (chol, lu) = chol_vs_lu_storage(&sym);
        let ratio = chol as f64 / lu as f64;
        assert!(ratio > 0.45 && ratio < 0.75, "ratio {ratio}");
    }

    #[test]
    fn rejects_indefinite_matrix() {
        // A saddle-point-like symmetric indefinite matrix must be refused.
        let mut coo = sparsemat::Coo::new(4, 4);
        coo.push(0, 0, 1.0);
        coo.push(1, 1, 1.0);
        coo.push(2, 2, -1.0);
        coo.push(3, 3, 1.0);
        let a = coo.to_csr();
        let (pa, sym) = prep(&a, Geometry::General);
        let mut store = build_chol_store(&pa, &sym);
        assert!(chol_factor(&mut store, &sym).is_err());
    }
}
