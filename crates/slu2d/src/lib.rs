// Indexing loops are the clearer idiom in numeric kernel code.
#![allow(clippy::needless_range_loop)]
#![forbid(unsafe_code)]

//! Baseline 2D right-looking supernodal sparse LU — the SuperLU_DIST model
//! (paper §II-E) rebuilt on the simulated machine.
//!
//! The matrix, after nested-dissection reordering and symbolic analysis, is
//! a block-sparse matrix of supernodal panels distributed block-cyclically
//! over a `pr x pc` process grid: block `(I, J)` lives on process
//! `(I mod pr, J mod pc)`. Factorization of each supernode `k` runs the
//! paper's four panel kernels followed by the Schur-complement update:
//!
//! 1. *diagonal factorization* — the owner of `A_kk` factors it in place
//!    (static pivoting);
//! 2. *diagonal broadcast* — `L_kk`/`U_kk` go across the owner's process
//!    row and column;
//! 3. *panel solve* — column owners compute `L(I,k) = A(I,k) U_kk^{-1}`,
//!    row owners compute `U(k,J) = L_kk^{-1} A(k,J)`;
//! 4. *panel broadcast* — each owner packs its panel blocks into one
//!    message and broadcasts along its row (L) or column (U);
//! 5. *Schur update* — every process updates its owned trailing blocks
//!    `A(I,J) -= L(I,k) U(k,J)`.
//!
//! [`factor2d::factor_nodes`] drives these steps over an arbitrary
//! ascending supernode list — the entry point the 3D algorithm calls per
//! tree-forest level (`dSparseLU2D(A, nList)` in Algorithm 1) — with an
//! optional elimination-tree lookahead window (§II-F).

pub mod cholseq;
pub mod condest;
pub mod driver;
pub mod factor2d;
pub mod kernels;
pub mod seq;
pub mod solve2d;
pub mod store;

pub use cholseq::{build_chol_store, chol_factor, chol_solve};
pub use condest::{condest_1, inverse_norm1_estimate, seq_solve_transpose};
pub use driver::{run_2d, Run2dOutput};
pub use factor2d::{factor_nodes, factor_nodes_with, FactorEnv, FactorOpts};
pub use seq::{seq_factor, seq_solve, seq_solve_multi};
pub use store::BlockStore;
