//! The node-list factorization driver: `dSparseLU2D(A, nList)` from the
//! paper's Algorithm 1, with the elimination-tree lookahead of §II-F.

use crate::kernels::{factor_step_panel, factor_step_schur, PanelData};
use crate::store::BlockStore;
use simgrid::{Comm, Grid2d, MemClass, Rank, SpanCat};
use std::collections::HashMap;
use symbolic::Symbolic;

/// Per-rank environment for a 2D factorization: the grid shape, this rank's
/// coordinates, and the row/column communicators of its layer.
pub struct FactorEnv {
    pub grid: Grid2d,
    pub my_r: usize,
    pub my_c: usize,
    /// My process row (fixed `r`, all columns).
    pub row: Comm,
    /// My process column (fixed `c`, all rows).
    pub col: Comm,
    pub opts: FactorOpts,
}

/// Tuning knobs for the factorization.
#[derive(Clone, Copy, Debug)]
pub struct FactorOpts {
    /// Elimination-tree lookahead window: how many upcoming supernodes may
    /// run their panel phase before the current Schur update (paper §II-F:
    /// "typically ... in the range 8-20"). `0` disables lookahead.
    pub lookahead: usize,
    /// Static-pivoting threshold (relative to the block's max entry).
    pub pivot_threshold: f64,
}

impl Default for FactorOpts {
    fn default() -> Self {
        FactorOpts {
            lookahead: 8,
            pivot_threshold: 1e-10,
        }
    }
}

/// Outcome counters of a node-list factorization.
#[derive(Clone, Copy, Debug, Default)]
pub struct FactorOutcome {
    /// Static-pivot perturbations applied on this rank.
    pub perturbations: usize,
    /// Supernodes whose panel phase ran ahead of the in-order position.
    pub lookahead_hits: usize,
}

/// Factor the supernodes of `nodes` (ascending elimination order) on the 2D
/// grid, updating `store` in place: factored panels overwrite their blocks
/// and Schur updates accumulate into every owned trailing block (including
/// replicated ancestors outside `nodes`, which is what the 3D algorithm
/// relies on).
///
/// `done[s]` must be `true` for every supernode whose updates have already
/// been applied (previous 3D levels) or which lives on another grid (its
/// contribution arrives via ancestor reduction instead). The function marks
/// nodes of `nodes` done as it processes them.
///
/// Collective across the layer: every rank calls with identical arguments.
pub fn factor_nodes(
    rank: &mut Rank,
    env: &FactorEnv,
    store: &mut BlockStore,
    sym: &Symbolic,
    nodes: &[usize],
    done: &mut [bool],
) -> FactorOutcome {
    debug_assert!(nodes.windows(2).all(|w| w[0] < w[1]), "nodes must ascend");
    let mut outcome = FactorOutcome::default();

    // Unprocessed-children counts for the lookahead readiness test. A node
    // is panel-ready when every not-yet-done elimination-tree child has been
    // processed: its column then has all updates applied.
    let children = sym.fill.children();
    let mut pending: HashMap<usize, usize> = HashMap::new();
    for &k in nodes {
        pending.insert(k, children[k].iter().filter(|&&c| !done[c]).count());
    }

    let mut panels: HashMap<usize, PanelData> = HashMap::new();
    let mut paneled = vec![false; nodes.len()];

    for idx in 0..nodes.len() {
        let k = nodes[idx];
        // Run panel phases for the window [idx, idx + lookahead], in order,
        // for every node whose children are all done. All ranks compute the
        // same schedule from shared symbolic state, keeping the collective
        // broadcasts aligned.
        let w_end = (idx + env.opts.lookahead + 1).min(nodes.len());
        for j in idx..w_end {
            let m = nodes[j];
            if paneled[j] || pending[&m] > 0 {
                continue;
            }
            let (pd, pert) = rank.with_span(SpanCat::Node, &format!("panel{m}"), |rank| {
                factor_step_panel(rank, env, store, sym, m)
            });
            outcome.perturbations += pert;
            if j > idx {
                outcome.lookahead_hits += 1;
            }
            // Panel pieces held for a pending Schur update are transient
            // Schur-buffer memory; credited when the update consumes them.
            rank.mem_charge(MemClass::SchurBuf, pd.words() * 8);
            panels.insert(m, pd);
            paneled[j] = true;
        }

        let pd = panels
            .remove(&k)
            .expect("current node must be panel-ready (children all done)");
        rank.with_span(SpanCat::Node, &format!("schur{k}"), |rank| {
            factor_step_schur(rank, env, store, sym, k, &pd);
        });
        rank.mem_credit(MemClass::SchurBuf, pd.words() * 8);
        done[k] = true;
        // The Schur update completes node k; decrement its etree parent's
        // pending count if the parent is in this list.
        if let Some(p) = sym.fill.parent[k] {
            if let Some(cnt) = pending.get_mut(&p) {
                *cnt -= 1;
            }
        }
    }
    outcome
}
