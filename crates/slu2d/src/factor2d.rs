//! The node-list factorization driver: `dSparseLU2D(A, nList)` from the
//! paper's Algorithm 1, with the elimination-tree lookahead of §II-F.

use crate::kernels::{factor_step_panel, factor_step_schur, factor_step_schur_batched, PanelData};
use crate::store::{BlockStore, SchurScratch};
use simgrid::{Comm, Grid2d, MemClass, Rank, SpanCat};
use std::collections::HashMap;
use symbolic::Symbolic;

/// Per-rank environment for a 2D factorization: the grid shape, this rank's
/// coordinates, and the row/column communicators of its layer.
pub struct FactorEnv {
    pub grid: Grid2d,
    pub my_r: usize,
    pub my_c: usize,
    /// My process row (fixed `r`, all columns).
    pub row: Comm,
    /// My process column (fixed `c`, all rows).
    pub col: Comm,
    pub opts: FactorOpts,
}

/// Tuning knobs for the factorization.
#[derive(Clone, Copy, Debug)]
pub struct FactorOpts {
    /// Elimination-tree lookahead window: how many upcoming supernodes may
    /// run their panel phase before the current Schur update (paper §II-F:
    /// "typically ... in the range 8-20"). `0` disables lookahead.
    pub lookahead: usize,
    /// Static-pivoting threshold (relative to the block's max entry).
    pub pivot_threshold: f64,
    /// Run the Schur-complement update through the batched
    /// gather-GEMM-scatter path ([`factor_step_schur_batched`]): owned
    /// panel pieces are aggregated into contiguous scratch panels and
    /// multiplied by one register-blocked GEMM per supernode instead of one
    /// tiny GEMM per block pair. Bit-identical factors either way; this is
    /// purely a host-performance knob (see docs/perf.md).
    pub batched_schur: bool,
}

impl Default for FactorOpts {
    fn default() -> Self {
        FactorOpts {
            lookahead: 8,
            pivot_threshold: 1e-10,
            batched_schur: false,
        }
    }
}

/// Outcome counters of a node-list factorization.
#[derive(Clone, Copy, Debug, Default)]
pub struct FactorOutcome {
    /// Static-pivot perturbations applied on this rank.
    pub perturbations: usize,
    /// Supernodes whose panel phase ran ahead of the in-order position.
    pub lookahead_hits: usize,
}

/// Factor the supernodes of `nodes` (ascending elimination order) on the 2D
/// grid, updating `store` in place: factored panels overwrite their blocks
/// and Schur updates accumulate into every owned trailing block (including
/// replicated ancestors outside `nodes`, which is what the 3D algorithm
/// relies on).
///
/// `done[s]` must be `true` for every supernode whose updates have already
/// been applied (previous 3D levels) or which lives on another grid (its
/// contribution arrives via ancestor reduction instead). The function marks
/// nodes of `nodes` done as it processes them.
///
/// Collective across the layer: every rank calls with identical arguments.
pub fn factor_nodes(
    rank: &mut Rank,
    env: &FactorEnv,
    store: &mut BlockStore,
    sym: &Symbolic,
    nodes: &[usize],
    done: &mut [bool],
) -> FactorOutcome {
    factor_nodes_with(rank, env, store, sym, nodes, done, &mut |_, _, _| {})
}

/// [`factor_nodes`] with a progress hook for the 3D task-graph schedule:
/// `after_schur(rank, store, pos)` is called once per scheduled node,
/// immediately after the Schur update of `nodes[pos - 1]` completes (so
/// `pos` runs 1..=nodes.len()). At that point every block whose last
/// writer is `nodes[pos - 1]` holds its final value for this node list —
/// the hook may ship such blocks (eager ancestor-reduction sends) but must
/// not mutate blocks still pending updates. The hook runs outside any node
/// span, and the compute schedule is identical to [`factor_nodes`]'s, so a
/// no-op hook is bitwise equivalent.
pub fn factor_nodes_with(
    rank: &mut Rank,
    env: &FactorEnv,
    store: &mut BlockStore,
    sym: &Symbolic,
    nodes: &[usize],
    done: &mut [bool],
    after_schur: &mut dyn FnMut(&mut Rank, &mut BlockStore, usize),
) -> FactorOutcome {
    debug_assert!(nodes.windows(2).all(|w| w[0] < w[1]), "nodes must ascend");
    let mut outcome = FactorOutcome::default();

    // Unprocessed-children counts for the lookahead readiness test. A node
    // is panel-ready when every not-yet-done elimination-tree child has been
    // processed: its column then has all updates applied.
    let children = sym.fill.children();

    // Validate the `done[]` contract up front: every scheduled node's
    // children must either be marked done (processed earlier, or owned by
    // another grid whose contribution arrives via ancestor reduction) or be
    // scheduled before it in this list. A violation used to surface as a
    // bare "current node must be panel-ready" panic deep inside the loop;
    // failing here names the offending supernode and child instead.
    for &k in nodes {
        for &c in &children[k] {
            if !done[c] && nodes.binary_search(&c).is_err() {
                panic!(
                    "factor_nodes: done[] contract violated by caller — supernode {k} \
                     depends on elimination-tree child {c}, which is neither marked \
                     done nor scheduled in this node list (out-of-grid children must \
                     be pre-marked done; their updates arrive via ancestor reduction)"
                );
            }
        }
    }

    let mut pending: HashMap<usize, usize> = HashMap::new();
    for &k in nodes {
        pending.insert(k, children[k].iter().filter(|&&c| !done[c]).count());
    }

    let mut panels: HashMap<usize, PanelData> = HashMap::new();
    let mut paneled = vec![false; nodes.len()];
    // Scratch arena for the batched Schur path, reused across every
    // supernode of this node list; released (ledger-credited) at the end.
    let mut scratch = SchurScratch::new();

    for idx in 0..nodes.len() {
        let k = nodes[idx];
        // Run panel phases for the window [idx, idx + lookahead], in order,
        // for every node whose children are all done. All ranks compute the
        // same schedule from shared symbolic state, keeping the collective
        // broadcasts aligned.
        let w_end = (idx + env.opts.lookahead + 1).min(nodes.len());
        for j in idx..w_end {
            let m = nodes[j];
            if paneled[j] || pending[&m] > 0 {
                continue;
            }
            let (pd, pert) = rank.with_span(SpanCat::Node, &format!("panel{m}"), |rank| {
                factor_step_panel(rank, env, store, sym, m)
            });
            outcome.perturbations += pert;
            if j > idx {
                outcome.lookahead_hits += 1;
            }
            // Panel pieces held for a pending Schur update are transient
            // Schur-buffer memory; credited when the update consumes them.
            rank.mem_charge(MemClass::SchurBuf, pd.words() * 8);
            panels.insert(m, pd);
            paneled[j] = true;
        }

        let pd = panels
            .remove(&k)
            .expect("current node must be panel-ready (children all done)");
        rank.with_span(SpanCat::Node, &format!("schur{k}"), |rank| {
            if env.opts.batched_schur {
                factor_step_schur_batched(rank, env, store, sym, k, &pd, &mut scratch);
            } else {
                factor_step_schur(rank, env, store, sym, k, &pd);
            }
        });
        rank.mem_credit(MemClass::SchurBuf, pd.words() * 8);
        done[k] = true;
        // The Schur update completes node k; decrement its etree parent's
        // pending count if the parent is in this list.
        if let Some(p) = sym.fill.parent[k] {
            if let Some(cnt) = pending.get_mut(&p) {
                *cnt -= 1;
            }
        }
        after_schur(rank, store, idx + 1);
    }
    scratch.release(rank);
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::InitValues;
    use ordering::{nested_dissection, Graph, NdOptions};
    use simgrid::{Machine, TimeModel};
    use sparsemat::matgen::grid2d_5pt;
    use sparsemat::testmats::Geometry;
    use std::panic::AssertUnwindSafe;
    use std::sync::Arc;

    fn setup(k: usize) -> (sparsemat::Csr, Symbolic) {
        let a = grid2d_5pt(k, k, 0.1, 0);
        let g = Graph::from_matrix(&a);
        let tree = nested_dissection(
            &g,
            NdOptions {
                leaf_size: 8,
                geometry: Geometry::Grid2d { nx: k, ny: k },
                ..Default::default()
            },
        );
        let pa = a.permute_sym(&tree.perm).symmetrize_pattern();
        let sym = Symbolic::analyze(&pa, &tree, 8);
        (pa, sym)
    }

    /// A caller that schedules a node whose children are neither done nor
    /// scheduled must be rejected at entry with the offending supernode and
    /// child named — not with the old bare "must be panel-ready" panic from
    /// deep inside the loop.
    #[test]
    fn done_contract_violation_names_node_and_child() {
        let (pa, sym) = setup(8);
        let sym = Arc::new(sym);
        let pa = Arc::new(pa);
        let root_sn = sym.nsup() - 1;
        let child = *sym.fill.children()[root_sn]
            .first()
            .expect("root supernode must have a child in this fixture");
        let m = Machine::new(1, TimeModel::zero());
        let sym_cl = Arc::clone(&sym);
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            m.run(move |rank| {
                let env = FactorEnv {
                    grid: simgrid::Grid2d::new(1, 1),
                    my_r: 0,
                    my_c: 0,
                    row: rank.world(),
                    col: rank.world(),
                    opts: FactorOpts::default(),
                };
                let mut store = BlockStore::build(
                    &pa,
                    &sym_cl,
                    &env.grid,
                    0,
                    0,
                    &|_| true,
                    InitValues::FromMatrix,
                );
                // Schedule only the root; nothing is done: contract violated.
                let mut done = vec![false; sym_cl.nsup()];
                factor_nodes(rank, &env, &mut store, &sym_cl, &[root_sn], &mut done);
            })
        }))
        .expect_err("violating the done[] contract must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .expect("panic payload must be a string");
        assert!(msg.contains("done[] contract violated"), "{msg}");
        assert!(msg.contains(&format!("supernode {root_sn}")), "{msg}");
        assert!(msg.contains(&format!("child {child}")), "{msg}");
    }
}
