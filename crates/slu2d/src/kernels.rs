//! The per-supernode factorization kernels of §II-E: diagonal
//! factorization, diagonal broadcast, panel solve, panel broadcast, and the
//! Schur-complement update.

use crate::factor2d::FactorEnv;
use crate::store::{pack_blocks, unpack_blocks, BlockStore};
use densela::{flops, getrf, trsm_left_lower_unit, trsm_right_upper, Mat, PivotPolicy};
use simgrid::{Payload, Rank};
use std::collections::HashMap;
use symbolic::Symbolic;

/// Message-tag kinds, shifted above the supernode id.
const T_DIAG_ROW: u64 = 1 << 48;
const T_DIAG_COL: u64 = 2 << 48;
const T_LPANEL: u64 = 3 << 48;
const T_UPANEL: u64 = 4 << 48;

/// The L and U panel pieces a rank holds after the panel phase of
/// supernode `k`: `lmap[I]` for block rows `I` in this rank's process row,
/// `umap[J]` for block columns `J` in this rank's process column.
pub struct PanelData {
    pub lmap: HashMap<usize, Mat>,
    pub umap: HashMap<usize, Mat>,
}

impl PanelData {
    /// Total words of panel storage held (for Schur-buffer memory
    /// accounting).
    pub fn words(&self) -> u64 {
        self.lmap
            .values()
            .chain(self.umap.values())
            .map(|m| (m.rows() * m.cols()) as u64)
            .sum()
    }
}

/// Run the panel phase for supernode `k`: kernels 1-4 of §II-E. Collective
/// across the 2D grid (every rank of the layer must call it with the same
/// `k`). Returns the panel data this rank needs for its Schur updates, and
/// the number of static-pivot perturbations (nonzero only on the diagonal
/// owner).
pub fn factor_step_panel(
    rank: &mut Rank,
    env: &FactorEnv,
    store: &mut BlockStore,
    sym: &Symbolic,
    k: usize,
) -> (PanelData, usize) {
    let f0 = flops::get();
    let grid = env.grid;
    let (kr, kc) = (k % grid.pr, k % grid.pc);
    let struct_k = &sym.fill.struct_of[k];
    let mut perturbations = 0usize;

    // 1. Diagonal factorization on the owner.
    if (env.my_r, env.my_c) == (kr, kc) {
        let d = store
            .get_mut(k, k)
            .expect("diagonal owner must hold the diagonal block");
        let info = getrf(
            d,
            PivotPolicy::Static {
                threshold: env.opts.pivot_threshold,
            },
        );
        perturbations = info.perturbations;
    }

    // 2. Diagonal broadcast. The packed LU of A_kk goes across the owner's
    //    process row (for the U panel solves) and process column (for the L
    //    panel solves). Skipped entirely when the supernode has no
    //    off-diagonal blocks.
    let mut diag_lu: Option<Mat> = None;
    if !struct_k.is_empty() {
        if env.my_r == kr {
            let data = if env.my_c == kc {
                Some(Payload::F64s(store.get(k, k).unwrap().as_slice().to_vec()))
            } else {
                None
            };
            let buf = rank
                .bcast(&env.row, kc, data, T_DIAG_ROW | k as u64)
                .into_f64s();
            let w = sym.part.width(k);
            diag_lu = Some(Mat::from_vec(w, w, buf));
        }
        if env.my_c == kc {
            let data = if env.my_r == kr {
                Some(Payload::F64s(store.get(k, k).unwrap().as_slice().to_vec()))
            } else {
                None
            };
            let buf = rank
                .bcast(&env.col, kr, data, T_DIAG_COL | k as u64)
                .into_f64s();
            let w = sym.part.width(k);
            diag_lu = Some(Mat::from_vec(w, w, buf));
        }
    }

    // 3. Panel solves.
    if !struct_k.is_empty() && env.my_c == kc {
        let d = diag_lu
            .as_ref()
            .expect("column owners received the diagonal");
        for &i in struct_k {
            if i % grid.pr == env.my_r {
                let b = store
                    .get_mut(i, k)
                    .expect("panel owner must hold its L block");
                trsm_right_upper(d, b); // L(I,k) = A(I,k) * U_kk^{-1}
            }
        }
    }
    if !struct_k.is_empty() && env.my_r == kr {
        let d = diag_lu.as_ref().expect("row owners received the diagonal");
        for &j in struct_k {
            if j % grid.pc == env.my_c {
                let b = store
                    .get_mut(k, j)
                    .expect("panel owner must hold its U block");
                trsm_left_lower_unit(d, b); // U(k,J) = L_kk^{-1} A(k,J)
            }
        }
    }

    // 4. Panel broadcasts: one packed message per participating row/column.
    //    My process row participates in the L broadcast iff some block row
    //    of the panel maps to it (deterministic from the symbolic pattern,
    //    so every rank agrees without communication).
    let mut lmap = HashMap::new();
    let row_has_l = struct_k.iter().any(|&i| i % grid.pr == env.my_r);
    if row_has_l {
        let data = if env.my_c == kc {
            let items: Vec<(usize, &Mat)> = struct_k
                .iter()
                .filter(|&&i| i % grid.pr == env.my_r)
                .map(|&i| (i, store.get(i, k).expect("owned L block")))
                .collect();
            Some(pack_blocks(&items))
        } else {
            None
        };
        let payload = rank.bcast(&env.row, kc, data, T_LPANEL | k as u64);
        for (i, m) in unpack_blocks(payload) {
            lmap.insert(i, m);
        }
    }
    let mut umap = HashMap::new();
    let col_has_u = struct_k.iter().any(|&j| j % grid.pc == env.my_c);
    if col_has_u {
        let data = if env.my_r == kr {
            let items: Vec<(usize, &Mat)> = struct_k
                .iter()
                .filter(|&&j| j % grid.pc == env.my_c)
                .map(|&j| (j, store.get(k, j).expect("owned U block")))
                .collect();
            Some(pack_blocks(&items))
        } else {
            None
        };
        let payload = rank.bcast(&env.col, kr, data, T_UPANEL | k as u64);
        for (j, m) in unpack_blocks(payload) {
            umap.insert(j, m);
        }
    }

    rank.advance_compute(flops::get() - f0);
    (PanelData { lmap, umap }, perturbations)
}

/// The Schur-complement update for supernode `k` (§II-E): every rank
/// updates its owned trailing blocks `A(I,J) -= L(I,k) * U(k,J)` for
/// `I, J` in `struct(k)`. Purely local; the block-fill closure property
/// guarantees every target block exists.
pub fn factor_step_schur(
    rank: &mut Rank,
    env: &FactorEnv,
    store: &mut BlockStore,
    sym: &Symbolic,
    k: usize,
    panels: &PanelData,
) {
    let f0 = flops::get();
    let grid = env.grid;
    let struct_k = &sym.fill.struct_of[k];
    for &j in struct_k {
        if j % grid.pc != env.my_c {
            continue;
        }
        let Some(u) = panels.umap.get(&j) else {
            continue;
        };
        for &i in struct_k {
            if i % grid.pr != env.my_r {
                continue;
            }
            let Some(l) = panels.lmap.get(&i) else {
                continue;
            };
            let target = store.get_mut(i, j).unwrap_or_else(|| {
                panic!("Schur target block ({i},{j}) missing — fill closure violated")
            });
            densela::gemm(-1.0, l, u, 1.0, target);
        }
    }
    let df = flops::get() - f0;
    rank.metric_observe("gemm.flops_per_supernode", df as f64);
    rank.advance_compute(df);
}
