//! The per-supernode factorization kernels of §II-E: diagonal
//! factorization, diagonal broadcast, panel solve, panel broadcast, and the
//! Schur-complement update.

use crate::factor2d::FactorEnv;
use crate::store::{pack_blocks, unpack_blocks, BlockStore, SchurScratch};
use densela::{flops, getrf, trsm_left_lower_unit, trsm_right_upper, Mat, PivotPolicy};
use simgrid::{CommClass, HostPhase, Payload, Rank};
use std::collections::HashMap;
use symbolic::Symbolic;

// Message-tag kinds (shifted above the supernode id) come from the
// workspace-wide audited registry.
use simgrid::tags::{T_DIAG_COL, T_DIAG_ROW, T_LPANEL, T_UPANEL};

/// The L and U panel pieces a rank holds after the panel phase of
/// supernode `k`: `lmap[I]` for block rows `I` in this rank's process row,
/// `umap[J]` for block columns `J` in this rank's process column.
pub struct PanelData {
    pub lmap: HashMap<usize, Mat>,
    pub umap: HashMap<usize, Mat>,
}

impl PanelData {
    /// Total words of panel storage held (for Schur-buffer memory
    /// accounting).
    pub fn words(&self) -> u64 {
        self.lmap
            .values()
            .chain(self.umap.values())
            .map(|m| (m.rows() * m.cols()) as u64)
            .sum()
    }
}

/// Run the panel phase for supernode `k`: kernels 1-4 of §II-E. Collective
/// across the 2D grid (every rank of the layer must call it with the same
/// `k`). Returns the panel data this rank needs for its Schur updates, and
/// the number of static-pivot perturbations (nonzero only on the diagonal
/// owner).
pub fn factor_step_panel(
    rank: &mut Rank,
    env: &FactorEnv,
    store: &mut BlockStore,
    sym: &Symbolic,
    k: usize,
) -> (PanelData, usize) {
    // Host-time attribution: everything in this step is panel work except
    // the nested collective waits, which the simulator's own CommWait
    // scopes subtract out as self-time of their own phase.
    let _host = rank.host_scope_sn(HostPhase::PanelFactor, k);
    let f0 = flops::get();
    let grid = env.grid;
    let (kr, kc) = (k % grid.pr, k % grid.pc);
    let struct_k = &sym.fill.struct_of[k];
    let mut perturbations = 0usize;

    // 1. Diagonal factorization on the owner.
    if (env.my_r, env.my_c) == (kr, kc) {
        let d = store
            .get_mut(k, k)
            .expect("diagonal owner must hold the diagonal block");
        let info = getrf(
            d,
            PivotPolicy::Static {
                threshold: env.opts.pivot_threshold,
            },
        );
        perturbations = info.perturbations;
    }

    // 2. Diagonal broadcast. The packed LU of A_kk goes across the owner's
    //    process row (for the U panel solves) and process column (for the L
    //    panel solves). Skipped entirely when the supernode has no
    //    off-diagonal blocks.
    let mut diag_lu: Option<Mat> = None;
    if !struct_k.is_empty() {
        if env.my_r == kr {
            let data = if env.my_c == kc {
                Some(Payload::F64s(store.get(k, k).unwrap().as_slice().to_vec()))
            } else {
                None
            };
            let buf = rank
                .bcast(&env.row, kc, data, T_DIAG_ROW | k as u64)
                .into_f64s();
            let w = sym.part.width(k);
            diag_lu = Some(Mat::from_vec(w, w, buf));
        }
        if env.my_c == kc {
            let data = if env.my_r == kr {
                Some(Payload::F64s(store.get(k, k).unwrap().as_slice().to_vec()))
            } else {
                None
            };
            let buf = rank
                .bcast(&env.col, kr, data, T_DIAG_COL | k as u64)
                .into_f64s();
            let w = sym.part.width(k);
            diag_lu = Some(Mat::from_vec(w, w, buf));
        }
    }

    // 3. Panel solves.
    if !struct_k.is_empty() && env.my_c == kc {
        let d = diag_lu
            .as_ref()
            .expect("column owners received the diagonal");
        for &i in struct_k {
            if i % grid.pr == env.my_r {
                let b = store
                    .get_mut(i, k)
                    .expect("panel owner must hold its L block");
                trsm_right_upper(d, b); // L(I,k) = A(I,k) * U_kk^{-1}
            }
        }
    }
    if !struct_k.is_empty() && env.my_r == kr {
        let d = diag_lu.as_ref().expect("row owners received the diagonal");
        for &j in struct_k {
            if j % grid.pc == env.my_c {
                let b = store
                    .get_mut(k, j)
                    .expect("panel owner must hold its U block");
                trsm_left_lower_unit(d, b); // U(k,J) = L_kk^{-1} A(k,J)
            }
        }
    }

    // 4. Panel broadcasts: one packed message per participating row/column.
    //    My process row participates in the L broadcast iff some block row
    //    of the panel maps to it (deterministic from the symbolic pattern,
    //    so every rank agrees without communication).
    let mut lmap = HashMap::new();
    let row_has_l = struct_k.iter().any(|&i| i % grid.pr == env.my_r);
    if row_has_l {
        let data = if env.my_c == kc {
            let items: Vec<(usize, &Mat)> = struct_k
                .iter()
                .filter(|&&i| i % grid.pr == env.my_r)
                .map(|&i| (i, store.get(i, k).expect("owned L block")))
                .collect();
            Some(pack_blocks(&items))
        } else {
            None
        };
        let payload = rank.with_comm_class(CommClass::LPanel, |rank| {
            rank.bcast(&env.row, kc, data, T_LPANEL | k as u64)
        });
        for (i, m) in unpack_blocks(payload) {
            lmap.insert(i, m);
        }
    }
    let mut umap = HashMap::new();
    let col_has_u = struct_k.iter().any(|&j| j % grid.pc == env.my_c);
    if col_has_u {
        let data = if env.my_r == kr {
            let items: Vec<(usize, &Mat)> = struct_k
                .iter()
                .filter(|&&j| j % grid.pc == env.my_c)
                .map(|&j| (j, store.get(k, j).expect("owned U block")))
                .collect();
            Some(pack_blocks(&items))
        } else {
            None
        };
        let payload = rank.with_comm_class(CommClass::UPanel, |rank| {
            rank.bcast(&env.col, kr, data, T_UPANEL | k as u64)
        });
        for (j, m) in unpack_blocks(payload) {
            umap.insert(j, m);
        }
    }

    rank.advance_compute(flops::get() - f0);
    (PanelData { lmap, umap }, perturbations)
}

/// The Schur-complement update for supernode `k` (§II-E): every rank
/// updates its owned trailing blocks `A(I,J) -= L(I,k) * U(k,J)` for
/// `I, J` in `struct(k)`. Purely local; the block-fill closure property
/// guarantees every target block exists.
pub fn factor_step_schur(
    rank: &mut Rank,
    env: &FactorEnv,
    store: &mut BlockStore,
    sym: &Symbolic,
    k: usize,
    panels: &PanelData,
) {
    let _host = rank.host_scope_sn(HostPhase::Gemm, k);
    let f0 = flops::get();
    let grid = env.grid;
    let struct_k = &sym.fill.struct_of[k];
    for &j in struct_k {
        if j % grid.pc != env.my_c {
            continue;
        }
        let Some(u) = panels.umap.get(&j) else {
            continue;
        };
        for &i in struct_k {
            if i % grid.pr != env.my_r {
                continue;
            }
            let Some(l) = panels.lmap.get(&i) else {
                continue;
            };
            let target = store.get_mut(i, j).unwrap_or_else(|| {
                panic!("Schur target block ({i},{j}) missing — fill closure violated")
            });
            densela::gemm(-1.0, l, u, 1.0, target);
        }
    }
    let df = flops::get() - f0;
    rank.metric_observe("gemm.flops_per_supernode", df as f64);
    rank.advance_compute(df);
}

/// Batched gather-GEMM-scatter variant of [`factor_step_schur`]: instead of
/// one tiny GEMM per `(I, J)` block pair (two hash lookups each), gather
/// this rank's owned L-blocks and U-panel pieces into two contiguous
/// column-major panels, run ONE register-blocked GEMM over the whole
/// trailing update, and scatter the result rows back into the
/// `BlockStore` targets — the supernodal-panel aggregation of the
/// SuperLU_DIST lineage. The scatter is fused into the kernel
/// ([`densela::gemm_blocked_tiled`] stores its C register tiles straight
/// into the target blocks), so the targets are never copied through a
/// scratch panel. Bit-identical to the per-block path: every target element
/// receives the same contributions in the same ascending-`k` order with the
/// same zero-scale skips ([`densela::gemm_blocked`]'s contract), and the
/// total flop charge matches, so simulated clocks and traces are unchanged.
/// Below this many (estimated dense) flops, the batched path's
/// gather/pack/scatter overhead outweighs the register-blocked kernel's
/// advantage and the per-block loop is faster; such supernodes dispatch to
/// [`factor_step_schur`] unchanged. Both paths are bitwise identical, so
/// the threshold is purely a host-performance tuning knob.
const BATCH_MIN_FLOPS: u64 = 1_000_000;

pub fn factor_step_schur_batched(
    rank: &mut Rank,
    env: &FactorEnv,
    store: &mut BlockStore,
    sym: &Symbolic,
    k: usize,
    panels: &PanelData,
    scratch: &mut SchurScratch,
) {
    let f0 = flops::get();
    let grid = env.grid;
    let struct_k = &sym.fill.struct_of[k];
    let w = sym.part.width(k);

    // Participating block rows/columns in ascending supernode order, with
    // their panel offsets: `(id, offset, width)`.
    let mut rows: Vec<(usize, usize, usize)> = Vec::new();
    let mut m_total = 0usize;
    for &i in struct_k {
        if i % grid.pr == env.my_r && panels.lmap.contains_key(&i) {
            let wi = sym.part.width(i);
            rows.push((i, m_total, wi));
            m_total += wi;
        }
    }
    let mut cols: Vec<(usize, usize, usize)> = Vec::new();
    let mut n_total = 0usize;
    for &j in struct_k {
        if j % grid.pc == env.my_c && panels.umap.contains_key(&j) {
            let wj = sym.part.width(j);
            cols.push((j, n_total, wj));
            n_total += wj;
        }
    }

    if ((2 * m_total * w * n_total) as u64) < BATCH_MIN_FLOPS {
        return factor_step_schur(rank, env, store, sym, k, panels);
    }

    if m_total > 0 && n_total > 0 {
        let gather_scope = rank.host_scope_sn(HostPhase::Gather, k);
        scratch.shape(rank, m_total, w, n_total);
        // Gather L: stack each owned block's rows at its panel offset.
        for &(i, ri, wi) in &rows {
            let blk = &panels.lmap[&i];
            for c in 0..w {
                scratch.l.col_mut(c)[ri..ri + wi].copy_from_slice(&blk.col(c)[..wi]);
            }
        }
        // Gather U: concatenate the owned pieces column-wise.
        for &(j, cj, wj) in &cols {
            let blk = &panels.umap[&j];
            for c in 0..wj {
                scratch.u.col_mut(cj + c).copy_from_slice(blk.col(c));
            }
        }
        // Pull the target blocks out of the store (a pointer move each) so
        // the tiled GEMM reads and writes them in place: the result
        // scatter happens inside the kernel's C-tile stores, with no
        // target-panel copy in either direction.
        let mut targets: Vec<Mat> = Vec::with_capacity(rows.len() * cols.len());
        for &(i, _, _) in &rows {
            for &(j, _, _) in &cols {
                targets.push(store.take(i, j).unwrap_or_else(|| {
                    panic!("Schur target block ({i},{j}) missing — fill closure violated")
                }));
            }
        }
        let row_off: Vec<usize> = rows.iter().map(|&(_, ri, _)| ri).chain([m_total]).collect();
        let col_off: Vec<usize> = cols.iter().map(|&(_, cj, _)| cj).chain([n_total]).collect();
        drop(gather_scope);
        let gemm_scope = rank.host_scope_sn(HostPhase::Gemm, k);
        // det-lint: allow(wall-clock): host GEMM timing feeds the batched flop-rate metric
        let t0 = std::time::Instant::now();
        densela::gemm_blocked_tiled(
            -1.0,
            &scratch.l,
            &scratch.u,
            &row_off,
            &col_off,
            &mut targets,
        );
        let host_secs = t0.elapsed().as_secs_f64();
        drop(gemm_scope);
        let scatter_scope = rank.host_scope_sn(HostPhase::Scatter, k);
        let mut it = targets.into_iter();
        for &(i, _, _) in &rows {
            for &(j, _, _) in &cols {
                store.insert(i, j, it.next().unwrap());
            }
        }
        drop(scatter_scope);
        // Host-measured GEMM throughput of the batched path (flops per
        // wall-clock second). Only recorded when the batched path runs, so
        // default-config golden artifacts never carry this host-dependent
        // sample.
        let df_gemm = flops::get() - f0;
        if host_secs > 0.0 {
            rank.metric_observe("gemm.batched_flop_rate", df_gemm as f64 / host_secs);
        }
    }

    let df = flops::get() - f0;
    rank.metric_observe("gemm.flops_per_supernode", df as f64);
    rank.advance_compute(df);
}
