//! Condition-number estimation on the factored matrix: Hager's 1-norm
//! estimator (the algorithm behind LAPACK's `xGECON`, which SuperLU_DIST
//! exposes the same way). Needs solves with both `A` and `A^T`, so this
//! module also provides the transpose solve on a factored block store.

use crate::seq::seq_solve;
use crate::store::BlockStore;
use densela::{backward_subst_ltrans_unit, forward_subst_utrans};
use symbolic::Symbolic;

/// Solve `A^T x = b` on a factored store: `U^T y = b` (forward over the
/// U-side blocks), then `L^T x = y` (backward over the L-side blocks).
/// `b` and the result are in the permuted ordering.
pub fn seq_solve_transpose(store: &BlockStore, sym: &Symbolic, b: &[f64]) -> Vec<f64> {
    let part = &sym.part;
    let n = part.n();
    assert_eq!(b.len(), n);
    let nsup = sym.nsup();
    let mut x = b.to_vec();

    // Forward: y = U^{-T} b. U^T is block lower triangular: block (i,k) of
    // U^T equals U(k,i)^T.
    for k in 0..nsup {
        let r = part.ranges[k].clone();
        let d = store.get(k, k).unwrap();
        let mut seg = x[r.clone()].to_vec();
        forward_subst_utrans(d, &mut seg);
        x[r].copy_from_slice(&seg);
        for &i in &sym.fill.struct_of[k] {
            let u = store.get(k, i).unwrap(); // U(k,i), transposed use
            let contrib = u.tr_matvec(&seg);
            for (xv, c) in x[part.ranges[i].clone()].iter_mut().zip(contrib) {
                *xv -= c;
            }
        }
    }

    // Backward: x = L^{-T} y. L^T is block upper triangular: block (k,i) of
    // L^T equals L(i,k)^T.
    for k in (0..nsup).rev() {
        let r = part.ranges[k].clone();
        let mut seg = x[r.clone()].to_vec();
        for &i in &sym.fill.struct_of[k] {
            let l = store.get(i, k).unwrap();
            let contrib = l.tr_matvec(&x[part.ranges[i].clone()]);
            for (s, c) in seg.iter_mut().zip(contrib) {
                *s -= c;
            }
        }
        let d = store.get(k, k).unwrap();
        backward_subst_ltrans_unit(d, &mut seg);
        x[r].copy_from_slice(&seg);
    }
    x
}

/// Hager/Higham estimate of `||A^{-1}||_1` from a factored store. A handful
/// of solve pairs (`A`, then `A^T`) per iteration; the result is a lower
/// bound that is almost always within a small factor of the truth.
pub fn inverse_norm1_estimate(store: &BlockStore, sym: &Symbolic) -> f64 {
    let n = sym.part.n();
    if n == 0 {
        return 0.0;
    }
    let mut x = vec![1.0 / n as f64; n];
    let mut best = 0.0f64;
    for _ in 0..5 {
        let y = seq_solve(store, sym, &x); // A^{-1} x
        let est: f64 = y.iter().map(|v| v.abs()).sum();
        best = best.max(est);
        let xi: Vec<f64> = y
            .iter()
            .map(|v| if *v >= 0.0 { 1.0 } else { -1.0 })
            .collect();
        let z = seq_solve_transpose(store, sym, &xi); // A^{-T} sign(y)
        let (jmax, zmax) = z
            .iter()
            .enumerate()
            .fold((0usize, 0.0f64), |(jm, zm), (j, v)| {
                if v.abs() > zm {
                    (j, v.abs())
                } else {
                    (jm, zm)
                }
            });
        let ztx: f64 = z.iter().zip(&x).map(|(a, b)| a * b).sum();
        if zmax <= ztx {
            break; // converged
        }
        x = vec![0.0; n];
        x[jmax] = 1.0;
    }
    best
}

/// Estimated 1-norm condition number `||A||_1 * ||A^{-1}||_1`.
/// `a` is the (permuted) matrix matching the factored store.
pub fn condest_1(a: &sparsemat::Csr, store: &BlockStore, sym: &Symbolic) -> f64 {
    // ||A||_1 = max absolute column sum = max absolute row sum of A^T.
    let at = a.transpose();
    let norm1 = (0..at.nrows)
        .map(|i| at.row_vals(i).iter().map(|v| v.abs()).sum::<f64>())
        .fold(0.0f64, f64::max);
    norm1 * inverse_norm1_estimate(store, sym)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::seq_factor;
    use crate::store::InitValues;
    use ordering::{nested_dissection, Graph, NdOptions};
    use simgrid::Grid2d;
    use sparsemat::matgen::{grid2d_5pt, random_band};
    use sparsemat::testmats::Geometry;
    use sparsemat::Csr;
    use symbolic::Symbolic;

    fn factored(a: &Csr, geom: Geometry) -> (Csr, Symbolic, BlockStore) {
        let g = Graph::from_matrix(a);
        let tree = nested_dissection(
            &g,
            NdOptions {
                leaf_size: 8,
                geometry: geom,
                ..Default::default()
            },
        );
        let pa = a.permute_sym(&tree.perm).symmetrize_pattern();
        let sym = Symbolic::analyze(&pa, &tree, 8);
        let grid = Grid2d::new(1, 1);
        let mut store =
            BlockStore::build(&pa, &sym, &grid, 0, 0, &|_| true, InitValues::FromMatrix);
        seq_factor(&mut store, &sym, 1e-12);
        (pa, sym, store)
    }

    #[test]
    fn transpose_solve_is_correct() {
        let a = grid2d_5pt(8, 8, 0.2, 3); // genuinely unsymmetric values
        let (pa, sym, store) = factored(&a, Geometry::Grid2d { nx: 8, ny: 8 });
        let x_true: Vec<f64> = (0..pa.nrows).map(|i| ((i % 6) as f64) - 2.5).collect();
        let b = pa.transpose().matvec(&x_true); // A^T x
        let x = seq_solve_transpose(&store, &sym, &b);
        for (u, v) in x.iter().zip(&x_true) {
            assert!((u - v).abs() < 1e-8);
        }
    }

    /// Exact ||A^{-1}||_1 by solving against every unit vector (small n).
    fn exact_inv_norm1(store: &BlockStore, sym: &Symbolic) -> f64 {
        let n = sym.part.n();
        let mut best = 0.0f64;
        for j in 0..n {
            let mut e = vec![0.0; n];
            e[j] = 1.0;
            let col = seq_solve(store, sym, &e);
            best = best.max(col.iter().map(|v| v.abs()).sum());
        }
        best
    }

    #[test]
    fn estimator_is_tight_lower_bound() {
        for seed in 0..3 {
            let a = random_band(40, 3, 0.7, seed);
            let (_, sym, store) = factored(&a, Geometry::General);
            let est = inverse_norm1_estimate(&store, &sym);
            let exact = exact_inv_norm1(&store, &sym);
            assert!(est <= exact * (1.0 + 1e-10), "estimate above exact");
            assert!(
                est >= exact / 3.0,
                "seed {seed}: estimate {est} too far below exact {exact}"
            );
        }
    }

    #[test]
    fn laplacian_condition_grows_with_size() {
        // kappa(h^2 Laplacian) ~ n for 2D grids; the estimate must grow.
        let cond = |k: usize| {
            let a = grid2d_5pt(k, k, 0.0, 0);
            let (pa, sym, store) = factored(&a, Geometry::Grid2d { nx: k, ny: k });
            condest_1(&pa, &store, &sym)
        };
        let c8 = cond(8);
        let c16 = cond(16);
        assert!(c16 > 1.5 * c8, "condition must grow: {c8} -> {c16}");
    }
}
