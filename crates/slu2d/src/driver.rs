//! End-to-end 2D driver: order → analyze → distribute → factor → solve on a
//! simulated `pr x pc` machine. This is the baseline every experiment
//! normalizes against.

use crate::factor2d::{factor_nodes, FactorEnv, FactorOpts};
use crate::solve2d::solve_nodes;
use crate::store::{BlockStore, InitValues};
use ordering::{nested_dissection, Graph, NdOptions, SepTree};
use simgrid::topology::build_grid_comms;
use simgrid::{Grid3d, Machine, MemClass, RankReport, TimeModel};
use sparsemat::testmats::Geometry;
use sparsemat::Csr;
use std::sync::Arc;
use symbolic::Symbolic;

/// The shared, immutable pre-processing product: reordered matrix plus
/// symbolic analysis. Computed once on the host and shared read-only by all
/// simulated ranks (in a real run every rank computes or receives this
/// identically).
#[derive(Clone)]
pub struct Prepared {
    /// Original matrix.
    pub a: Arc<Csr>,
    /// Reordered, pattern-symmetrized matrix (`P A P^T`).
    pub pa: Arc<Csr>,
    /// Separator tree with the permutation.
    pub tree: Arc<SepTree>,
    /// Symbolic factorization.
    pub sym: Arc<Symbolic>,
}

impl Prepared {
    /// Run ordering and symbolic analysis.
    pub fn new(a: Csr, geometry: Geometry, leaf_size: usize, maxsup: usize) -> Prepared {
        Self::with_amalgamation(a, geometry, leaf_size, maxsup, None)
    }

    /// Like [`Prepared::new`], with optional relaxed-supernode amalgamation:
    /// subtrees of at most `amalgamate` columns collapse into single leaf
    /// supernodes before the symbolic phase (see
    /// `ordering::SepTree::amalgamate`).
    pub fn with_amalgamation(
        a: Csr,
        geometry: Geometry,
        leaf_size: usize,
        maxsup: usize,
        amalgamate: Option<usize>,
    ) -> Prepared {
        let g = Graph::from_matrix(&a);
        let mut tree = nested_dissection(
            &g,
            NdOptions {
                leaf_size,
                geometry,
                ..Default::default()
            },
        );
        if let Some(bound) = amalgamate {
            tree = tree.amalgamate(bound);
        }
        let pa = a.permute_sym(&tree.perm).symmetrize_pattern();
        let sym = Symbolic::analyze(&pa, &tree, maxsup);
        Prepared {
            a: Arc::new(a),
            pa: Arc::new(pa),
            tree: Arc::new(tree),
            sym: Arc::new(sym),
        }
    }

    /// Permute a right-hand side from original to elimination ordering.
    pub fn permute_rhs(&self, b: &[f64]) -> Vec<f64> {
        (0..b.len())
            .map(|new| b[self.tree.perm.old_of(new)])
            .collect()
    }

    /// Bring a solution from elimination back to original ordering.
    pub fn unpermute_solution(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; x.len()];
        for new in 0..x.len() {
            out[self.tree.perm.old_of(new)] = x[new];
        }
        out
    }
}

/// Result of a full 2D factor+solve run.
pub struct Run2dOutput {
    /// Solution in the original ordering (when a RHS was supplied).
    pub x: Option<Vec<f64>>,
    /// Per-rank reports (traffic, clocks, memory).
    pub reports: Vec<RankReport>,
    /// Total static-pivot perturbations.
    pub perturbations: usize,
}

/// Factor (and optionally solve) on a simulated `pr x pc` machine.
///
/// ```
/// use slu2d::driver::{run_2d, Prepared};
/// use slu2d::factor2d::FactorOpts;
/// use simgrid::TimeModel;
/// use sparsemat::testmats::Geometry;
///
/// let a = sparsemat::matgen::grid2d_5pt(10, 10, 0.1, 0);
/// let b = a.matvec(&vec![1.0; 100]);
/// let prep = Prepared::new(a, Geometry::Grid2d { nx: 10, ny: 10 }, 8, 8);
/// let out = run_2d(&prep, 2, 2, TimeModel::zero(), FactorOpts::default(), Some(b.clone()));
/// let x = out.x.unwrap();
/// assert!(prep.a.residual_inf(&x, &b) < 1e-9);
/// ```
pub fn run_2d(
    prep: &Prepared,
    pr: usize,
    pc: usize,
    model: TimeModel,
    opts: FactorOpts,
    rhs: Option<Vec<f64>>,
) -> Run2dOutput {
    let grid3 = Grid3d::new(pr, pc, 1);
    let machine = Machine::new(pr * pc, model);
    let pa = Arc::clone(&prep.pa);
    let sym = Arc::clone(&prep.sym);
    let rhs = rhs.map(|b| Arc::new(prep.permute_rhs(&b)));

    let out = machine.run(move |rank| {
        let comms = build_grid_comms(rank, &grid3);
        let (my_r, my_c, _) = comms.coords;
        let env = FactorEnv {
            grid: grid3.grid2d,
            my_r,
            my_c,
            row: comms.row,
            col: comms.col,
            opts,
        };
        let mut store = BlockStore::build(
            &pa,
            &sym,
            &grid3.grid2d,
            my_r,
            my_c,
            &|_| true,
            InitValues::FromMatrix,
        );
        // Ledger-driven accounting: every block charged once at build (the
        // symbolic pattern is fully allocated up front, so the old pair of
        // `record_memory` snapshots double-counted nothing and missed
        // transients). The high-water mark now falls out of the ledger,
        // identically to the 3D path.
        store.charge_to_ledger(rank, |i, j| {
            let class = if i < j {
                MemClass::UPanel
            } else {
                MemClass::LPanel
            };
            (class, 0)
        });
        rank.set_phase("fact");
        let nodes: Vec<usize> = (0..sym.nsup()).collect();
        let mut done = vec![false; sym.nsup()];
        let outcome = factor_nodes(rank, &env, &mut store, &sym, &nodes, &mut done);

        let x_partial = rhs.as_ref().map(|b| {
            rank.set_phase("solve");
            let xp = solve_nodes(rank, &env, &store, &sym, &nodes, b);
            // Materialize the full solution on local rank 0 of the layer.
            rank.reduce_sum(&comms.layer, 0, xp, simgrid::tags::CB_LAYER_XSUM)
        });
        (outcome.perturbations, x_partial.flatten())
    });

    let perturbations = out.results.iter().map(|(p, _)| p).sum();
    let x = out
        .results
        .into_iter()
        .find_map(|(_, x)| x)
        .map(|px| prep.unpermute_solution(&px));
    Run2dOutput {
        x,
        reports: out.reports,
        perturbations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsemat::matgen::{grid2d_5pt, grid3d_7pt};

    fn check_solve(a: Csr, geometry: Geometry, pr: usize, pc: usize) {
        let n = a.nrows;
        let x_true: Vec<f64> = (0..n).map(|i| ((i * 3 % 11) as f64) - 5.0).collect();
        let b = a.matvec(&x_true);
        let prep = Prepared::new(a, geometry, 8, 8);
        let out = run_2d(
            &prep,
            pr,
            pc,
            TimeModel::zero(),
            FactorOpts::default(),
            Some(b.clone()),
        );
        let x = out.x.expect("solution");
        let r = prep.a.residual_inf(&x, &b);
        let bmax = b.iter().fold(1.0f64, |m, v| m.max(v.abs()));
        assert!(
            r / bmax < 1e-8,
            "grid {pr}x{pc}: relative residual {}",
            r / bmax
        );
    }

    #[test]
    fn solves_on_1x1() {
        check_solve(
            grid2d_5pt(10, 10, 0.1, 1),
            Geometry::Grid2d { nx: 10, ny: 10 },
            1,
            1,
        );
    }

    #[test]
    fn solves_on_2x2() {
        check_solve(
            grid2d_5pt(12, 12, 0.1, 2),
            Geometry::Grid2d { nx: 12, ny: 12 },
            2,
            2,
        );
    }

    #[test]
    fn solves_on_rectangular_grids() {
        check_solve(
            grid2d_5pt(10, 10, 0.1, 3),
            Geometry::Grid2d { nx: 10, ny: 10 },
            1,
            4,
        );
        check_solve(
            grid2d_5pt(10, 10, 0.1, 4),
            Geometry::Grid2d { nx: 10, ny: 10 },
            3,
            2,
        );
    }

    #[test]
    fn solves_3d_problem_on_2x3() {
        check_solve(
            grid3d_7pt(4, 4, 4, 0.1, 5),
            Geometry::Grid3d {
                nx: 4,
                ny: 4,
                nz: 4,
            },
            2,
            3,
        );
    }

    #[test]
    fn distributed_matches_sequential_factors() {
        // The 2x2 distributed factorization must produce the same factors
        // as the sequential reference (same operations, same order, no
        // reductions -> tiny rounding differences only).
        use crate::seq::seq_factor;
        use crate::store::InitValues;
        let a = grid2d_5pt(8, 8, 0.1, 6);
        let prep = Prepared::new(a, Geometry::Grid2d { nx: 8, ny: 8 }, 6, 4);
        // Sequential factors.
        let g1 = simgrid::Grid2d::new(1, 1);
        let mut seq_store = BlockStore::build(
            &prep.pa,
            &prep.sym,
            &g1,
            0,
            0,
            &|_| true,
            InitValues::FromMatrix,
        );
        seq_factor(&mut seq_store, &prep.sym, 1e-10);

        // Distributed factors, gathered by re-running per rank and pulling
        // out each store (results channel carries the stores).
        let grid3 = Grid3d::new(2, 2, 1);
        let machine = Machine::new(4, TimeModel::zero());
        let pa = Arc::clone(&prep.pa);
        let sym = Arc::clone(&prep.sym);
        let out = machine.run(move |rank| {
            let comms = build_grid_comms(rank, &grid3);
            let (my_r, my_c, _) = comms.coords;
            let env = FactorEnv {
                grid: grid3.grid2d,
                my_r,
                my_c,
                row: comms.row,
                col: comms.col,
                opts: FactorOpts::default(),
            };
            let mut store = BlockStore::build(
                &pa,
                &sym,
                &grid3.grid2d,
                my_r,
                my_c,
                &|_| true,
                InitValues::FromMatrix,
            );
            let nodes: Vec<usize> = (0..sym.nsup()).collect();
            let mut done = vec![false; sym.nsup()];
            factor_nodes(rank, &env, &mut store, &sym, &nodes, &mut done);
            store
        });
        let g2 = simgrid::Grid2d::new(2, 2);
        for (i, j) in seq_store.keys() {
            let (r, c) = g2.owner(i, j);
            let dist_store = &out.results[g2.rank_of(r, c)];
            let d = dist_store.get(i, j).expect("block on owner");
            let s = seq_store.get(i, j).unwrap();
            for col in 0..s.cols() {
                for row in 0..s.rows() {
                    let diff = (d.at(row, col) - s.at(row, col)).abs();
                    assert!(
                        diff < 1e-9 * (1.0 + s.at(row, col).abs()),
                        "block ({i},{j}) entry ({row},{col}) differs by {diff}"
                    );
                }
            }
        }
    }

    #[test]
    fn lookahead_zero_and_eight_agree() {
        let a = grid2d_5pt(10, 10, 0.1, 7);
        let b: Vec<f64> = (0..100).map(|i| i as f64 * 0.01).collect();
        let prep = Prepared::new(a, Geometry::Grid2d { nx: 10, ny: 10 }, 8, 6);
        let o0 = run_2d(
            &prep,
            2,
            2,
            TimeModel::zero(),
            FactorOpts {
                lookahead: 0,
                ..Default::default()
            },
            Some(b.clone()),
        );
        let o8 = run_2d(
            &prep,
            2,
            2,
            TimeModel::zero(),
            FactorOpts {
                lookahead: 8,
                ..Default::default()
            },
            Some(b),
        );
        let x0 = o0.x.unwrap();
        let x8 = o8.x.unwrap();
        for (u, v) in x0.iter().zip(&x8) {
            assert!((u - v).abs() < 1e-10);
        }
    }
}
