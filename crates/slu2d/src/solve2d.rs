//! Distributed triangular solves on the 2D grid.
//!
//! Fan-in / fan-out substitution at supernode granularity: for each
//! supernode, partial products are reduced along the diagonal owner's
//! process row and the solved segment is broadcast down its process column.
//! Latency-bound (a few collectives per supernode), exactly like
//! SuperLU_DIST's solve phase.
//!
//! The forward and backward phases are exposed separately with an explicit
//! [`DistSolveState`] so the 3D solver can interleave them with z-axis
//! reductions and broadcasts (mirroring Algorithm 1's structure for the
//! solve, see `lu3d::solve3d`).

use crate::factor2d::FactorEnv;
use crate::store::BlockStore;
use densela::{backward_subst, flops, forward_subst_unit};
use simgrid::{HostPhase, Payload, Rank};
use std::collections::HashMap;
use std::sync::Arc;
use symbolic::Symbolic;

use simgrid::tags::{T_BWD_BC, T_BWD_RED, T_FWD_BC, T_FWD_RED};

/// Per-rank running state of a distributed triangular solve.
pub struct DistSolveState {
    /// Forward partial sums: this rank's accumulated `L(I,j) y_j`
    /// contributions, indexed by global (permuted) vector position.
    pub acc: Vec<f64>,
    /// Backward partial sums: accumulated `U(j,k) x_k` contributions.
    pub accu: Vec<f64>,
    /// Forward solutions known to this rank (diagonal owners and their
    /// process columns), keyed by supernode.
    pub y: HashMap<usize, Vec<f64>>,
    /// Backward solutions known to this rank, keyed by supernode.
    pub x: HashMap<usize, Vec<f64>>,
    /// Transposed block structure: `ublocks_into[k]` lists supernodes
    /// `j < k` holding a `U(j, k)` block. Shared (`Arc`) so repeated solves
    /// against the same factors — iterative-refinement sweeps in particular
    /// — build it only once.
    pub ublocks_into: Arc<Vec<Vec<usize>>>,
}

/// Build the transposed block index once per factorization; reuse it across
/// solves via [`DistSolveState::with_index`].
pub fn transpose_index(sym: &Symbolic) -> Arc<Vec<Vec<usize>>> {
    let mut ublocks_into: Vec<Vec<usize>> = vec![Vec::new(); sym.nsup()];
    for j in 0..sym.nsup() {
        for &i in &sym.fill.struct_of[j] {
            ublocks_into[i].push(j);
        }
    }
    Arc::new(ublocks_into)
}

impl DistSolveState {
    /// Fresh state for a solve over `sym`'s supernodes.
    pub fn new(sym: &Symbolic) -> DistSolveState {
        Self::with_index(sym, transpose_index(sym))
    }

    /// Fresh state reusing a prebuilt transpose index (see
    /// [`transpose_index`]).
    pub fn with_index(sym: &Symbolic, ublocks_into: Arc<Vec<Vec<usize>>>) -> DistSolveState {
        let n = sym.part.n();
        DistSolveState {
            acc: vec![0.0; n],
            accu: vec![0.0; n],
            y: HashMap::new(),
            x: HashMap::new(),
            ublocks_into,
        }
    }
}

/// Forward substitution over `nodes` (ascending): computes `y_k` on each
/// diagonal owner and spreads `L(I,k) y_k` contributions into `st.acc`.
/// Collective across the layer.
pub fn forward_nodes(
    rank: &mut Rank,
    env: &FactorEnv,
    store: &BlockStore,
    sym: &Symbolic,
    nodes: &[usize],
    b: &[f64],
    st: &mut DistSolveState,
) {
    let _host = rank.host_scope(HostPhase::SolveFwd);
    let part = &sym.part;
    let grid = env.grid;
    for &k in nodes {
        let (kr, kc) = (k % grid.pr, k % grid.pc);
        let r = part.ranges[k].clone();
        // 1. Reduce partial sums along the owner's process row.
        let mut yk: Option<Vec<f64>> = None;
        if env.my_r == kr {
            let seg: Vec<f64> = st.acc[r.clone()].to_vec();
            let reduced = rank.reduce_sum(&env.row, kc, seg, T_FWD_RED | k as u64);
            if let Some(sum) = reduced {
                // 2. Diagonal owner solves its segment.
                let f0 = flops::get();
                let mut seg: Vec<f64> = r.clone().map(|i| b[i]).collect();
                for (s, a) in seg.iter_mut().zip(sum) {
                    *s -= a;
                }
                forward_subst_unit(store.get(k, k).expect("diag"), &mut seg);
                rank.advance_compute(flops::get() - f0);
                yk = Some(seg);
            }
        }
        // 3. Broadcast y_k down the owner's process column.
        if env.my_c == kc {
            let payload = rank.bcast(&env.col, kr, yk.map(Payload::F64s), T_FWD_BC | k as u64);
            let seg = payload.into_f64s();
            // 4. Column ranks apply their L(I,k) blocks.
            let f0 = flops::get();
            for &i in &sym.fill.struct_of[k] {
                if i % grid.pr == env.my_r {
                    if let Some(l) = store.get(i, k) {
                        let contrib = l.matvec(&seg);
                        let ri = part.ranges[i].clone();
                        for (a, c) in st.acc[ri].iter_mut().zip(contrib) {
                            *a += c;
                        }
                    }
                }
            }
            rank.advance_compute(flops::get() - f0);
            st.y.insert(k, seg);
        }
    }
}

/// Apply an externally received ancestor solution `x_k` to this rank's
/// backward accumulators: `accu_j += U(j,k) x_k` for every owned `U(j,k)`.
/// Used by the 3D solve when ancestor solutions arrive over the z-axis
/// instead of through this layer's own backward pass. The caller must be in
/// process column `k % pc`.
pub fn apply_ancestor_x(
    rank: &mut Rank,
    env: &FactorEnv,
    store: &BlockStore,
    sym: &Symbolic,
    k: usize,
    xk: &[f64],
    st: &mut DistSolveState,
) {
    debug_assert_eq!(env.my_c, k % env.grid.pc);
    let f0 = flops::get();
    for &j in &st.ublocks_into[k] {
        if j % env.grid.pr == env.my_r {
            if let Some(u) = store.get(j, k) {
                let contrib = u.matvec(xk);
                let rj = sym.part.ranges[j].clone();
                for (a, c) in st.accu[rj].iter_mut().zip(contrib) {
                    *a += c;
                }
            }
        }
    }
    rank.advance_compute(flops::get() - f0);
    st.x.insert(k, xk.to_vec());
}

/// Backward substitution over `nodes` (processed in descending order):
/// computes `x_k` on each diagonal owner, writing solved segments into
/// `x_out`, and spreads `U(j,k) x_k` contributions into `st.accu`.
/// Collective across the layer.
pub fn backward_nodes(
    rank: &mut Rank,
    env: &FactorEnv,
    store: &BlockStore,
    sym: &Symbolic,
    nodes: &[usize],
    st: &mut DistSolveState,
    x_out: &mut [f64],
) {
    let _host = rank.host_scope(HostPhase::SolveBwd);
    let part = &sym.part;
    let grid = env.grid;
    for &k in nodes.iter().rev() {
        let (kr, kc) = (k % grid.pr, k % grid.pc);
        let r = part.ranges[k].clone();
        let mut xk: Option<Vec<f64>> = None;
        if env.my_r == kr {
            let seg: Vec<f64> = st.accu[r.clone()].to_vec();
            let reduced = rank.reduce_sum(&env.row, kc, seg, T_BWD_RED | k as u64);
            if let Some(sum) = reduced {
                let f0 = flops::get();
                let mut seg = st.y.get(&k).expect("diag owner solved y_k").clone();
                for (s, a) in seg.iter_mut().zip(sum) {
                    *s -= a;
                }
                backward_subst(store.get(k, k).expect("diag"), &mut seg);
                rank.advance_compute(flops::get() - f0);
                x_out[r.clone()].copy_from_slice(&seg);
                xk = Some(seg);
            }
        }
        if env.my_c == kc {
            let payload = rank.bcast(&env.col, kr, xk.map(Payload::F64s), T_BWD_BC | k as u64);
            let seg = payload.into_f64s();
            let f0 = flops::get();
            for &j in &st.ublocks_into[k] {
                if j % grid.pr == env.my_r {
                    if let Some(u) = store.get(j, k) {
                        let contrib = u.matvec(&seg);
                        let rj = part.ranges[j].clone();
                        for (a, c) in st.accu[rj].iter_mut().zip(contrib) {
                            *a += c;
                        }
                    }
                }
            }
            rank.advance_compute(flops::get() - f0);
            st.x.insert(k, seg);
        }
    }
}

/// Solve `L U x = b` on the 2D grid for the supernodes in `nodes`
/// (ascending; pass all supernodes for a full solve). `b` is the full
/// right-hand side in permuted ordering, available on every rank (read-only
/// input data). Returns this rank's *partial* solution vector: the segments
/// this rank solved (diagonal owners), zero elsewhere — sum across the
/// layer to materialize the full solution.
pub fn solve_nodes(
    rank: &mut Rank,
    env: &FactorEnv,
    store: &BlockStore,
    sym: &Symbolic,
    nodes: &[usize],
    b: &[f64],
) -> Vec<f64> {
    assert_eq!(b.len(), sym.part.n());
    let mut st = DistSolveState::new(sym);
    forward_nodes(rank, env, store, sym, nodes, b, &mut st);
    let mut x_out = vec![0.0; sym.part.n()];
    backward_nodes(rank, env, store, sym, nodes, &mut st, &mut x_out);
    x_out
}
