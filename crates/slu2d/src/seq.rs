//! Sequential reference: the same supernodal block LU on a single store.
//!
//! Used as the ground truth the distributed 2D and 3D factorizations are
//! validated against, and as the `P = 1` corner of every scaling
//! experiment.

use crate::store::BlockStore;
use densela::{
    backward_subst, forward_subst_unit, getrf, trsm_left_lower_unit, trsm_right_upper, PivotPolicy,
};
use symbolic::Symbolic;

/// Factor a full (undistributed) store in place. Returns the number of
/// static-pivot perturbations.
pub fn seq_factor(store: &mut BlockStore, sym: &Symbolic, pivot_threshold: f64) -> usize {
    let nsup = sym.nsup();
    let mut perturbations = 0;
    for k in 0..nsup {
        // Diagonal factorization.
        let info = {
            let d = store.get_mut(k, k).expect("diagonal block");
            getrf(
                d,
                PivotPolicy::Static {
                    threshold: pivot_threshold,
                },
            )
        };
        perturbations += info.perturbations;
        let d = store.get(k, k).unwrap().clone();
        let struct_k = sym.fill.struct_of[k].clone();
        // Panel solves.
        for &i in &struct_k {
            trsm_right_upper(&d, store.get_mut(i, k).expect("L block"));
        }
        for &j in &struct_k {
            trsm_left_lower_unit(&d, store.get_mut(k, j).expect("U block"));
        }
        // Schur updates.
        for &j in &struct_k {
            let u = store.get(k, j).unwrap().clone();
            for &i in &struct_k {
                let l = store.get(i, k).unwrap().clone();
                let t = store
                    .get_mut(i, j)
                    .unwrap_or_else(|| panic!("missing Schur target ({i},{j})"));
                densela::gemm(-1.0, &l, &u, 1.0, t);
            }
        }
    }
    perturbations
}

/// Solve `L U x = b` given a factored store; `b` and the result are in the
/// *permuted* ordering.
pub fn seq_solve(store: &BlockStore, sym: &Symbolic, b: &[f64]) -> Vec<f64> {
    let part = &sym.part;
    let n = part.n();
    assert_eq!(b.len(), n);
    let nsup = sym.nsup();
    let mut x = b.to_vec();

    // Forward: y = L^{-1} b, right-looking over supernodes.
    for k in 0..nsup {
        let r = part.ranges[k].clone();
        let d = store.get(k, k).unwrap();
        // Split borrow: solve the k segment in a scratch buffer.
        let mut seg = x[r.clone()].to_vec();
        forward_subst_unit(d, &mut seg);
        x[r.clone()].copy_from_slice(&seg);
        for &i in &sym.fill.struct_of[k] {
            let l = store.get(i, k).unwrap();
            let contrib = l.matvec(&seg);
            let ri = part.ranges[i].clone();
            for (xv, c) in x[ri].iter_mut().zip(contrib) {
                *xv -= c;
            }
        }
    }

    // Backward: x = U^{-1} y, left-looking over supernodes in reverse.
    for k in (0..nsup).rev() {
        let r = part.ranges[k].clone();
        let mut seg = x[r.clone()].to_vec();
        for &j in &sym.fill.struct_of[k] {
            let u = store.get(k, j).unwrap();
            let rj = part.ranges[j].clone();
            let contrib = u.matvec(&x[rj]);
            for (s, c) in seg.iter_mut().zip(contrib) {
                *s -= c;
            }
        }
        let d = store.get(k, k).unwrap();
        backward_subst(d, &mut seg);
        x[r].copy_from_slice(&seg);
    }
    x
}

/// Solve `L U X = B` for multiple right-hand sides at once, using the
/// block TRSM/GEMM kernels (one pass over the factors regardless of the
/// RHS count — the reason direct solvers amortize so well over many RHS).
/// `b` is `n x nrhs` in the permuted ordering; returns `X` of the same
/// shape.
pub fn seq_solve_multi(store: &BlockStore, sym: &Symbolic, b: &densela::Mat) -> densela::Mat {
    use densela::{gemm, trsm_left_lower_unit, Mat};
    let part = &sym.part;
    let n = part.n();
    assert_eq!(b.rows(), n);
    let nrhs = b.cols();
    let mut x = b.clone();

    let seg = |x: &Mat, k: usize| -> Mat {
        let r = part.ranges[k].clone();
        x.block(r.start, 0, r.end - r.start, nrhs)
    };

    // Forward: Y = L^{-1} B, right-looking.
    for k in 0..sym.nsup() {
        let d = store.get(k, k).unwrap();
        let mut yk = seg(&x, k);
        trsm_left_lower_unit(d, &mut yk);
        x.copy_block_from(&yk, part.ranges[k].start, 0);
        for &i in &sym.fill.struct_of[k] {
            let l = store.get(i, k).unwrap();
            let mut xi = seg(&x, i);
            gemm(-1.0, l, &yk, 1.0, &mut xi);
            x.copy_block_from(&xi, part.ranges[i].start, 0);
        }
    }
    // Backward: X = U^{-1} Y, left-looking in reverse.
    for k in (0..sym.nsup()).rev() {
        let mut acc = seg(&x, k);
        for &j in &sym.fill.struct_of[k] {
            let u = store.get(k, j).unwrap();
            let xj = seg(&x, j);
            gemm(-1.0, u, &xj, 1.0, &mut acc);
        }
        // Solve U_kk X_k = acc, column by column of the RHS block.
        let d = store.get(k, k).unwrap();
        for c in 0..nrhs {
            let mut col = acc.col(c).to_vec();
            densela::backward_subst(d, &mut col);
            for (i, v) in col.into_iter().enumerate() {
                *acc.at_mut(i, c) = v;
            }
        }
        x.copy_block_from(&acc, part.ranges[k].start, 0);
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::InitValues;
    use ordering::{nested_dissection, Graph, NdOptions};
    use simgrid::Grid2d;
    use sparsemat::matgen::{grid2d_5pt, grid3d_7pt, kkt_3d, random_band};
    use sparsemat::testmats::Geometry;
    use sparsemat::{Csr, Perm};
    use symbolic::Symbolic;

    /// Full pipeline: order, analyze, factor, solve; return the relative
    /// residual in the original ordering.
    fn factor_solve_residual(a: &Csr, geom: Geometry, leaf: usize, maxsup: usize) -> f64 {
        let g = Graph::from_matrix(a);
        let tree = nested_dissection(
            &g,
            NdOptions {
                leaf_size: leaf,
                geometry: geom,
                ..Default::default()
            },
        );
        let pa = a.permute_sym(&tree.perm).symmetrize_pattern();
        let sym = Symbolic::analyze(&pa, &tree, maxsup);
        let grid = Grid2d::new(1, 1);
        let mut store = crate::store::BlockStore::build(
            &pa,
            &sym,
            &grid,
            0,
            0,
            &|_| true,
            InitValues::FromMatrix,
        );
        seq_factor(&mut store, &sym, 1e-10);

        // Known solution in the ORIGINAL ordering.
        let x_true: Vec<f64> = (0..a.nrows).map(|i| ((i % 7) as f64) - 3.0).collect();
        let b = a.matvec(&x_true);
        let pb = permute_vec(&tree.perm, &b);
        let px = seq_solve(&store, &sym, &pb);
        let x = unpermute_vec(&tree.perm, &px);
        let r = a.residual_inf(&x, &b);
        let bnorm = b.iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1.0);
        r / bnorm
    }

    fn permute_vec(p: &Perm, v: &[f64]) -> Vec<f64> {
        (0..v.len()).map(|new| v[p.old_of(new)]).collect()
    }

    fn unpermute_vec(p: &Perm, v: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; v.len()];
        for new in 0..v.len() {
            out[p.old_of(new)] = v[new];
        }
        out
    }

    #[test]
    fn multi_rhs_matches_repeated_single_solves() {
        use densela::Mat;
        let a = grid2d_5pt(9, 9, 0.15, 8);
        let g = Graph::from_matrix(&a);
        let tree = nested_dissection(
            &g,
            NdOptions {
                leaf_size: 8,
                geometry: Geometry::Grid2d { nx: 9, ny: 9 },
                ..Default::default()
            },
        );
        let pa = a.permute_sym(&tree.perm).symmetrize_pattern();
        let sym = Symbolic::analyze(&pa, &tree, 8);
        let grid = Grid2d::new(1, 1);
        let mut store =
            BlockStore::build(&pa, &sym, &grid, 0, 0, &|_| true, InitValues::FromMatrix);
        seq_factor(&mut store, &sym, 1e-10);

        let n = pa.nrows;
        let nrhs = 5;
        let b = Mat::from_fn(n, nrhs, |i, j| ((i * 3 + j * 11) % 17) as f64 - 8.0);
        let xm = seq_solve_multi(&store, &sym, &b);
        for c in 0..nrhs {
            let xs = seq_solve(&store, &sym, b.col(c));
            for i in 0..n {
                assert!(
                    (xm.at(i, c) - xs[i]).abs() < 1e-10,
                    "rhs {c} row {i}: {} vs {}",
                    xm.at(i, c),
                    xs[i]
                );
            }
        }
    }

    #[test]
    fn solves_planar_grid() {
        let a = grid2d_5pt(12, 12, 0.1, 3);
        let r = factor_solve_residual(&a, Geometry::Grid2d { nx: 12, ny: 12 }, 8, 8);
        assert!(r < 1e-9, "relative residual {r}");
    }

    #[test]
    fn solves_3d_grid() {
        let a = grid3d_7pt(5, 5, 5, 0.1, 4);
        let r = factor_solve_residual(
            &a,
            Geometry::Grid3d {
                nx: 5,
                ny: 5,
                nz: 5,
            },
            12,
            10,
        );
        assert!(r < 1e-9, "relative residual {r}");
    }

    #[test]
    fn solves_kkt_saddle_point() {
        let a = kkt_3d(3, 3, 3, 1e-2, 5);
        let r = factor_solve_residual(&a, Geometry::General, 12, 8);
        assert!(r < 1e-7, "relative residual {r}");
    }

    #[test]
    fn solves_random_band_matrices() {
        for seed in 0..3 {
            let a = random_band(60, 5, 0.5, seed);
            let r = factor_solve_residual(&a, Geometry::General, 10, 6);
            assert!(r < 1e-8, "seed {seed}: relative residual {r}");
        }
    }

    #[test]
    fn factor_matches_dense_lu() {
        // Reconstruct the dense matrix from block factors and compare to a
        // dense solve of the same system.
        let a = grid2d_5pt(5, 5, 0.2, 9);
        let r = factor_solve_residual(&a, Geometry::Grid2d { nx: 5, ny: 5 }, 6, 4);
        assert!(r < 1e-10);
    }
}
