//! The batched gather-GEMM-scatter Schur path must be bitwise identical to
//! the per-block path: same factors, down to the last ULP, for every
//! supernode partition and grid shape. This is the contract that lets
//! `FactorOpts::batched_schur` be a pure host-performance knob — simulated
//! clocks, traces, and numerics are unchanged.

use proptest::prelude::*;
use simgrid::topology::build_grid_comms;
use simgrid::{Grid3d, Machine, TimeModel};
use slu2d::driver::Prepared;
use slu2d::factor2d::{factor_nodes, FactorEnv, FactorOpts};
use slu2d::store::{BlockStore, InitValues};
use sparsemat::matgen::{grid2d_5pt, random_band};
use sparsemat::testmats::Geometry;
use std::sync::Arc;

/// Factor `prep` on a simulated `pr x pc` grid and return every rank's
/// post-factorization block store.
fn factor_stores(prep: &Prepared, pr: usize, pc: usize, batched: bool) -> Vec<BlockStore> {
    let grid3 = Grid3d::new(pr, pc, 1);
    let machine = Machine::new(pr * pc, TimeModel::zero());
    let pa = Arc::clone(&prep.pa);
    let sym = Arc::clone(&prep.sym);
    let out = machine.run(move |rank| {
        let comms = build_grid_comms(rank, &grid3);
        let (my_r, my_c, _) = comms.coords;
        let env = FactorEnv {
            grid: grid3.grid2d,
            my_r,
            my_c,
            row: comms.row,
            col: comms.col,
            opts: FactorOpts {
                batched_schur: batched,
                ..Default::default()
            },
        };
        let mut store = BlockStore::build(
            &pa,
            &sym,
            &grid3.grid2d,
            my_r,
            my_c,
            &|_| true,
            InitValues::FromMatrix,
        );
        let nodes: Vec<usize> = (0..sym.nsup()).collect();
        let mut done = vec![false; sym.nsup()];
        factor_nodes(rank, &env, &mut store, &sym, &nodes, &mut done);
        store
    });
    out.results
}

/// Every block of every rank must agree to the bit between the two paths.
fn assert_stores_bitwise_equal(per_block: &[BlockStore], batched: &[BlockStore], ctx: &str) {
    assert_eq!(per_block.len(), batched.len(), "{ctx}: rank count");
    for (rid, (a, b)) in per_block.iter().zip(batched).enumerate() {
        let mut keys_a: Vec<_> = a.keys().collect();
        let mut keys_b: Vec<_> = b.keys().collect();
        keys_a.sort_unstable();
        keys_b.sort_unstable();
        assert_eq!(keys_a, keys_b, "{ctx}: rank {rid} block sets differ");
        for (i, j) in keys_a {
            let ma = a.get(i, j).unwrap().as_slice();
            let mb = b.get(i, j).unwrap().as_slice();
            assert_eq!(
                ma.len(),
                mb.len(),
                "{ctx}: rank {rid} block ({i},{j}) shape"
            );
            for (e, (va, vb)) in ma.iter().zip(mb).enumerate() {
                assert_eq!(
                    va.to_bits(),
                    vb.to_bits(),
                    "{ctx}: rank {rid} block ({i},{j}) elem {e}: {va} vs {vb}"
                );
            }
        }
    }
}

#[test]
fn batched_matches_per_block_on_pinned_grids() {
    let a = grid2d_5pt(14, 14, 0.1, 42);
    let prep = Prepared::new(a, Geometry::Grid2d { nx: 14, ny: 14 }, 8, 8);
    for (pr, pc) in [(1, 1), (2, 2), (1, 4), (3, 2)] {
        let per_block = factor_stores(&prep, pr, pc, false);
        let batched = factor_stores(&prep, pr, pc, true);
        assert_stores_bitwise_equal(&per_block, &batched, &format!("grid {pr}x{pc}"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 10, // each case factors the matrix twice on simulated ranks
        .. ProptestConfig::default()
    })]

    /// Bitwise identity holds for random matrices, random supernode
    /// partitions (leaf size and maxsup vary the partition), and random
    /// grid shapes.
    #[test]
    fn batched_matches_per_block_everywhere(
        n in 30usize..90,
        bw in 1usize..6,
        fill in 0.3f64..0.9,
        seed in 0u64..1000,
        leaf in 4usize..16,
        maxsup in 2usize..24,
        pr in 1usize..4,
        pc in 1usize..4,
    ) {
        let a = random_band(n, bw, fill, seed);
        let prep = Prepared::new(a, Geometry::General, leaf, maxsup);
        let per_block = factor_stores(&prep, pr, pc, false);
        let batched = factor_stores(&prep, pr, pc, true);
        assert_stores_bitwise_equal(
            &per_block,
            &batched,
            &format!("n={n} bw={bw} seed={seed} leaf={leaf} maxsup={maxsup} grid {pr}x{pc}"),
        );
    }
}

/// One-off diagnostic: fraction of zero-scale (skipped) work in the Schur
/// updates of a serena3d-like 3D problem. Run with `--ignored --nocapture`.
#[test]
#[ignore]
fn zero_scale_fraction_probe() {
    let s = 20;
    let a = sparsemat::matgen::grid3d_7pt(s, s, s, 0.1, 15);
    let prep = Prepared::new(
        a,
        Geometry::Grid3d {
            nx: s,
            ny: s,
            nz: s,
        },
        32,
        32,
    );
    let grid3 = Grid3d::new(1, 1, 1);
    let machine = Machine::new(1, TimeModel::zero());
    let pa = Arc::clone(&prep.pa);
    let sym = Arc::clone(&prep.sym);
    let out = machine.run(move |rank| {
        let comms = build_grid_comms(rank, &grid3);
        let (my_r, my_c, _) = comms.coords;
        let env = FactorEnv {
            grid: grid3.grid2d,
            my_r,
            my_c,
            row: comms.row,
            col: comms.col,
            opts: FactorOpts::default(),
        };
        let mut store = BlockStore::build(
            &pa,
            &sym,
            &grid3.grid2d,
            my_r,
            my_c,
            &|_| true,
            InitValues::FromMatrix,
        );
        let nodes: Vec<usize> = (0..sym.nsup()).collect();
        let mut done = vec![false; sym.nsup()];
        factor_nodes(rank, &env, &mut store, &sym, &nodes, &mut done);
        (densela::flops::get(), densela::flops::skipped())
    });
    let (performed, skipped) = out.results[0];
    println!(
        "performed {performed:.3e} skipped {skipped:.3e} zero-fraction {:.1}%",
        100.0 * skipped as f64 / (performed + skipped) as f64
    );
}
