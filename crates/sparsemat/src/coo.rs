//! Triplet (coordinate) format: the builder format for generators and I/O.

use crate::csr::Csr;

/// A sparse matrix in coordinate (triplet) form. Duplicate entries are
/// allowed and are summed on conversion to [`Csr`].
#[derive(Clone, Debug, Default)]
pub struct Coo {
    pub nrows: usize,
    pub ncols: usize,
    pub rows: Vec<usize>,
    pub cols: Vec<usize>,
    pub vals: Vec<f64>,
}

impl Coo {
    /// An empty `nrows x ncols` matrix.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        Coo {
            nrows,
            ncols,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Reserve space for `n` additional entries.
    pub fn reserve(&mut self, n: usize) {
        self.rows.reserve(n);
        self.cols.reserve(n);
        self.vals.reserve(n);
    }

    /// Append one entry. Panics on out-of-range indices.
    #[inline]
    pub fn push(&mut self, i: usize, j: usize, v: f64) {
        assert!(
            i < self.nrows && j < self.ncols,
            "entry ({i},{j}) out of range"
        );
        self.rows.push(i);
        self.cols.push(j);
        self.vals.push(v);
    }

    /// Number of stored entries (duplicates counted separately).
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Convert to CSR, summing duplicates and dropping explicit zeros that
    /// result from cancellation is *not* done (explicit zeros are kept so
    /// patterns remain predictable for symbolic analysis).
    pub fn to_csr(&self) -> Csr {
        let nnz = self.nnz();
        // Counting sort by row.
        let mut row_counts = vec![0usize; self.nrows + 1];
        for &r in &self.rows {
            row_counts[r + 1] += 1;
        }
        for i in 0..self.nrows {
            row_counts[i + 1] += row_counts[i];
        }
        let mut order: Vec<usize> = vec![0; nnz];
        {
            let mut next = row_counts.clone();
            for (k, &r) in self.rows.iter().enumerate() {
                order[next[r]] = k;
                next[r] += 1;
            }
        }
        // Within each row, sort by column and merge duplicates.
        let mut row_ptr = Vec::with_capacity(self.nrows + 1);
        let mut col_idx = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        row_ptr.push(0);
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for r in 0..self.nrows {
            scratch.clear();
            for &k in &order[row_counts[r]..row_counts[r + 1]] {
                scratch.push((self.cols[k], self.vals[k]));
            }
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut it = scratch.iter().peekable();
            while let Some(&(c, v)) = it.next() {
                let mut sum = v;
                while let Some(&&(c2, v2)) = it.peek() {
                    if c2 == c {
                        sum += v2;
                        it.next();
                    } else {
                        break;
                    }
                }
                col_idx.push(c);
                values.push(sum);
            }
            row_ptr.push(col_idx.len());
        }
        Csr {
            nrows: self.nrows,
            ncols: self.ncols,
            row_ptr,
            col_idx,
            values,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicates_are_summed() {
        let mut c = Coo::new(2, 2);
        c.push(0, 1, 2.0);
        c.push(0, 1, 3.0);
        c.push(1, 0, -1.0);
        let m = c.to_csr();
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(0, 1), 5.0);
        assert_eq!(m.get(1, 0), -1.0);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn rows_sorted_by_column() {
        let mut c = Coo::new(1, 5);
        for &j in &[4usize, 0, 2, 3, 1] {
            c.push(0, j, j as f64);
        }
        let m = c.to_csr();
        assert_eq!(m.col_idx, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic]
    fn out_of_range_rejected() {
        let mut c = Coo::new(2, 2);
        c.push(2, 0, 1.0);
    }
}
