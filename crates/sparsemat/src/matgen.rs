//! Generators for the structural proxies of the paper's test matrices.
//!
//! The paper evaluates on SuiteSparse matrices (Table III) that are not
//! available offline and are far larger than a single machine can factor
//! quickly. Each generator below reproduces the *separator structure* of one
//! matrix class at a configurable scale, which is the property the paper's
//! analysis (§IV) and experiments actually depend on:
//!
//! - planar / 2D-geometry: [`grid2d_5pt`], [`grid2d_9pt`], [`grid2d_random_deletions`]
//! - non-planar / 3D-geometry: [`grid3d_7pt`], [`grid3d_27pt`]
//! - nearly planar ("large door"): [`slab3d`]
//! - KKT saddle-point (nlpkkt proxy): [`kkt_3d`]
//!
//! All generators produce pattern-symmetric matrices. When `unsym > 0` the
//! values (not the pattern) are perturbed asymmetrically so the factorization
//! is a genuine LU rather than a disguised Cholesky.
//!
//! ```
//! use sparsemat::matgen::{grid2d_5pt, kkt_3d};
//!
//! let a = grid2d_5pt(32, 32, 0.1, 42);
//! assert_eq!(a.nrows, 1024);
//! assert!(a.is_pattern_symmetric());
//!
//! let k = kkt_3d(4, 4, 4, 1e-2, 0); // saddle point: 2n x 2n
//! assert_eq!(k.nrows, 128);
//! ```

use crate::coo::Coo;
use crate::csr::Csr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Map a 2D grid point to its vertex index (x fastest).
#[inline]
pub fn idx2d(nx: usize, x: usize, y: usize) -> usize {
    y * nx + x
}

/// Map a 3D grid point to its vertex index (x fastest, then y).
#[inline]
pub fn idx3d(nx: usize, ny: usize, x: usize, y: usize, z: usize) -> usize {
    (z * ny + y) * nx + x
}

fn unsym_val(rng: &mut StdRng, base: f64, unsym: f64) -> f64 {
    if unsym == 0.0 {
        base
    } else {
        base * (1.0 + unsym * (rng.gen::<f64>() - 0.5))
    }
}

/// 2D 5-point Laplacian on an `nx x ny` grid — the `K2D5pt` planar model
/// problem. Diagonal `4 + shift`, off-diagonals `-1` (perturbed by `unsym`).
pub fn grid2d_5pt(nx: usize, ny: usize, unsym: f64, seed: u64) -> Csr {
    let n = nx * ny;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = Coo::new(n, n);
    coo.reserve(5 * n);
    for y in 0..ny {
        for x in 0..nx {
            let v = idx2d(nx, x, y);
            coo.push(v, v, 4.0 + 0.01);
            let mut link = |u: usize, rng: &mut StdRng| {
                coo.push(v, u, unsym_val(rng, -1.0, unsym));
            };
            if x > 0 {
                link(idx2d(nx, x - 1, y), &mut rng);
            }
            if x + 1 < nx {
                link(idx2d(nx, x + 1, y), &mut rng);
            }
            if y > 0 {
                link(idx2d(nx, x, y - 1), &mut rng);
            }
            if y + 1 < ny {
                link(idx2d(nx, x, y + 1), &mut rng);
            }
        }
    }
    coo.to_csr()
}

/// 2D 9-point Laplacian on an `nx x ny` grid — the `S2D9pt` planar model
/// problem (adds diagonal neighbours to the 5-point stencil).
pub fn grid2d_9pt(nx: usize, ny: usize, unsym: f64, seed: u64) -> Csr {
    let n = nx * ny;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = Coo::new(n, n);
    coo.reserve(9 * n);
    for y in 0..ny {
        for x in 0..nx {
            let v = idx2d(nx, x, y);
            coo.push(v, v, 8.0 + 0.01);
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    if dx == 0 && dy == 0 {
                        continue;
                    }
                    let (ux, uy) = (x as i64 + dx, y as i64 + dy);
                    if ux < 0 || uy < 0 || ux >= nx as i64 || uy >= ny as i64 {
                        continue;
                    }
                    let u = idx2d(nx, ux as usize, uy as usize);
                    coo.push(v, u, unsym_val(&mut rng, -1.0, unsym));
                }
            }
        }
    }
    coo.to_csr()
}

/// A planar circuit-like graph: a 2D 5-point grid with a fraction
/// `deletion_prob` of its edges removed (symmetrically) — the `G3_circuit` /
/// `ecology1` proxy. The diagonal keeps the full degree so the matrix stays
/// diagonally dominant.
pub fn grid2d_random_deletions(nx: usize, ny: usize, deletion_prob: f64, seed: u64) -> Csr {
    let n = nx * ny;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = Coo::new(n, n);
    for y in 0..ny {
        for x in 0..nx {
            let v = idx2d(nx, x, y);
            coo.push(v, v, 4.2);
            // Only emit "forward" edges and mirror them so deletion is
            // symmetric.
            let fwd = |u: usize, rng: &mut StdRng, coo: &mut Coo| {
                if rng.gen::<f64>() >= deletion_prob {
                    coo.push(v, u, -1.0);
                    coo.push(u, v, -1.0);
                }
            };
            if x + 1 < nx {
                fwd(idx2d(nx, x + 1, y), &mut rng, &mut coo);
            }
            if y + 1 < ny {
                fwd(idx2d(nx, x, y + 1), &mut rng, &mut coo);
            }
        }
    }
    coo.to_csr()
}

/// 3D 7-point Laplacian on an `nx x ny x nz` grid — the strongly non-planar
/// model problem (`Serena` / 3D-PDE proxy).
pub fn grid3d_7pt(nx: usize, ny: usize, nz: usize, unsym: f64, seed: u64) -> Csr {
    let n = nx * ny * nz;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = Coo::new(n, n);
    coo.reserve(7 * n);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let v = idx3d(nx, ny, x, y, z);
                coo.push(v, v, 6.0 + 0.01);
                let mut link = |u: usize, rng: &mut StdRng| {
                    coo.push(v, u, unsym_val(rng, -1.0, unsym));
                };
                if x > 0 {
                    link(idx3d(nx, ny, x - 1, y, z), &mut rng);
                }
                if x + 1 < nx {
                    link(idx3d(nx, ny, x + 1, y, z), &mut rng);
                }
                if y > 0 {
                    link(idx3d(nx, ny, x, y - 1, z), &mut rng);
                }
                if y + 1 < ny {
                    link(idx3d(nx, ny, x, y + 1, z), &mut rng);
                }
                if z > 0 {
                    link(idx3d(nx, ny, x, y, z - 1), &mut rng);
                }
                if z + 1 < nz {
                    link(idx3d(nx, ny, x, y, z + 1), &mut rng);
                }
            }
        }
    }
    coo.to_csr()
}

/// 3D 27-point Laplacian — a denser non-planar stencil approximating
/// high-order FEM discretizations (`audikw_1` / `dielFilter` proxy: large
/// `nnz/n` like the paper's structural matrices).
pub fn grid3d_27pt(nx: usize, ny: usize, nz: usize, unsym: f64, seed: u64) -> Csr {
    let n = nx * ny * nz;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = Coo::new(n, n);
    coo.reserve(27 * n);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let v = idx3d(nx, ny, x, y, z);
                coo.push(v, v, 26.0 + 0.01);
                for dz in -1i64..=1 {
                    for dy in -1i64..=1 {
                        for dx in -1i64..=1 {
                            if dx == 0 && dy == 0 && dz == 0 {
                                continue;
                            }
                            let (ux, uy, uz) = (x as i64 + dx, y as i64 + dy, z as i64 + dz);
                            if ux < 0
                                || uy < 0
                                || uz < 0
                                || ux >= nx as i64
                                || uy >= ny as i64
                                || uz >= nz as i64
                            {
                                continue;
                            }
                            let u = idx3d(nx, ny, ux as usize, uy as usize, uz as usize);
                            coo.push(v, u, unsym_val(&mut rng, -1.0, unsym));
                        }
                    }
                }
            }
        }
    }
    coo.to_csr()
}

/// A thin 3D slab (`nx x ny x nz` with `nz << nx, ny`): the `ldoor` proxy.
/// The paper observes that a "large door" is a nearly planar 3D object that
/// partitions like a 2D one — this generator reproduces that geometry.
pub fn slab3d(nx: usize, ny: usize, nz: usize, unsym: f64, seed: u64) -> Csr {
    assert!(nz <= nx && nz <= ny, "slab must be thin in z");
    grid3d_7pt(nx, ny, nz, unsym, seed)
}

/// A KKT saddle-point system on a 3D grid: the `nlpkkt80` proxy.
///
/// Builds the 2n x 2n matrix
/// ```text
///   [ H   J^T ]
///   [ J  -d I ]
/// ```
/// where `H` is a 3D 7-point Laplacian (the Hessian block) and `J` couples
/// each constraint to a small neighbourhood of primal variables (the Jacobian
/// block). `d` is a small regularization so static pivoting stays stable —
/// the true nlpkkt zero block is handled by SuperLU's perturbation, which we
/// avoid relying on for the *benchmark* matrices. Pattern is symmetric.
pub fn kkt_3d(nx: usize, ny: usize, nz: usize, reg: f64, seed: u64) -> Csr {
    let n = nx * ny * nz;
    let h = grid3d_7pt(nx, ny, nz, 0.0, seed);
    let mut coo = Coo::new(2 * n, 2 * n);
    coo.reserve(2 * h.nnz() + 8 * n);
    // H block.
    for i in 0..n {
        for (c, v) in h.row_cols(i).iter().zip(h.row_vals(i)) {
            coo.push(i, *c, *v);
        }
    }
    // J: constraint i couples primal i and its +x / +y / +z neighbours
    // (a discrete divergence-like operator).
    let push_j = |ci: usize, pj: usize, v: f64, coo: &mut Coo| {
        coo.push(n + ci, pj, v); // J
        coo.push(pj, n + ci, v); // J^T
    };
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let i = idx3d(nx, ny, x, y, z);
                push_j(i, i, 1.0, &mut coo);
                if x + 1 < nx {
                    push_j(i, idx3d(nx, ny, x + 1, y, z), -0.5, &mut coo);
                }
                if y + 1 < ny {
                    push_j(i, idx3d(nx, ny, x, y + 1, z), -0.5, &mut coo);
                }
                if z + 1 < nz {
                    push_j(i, idx3d(nx, ny, x, y, z + 1), -0.5, &mut coo);
                }
            }
        }
    }
    // Regularized (2,2) block.
    for i in 0..n {
        coo.push(n + i, n + i, -reg);
    }
    coo.to_csr()
}

/// A 5-point Laplacian on an L-shaped domain: a `k x k` grid with the
/// upper-right quadrant removed. The top-level separator splits it into a
/// full half and a half-sized half, producing the *unbalanced* elimination
/// tree that motivates the paper's greedy inter-grid load-balance heuristic
/// (Fig. 8). Returns the matrix; the geometry is irregular, so use the
/// multilevel orderer (`Geometry::General`).
pub fn grid2d_lshape(k: usize, unsym: f64, seed: u64) -> Csr {
    assert!(k >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let half = k / 2;
    let inside = |x: usize, y: usize| -> bool { !(x >= half && y >= half) };
    // Compact vertex numbering over the L.
    let mut id = vec![usize::MAX; k * k];
    let mut n = 0;
    for y in 0..k {
        for x in 0..k {
            if inside(x, y) {
                id[idx2d(k, x, y)] = n;
                n += 1;
            }
        }
    }
    let mut coo = Coo::new(n, n);
    for y in 0..k {
        for x in 0..k {
            if !inside(x, y) {
                continue;
            }
            let v = id[idx2d(k, x, y)];
            coo.push(v, v, 4.0 + 0.01);
            let link = |ux: i64, uy: i64, rng: &mut StdRng, coo: &mut Coo| {
                if ux < 0 || uy < 0 || ux >= k as i64 || uy >= k as i64 {
                    return;
                }
                let (ux, uy) = (ux as usize, uy as usize);
                if inside(ux, uy) {
                    coo.push(v, id[idx2d(k, ux, uy)], unsym_val(rng, -1.0, unsym));
                }
            };
            link(x as i64 - 1, y as i64, &mut rng, &mut coo);
            link(x as i64 + 1, y as i64, &mut rng, &mut coo);
            link(x as i64, y as i64 - 1, &mut rng, &mut coo);
            link(x as i64, y as i64 + 1, &mut rng, &mut coo);
        }
    }
    coo.to_csr()
}

/// Anisotropic 2D 5-point operator: `-eps * u_xx - u_yy` discretized on an
/// `nx x ny` grid. Strong anisotropy (`eps << 1`) makes the x-direction
/// coupling weak, which stresses orderings: cutting across the strong
/// (y) direction is much cheaper than the geometric median plane. A
/// standard hard case for partitioners.
pub fn grid2d_aniso(nx: usize, ny: usize, eps: f64, seed: u64) -> Csr {
    assert!(eps > 0.0);
    let n = nx * ny;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = Coo::new(n, n);
    coo.reserve(5 * n);
    for y in 0..ny {
        for x in 0..nx {
            let v = idx2d(nx, x, y);
            coo.push(v, v, 2.0 * eps + 2.0 + 0.01);
            let mut link = |u: usize, w: f64, rng: &mut StdRng| {
                coo.push(v, u, unsym_val(rng, -w, 0.0));
            };
            if x > 0 {
                link(idx2d(nx, x - 1, y), eps, &mut rng);
            }
            if x + 1 < nx {
                link(idx2d(nx, x + 1, y), eps, &mut rng);
            }
            if y > 0 {
                link(idx2d(nx, x, y - 1), 1.0, &mut rng);
            }
            if y + 1 < ny {
                link(idx2d(nx, x, y + 1), 1.0, &mut rng);
            }
        }
    }
    coo.to_csr()
}

/// Shifted (Helmholtz-like) 2D operator: the 5-point Laplacian minus
/// `shift * I`. For shifts inside the spectrum the matrix is symmetric
/// *indefinite* — small or negative pivots appear under static pivoting,
/// exercising the perturbation + iterative-refinement path the paper
/// relies on (§VI).
pub fn grid2d_helmholtz(nx: usize, ny: usize, shift: f64, seed: u64) -> Csr {
    let base = grid2d_5pt(nx, ny, 0.0, seed);
    let mut coo = Coo::new(base.nrows, base.ncols);
    for i in 0..base.nrows {
        for (j, v) in base.row_cols(i).iter().zip(base.row_vals(i)) {
            let val = if i == *j { v - shift } else { *v };
            coo.push(i, *j, val);
        }
    }
    coo.to_csr()
}

/// Two 5-point grids of *different sizes* joined through a thin interface:
/// the canonical unbalanced-elimination-tree input (paper Fig. 8). Nested
/// dissection cuts the small interface first, leaving one large and one
/// small subtree — the naive subtree-per-grid mapping then idles half the
/// machine, while the greedy heuristic re-balances by descending into the
/// large subtree.
pub fn two_domains(k_big: usize, k_small: usize, unsym: f64, seed: u64) -> Csr {
    assert!(k_big >= k_small && k_small >= 2);
    let (na, nb) = (k_big * k_big, k_small * k_small);
    let a = grid2d_5pt(k_big, k_big, unsym, seed);
    let b = grid2d_5pt(k_small, k_small, unsym, seed ^ 0xabcd);
    let mut coo = Coo::new(na + nb, na + nb);
    for i in 0..na {
        for (c, v) in a.row_cols(i).iter().zip(a.row_vals(i)) {
            coo.push(i, *c, *v);
        }
    }
    for i in 0..nb {
        for (c, v) in b.row_cols(i).iter().zip(b.row_vals(i)) {
            coo.push(na + i, na + *c, *v);
        }
    }
    // Couple the right edge of the big grid to the left edge of the small
    // one through k_small interface edges.
    for y in 0..k_small {
        let u = idx2d(k_big, k_big - 1, y); // in A
        let v = na + idx2d(k_small, 0, y); // in B
        coo.push(u, v, -0.5);
        coo.push(v, u, -0.5);
    }
    coo.to_csr()
}

/// A random banded diagonally dominant matrix; used by property tests as an
/// "arbitrary sparse matrix" source with guaranteed nonsingularity.
pub fn random_band(n: usize, bandwidth: usize, fill_prob: f64, seed: u64) -> Csr {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = Coo::new(n, n);
    for i in 0..n {
        let mut rowsum = 0.0;
        let lo = i.saturating_sub(bandwidth);
        let hi = (i + bandwidth + 1).min(n);
        for j in lo..hi {
            if j != i && rng.gen::<f64>() < fill_prob {
                let v: f64 = rng.gen::<f64>() * 2.0 - 1.0;
                coo.push(i, j, v);
                rowsum += v.abs();
            }
        }
        coo.push(i, i, rowsum + 1.0 + rng.gen::<f64>());
    }
    // Symmetrize the pattern so ordering/symbolic can assume it.
    coo.to_csr().symmetrize_pattern()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid2d_5pt_structure() {
        let a = grid2d_5pt(4, 3, 0.0, 0);
        assert_eq!(a.nrows, 12);
        // Interior vertex has 5 entries, corner has 3.
        assert_eq!(a.row_cols(idx2d(4, 1, 1)).len(), 5);
        assert_eq!(a.row_cols(idx2d(4, 0, 0)).len(), 3);
        assert!(a.is_pattern_symmetric());
        // nnz = 5n - 2*(boundary deficits) = n*5 - 2*(nx + ny)*... just check count:
        // edges = (nx-1)*ny + nx*(ny-1) = 3*3 + 4*2 = 17, nnz = n + 2*edges = 12+34
        assert_eq!(a.nnz(), 46);
    }

    #[test]
    fn grid3d_7pt_structure() {
        let a = grid3d_7pt(3, 3, 3, 0.0, 0);
        assert_eq!(a.nrows, 27);
        assert_eq!(a.row_cols(idx3d(3, 3, 1, 1, 1)).len(), 7);
        assert!(a.is_pattern_symmetric());
    }

    #[test]
    fn grid9pt_interior_degree() {
        let a = grid2d_9pt(5, 5, 0.0, 0);
        assert_eq!(a.row_cols(idx2d(5, 2, 2)).len(), 9);
        assert!(a.is_pattern_symmetric());
    }

    #[test]
    fn unsym_changes_values_not_pattern() {
        let a = grid2d_5pt(6, 6, 0.0, 1);
        let b = grid2d_5pt(6, 6, 0.3, 1);
        assert_eq!(a.col_idx, b.col_idx);
        assert_eq!(a.row_ptr, b.row_ptr);
        assert!(a.values != b.values);
        assert!(b.is_pattern_symmetric());
    }

    #[test]
    fn deletions_reduce_nnz_symmetrically() {
        let full = grid2d_random_deletions(10, 10, 0.0, 7);
        let cut = grid2d_random_deletions(10, 10, 0.4, 7);
        assert!(cut.nnz() < full.nnz());
        assert!(cut.is_pattern_symmetric());
    }

    #[test]
    fn kkt_is_pattern_symmetric_and_2n() {
        let a = kkt_3d(3, 3, 2, 1e-2, 0);
        assert_eq!(a.nrows, 36);
        assert!(a.is_pattern_symmetric());
        // Lower-right block diagonal is the regularization.
        assert_eq!(a.get(20, 20), -1e-2);
    }

    #[test]
    fn aniso_has_weak_and_strong_couplings() {
        let a = grid2d_aniso(6, 6, 1e-3, 0);
        assert!(a.is_pattern_symmetric());
        let v = idx2d(6, 2, 2);
        // x-neighbours weakly coupled, y-neighbours strongly.
        assert!((a.get(v, idx2d(6, 1, 2)) + 1e-3).abs() < 1e-12);
        assert!((a.get(v, idx2d(6, 2, 1)) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn helmholtz_shift_moves_diagonal_only() {
        let base = grid2d_5pt(5, 5, 0.0, 0);
        let h = grid2d_helmholtz(5, 5, 3.0, 0);
        assert_eq!(base.col_idx, h.col_idx);
        for i in 0..25 {
            assert!((h.get(i, i) - (base.get(i, i) - 3.0)).abs() < 1e-12);
            // off-diagonals untouched
            for &j in base.row_cols(i) {
                if j != i {
                    assert_eq!(h.get(i, j), base.get(i, j));
                }
            }
        }
    }

    #[test]
    fn two_domains_is_connected_and_symmetric() {
        let a = two_domains(8, 4, 0.0, 0);
        assert_eq!(a.nrows, 64 + 16);
        assert!(a.is_pattern_symmetric());
        // The interface couples the two blocks.
        assert!(a.get(idx2d(8, 7, 0), 64) != 0.0);
    }

    #[test]
    fn lshape_has_three_quadrants() {
        let k = 8;
        let a = grid2d_lshape(k, 0.0, 0);
        assert_eq!(a.nrows, k * k - (k / 2) * (k / 2));
        assert!(a.is_pattern_symmetric());
        // Interior vertex of the surviving part keeps degree 4.
        // Vertex (1,1) is interior.
        let v = 8 + 1; // vertex (1,1); compact numbering equals full numbering in row 0..half
        assert_eq!(a.row_cols(v).len(), 5);
    }

    #[test]
    fn random_band_is_dominant() {
        let a = random_band(50, 4, 0.6, 3);
        assert!(a.is_pattern_symmetric());
        for i in 0..50 {
            let diag = a.get(i, i).abs();
            let off: f64 = a
                .row_cols(i)
                .iter()
                .zip(a.row_vals(i))
                .filter(|(c, _)| **c != i)
                .map(|(_, v)| v.abs())
                .sum();
            assert!(diag > off, "row {i} not dominant");
        }
    }
}
