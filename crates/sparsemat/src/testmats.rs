//! The named test-matrix suite: scaled-down structural proxies of the
//! paper's Table III, used by every experiment harness.
//!
//! | Paper matrix      | Class        | Proxy here                              |
//! |-------------------|--------------|------------------------------------------|
//! | K2D5pt4096        | planar       | `k2d5pt` — 2D 5-point grid              |
//! | S2D9pt3072        | planar       | `s2d9pt` — 2D 9-point grid              |
//! | G3_circuit        | planar       | `g3circuit` — 2D grid, random deletions |
//! | ecology1          | planar       | `ecology` — 2D 5-point grid, low nnz/n  |
//! | Serena, audikw_1  | non-planar   | `serena3d` (7-pt), `audikw` (27-pt)     |
//! | dielFilterV3real  | non-planar   | `dielfilter` (27-pt, elongated box)     |
//! | CoupCons3D        | non-planar   | `coupcons` (7-pt cube)                  |
//! | ldoor             | nearly planar| `ldoor` — thin 3D slab                  |
//! | nlpkkt80          | KKT          | `nlpkkt` — 3D-grid saddle point         |

use crate::csr::Csr;
use crate::matgen;

/// Geometry classification used both for choosing the ordering strategy and
/// for interpreting results against the paper's planar/non-planar analysis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MatrixClass {
    /// 2D-geometry problems: separators of size `O(sqrt(n))`.
    Planar,
    /// 3D-geometry problems: separators of size `O(n^(2/3))`.
    NonPlanar,
    /// Thin 3D objects that partition like 2D ones (the paper's `ldoor`).
    NearlyPlanar,
    /// Saddle-point/KKT systems on 3D grids (the paper's `nlpkkt80`).
    Kkt,
}

/// Grid geometry hint carried alongside a generated matrix so the geometric
/// nested-dissection orderer can compute exact separators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Geometry {
    Grid2d {
        nx: usize,
        ny: usize,
    },
    Grid3d {
        nx: usize,
        ny: usize,
        nz: usize,
    },
    /// No usable geometry (general graph): use multilevel ND.
    General,
}

/// A generated test matrix plus its provenance.
#[derive(Clone, Debug)]
pub struct TestMatrix {
    /// Short name used in experiment tables (matches the proxy table above).
    pub name: &'static str,
    /// Name of the paper matrix this is a proxy of.
    pub paper_name: &'static str,
    pub class: MatrixClass,
    pub geometry: Geometry,
    pub matrix: Csr,
}

impl TestMatrix {
    /// `nnz / n`, the sparsity statistic reported in Table III.
    pub fn nnz_per_row(&self) -> f64 {
        self.matrix.nnz() as f64 / self.matrix.nrows as f64
    }
}

/// Scale presets. The paper's matrices range from n=4.2e5 to 1.6e7; this
/// reproduction runs the same *structures* at laptop scale.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Tiny problems for unit/integration tests (n ~ 1e2-1e3).
    Tiny,
    /// Small problems for quick experiments (n ~ 1e3-1e4).
    Small,
    /// The default benchmark scale (n ~ 1e4-1e5).
    Bench,
}

fn dims2d(s: Scale, base: usize) -> usize {
    match s {
        Scale::Tiny => base / 8,
        Scale::Small => base / 2,
        Scale::Bench => base,
    }
}

fn dims3d(s: Scale, base: usize) -> usize {
    match s {
        Scale::Tiny => (base / 4).max(4),
        Scale::Small => base / 2,
        Scale::Bench => base,
    }
}

/// All test-matrix names, in the order the paper's tables list them.
pub const ALL_NAMES: &[&str] = &[
    "audikw",
    "coupcons",
    "dielfilter",
    "ldoor",
    "nlpkkt",
    "g3circuit",
    "ecology",
    "k2d5pt",
    "s2d9pt",
    "serena3d",
];

/// Build one named test matrix at the given scale. Panics on unknown names
/// (see [`ALL_NAMES`]).
pub fn test_matrix(name: &str, scale: Scale) -> TestMatrix {
    let unsym = 0.1; // make values genuinely unsymmetric for LU
    match name {
        "k2d5pt" => {
            let s = dims2d(scale, 128);
            TestMatrix {
                name: "k2d5pt",
                paper_name: "K2D5pt4096",
                class: MatrixClass::Planar,
                geometry: Geometry::Grid2d { nx: s, ny: s },
                matrix: matgen::grid2d_5pt(s, s, unsym, 11),
            }
        }
        "s2d9pt" => {
            let s = dims2d(scale, 96);
            TestMatrix {
                name: "s2d9pt",
                paper_name: "S2D9pt3072",
                class: MatrixClass::Planar,
                geometry: Geometry::Grid2d { nx: s, ny: s },
                matrix: matgen::grid2d_9pt(s, s, unsym, 12),
            }
        }
        "g3circuit" => {
            let s = dims2d(scale, 112);
            TestMatrix {
                name: "g3circuit",
                paper_name: "G3_circuit",
                class: MatrixClass::Planar,
                geometry: Geometry::Grid2d { nx: s, ny: s },
                matrix: matgen::grid2d_random_deletions(s, s, 0.15, 13),
            }
        }
        "ecology" => {
            let s = dims2d(scale, 104);
            TestMatrix {
                name: "ecology",
                paper_name: "ecology1",
                class: MatrixClass::Planar,
                geometry: Geometry::Grid2d { nx: s, ny: s },
                matrix: matgen::grid2d_5pt(s, s, 0.05, 14),
            }
        }
        "serena3d" => {
            let s = dims3d(scale, 24);
            TestMatrix {
                name: "serena3d",
                paper_name: "Serena",
                class: MatrixClass::NonPlanar,
                geometry: Geometry::Grid3d {
                    nx: s,
                    ny: s,
                    nz: s,
                },
                matrix: matgen::grid3d_7pt(s, s, s, unsym, 15),
            }
        }
        "audikw" => {
            let s = dims3d(scale, 16);
            TestMatrix {
                name: "audikw",
                paper_name: "audikw_1",
                class: MatrixClass::NonPlanar,
                geometry: Geometry::Grid3d {
                    nx: s,
                    ny: s,
                    nz: s,
                },
                matrix: matgen::grid3d_27pt(s, s, s, unsym, 16),
            }
        }
        "dielfilter" => {
            let s = dims3d(scale, 16);
            TestMatrix {
                name: "dielfilter",
                paper_name: "dielFilterV3real",
                class: MatrixClass::NonPlanar,
                geometry: Geometry::Grid3d {
                    nx: 2 * s,
                    ny: s,
                    nz: s / 2,
                },
                matrix: matgen::grid3d_27pt(2 * s, s, s / 2, unsym, 17),
            }
        }
        "coupcons" => {
            let s = dims3d(scale, 20);
            TestMatrix {
                name: "coupcons",
                paper_name: "CoupCons3D",
                class: MatrixClass::NonPlanar,
                geometry: Geometry::Grid3d {
                    nx: s,
                    ny: s,
                    nz: s,
                },
                matrix: matgen::grid3d_7pt(s, s, s, unsym, 18),
            }
        }
        "ldoor" => {
            let s = dims2d(scale, 64);
            let nz = 4.min(s);
            TestMatrix {
                name: "ldoor",
                paper_name: "ldoor",
                class: MatrixClass::NearlyPlanar,
                geometry: Geometry::Grid3d { nx: s, ny: s, nz },
                matrix: matgen::slab3d(s, s, nz, unsym, 19),
            }
        }
        "nlpkkt" => {
            let s = dims3d(scale, 16);
            TestMatrix {
                name: "nlpkkt",
                paper_name: "nlpkkt80",
                class: MatrixClass::Kkt,
                geometry: Geometry::General,
                matrix: matgen::kkt_3d(s, s, s, 1e-2, 20),
            }
        }
        other => panic!("unknown test matrix `{other}`; see ALL_NAMES"),
    }
}

/// The full suite at a given scale.
pub fn test_suite(scale: Scale) -> Vec<TestMatrix> {
    ALL_NAMES.iter().map(|n| test_matrix(n, scale)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_names_build_at_tiny_scale() {
        for tm in test_suite(Scale::Tiny) {
            assert!(tm.matrix.nrows > 0, "{} empty", tm.name);
            assert!(
                tm.matrix.is_pattern_symmetric(),
                "{} not pattern-symmetric",
                tm.name
            );
        }
    }

    #[test]
    fn classes_match_expectations() {
        assert_eq!(
            test_matrix("k2d5pt", Scale::Tiny).class,
            MatrixClass::Planar
        );
        assert_eq!(
            test_matrix("serena3d", Scale::Tiny).class,
            MatrixClass::NonPlanar
        );
        assert_eq!(test_matrix("nlpkkt", Scale::Tiny).class, MatrixClass::Kkt);
        assert_eq!(
            test_matrix("ldoor", Scale::Tiny).class,
            MatrixClass::NearlyPlanar
        );
    }

    #[test]
    fn nnz_ratio_ordering_mimics_paper() {
        // In Table III the structural 3D matrices have much higher nnz/n than
        // the planar circuit matrices; the proxies should preserve that.
        let audikw = test_matrix("audikw", Scale::Small);
        let ecology = test_matrix("ecology", Scale::Small);
        assert!(audikw.nnz_per_row() > 2.0 * ecology.nnz_per_row());
    }

    #[test]
    #[should_panic]
    fn unknown_name_panics() {
        let _ = test_matrix("nope", Scale::Tiny);
    }
}
