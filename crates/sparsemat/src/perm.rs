//! Permutation vectors with both directions kept consistent.

/// A permutation of `0..n`, stored in both directions:
/// `old_of(new)` maps a position in the new (post-ordering) numbering back to
/// the original vertex, and `new_of(old)` is its inverse.
///
/// Nested dissection produces one of these; the matrix is then reordered as
/// `P A P^T` via [`crate::csr::Csr::permute_sym`].
#[derive(Clone, Debug, PartialEq)]
pub struct Perm {
    old_of_new: Vec<usize>,
    new_of_old: Vec<usize>,
}

impl Perm {
    /// The identity permutation on `n` elements.
    pub fn identity(n: usize) -> Self {
        Perm {
            old_of_new: (0..n).collect(),
            new_of_old: (0..n).collect(),
        }
    }

    /// Build from the "old order" vector: `order[k]` is the original index
    /// placed at new position `k`. Panics if `order` is not a permutation.
    pub fn from_old_order(order: Vec<usize>) -> Self {
        let n = order.len();
        let mut inv = vec![usize::MAX; n];
        for (new, &old) in order.iter().enumerate() {
            assert!(old < n, "index {old} out of range");
            assert!(inv[old] == usize::MAX, "duplicate index {old}");
            inv[old] = new;
        }
        Perm {
            old_of_new: order,
            new_of_old: inv,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.old_of_new.len()
    }

    /// True for the empty permutation.
    pub fn is_empty(&self) -> bool {
        self.old_of_new.is_empty()
    }

    /// Original index at new position `new`.
    #[inline]
    pub fn old_of(&self, new: usize) -> usize {
        self.old_of_new[new]
    }

    /// New position of original index `old`.
    #[inline]
    pub fn new_of(&self, old: usize) -> usize {
        self.new_of_old[old]
    }

    /// The full old-of-new vector.
    pub fn old_order(&self) -> &[usize] {
        &self.old_of_new
    }

    /// Compose: apply `self` first, then `after` (both as old→new maps).
    /// The result maps an original index to `after.new_of(self.new_of(old))`.
    pub fn then(&self, after: &Perm) -> Perm {
        assert_eq!(self.len(), after.len());
        let order: Vec<usize> = (0..self.len())
            .map(|new2| self.old_of(after.old_of(new2)))
            .collect();
        Perm::from_old_order(order)
    }

    /// Permute a data vector from old numbering into new numbering.
    pub fn apply_vec<T: Clone>(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.len());
        self.old_of_new.iter().map(|&old| x[old].clone()).collect()
    }

    /// Undo: take a vector in new numbering back to old numbering.
    pub fn unapply_vec<T: Clone + Default>(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.len());
        let mut out = vec![T::default(); x.len()];
        for (new, &old) in self.old_of_new.iter().enumerate() {
            out[old] = x[new].clone();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverse_consistency() {
        let p = Perm::from_old_order(vec![3, 1, 0, 2]);
        for new in 0..4 {
            assert_eq!(p.new_of(p.old_of(new)), new);
        }
        for old in 0..4 {
            assert_eq!(p.old_of(p.new_of(old)), old);
        }
    }

    #[test]
    fn apply_and_unapply_are_inverse() {
        let p = Perm::from_old_order(vec![2, 0, 3, 1]);
        let x = vec![10, 20, 30, 40];
        let y = p.apply_vec(&x);
        assert_eq!(y, vec![30, 10, 40, 20]);
        assert_eq!(p.unapply_vec(&y), x);
    }

    #[test]
    fn composition() {
        let p = Perm::from_old_order(vec![1, 2, 0]);
        let q = Perm::from_old_order(vec![2, 0, 1]);
        let r = p.then(&q);
        // r.old_of(k) = p.old_of(q.old_of(k))
        for k in 0..3 {
            assert_eq!(r.old_of(k), p.old_of(q.old_of(k)));
        }
    }

    #[test]
    #[should_panic]
    fn rejects_non_permutation() {
        let _ = Perm::from_old_order(vec![0, 0, 1]);
    }
}
