// Indexing loops are the clearer idiom in numeric kernel code.
#![allow(clippy::needless_range_loop)]
#![forbid(unsafe_code)]

//! Sparse-matrix substrate for the 3D sparse LU reproduction.
//!
//! Provides the input side of the solver stack:
//!
//! - [`coo`]/[`csr`]: triplet and compressed-sparse-row storage with the
//!   conversions, permutations, and pattern operations the ordering and
//!   symbolic phases need.
//! - [`matgen`]: generators for the structural proxies of the paper's test
//!   matrices (Table III) — 2D 5-point/9-point Laplacians (`K2D5pt`,
//!   `S2D9pt`), planar circuit-like graphs (`G3_circuit`, `ecology1`),
//!   3D 7-point/27-point Laplacians (`Serena`, `audikw_1` proxies), thin
//!   slabs (`ldoor` proxy), and 3D-grid KKT saddle-point systems
//!   (`nlpkkt80` proxy).
//! - [`io`]: Matrix Market reader/writer for real matrix files.
//! - [`perm`]: permutation vectors and symmetric permutation `P A P^T`.
//! - [`testmats`]: the named test-matrix suite used by every experiment
//!   harness, with per-matrix geometry hints.

pub mod coo;
pub mod csr;
pub mod io;
pub mod matgen;
pub mod perm;
pub mod testmats;

pub use coo::Coo;
pub use csr::Csr;
pub use perm::Perm;
pub use testmats::{test_matrix, test_suite, MatrixClass, TestMatrix};
