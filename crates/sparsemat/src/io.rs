//! Matrix Market (`.mtx`) I/O.
//!
//! The paper's test matrices come from the SuiteSparse collection, which is
//! distributed in this format. A downstream user with network access can drop
//! the real `audikw_1.mtx` etc. next to the binaries and run the experiment
//! harnesses on them; offline, the generators in [`crate::matgen`] are used.

use crate::coo::Coo;
use crate::csr::Csr;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Errors from Matrix Market parsing.
#[derive(Debug)]
pub enum MmError {
    Io(std::io::Error),
    Parse(String),
}

impl std::fmt::Display for MmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MmError::Io(e) => write!(f, "I/O error: {e}"),
            MmError::Parse(m) => write!(f, "Matrix Market parse error: {m}"),
        }
    }
}

impl std::error::Error for MmError {}

impl From<std::io::Error> for MmError {
    fn from(e: std::io::Error) -> Self {
        MmError::Io(e)
    }
}

fn parse_err(msg: impl Into<String>) -> MmError {
    MmError::Parse(msg.into())
}

/// Read a Matrix Market file from any reader. Supports
/// `matrix coordinate real|integer|pattern general|symmetric`.
/// Symmetric inputs are expanded to full storage. Pattern entries get 1.0.
pub fn read_matrix_market<R: Read>(reader: R) -> Result<Csr, MmError> {
    let mut lines = BufReader::new(reader).lines();

    let header = lines
        .next()
        .ok_or_else(|| parse_err("empty file"))??
        .to_lowercase();
    let fields: Vec<&str> = header.split_whitespace().collect();
    if fields.len() < 5 || fields[0] != "%%matrixmarket" || fields[1] != "matrix" {
        return Err(parse_err(format!("bad header: {header}")));
    }
    if fields[2] != "coordinate" {
        return Err(parse_err("only coordinate format supported"));
    }
    let value_type = fields[3];
    if !matches!(value_type, "real" | "integer" | "pattern") {
        return Err(parse_err(format!("unsupported value type {value_type}")));
    }
    let symmetry = fields[4];
    if !matches!(symmetry, "general" | "symmetric") {
        return Err(parse_err(format!("unsupported symmetry {symmetry}")));
    }

    // Skip comments, find the size line.
    let mut size_line = None;
    for line in lines.by_ref() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        size_line = Some(t.to_string());
        break;
    }
    let size_line = size_line.ok_or_else(|| parse_err("missing size line"))?;
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| {
            t.parse()
                .map_err(|_| parse_err(format!("bad size field {t}")))
        })
        .collect::<Result<_, _>>()?;
    if dims.len() != 3 {
        return Err(parse_err("size line must have 3 fields"));
    }
    let (nrows, ncols, nnz) = (dims[0], dims[1], dims[2]);

    let mut coo = Coo::new(nrows, ncols);
    coo.reserve(if symmetry == "symmetric" {
        2 * nnz
    } else {
        nnz
    });
    let mut seen = 0usize;
    for line in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let i: usize = it
            .next()
            .ok_or_else(|| parse_err("short entry line"))?
            .parse()
            .map_err(|_| parse_err("bad row index"))?;
        let j: usize = it
            .next()
            .ok_or_else(|| parse_err("short entry line"))?
            .parse()
            .map_err(|_| parse_err("bad col index"))?;
        let v: f64 = if value_type == "pattern" {
            1.0
        } else {
            it.next()
                .ok_or_else(|| parse_err("missing value"))?
                .parse()
                .map_err(|_| parse_err("bad value"))?
        };
        if i == 0 || j == 0 || i > nrows || j > ncols {
            return Err(parse_err(format!("entry ({i},{j}) out of range")));
        }
        coo.push(i - 1, j - 1, v);
        if symmetry == "symmetric" && i != j {
            coo.push(j - 1, i - 1, v);
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(parse_err(format!("expected {nnz} entries, found {seen}")));
    }
    Ok(coo.to_csr())
}

/// Read a Matrix Market file from a path.
pub fn read_matrix_market_file(path: impl AsRef<Path>) -> Result<Csr, MmError> {
    read_matrix_market(std::fs::File::open(path)?)
}

/// Write a matrix in `matrix coordinate real general` form.
pub fn write_matrix_market<W: Write>(mut w: W, a: &Csr) -> std::io::Result<()> {
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "% written by salu (3D sparse LU reproduction)")?;
    writeln!(w, "{} {} {}", a.nrows, a.ncols, a.nnz())?;
    for i in 0..a.nrows {
        for (c, v) in a.row_cols(i).iter().zip(a.row_vals(i)) {
            writeln!(w, "{} {} {:.17e}", i + 1, c + 1, v)?;
        }
    }
    Ok(())
}

/// Write a matrix to a path.
pub fn write_matrix_market_file(path: impl AsRef<Path>, a: &Csr) -> std::io::Result<()> {
    write_matrix_market(std::fs::File::create(path)?, a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matgen::grid2d_5pt;

    #[test]
    fn roundtrip_general() {
        let a = grid2d_5pt(5, 4, 0.2, 3);
        let mut buf = Vec::new();
        write_matrix_market(&mut buf, &a).unwrap();
        let b = read_matrix_market(&buf[..]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn reads_symmetric_expansion() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    % comment\n\
                    3 3 4\n\
                    1 1 2.0\n\
                    2 1 -1.0\n\
                    2 2 2.0\n\
                    3 3 2.0\n";
        let a = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(a.get(0, 1), -1.0);
        assert_eq!(a.get(1, 0), -1.0);
        assert_eq!(a.nnz(), 5);
    }

    #[test]
    fn reads_pattern() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n\
                    2 2 2\n\
                    1 2\n\
                    2 1\n";
        let a = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(a.get(0, 1), 1.0);
        assert_eq!(a.get(1, 0), 1.0);
    }

    #[test]
    fn rejects_bad_header() {
        assert!(read_matrix_market("%%NotMM\n1 1 0\n".as_bytes()).is_err());
    }

    #[test]
    fn rejects_wrong_count() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_out_of_range() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
    }
}
