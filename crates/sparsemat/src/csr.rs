//! Compressed sparse row storage and the pattern operations used by the
//! ordering and symbolic phases.

use crate::perm::Perm;

/// A sparse matrix in CSR form. Column indices within each row are kept
/// sorted and duplicate-free (guaranteed by [`crate::coo::Coo::to_csr`] and
/// preserved by every operation here).
#[derive(Clone, Debug, PartialEq)]
pub struct Csr {
    pub nrows: usize,
    pub ncols: usize,
    pub row_ptr: Vec<usize>,
    pub col_idx: Vec<usize>,
    pub values: Vec<f64>,
}

impl Csr {
    /// An empty square matrix of dimension `n`.
    pub fn empty(n: usize) -> Self {
        Csr {
            nrows: n,
            ncols: n,
            row_ptr: vec![0; n + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// The identity matrix of dimension `n`.
    pub fn identity(n: usize) -> Self {
        Csr {
            nrows: n,
            ncols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Column indices of row `i`.
    #[inline]
    pub fn row_cols(&self, i: usize) -> &[usize] {
        &self.col_idx[self.row_ptr[i]..self.row_ptr[i + 1]]
    }

    /// Values of row `i`.
    #[inline]
    pub fn row_vals(&self, i: usize) -> &[f64] {
        &self.values[self.row_ptr[i]..self.row_ptr[i + 1]]
    }

    /// Entry `(i, j)`, or `0.0` if not stored (binary search within the row).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        match self.row_cols(i).binary_search(&j) {
            Ok(pos) => self.values[self.row_ptr[i] + pos],
            Err(_) => 0.0,
        }
    }

    /// `y = A * x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols);
        let mut y = vec![0.0; self.nrows];
        for i in 0..self.nrows {
            let mut s = 0.0;
            for (c, v) in self.row_cols(i).iter().zip(self.row_vals(i)) {
                s += v * x[*c];
            }
            y[i] = s;
        }
        y
    }

    /// The transpose in CSR form (equivalently, this matrix in CSC).
    pub fn transpose(&self) -> Csr {
        let mut counts = vec![0usize; self.ncols + 1];
        for &c in &self.col_idx {
            counts[c + 1] += 1;
        }
        for i in 0..self.ncols {
            counts[i + 1] += counts[i];
        }
        let mut col_idx = vec![0usize; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut next = counts.clone();
        for i in 0..self.nrows {
            for (c, v) in self.row_cols(i).iter().zip(self.row_vals(i)) {
                let slot = next[*c];
                col_idx[slot] = i;
                values[slot] = *v;
                next[*c] += 1;
            }
        }
        Csr {
            nrows: self.ncols,
            ncols: self.nrows,
            row_ptr: counts,
            col_idx,
            values,
        }
    }

    /// True when the *pattern* (not values) is symmetric.
    pub fn is_pattern_symmetric(&self) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        let t = self.transpose();
        self.row_ptr == t.row_ptr && self.col_idx == t.col_idx
    }

    /// The pattern-symmetrized matrix `A + A^T`-structured: entries of `A`
    /// keep their value; positions only present in `A^T` get an explicit
    /// zero. This is what static-pivoting LU factors (SuperLU_DIST works on
    /// the structurally symmetrized pattern after ordering).
    pub fn symmetrize_pattern(&self) -> Csr {
        assert_eq!(self.nrows, self.ncols, "square matrices only");
        let t = self.transpose();
        let n = self.nrows;
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for i in 0..n {
            let (ac, av) = (self.row_cols(i), self.row_vals(i));
            let tc = t.row_cols(i);
            // Merge two sorted index lists.
            let (mut p, mut q) = (0, 0);
            while p < ac.len() || q < tc.len() {
                let ca = ac.get(p).copied().unwrap_or(usize::MAX);
                let ct = tc.get(q).copied().unwrap_or(usize::MAX);
                if ca < ct {
                    col_idx.push(ca);
                    values.push(av[p]);
                    p += 1;
                } else if ct < ca {
                    col_idx.push(ct);
                    values.push(0.0);
                    q += 1;
                } else {
                    col_idx.push(ca);
                    values.push(av[p]);
                    p += 1;
                    q += 1;
                }
            }
            row_ptr.push(col_idx.len());
        }
        Csr {
            nrows: n,
            ncols: n,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Symmetric permutation `B = P A P^T`, where row/column `k` of `B` is
    /// row/column `perm.old_of(k)` of `A`.
    pub fn permute_sym(&self, perm: &Perm) -> Csr {
        assert_eq!(self.nrows, self.ncols);
        assert_eq!(perm.len(), self.nrows);
        let n = self.nrows;
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::with_capacity(self.nnz());
        let mut values = Vec::with_capacity(self.nnz());
        row_ptr.push(0);
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for new_i in 0..n {
            let old_i = perm.old_of(new_i);
            scratch.clear();
            for (c, v) in self.row_cols(old_i).iter().zip(self.row_vals(old_i)) {
                scratch.push((perm.new_of(*c), *v));
            }
            scratch.sort_unstable_by_key(|&(c, _)| c);
            for &(c, v) in &scratch {
                col_idx.push(c);
                values.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        Csr {
            nrows: n,
            ncols: n,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// The adjacency structure of the associated undirected graph: the
    /// pattern of `A + A^T` with the diagonal removed. This is the input the
    /// nested-dissection orderer consumes (paper §II-B).
    pub fn adjacency(&self) -> (Vec<usize>, Vec<usize>) {
        let sym = self.symmetrize_pattern();
        let n = sym.nrows;
        let mut xadj = Vec::with_capacity(n + 1);
        let mut adj = Vec::with_capacity(sym.nnz());
        xadj.push(0);
        for i in 0..n {
            for &c in sym.row_cols(i) {
                if c != i {
                    adj.push(c);
                }
            }
            xadj.push(adj.len());
        }
        (xadj, adj)
    }

    /// Dense representation; only sensible for tiny matrices in tests.
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut d = vec![vec![0.0; self.ncols]; self.nrows];
        for i in 0..self.nrows {
            for (c, v) in self.row_cols(i).iter().zip(self.row_vals(i)) {
                d[i][*c] = *v;
            }
        }
        d
    }

    /// Infinity norm of the residual `A x - b`.
    pub fn residual_inf(&self, x: &[f64], b: &[f64]) -> f64 {
        let ax = self.matvec(x);
        ax.iter()
            .zip(b)
            .map(|(u, v)| (u - v).abs())
            .fold(0.0, f64::max)
    }

    /// Largest absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.values.iter().fold(0.0f64, |m, v| m.max(v.abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    fn small() -> Csr {
        // [ 4 -1  0 ]
        // [ 0  4 -1 ]
        // [-1  0  4 ]   (pattern-unsymmetric)
        let mut c = Coo::new(3, 3);
        for i in 0..3 {
            c.push(i, i, 4.0);
        }
        c.push(0, 1, -1.0);
        c.push(1, 2, -1.0);
        c.push(2, 0, -1.0);
        c.to_csr()
    }

    #[test]
    fn transpose_roundtrip() {
        let a = small();
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(1, 0), -1.0);
    }

    #[test]
    fn pattern_symmetry_detection() {
        let a = small();
        assert!(!a.is_pattern_symmetric());
        let s = a.symmetrize_pattern();
        assert!(s.is_pattern_symmetric());
        // Symmetrization keeps A's values and adds explicit zeros.
        assert_eq!(s.get(0, 1), -1.0);
        assert_eq!(s.get(1, 0), 0.0);
        assert_eq!(s.nnz(), 9);
    }

    #[test]
    fn matvec_known() {
        let a = small();
        let y = a.matvec(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![4.0 - 2.0, 8.0 - 3.0, -1.0 + 12.0]);
    }

    #[test]
    fn symmetric_permutation_preserves_entries() {
        let a = small().symmetrize_pattern();
        let perm = Perm::from_old_order(vec![2, 0, 1]);
        let b = a.permute_sym(&perm);
        for new_i in 0..3 {
            for new_j in 0..3 {
                assert_eq!(
                    b.get(new_i, new_j),
                    a.get(perm.old_of(new_i), perm.old_of(new_j))
                );
            }
        }
    }

    #[test]
    fn adjacency_drops_diagonal() {
        let a = small();
        let (xadj, adj) = a.adjacency();
        assert_eq!(xadj.len(), 4);
        // Vertex 0 neighbours: 1 (from A) and 2 (from A^T).
        assert_eq!(&adj[xadj[0]..xadj[1]], &[1, 2]);
    }

    #[test]
    fn identity_is_identity() {
        let i = Csr::identity(4);
        let x = vec![9.0, 8.0, 7.0, 6.0];
        assert_eq!(i.matvec(&x), x);
    }
}
