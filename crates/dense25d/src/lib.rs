#![forbid(unsafe_code)]

//! 2.5D dense matrix multiplication on the simulated machine.
//!
//! The paper's 3D sparse LU is "inspired by the 2.5D dense LU algorithm"
//! (§I, citing Solomonik & Demmel): replicate data across `c` stacked 2D
//! grids to cut per-process communication volume from `O(n²/sqrt(P))` to
//! `O(n²/sqrt(cP))`. This crate implements the canonical dense instance —
//! SUMMA matrix multiplication and its `c`-replicated 2.5D variant — on the
//! same simulated machine as the sparse solver, so the tradeoff the paper
//! builds on is *measurable* with the same counters:
//!
//! - per-rank SUMMA volume falls like `1/c` at fixed layer size
//!   (equivalently `1/sqrt(cP)` at fixed total `P`) — the win — while
//! - the replication and final-reduction steps add volume proportional to
//!   `c`, producing the interior optimum in total traffic. For dense *LU*
//!   (unlike GEMM) the panels are sequentially dependent, so replication
//!   trades communication volume against latency (§VI: "communication
//!   costs are inversely proportional to the latency costs") — the
//!   limitation that motivated the paper's elimination-tree approach,
//!   which cuts both at once.
//!
//! The `dense25d_study` bench binary prints the measured sweep.
//!
//! ```
//! use dense25d::{summa_25d, DenseDist};
//! use densela::Mat;
//! use simgrid::topology::build_grid_comms;
//! use simgrid::{Grid3d, Machine, TimeModel};
//! use std::sync::Arc;
//!
//! let grid = Grid3d::new(2, 2, 2);
//! let dist = DenseDist::new(8, 2, 2);
//! let a = Arc::new(Mat::identity(8));
//! let machine = Machine::new(grid.size(), TimeModel::zero());
//! let out = machine.run(move |rank| {
//!     let comms = build_grid_comms(rank, &grid);
//!     let (r, c, z) = comms.coords;
//!     let inputs = (z == 0).then(|| (dist.tile_of(&a, r, c), dist.tile_of(&a, r, c)));
//!     summa_25d(rank, &comms, &dist, 2, inputs, 4).c_tile
//! });
//! // I * I = I: layer 0's (0,0) tile is the 4x4 identity.
//! assert_eq!(out.results[0], Mat::identity(4));
//! ```

pub mod dist;
pub mod summa;

pub use dist::DenseDist;
pub use summa::{summa_25d, summa_2d, Summa25dReport};
