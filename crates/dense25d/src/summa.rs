//! SUMMA matrix multiplication: the 2D baseline and the 2.5D replicated
//! variant.
//!
//! 2D SUMMA on a `pr x pc` grid streams `nb`-wide panels of `A` across
//! process rows and panels of `B` down process columns, accumulating
//! `C += A B` tile-locally. Per-rank volume: `O(n²/sqrt(P))` for square
//! grids.
//!
//! 2.5D SUMMA stacks `cz` such grids: `A` and `B` are replicated onto every
//! layer (broadcast along the z-lines), each layer multiplies a `1/cz`
//! slice of the `k` panels, and the partial `C`s are summed back along z.
//! Per-rank panel volume drops to `O(n²/sqrt(cz·P))` at the cost of the
//! replication/reduction terms — Solomonik & Demmel's tradeoff, measured
//! here under the traffic phases `"summa"`, `"replicate"`, and `"reduce"`.

use crate::dist::DenseDist;
use densela::{flops, gemm, Mat};
use simgrid::topology::GridComms;
use simgrid::{Payload, Rank};

use simgrid::tags::{T_APAN, T_BPAN, T_CRED, T_REPL};

/// One rank's step of 2D SUMMA: multiply the distributed tiles
/// `c_tile += a_tile-row panels x b_tile-col panels`. Collective across the
/// layer described by `comms` (its row/col communicators). `k_panels`
/// selects which `nb`-aligned panel indices this call processes (all of
/// them in pure 2D; a `1/cz` slice in 2.5D).
#[allow(clippy::too_many_arguments)]
fn summa_panels(
    rank: &mut Rank,
    comms: &GridComms,
    dist: &DenseDist,
    a_tile: &Mat,
    b_tile: &Mat,
    c_tile: &mut Mat,
    nb: usize,
    k_panels: &[usize],
) {
    let (my_r, my_c, _) = comms.coords;
    let tr = dist.tile_rows();
    let tc = dist.tile_cols();
    for &kp in k_panels {
        let k0 = kp * nb;
        let kw = nb.min(dist.n - k0);
        // Which process column owns A(:, k0..k0+kw)? Block-contiguous:
        // column c owns global cols [c*tc, (c+1)*tc).
        let a_owner_c = k0 / tc;
        debug_assert_eq!(
            (k0 + kw - 1) / tc,
            a_owner_c,
            "panel must not straddle tiles"
        );
        let a_panel = {
            let data = if my_c == a_owner_c {
                let off = k0 - a_owner_c * tc;
                Some(Payload::F64s(a_tile.block(0, off, tr, kw).into_vec()))
            } else {
                None
            };
            let buf = rank.bcast(&comms.row, a_owner_c, data, T_APAN | kp as u64);
            Mat::from_vec(tr, kw, buf.into_f64s())
        };
        // Which process row owns B(k0..k0+kw, :)?
        let b_owner_r = k0 / tr;
        debug_assert_eq!(
            (k0 + kw - 1) / tr,
            b_owner_r,
            "panel must not straddle tiles"
        );
        let b_panel = {
            let data = if my_r == b_owner_r {
                let off = k0 - b_owner_r * tr;
                Some(Payload::F64s(b_tile.block(off, 0, kw, tc).into_vec()))
            } else {
                None
            };
            let buf = rank.bcast(&comms.col, b_owner_r, data, T_BPAN | kp as u64);
            Mat::from_vec(kw, tc, buf.into_f64s())
        };
        let f0 = flops::get();
        gemm(1.0, &a_panel, &b_panel, 1.0, c_tile);
        rank.advance_compute(flops::get() - f0);
    }
}

/// 2D SUMMA: `C = A * B` on the layer of `comms`. Every rank passes its
/// tiles of `A` and `B`; returns its tile of `C`. Panel width `nb` must
/// divide both tile dimensions.
pub fn summa_2d(
    rank: &mut Rank,
    comms: &GridComms,
    dist: &DenseDist,
    a_tile: &Mat,
    b_tile: &Mat,
    nb: usize,
) -> Mat {
    assert_eq!(dist.tile_rows() % nb, 0, "nb must divide tile rows");
    assert_eq!(dist.tile_cols() % nb, 0, "nb must divide tile cols");
    rank.set_phase("summa");
    let mut c_tile = Mat::zeros(dist.tile_rows(), dist.tile_cols());
    let panels: Vec<usize> = (0..dist.n / nb).collect();
    summa_panels(rank, comms, dist, a_tile, b_tile, &mut c_tile, nb, &panels);
    c_tile
}

/// Measured outcome of a 2.5D run on one rank (the phase split the study
/// binary prints).
pub struct Summa25dReport {
    /// This rank's tile of `C` (valid on layer 0; partial elsewhere).
    pub c_tile: Mat,
}

/// 2.5D SUMMA: `C = A * B` on a `pr x pc x cz` machine. Layer 0 owns the
/// inputs (tiles of `A` and `B`); other layers pass `None` and receive
/// replicas. On return, layer 0 holds the completed `C` tiles.
pub fn summa_25d(
    rank: &mut Rank,
    comms: &GridComms,
    dist: &DenseDist,
    cz: usize,
    inputs: Option<(Mat, Mat)>,
    nb: usize,
) -> Summa25dReport {
    let (_, _, my_z) = comms.coords;
    assert_eq!(comms.zline.size(), cz);
    // 1. Replicate A and B tiles onto every layer (broadcast along z).
    rank.set_phase("replicate");
    let (a_tile, b_tile) = if cz == 1 {
        inputs.expect("layer 0 supplies inputs")
    } else {
        let data = inputs.map(|(a, b)| {
            let mut buf = a.into_vec();
            buf.extend_from_slice(Mat::as_slice(&b));
            Payload::F64s(buf)
        });
        let buf = rank.bcast(&comms.zline, 0, data, T_REPL).into_f64s();
        let half = dist.tile_rows() * dist.tile_cols();
        let a = Mat::from_vec(dist.tile_rows(), dist.tile_cols(), buf[..half].to_vec());
        let b = Mat::from_vec(dist.tile_rows(), dist.tile_cols(), buf[half..].to_vec());
        (a, b)
    };

    // 2. Each layer multiplies its slice of the k panels.
    rank.set_phase("summa");
    let mut c_tile = Mat::zeros(dist.tile_rows(), dist.tile_cols());
    let total_panels = dist.n / nb;
    let my_panels: Vec<usize> = (0..total_panels).filter(|kp| kp % cz == my_z).collect();
    summa_panels(
        rank,
        comms,
        dist,
        &a_tile,
        &b_tile,
        &mut c_tile,
        nb,
        &my_panels,
    );

    // 3. Sum the partial C tiles onto layer 0.
    rank.set_phase("reduce");
    if cz > 1 {
        let reduced = rank.reduce_sum(&comms.zline, 0, c_tile.as_slice().to_vec(), T_CRED);
        if let Some(sum) = reduced {
            c_tile = Mat::from_vec(dist.tile_rows(), dist.tile_cols(), sum);
        }
    }
    Summa25dReport { c_tile }
}

#[cfg(test)]
mod tests {
    use super::*;
    use densela::gemm::gemm_naive;
    use simgrid::topology::build_grid_comms;
    use simgrid::{Grid3d, Machine, TimeModel, TrafficSummary};
    use std::sync::Arc;

    fn full(n: usize, seed: u64) -> Mat {
        let mut s = seed.max(1);
        Mat::from_fn(n, n, |_, _| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % 1000) as f64 / 500.0 - 1.0
        })
    }

    fn reference(a: &Mat, b: &Mat) -> Mat {
        let mut c = Mat::zeros(a.rows(), b.cols());
        gemm_naive(1.0, a, b, 0.0, &mut c);
        c
    }

    fn run_25d(
        n: usize,
        pr: usize,
        pc: usize,
        cz: usize,
        nb: usize,
    ) -> (Mat, Vec<simgrid::RankReport>) {
        let grid3 = Grid3d::new(pr, pc, cz);
        let dist = DenseDist::new(n, pr, pc);
        let a = Arc::new(full(n, 1));
        let b = Arc::new(full(n, 2));
        let machine = Machine::new(grid3.size(), TimeModel::zero());
        let out = machine.run(move |rank| {
            let comms = build_grid_comms(rank, &grid3);
            let (my_r, my_c, my_z) = comms.coords;
            let inputs =
                (my_z == 0).then(|| (dist.tile_of(&a, my_r, my_c), dist.tile_of(&b, my_r, my_c)));
            let rep = summa_25d(rank, &comms, &dist, cz, inputs, nb);
            (my_r, my_c, my_z, rep.c_tile)
        });
        // Assemble layer 0's C.
        let mut tiles: Vec<Vec<Mat>> = (0..pr)
            .map(|_| (0..pc).map(|_| Mat::zeros(0, 0)).collect())
            .collect();
        for (r, c, z, t) in &out.results {
            if *z == 0 {
                tiles[*r][*c] = t.clone();
            }
        }
        let dist = DenseDist::new(n, pr, pc);
        (dist.assemble(&tiles), out.reports)
    }

    #[test]
    fn summa_2d_matches_reference() {
        let (c, _) = run_25d(12, 2, 3, 1, 2);
        let expect = reference(&full(12, 1), &full(12, 2));
        for j in 0..12 {
            for i in 0..12 {
                assert!((c.at(i, j) - expect.at(i, j)).abs() < 1e-10, "({i},{j})");
            }
        }
    }

    #[test]
    fn summa_25d_matches_reference_all_cz() {
        let expect = reference(&full(16, 1), &full(16, 2));
        for cz in [1usize, 2, 4] {
            let (c, _) = run_25d(16, 2, 2, cz, 4);
            for j in 0..16 {
                for i in 0..16 {
                    assert!(
                        (c.at(i, j) - expect.at(i, j)).abs() < 1e-10,
                        "cz={cz} ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn replication_cuts_summa_volume_by_sqrt_c() {
        // The Solomonik-Demmel effect: panel-broadcast volume per rank
        // falls like 1/cz at fixed layer size (each layer handles 1/cz of
        // the panels).
        let n = 24;
        let (_, rep1) = run_25d(n, 2, 2, 1, 2);
        let (_, rep4) = run_25d(n, 2, 2, 4, 2);
        let w1 = TrafficSummary::max_sent_words_in(&rep1, "summa");
        let w4 = TrafficSummary::max_sent_words_in(&rep4, "summa");
        assert!(
            (w4 as f64) < 0.4 * w1 as f64,
            "summa volume must fall ~cz x: {w1} -> {w4}"
        );
        // ...but replication + reduction volume appears.
        let extra = TrafficSummary::max_sent_words_in(&rep4, "replicate")
            + TrafficSummary::max_sent_words_in(&rep4, "reduce");
        assert!(extra > 0);
    }
}
