//! Block distribution of dense matrices over a 2D grid.

use densela::Mat;

/// A block-contiguous distribution of an `n x n` dense matrix over a
/// `pr x pc` process grid: rank `(r, c)` owns the contiguous tile
/// `rows [r*n/pr, (r+1)*n/pr) x cols [c*n/pc, (c+1)*n/pc)`.
///
/// `n` must be divisible by both grid dimensions (asserted), which keeps
/// every tile the same shape — the standard SUMMA setup.
#[derive(Clone, Copy, Debug)]
pub struct DenseDist {
    pub n: usize,
    pub pr: usize,
    pub pc: usize,
}

impl DenseDist {
    pub fn new(n: usize, pr: usize, pc: usize) -> Self {
        assert!(pr > 0 && pc > 0);
        assert_eq!(n % pr, 0, "n must divide evenly over process rows");
        assert_eq!(n % pc, 0, "n must divide evenly over process columns");
        DenseDist { n, pr, pc }
    }

    /// Tile height (rows per rank).
    pub fn tile_rows(&self) -> usize {
        self.n / self.pr
    }

    /// Tile width (cols per rank).
    pub fn tile_cols(&self) -> usize {
        self.n / self.pc
    }

    /// Extract rank `(r, c)`'s tile from a full matrix (test/setup helper;
    /// in a real code each rank would read its tile from disk).
    pub fn tile_of(&self, full: &Mat, r: usize, c: usize) -> Mat {
        assert_eq!(full.rows(), self.n);
        assert_eq!(full.cols(), self.n);
        full.block(
            r * self.tile_rows(),
            c * self.tile_cols(),
            self.tile_rows(),
            self.tile_cols(),
        )
    }

    /// Assemble a full matrix from per-rank tiles indexed `[r][c]`
    /// (test helper).
    pub fn assemble(&self, tiles: &[Vec<Mat>]) -> Mat {
        let mut full = Mat::zeros(self.n, self.n);
        for (r, row) in tiles.iter().enumerate() {
            for (c, t) in row.iter().enumerate() {
                full.copy_block_from(t, r * self.tile_rows(), c * self.tile_cols());
            }
        }
        full
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_roundtrip() {
        let d = DenseDist::new(8, 2, 4);
        let full = Mat::from_fn(8, 8, |i, j| (i * 10 + j) as f64);
        let tiles: Vec<Vec<Mat>> = (0..2)
            .map(|r| (0..4).map(|c| d.tile_of(&full, r, c)).collect())
            .collect();
        assert_eq!(tiles[1][3].rows(), 4);
        assert_eq!(tiles[1][3].cols(), 2);
        assert_eq!(d.assemble(&tiles), full);
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn rejects_uneven_split() {
        let _ = DenseDist::new(10, 3, 2);
    }
}
