//! Algorithm 1: the 3D sparse LU factorization driver.
//!
//! Every rank executes the level loop from the paper's pseudocode. At level
//! `lvl` (counting `l` at the leaves down to `0` at the root), the grids
//! whose `z` is a multiple of `2^(l-lvl)` are *active*: each factors its
//! local forest `E_f[lvl]` with the 2D kernel (`dSparseLU2D`), updating its
//! replicated ancestor copies. Then active grids pair up along `z` and the
//! odd member of each pair sends its ancestor blocks to the even member,
//! which sums them (*ancestor reduction*). Communication in the reduction
//! is purely point-to-point between ranks with identical `(x, y)` grid
//! coordinates — the z-axis of the 3D grid.

use crate::forest::EtreeForest;
use crate::taskgraph::{self, SendTask};
use simgrid::topology::GridComms;
use simgrid::{FailKind, Grid3d, Rank, Schedule};
use slu2d::factor2d::{factor_nodes, factor_nodes_with, FactorEnv, FactorOpts};
use slu2d::store::{pack_blocks, unpack_blocks, BlockStore};
use symbolic::Symbolic;

/// Reduction message tag namespace (above the 2D kernel tags), from the
/// workspace-wide audited registry.
use simgrid::tags::T_REDUCE;

/// Counters from a 3D factorization on one rank.
#[derive(Clone, Copy, Debug, Default)]
pub struct Outcome3d {
    pub perturbations: usize,
    pub lookahead_hits: usize,
    /// Number of levels this grid was active in.
    pub active_levels: usize,
}

/// The blocks of supernode `s` this rank owns among the ancestor set:
/// diagonal plus both panels, in a deterministic order shared by sender and
/// receiver. Block ids are encoded as `i * nsup + j` for the packed wire
/// format.
fn owned_ancestor_blocks(
    store: &BlockStore,
    sym: &Symbolic,
    grid: &simgrid::Grid2d,
    my_r: usize,
    my_c: usize,
    s: usize,
) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    if grid.owner(s, s) == (my_r, my_c) && store.contains(s, s) {
        out.push((s, s));
    }
    for &i in &sym.fill.struct_of[s] {
        if grid.owner(i, s) == (my_r, my_c) && store.contains(i, s) {
            out.push((i, s));
        }
        if grid.owner(s, i) == (my_r, my_c) && store.contains(s, i) {
            out.push((s, i));
        }
    }
    out
}

/// Run Algorithm 1. `store` must have been built with the forest's keep and
/// value-initialization predicates (see [`crate::solver`]). Returns per-rank
/// counters; the factored panels are left distributed exactly as the paper's
/// "final state": each supernode's factors on the grid that factored it.
///
/// A z-line reduction whose message cannot be received (stalled peer past
/// the receive deadline, dead peer, deadlock) surfaces as a structured
/// [`FailKind::Solver`] naming the phase, supernode, and forest level,
/// instead of poisoning a channel — the caller fails the rank with it
/// (`rank.fail`), keeping machine-level failure attribution intact.
///
/// `schedule` selects when the reduction sends fire (docs/backends.md,
/// "Schedules"): [`Schedule::Level`] ships every ancestor supernode at the
/// level boundary; [`Schedule::TaskGraph`] hoists each send to its
/// readiness point in the per-level dependency DAG ([`crate::taskgraph`]).
/// Both schedules are bitwise identical on factors, solutions, and the
/// wire/memory ledgers; only simulated clocks (hence makespan) differ.
#[allow(clippy::too_many_arguments)] // the SPMD entry point: machine context + problem + options
pub fn factor_3d(
    rank: &mut Rank,
    grid3: &Grid3d,
    comms: &GridComms,
    store: &mut BlockStore,
    sym: &Symbolic,
    forest: &EtreeForest,
    opts: FactorOpts,
    schedule: Schedule,
) -> Result<Outcome3d, FailKind> {
    let l = forest.l;
    assert_eq!(grid3.pz, forest.pz(), "grid/forest Pz mismatch");
    let (my_r, my_c, my_z) = comms.coords;
    // Charge every block to the memory ledger up front (the symbolic
    // pattern is fully allocated before numeric work starts). The panel
    // supernode is `min(i, j)` (blocks of column/row panels lie below and
    // right of their panel's diagonal); a panel whose node sits above the
    // grid's leaf level is a replicated ancestor — the Pz copies the paper
    // trades for communication — attributed to its tree level. Charging
    // here rather than in the caller keeps the reduction's
    // `AncestorReplica` credits symmetric for every `factor_3d` user.
    store.charge_to_ledger(rank, |i, j| {
        let p = i.min(j);
        let np = sym.part.node_of_sn[p];
        let lvl = forest.part_level[np] as u32;
        let class = if forest.part_level[np] < forest.l {
            simgrid::MemClass::AncestorReplica
        } else if i < j {
            simgrid::MemClass::UPanel
        } else {
            simgrid::MemClass::LPanel
        };
        (class, lvl)
    });
    let env = FactorEnv {
        grid: grid3.grid2d,
        my_r,
        my_c,
        row: comms.row.clone(),
        col: comms.col.clone(),
        opts,
    };

    // Supernodes whose updates this grid never sees locally (other grids'
    // subtrees) are marked done up front: their contributions arrive through
    // the ancestor reduction instead.
    let mut done: Vec<bool> = (0..sym.nsup())
        .map(|s| !forest.keeps(sym.part.node_of_sn[s], my_z))
        .collect();

    let mut outcome = Outcome3d::default();
    for lvl in (0..=l).rev() {
        let step = 1usize << (l - lvl);
        if my_z % step != 0 {
            continue; // this grid is inactive from here on
        }
        outcome.active_levels += 1;
        rank.set_tree_level(lvl as u32);
        let q = my_z >> (l - lvl);
        let nodes = forest.supernodes_of(lvl, q, &sym.part);
        // One span per active forest level; the `fact`/`reduce` phase spans
        // and per-supernode node spans nest underneath it.
        let lvl_span = rank.span_enter(simgrid::SpanCat::Level, &format!("level{lvl}"));
        rank.set_phase("fact");
        let k = my_z / step;
        // Under the task-graph schedule, a retiring (odd-k) grid ships each
        // ancestor supernode as soon as its last local writer completes
        // instead of waiting for the level boundary. The plan is derived
        // from symbolic state only, so both schedules run the same compute
        // and ledger program (see `crate::taskgraph` for the argument).
        let eager = (schedule == Schedule::TaskGraph && lvl > 0 && !k.is_multiple_of(2))
            .then(|| taskgraph::eager_send_plan(sym, forest, &nodes, lvl, my_z));
        let fo = if let Some(plan) = &eager {
            let dest_z = my_z - step;
            fire_eager_sends(rank, comms, store, sym, my_r, my_c, dest_z, &plan.at[0]);
            factor_nodes_with(
                rank,
                &env,
                store,
                sym,
                &nodes,
                &mut done,
                &mut |rank, store, pos| {
                    fire_eager_sends(rank, comms, store, sym, my_r, my_c, dest_z, &plan.at[pos]);
                },
            )
        } else {
            factor_nodes(rank, &env, store, sym, &nodes, &mut done)
        };
        outcome.perturbations += fo.perturbations;
        outcome.lookahead_hits += fo.lookahead_hits;

        if lvl == 0 {
            rank.span_exit(lvl_span);
            break;
        }
        // Ancestor reduction: pair (k even) <- (k odd) along the z-axis.
        rank.set_phase("reduce");
        if k.is_multiple_of(2) {
            let src_z = my_z + step;
            reduce_ancestors(
                rank, comms, store, sym, forest, lvl, my_z, src_z, false, false,
            )?;
        } else {
            let dest_z = my_z - step;
            let sent = eager.is_some();
            reduce_ancestors(
                rank, comms, store, sym, forest, lvl, my_z, dest_z, true, sent,
            )?;
        }
        rank.span_exit(lvl_span);
    }
    Ok(outcome)
}

/// Pack this rank's owned blocks of ancestor supernode `s` into one message
/// and ship it down the z-line, charged to the `ZReduction` wire class.
/// Returns the payload bytes. Deliberately performs no memory-ledger event:
/// the sender's `AncestorReplica` credit stays at the level boundary under
/// every schedule, keeping the per-rank ledger sequence schedule-invariant.
fn send_ancestor_supernode(
    rank: &mut Rank,
    comms: &GridComms,
    store: &BlockStore,
    sym: &Symbolic,
    peer_z: usize,
    s: usize,
    blocks: &[(usize, usize)],
) -> u64 {
    let tag = T_REDUCE | s as u64;
    let nsup = sym.nsup();
    let items: Vec<(usize, &densela::Mat)> = blocks
        .iter()
        .map(|&(i, j)| (i * nsup + j, store.get(i, j).expect("owned block")))
        .collect();
    let sent_bytes: u64 = items
        .iter()
        .map(|(_, m)| (m.rows() * m.cols()) as u64 * 8)
        .sum();
    let payload = pack_blocks(&items);
    rank.with_comm_class(simgrid::CommClass::ZReduction, |rank| {
        rank.send(&comms.zline, peer_z, tag, payload)
    });
    sent_bytes
}

/// Fire the reduce sends that became ready at one task-graph position
/// (level entry or a just-completed Schur update), under the `reduce`
/// phase so the wire ledger lands in the same cells as a boundary send.
/// Supernodes this rank owns no blocks of are skipped, mirroring the
/// boundary loop.
#[allow(clippy::too_many_arguments)]
fn fire_eager_sends(
    rank: &mut Rank,
    comms: &GridComms,
    store: &BlockStore,
    sym: &Symbolic,
    my_r: usize,
    my_c: usize,
    peer_z: usize,
    tasks: &[SendTask],
) {
    if tasks.is_empty() {
        return;
    }
    let grid = simgrid::Grid2d {
        pr: comms.col.size(),
        pc: comms.row.size(),
    };
    rank.set_phase("reduce");
    for t in tasks {
        let blocks = owned_ancestor_blocks(store, sym, &grid, my_r, my_c, t.s);
        if blocks.is_empty() {
            continue;
        }
        send_ancestor_supernode(rank, comms, store, sym, peer_z, t.s, &blocks);
    }
    rank.set_phase("fact");
}

/// One side of the level-`lvl` ancestor reduction between this rank and its
/// z-line peer. Covers every ancestor forest level `l_a < lvl`
/// (Algorithm 1's inner loop), one packed message per supernode with owned
/// blocks. Sender and receiver derive identical block lists from shared
/// symbolic state, so no negotiation traffic is needed.
///
/// With `already_sent` (task-graph schedule), the sender's messages left
/// during the factorization sweep; this pass then only replays the
/// boundary's `AncestorReplica` credits, in the boundary's order.
#[allow(clippy::too_many_arguments)]
fn reduce_ancestors(
    rank: &mut Rank,
    comms: &GridComms,
    store: &mut BlockStore,
    sym: &Symbolic,
    forest: &EtreeForest,
    lvl: usize,
    my_z: usize,
    peer_z: usize,
    i_am_sender: bool,
    already_sent: bool,
) -> Result<(), FailKind> {
    let l = forest.l;
    let grid = simgrid::Grid2d {
        pr: comms.col.size(),
        pc: comms.row.size(),
    };
    let (my_r, my_c, _) = comms.coords;
    for l_a in (0..lvl).rev() {
        let q_a = my_z >> (l - l_a);
        debug_assert_eq!(q_a, peer_z >> (l - l_a), "pair must share ancestors");
        for s in forest.supernodes_of(l_a, q_a, &sym.part) {
            let blocks = owned_ancestor_blocks(store, sym, &grid, my_r, my_c, s);
            if blocks.is_empty() {
                continue;
            }
            let tag = T_REDUCE | s as u64;
            if i_am_sender {
                let sent_bytes: u64 = if already_sent {
                    // Message left at its task-graph readiness point; the
                    // blocks' dimensions (hence bytes) are schedule-fixed.
                    blocks
                        .iter()
                        .map(|&(i, j)| {
                            let m = store.get(i, j).expect("owned block");
                            (m.rows() * m.cols()) as u64 * 8
                        })
                        .sum()
                } else {
                    send_ancestor_supernode(rank, comms, store, sym, peer_z, s, &blocks)
                };
                // This grid retires after sending: its replica of ancestor
                // `s` is dead, so release the bytes charged at store build
                // (class AncestorReplica, level `l_a`).
                rank.mem_credit_at(simgrid::MemClass::AncestorReplica, l_a as u32, sent_bytes);
            } else {
                let payload =
                    rank.recv_checked(&comms.zline, peer_z, tag)
                        .map_err(|e| FailKind::Solver {
                            phase: "reduce".to_string(),
                            supernode: Some(s),
                            level: Some(l_a),
                            detail: format!("z-line reduction recv from z={peer_z} failed: {e}"),
                        })?;
                let nsup = sym.nsup();
                for (code, m) in unpack_blocks(payload) {
                    let (i, j) = (code / nsup, code % nsup);
                    store
                        .get_mut(i, j)
                        .ok_or_else(|| FailKind::Solver {
                            phase: "reduce".to_string(),
                            supernode: Some(s),
                            level: Some(l_a),
                            detail: format!("reduction target ({i},{j}) missing"),
                        })?
                        .add_assign(&m);
                }
            }
        }
    }
    Ok(())
}
