//! The elimination tree-forest `E_f` and the greedy inter-grid load
//! balancing heuristic (paper §III-C).
//!
//! The separator tree is recursively split `l = log2 Pz` times. Each split
//! takes a forest `F` and produces a top part `S` (kept/replicated on the
//! whole grid range) and two child forests `C1`, `C2` (handed to the two
//! half ranges), chosen greedily to minimize the critical-path cost
//! `T(S) + max(T(C1), T(C2))` with the per-node flop count as the cost
//! function `T(v)` — exactly the paper's heuristic (Fig. 8). A part may
//! contain several disjoint subtrees, which is why `E_f` is a tree of
//! *forests*.

use ordering::SepTree;
use std::collections::BinaryHeap;
use symbolic::Symbolic;

/// The partition of the separator tree into `E_f`.
#[derive(Clone, Debug)]
pub struct EtreeForest {
    /// `log2 Pz`.
    pub l: usize,
    /// `parts[lvl][q]` = separator-tree node ids of part `q` at forest
    /// level `lvl` (ascending node id order). `parts[lvl].len() == 2^lvl`.
    pub parts: Vec<Vec<Vec<usize>>>,
    /// Forest level of each tree node.
    pub part_level: Vec<usize>,
    /// Part index (within its level) of each tree node.
    pub part_index: Vec<usize>,
}

/// How to split the separator tree into the forest hierarchy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartitionStrategy {
    /// The paper's greedy load-balance heuristic (§III-C): pull expensive
    /// subtrees into the shared ancestor part until the remaining forest
    /// packs into balanced halves.
    Greedy,
    /// The naive nested-dissection mapping the paper's Fig. 8 compares
    /// against: the top part is exactly the forest roots; children split by
    /// position, costs ignored.
    NaiveNd,
}

impl EtreeForest {
    /// Greedily partition `tree` for `pz = 2^l` grids, using per-node flop
    /// costs derived from the symbolic analysis.
    pub fn build(tree: &SepTree, sym: &Symbolic, pz: usize) -> EtreeForest {
        Self::build_with_strategy(tree, sym, pz, PartitionStrategy::Greedy)
    }

    /// Partition with an explicit strategy (the ablation harness compares
    /// [`PartitionStrategy::Greedy`] against [`PartitionStrategy::NaiveNd`]).
    pub fn build_with_strategy(
        tree: &SepTree,
        sym: &Symbolic,
        pz: usize,
        strategy: PartitionStrategy,
    ) -> EtreeForest {
        // Per-node cost: total flops of the node's supernodes (the paper's
        // heuristic cost function T(v)).
        let nn = tree.nodes.len();
        let mut node_cost = vec![0u64; nn];
        for (node, sns) in sym.part.sns_of_node.iter().enumerate() {
            node_cost[node] = sns.iter().map(|&s| sym.cost.flops[s]).sum();
        }
        Self::build_with_costs(tree, &node_cost, pz, strategy)
    }

    /// Partition with caller-supplied per-node costs. Used before any
    /// symbolic information exists — the distributed symbolic phase
    /// partitions by vertex counts (`node.width()` per node), then the
    /// numeric phase re-partitions by predicted flops.
    pub fn build_with_costs(
        tree: &SepTree,
        node_cost: &[u64],
        pz: usize,
        strategy: PartitionStrategy,
    ) -> EtreeForest {
        assert!(pz.is_power_of_two(), "Pz must be a power of two");
        let l = pz.trailing_zeros() as usize;
        let nn = tree.nodes.len();
        assert_eq!(node_cost.len(), nn);
        // Subtree costs (nodes are in postorder: children precede parents).
        let mut subtree_cost = node_cost.to_vec();
        for i in 0..nn {
            for &c in &tree.nodes[i].children {
                subtree_cost[i] += subtree_cost[c];
            }
        }

        let mut parts: Vec<Vec<Vec<usize>>> =
            (0..=l).map(|lvl| vec![Vec::new(); 1 << lvl]).collect();
        let mut part_level = vec![usize::MAX; nn];
        let mut part_index = vec![usize::MAX; nn];

        // Recursive splitting, iterative via an explicit work list.
        let mut work: Vec<(usize, usize, Vec<usize>)> = vec![(0, 0, vec![tree.root()])];
        while let Some((lvl, q, roots)) = work.pop() {
            if lvl == l {
                // Deepest level: the whole remaining forest belongs here.
                let mut all = Vec::new();
                let mut stack = roots;
                while let Some(v) = stack.pop() {
                    all.push(v);
                    stack.extend_from_slice(&tree.nodes[v].children);
                }
                all.sort_unstable();
                for &v in &all {
                    part_level[v] = lvl;
                    part_index[v] = q;
                }
                parts[lvl][q] = all;
                continue;
            }
            let (s, c1, c2) = match strategy {
                PartitionStrategy::Greedy => split_forest(tree, node_cost, &subtree_cost, &roots),
                PartitionStrategy::NaiveNd => split_naive(tree, &roots),
            };
            let mut s = s;
            s.sort_unstable();
            for &v in &s {
                part_level[v] = lvl;
                part_index[v] = q;
            }
            parts[lvl][q] = s;
            work.push((lvl + 1, 2 * q, c1));
            work.push((lvl + 1, 2 * q + 1, c2));
        }

        EtreeForest {
            l,
            parts,
            part_level,
            part_index,
        }
    }

    /// Number of grids `Pz`.
    pub fn pz(&self) -> usize {
        1 << self.l
    }

    /// The grid range `[start, start + len)` a tree node is replicated on.
    pub fn grid_range_of_node(&self, node: usize) -> (usize, usize) {
        let lvl = self.part_level[node];
        let q = self.part_index[node];
        let len = 1 << (self.l - lvl);
        (q * len, len)
    }

    /// Does grid `z` keep (allocate blocks of) this tree node?
    pub fn keeps(&self, node: usize, z: usize) -> bool {
        let (start, len) = self.grid_range_of_node(node);
        z >= start && z < start + len
    }

    /// The grid that *factors* this node (first of its replication range) —
    /// also the grid whose copy is initialized with the values of `A`
    /// (paper §III-A: other copies start at zero).
    pub fn factoring_grid(&self, node: usize) -> usize {
        self.grid_range_of_node(node).0
    }

    /// Ascending supernode list of part `(lvl, q)`.
    pub fn supernodes_of(&self, lvl: usize, q: usize, part: &symbolic::SnPartition) -> Vec<usize> {
        let mut sns: Vec<usize> = self.parts[lvl][q]
            .iter()
            .flat_map(|&node| part.sns_of_node[node].iter().copied())
            .collect();
        sns.sort_unstable();
        sns
    }

    /// Critical-path cost of the partition:
    /// `T(E_f) = T(S) + max over children, recursively` (paper Fig. 8).
    pub fn critical_path_cost(&self, tree: &SepTree, sym: &Symbolic) -> u64 {
        let mut node_cost = vec![0u64; tree.nodes.len()];
        for (node, sns) in sym.part.sns_of_node.iter().enumerate() {
            node_cost[node] = sns.iter().map(|&s| sym.cost.flops[s]).sum();
        }
        let part_cost = |lvl: usize, q: usize| -> u64 {
            self.parts[lvl][q].iter().map(|&v| node_cost[v]).sum()
        };
        // cost(lvl, q) = part cost + max of the two child parts.
        fn rec(
            f: &EtreeForest,
            lvl: usize,
            q: usize,
            part_cost: &dyn Fn(usize, usize) -> u64,
        ) -> u64 {
            let own = part_cost(lvl, q);
            if lvl == f.l {
                own
            } else {
                own + rec(f, lvl + 1, 2 * q, part_cost).max(rec(f, lvl + 1, 2 * q + 1, part_cost))
            }
        }
        rec(self, 0, 0, &part_cost)
    }

    /// Validate the structural invariants: every tree node is in exactly one
    /// part, and every node's parent sits in a part whose grid range
    /// contains the node's own range.
    pub fn validate(&self, tree: &SepTree) -> Result<(), String> {
        for (v, node) in tree.nodes.iter().enumerate() {
            if self.part_level[v] == usize::MAX {
                return Err(format!("node {v} unassigned"));
            }
            if let Some(p) = node.parent {
                let (cs, cl) = self.grid_range_of_node(v);
                let (ps, pl) = self.grid_range_of_node(p);
                if !(ps <= cs && cs + cl <= ps + pl) {
                    return Err(format!(
                        "node {v} range ({cs},{cl}) not inside parent {p} range ({ps},{pl})"
                    ));
                }
            }
        }
        for (lvl, level_parts) in self.parts.iter().enumerate() {
            for (q, part) in level_parts.iter().enumerate() {
                for &v in part {
                    if self.part_level[v] != lvl || self.part_index[v] != q {
                        return Err(format!("node {v} part bookkeeping inconsistent"));
                    }
                }
            }
        }
        Ok(())
    }
}

/// One greedy split: pull the most expensive subtrees off the frontier into
/// the top part `S` until the remaining forest packs into two balanced
/// halves; keep the expansion with the best critical-path cost.
fn split_forest(
    tree: &SepTree,
    node_cost: &[u64],
    subtree_cost: &[u64],
    roots: &[usize],
) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
    // Max-heap of frontier subtrees by subtree cost.
    let mut frontier: BinaryHeap<(u64, usize)> =
        roots.iter().map(|&r| (subtree_cost[r], r)).collect();
    let mut s: Vec<usize> = Vec::new();
    let mut s_cost = 0u64;

    // (critical-path cost, ancestor part, child forest 1, child forest 2)
    type Candidate = (u64, Vec<usize>, Vec<usize>, Vec<usize>);
    let mut best: Option<Candidate> = None;
    loop {
        // Greedy 2-way packing of the current frontier (descending cost,
        // lighter bin first).
        let mut items: Vec<(u64, usize)> = frontier.iter().copied().collect();
        items.sort_unstable_by(|a, b| b.cmp(a));
        let mut bins = [0u64; 2];
        let mut packs: [Vec<usize>; 2] = [Vec::new(), Vec::new()];
        for (c, v) in items {
            let t = if bins[0] <= bins[1] { 0 } else { 1 };
            bins[t] += c;
            packs[t].push(v);
        }
        let cost = s_cost + bins[0].max(bins[1]);
        if best.as_ref().is_none_or(|(bc, ..)| cost < *bc) {
            best = Some((cost, s.clone(), packs[0].clone(), packs[1].clone()));
        }
        // Stop when S alone already exceeds the best seen, or nothing left.
        if frontier.is_empty() {
            break;
        }
        if let Some((bc, ..)) = &best {
            if s_cost > *bc {
                break;
            }
        }
        let (_, v) = frontier.pop().expect("non-empty frontier");
        s.push(v);
        s_cost += node_cost[v];
        for &c in &tree.nodes[v].children {
            frontier.push((subtree_cost[c], c));
        }
    }
    let (_, s, c1, c2) = best.expect("at least one candidate split");
    (s, c1, c2)
}

/// The naive split: ancestors = the forest roots, children distributed by
/// position without looking at costs (the paper's Fig. 8 left).
fn split_naive(tree: &SepTree, roots: &[usize]) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
    let s: Vec<usize> = roots.to_vec();
    let children: Vec<usize> = roots
        .iter()
        .flat_map(|&r| tree.nodes[r].children.iter().copied())
        .collect();
    let mut c1 = Vec::new();
    let mut c2 = Vec::new();
    for (i, c) in children.into_iter().enumerate() {
        if i % 2 == 0 {
            c1.push(c);
        } else {
            c2.push(c);
        }
    }
    (s, c1, c2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ordering::{nested_dissection, Graph, NdOptions};
    use slu2d::driver::Prepared;
    use sparsemat::matgen::{grid2d_5pt, grid3d_7pt};
    use sparsemat::testmats::Geometry;

    fn prep(k: usize) -> Prepared {
        Prepared::new(
            grid2d_5pt(k, k, 0.0, 0),
            Geometry::Grid2d { nx: k, ny: k },
            8,
            8,
        )
    }

    #[test]
    fn pz1_puts_everything_in_one_part() {
        let p = prep(12);
        let f = EtreeForest::build(&p.tree, &p.sym, 1);
        f.validate(&p.tree).unwrap();
        assert_eq!(f.l, 0);
        assert_eq!(f.parts[0][0].len(), p.tree.nodes.len());
    }

    #[test]
    fn pz2_splits_cover_everything_once() {
        let p = prep(16);
        let f = EtreeForest::build(&p.tree, &p.sym, 2);
        f.validate(&p.tree).unwrap();
        let total: usize = f.parts.iter().flatten().map(|part| part.len()).sum();
        assert_eq!(total, p.tree.nodes.len());
        // The root must be in the shared top part.
        assert_eq!(f.part_level[p.tree.root()], 0);
        // Each deepest part must be nonempty on a healthy balanced tree.
        assert!(!f.parts[1][0].is_empty());
        assert!(!f.parts[1][1].is_empty());
    }

    #[test]
    fn greedy_balances_subtree_costs() {
        let p = prep(24);
        let f = EtreeForest::build(&p.tree, &p.sym, 2);
        let mut node_cost = vec![0u64; p.tree.nodes.len()];
        for (node, sns) in p.sym.part.sns_of_node.iter().enumerate() {
            node_cost[node] = sns.iter().map(|&s| p.sym.cost.flops[s]).sum();
        }
        let cost = |part: &Vec<usize>| -> u64 { part.iter().map(|&v| node_cost[v]).sum() };
        let c1 = cost(&f.parts[1][0]);
        let c2 = cost(&f.parts[1][1]);
        let imb = c1.max(c2) as f64 / c1.min(c2).max(1) as f64;
        assert!(imb < 1.6, "child imbalance {imb} ({c1} vs {c2})");
    }

    #[test]
    fn critical_path_beats_or_matches_whole_tree() {
        let p = prep(24);
        let f1 = EtreeForest::build(&p.tree, &p.sym, 1);
        let f4 = EtreeForest::build(&p.tree, &p.sym, 4);
        f4.validate(&p.tree).unwrap();
        let t1 = f1.critical_path_cost(&p.tree, &p.sym);
        let t4 = f4.critical_path_cost(&p.tree, &p.sym);
        assert!(t4 < t1, "3D critical path {t4} not below 2D {t1}");
    }

    #[test]
    fn replication_ranges_nest() {
        let a = grid3d_7pt(6, 6, 6, 0.0, 0);
        let g = Graph::from_matrix(&a);
        let tree = nested_dissection(
            &g,
            NdOptions {
                leaf_size: 12,
                geometry: Geometry::Grid3d {
                    nx: 6,
                    ny: 6,
                    nz: 6,
                },
                ..Default::default()
            },
        );
        let pa = a.permute_sym(&tree.perm).symmetrize_pattern();
        let sym = symbolic::Symbolic::analyze(&pa, &tree, 16);
        let f = EtreeForest::build(&tree, &sym, 4);
        f.validate(&tree).unwrap();
        // keeps() must be consistent with grid_range_of_node.
        for v in 0..tree.nodes.len() {
            let (s, len) = f.grid_range_of_node(v);
            for z in 0..4 {
                assert_eq!(f.keeps(v, z), z >= s && z < s + len);
            }
            assert_eq!(f.factoring_grid(v), s);
        }
    }

    #[test]
    fn supernode_lists_ascend_and_partition() {
        let p = prep(16);
        let f = EtreeForest::build(&p.tree, &p.sym, 4);
        let mut seen = vec![false; p.sym.nsup()];
        for lvl in 0..=f.l {
            for q in 0..(1 << lvl) {
                let sns = f.supernodes_of(lvl, q, &p.sym.part);
                assert!(sns.windows(2).all(|w| w[0] < w[1]));
                for s in sns {
                    assert!(!seen[s], "supernode {s} in two parts");
                    seen[s] = true;
                }
            }
        }
        assert!(seen.iter().all(|&b| b));
    }
}
