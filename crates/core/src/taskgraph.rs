//! Task-graph schedule derivation for Algorithm 1 (docs/backends.md,
//! "Schedules").
//!
//! The level-synchronous driver in [`crate::factor3d`] runs each active
//! forest level as: 2D-factor every node of the level, then — at the level
//! boundary — ship every replicated-ancestor supernode to the surviving
//! z-partner in one packed message each. The boundary placement is
//! maximally conservative: a supernode's blocks are final as soon as the
//! *last* Schur update that touches them completes, which is usually well
//! before the level's node list is exhausted. Every position between
//! "final" and "boundary" is pure latency the receiving grid eats as wait
//! time at its own boundary.
//!
//! This module derives, per rank and per active level, the dependency DAG
//! that makes that slack explicit, from symbolic analysis alone:
//!
//! - **Panel(k)** — factor supernode `k`'s diagonal + panels (includes the
//!   panel broadcasts along the layer's row/column communicators).
//! - **Schur(k)** — apply supernode `k`'s Schur-complement update to every
//!   owned trailing block.
//! - **ReduceSend(l_a, s)** / **ReduceRecv(l_a, s)** — one packed z-line
//!   message per replicated-ancestor supernode `s` at ancestor forest
//!   level `l_a` (Algorithm 1's reduction ladder).
//!
//! Edges come from three sources, mirroring how `crates/commplan` derives
//! its event program:
//!
//! - the **elimination tree**: `Schur(c) → Panel(k)` for every scheduled
//!   child `c` of `k` (a panel is ready when its column has absorbed every
//!   child update — the same readiness rule the lookahead window uses);
//! - **block structure**: `Panel(k) → Schur(k)`, and
//!   `Schur(k) → ReduceSend(l_a, s)` / `Schur(k) → ReduceRecv(l_a, s)`
//!   exactly when `s ∈ struct(k)` — the Schur update of `k` writes blocks
//!   of ancestor supernode `s` if and only if `s` appears in `k`'s
//!   row/column structure (panels never write ancestor blocks);
//! - the **communication program**: each `ReduceSend` on the retiring grid
//!   pairs with the `ReduceRecv` of the same `(l_a, s)` on the surviving
//!   grid, on the z-line channel with tag `T_REDUCE | s` — at most one
//!   message per `(src, dst, ctx, tag)` channel per run, so per-channel
//!   FIFO is preserved under *any* send reordering and the static
//!   `commplan` ledger comparison stays exact.
//!
//! The executed task-graph schedule ([`simgrid::Schedule::TaskGraph`])
//! hoists exactly the `ReduceSend` tasks to their readiness points: the
//! send for `(l_a, s)` fires immediately after the last local Schur update
//! with `s ∈ struct(k)` (or at level entry if no scheduled node writes
//! `s`). Everything else — compute order, panel broadcasts, receive
//! program order, every memory-ledger event — stays in level order. That
//! restraint is what keeps the schedule bitwise-equivalent on every
//! receiver-observable value:
//!
//! - *factor digests & solutions*: a hoisted send ships block values after
//!   their last writer, i.e. the same bytes the boundary send would ship;
//! - *wire ledger*: sends are charged under the same
//!   `(phase="reduce", class=ZReduction, level, axis=Z)` key and the same
//!   `(src, dst)` edge, and the ledger's cells are additive — order never
//!   enters the report;
//! - *memory ledger*: a send itself performs no ledger event, and the
//!   sender's `AncestorReplica` credits stay at their boundary position,
//!   so every rank's charge/credit *sequence* — hence its peak bytes and
//!   peak attribution — is unchanged. (Receiver-side hoisting is rejected
//!   for exactly this reason: moving a recv would move its `MsgInFlight`
//!   spike within the prefix-sum and could change peak attribution.)
//!
//! Only simulated *clocks* may differ, and only downward: messages arrive
//! no later than under level order, and `recv` completion is monotone in
//! arrival time.

use crate::forest::EtreeForest;
use symbolic::Symbolic;

/// One task in a rank-level dependency DAG.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TaskKind {
    /// Panel factorization (+ broadcasts) of a scheduled supernode.
    Panel(usize),
    /// Schur-complement update of a scheduled supernode.
    Schur(usize),
    /// Packed z-line send of ancestor supernode `s` at forest level `l_a`.
    ReduceSend { l_a: usize, s: usize },
    /// Packed z-line receive + accumulate of the same.
    ReduceRecv { l_a: usize, s: usize },
}

/// Whether this rank's grid sends or receives at the level boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReduceRole {
    /// Odd pair member: ships its ancestor replicas and retires.
    Sender,
    /// Even pair member: receives and accumulates, then continues.
    Receiver,
    /// Root level (`lvl == 0`): no reduction.
    None,
}

/// The dependency DAG of one rank's work at one active forest level,
/// derived purely from symbolic analysis ([`Symbolic`] + [`EtreeForest`]).
/// Identical on every rank of the layer (tasks a rank owns no blocks of
/// simply execute as no-ops), which is what keeps the collective broadcast
/// schedule aligned.
#[derive(Clone, Debug)]
pub struct LevelTaskDag {
    pub tasks: Vec<TaskKind>,
    /// `(from, to)` index pairs: `from` must complete before `to` starts.
    pub edges: Vec<(usize, usize)>,
    /// Scheduled node list of the level (ascending supernode order).
    nodes: Vec<usize>,
    /// For each reduce task, in boundary enumeration order
    /// (`l_a` descending, then ascending supernode): the task's `(l_a, s)`
    /// and its readiness position (see [`EagerSendPlan`]).
    reduce_ready: Vec<(usize, usize, usize)>,
}

/// One hoisted z-reduction send.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SendTask {
    /// Ancestor forest level.
    pub l_a: usize,
    /// Ancestor supernode.
    pub s: usize,
}

/// The executable product of the DAG for a sender rank at one level:
/// `at[p]` lists the reduce sends that become ready at position `p`, where
/// position `0` is level entry and position `j + 1` is "the Schur update
/// of `nodes[j]` just completed". Within a position, tasks keep the
/// boundary enumeration order.
#[derive(Clone, Debug, Default)]
pub struct EagerSendPlan {
    pub at: Vec<Vec<SendTask>>,
}

impl EagerSendPlan {
    /// Total number of planned sends.
    pub fn total(&self) -> usize {
        self.at.iter().map(|v| v.len()).sum()
    }

    /// How many sends are hoisted strictly before the level boundary.
    pub fn hoisted(&self) -> usize {
        let boundary = self.at.len().saturating_sub(1);
        self.at[..boundary].iter().map(|v| v.len()).sum()
    }
}

impl LevelTaskDag {
    /// Derive the DAG for level `lvl` on the grid at height `my_z`.
    /// `nodes` must be the level's scheduled node list
    /// (`forest.supernodes_of(lvl, q, ..)`, ascending).
    pub fn build(
        sym: &Symbolic,
        forest: &EtreeForest,
        nodes: &[usize],
        lvl: usize,
        my_z: usize,
        role: ReduceRole,
    ) -> Self {
        let mut tasks = Vec::with_capacity(nodes.len() * 2);
        let mut edges = Vec::new();
        // Scheduled-node tasks: Panel(k) at 2*i, Schur(k) at 2*i + 1.
        let pos_of = |i: usize| (2 * i, 2 * i + 1);
        for (i, &k) in nodes.iter().enumerate() {
            tasks.push(TaskKind::Panel(k));
            tasks.push(TaskKind::Schur(k));
            let (p, s) = pos_of(i);
            edges.push((p, s));
        }
        // Etree edges: a scheduled child's Schur gates its parent's panel.
        for (i, &k) in nodes.iter().enumerate() {
            if let Some(parent) = sym.fill.parent[k] {
                if let Ok(j) = nodes.binary_search(&parent) {
                    edges.push((pos_of(i).1, pos_of(j).0));
                }
            }
        }
        // Reduce tasks, in the boundary enumeration order of
        // `factor3d::reduce_ancestors`: ancestor levels from `lvl - 1`
        // down to 0, supernodes ascending within each part.
        let mut reduce_ready = Vec::new();
        if role != ReduceRole::None {
            let l = forest.l;
            for l_a in (0..lvl).rev() {
                let q_a = my_z >> (l - l_a);
                for s in forest.supernodes_of(l_a, q_a, &sym.part) {
                    let t = tasks.len();
                    tasks.push(match role {
                        ReduceRole::Sender => TaskKind::ReduceSend { l_a, s },
                        _ => TaskKind::ReduceRecv { l_a, s },
                    });
                    // Block-structure edges: Schur(k) writes blocks of
                    // ancestor supernode `s` iff `s ∈ struct(k)`. The last
                    // such k is the task's readiness point.
                    let mut ready_at = 0usize;
                    for (i, &k) in nodes.iter().enumerate() {
                        if sym.fill.struct_of[k].binary_search(&s).is_ok() {
                            edges.push((pos_of(i).1, t));
                            ready_at = i + 1;
                        }
                    }
                    reduce_ready.push((l_a, s, ready_at));
                }
            }
        }
        LevelTaskDag {
            tasks,
            edges,
            nodes: nodes.to_vec(),
            reduce_ready,
        }
    }

    /// The eager-send plan: each reduce task bucketed at its readiness
    /// position. Meaningful for [`ReduceRole::Sender`] DAGs (the receiver
    /// keeps its program order — see the module docs for why).
    pub fn eager_send_plan(&self) -> EagerSendPlan {
        let mut at = vec![Vec::new(); self.nodes.len() + 1];
        for &(l_a, s, pos) in &self.reduce_ready {
            at[pos].push(SendTask { l_a, s });
        }
        EagerSendPlan { at }
    }

    /// Topological-order check: every edge points from a task to one that
    /// cannot start earlier. Panics on a cycle; used by tests and debug
    /// assertions.
    pub fn assert_acyclic(&self) {
        let n = self.tasks.len();
        let mut indeg = vec![0usize; n];
        let mut out: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(a, b) in &self.edges {
            indeg[b] += 1;
            out[a].push(b);
        }
        let mut queue: Vec<usize> = (0..n).filter(|&t| indeg[t] == 0).collect();
        let mut seen = 0;
        while let Some(t) = queue.pop() {
            seen += 1;
            for &b in &out[t] {
                indeg[b] -= 1;
                if indeg[b] == 0 {
                    queue.push(b);
                }
            }
        }
        assert_eq!(seen, n, "level task DAG has a cycle");
    }
}

/// Convenience: the sender-side eager plan for one level, or `None` when
/// the schedule has nothing to hoist (no ancestors below `lvl`).
pub fn eager_send_plan(
    sym: &Symbolic,
    forest: &EtreeForest,
    nodes: &[usize],
    lvl: usize,
    my_z: usize,
) -> EagerSendPlan {
    LevelTaskDag::build(sym, forest, nodes, lvl, my_z, ReduceRole::Sender).eager_send_plan()
}

#[cfg(test)]
mod tests {
    use super::*;
    use slu2d::driver::Prepared;
    use sparsemat::matgen::grid2d_5pt;
    use sparsemat::testmats::Geometry;

    fn prep(k: usize, pz: usize) -> (Prepared, EtreeForest) {
        let p = Prepared::new(
            grid2d_5pt(k, k, 0.1, 1),
            Geometry::Grid2d { nx: k, ny: k },
            8,
            8,
        );
        let forest = EtreeForest::build(&p.tree, &p.sym, pz);
        (p, forest)
    }

    #[test]
    fn dag_is_acyclic_and_covers_every_level_task() {
        let (p, forest) = prep(16, 4);
        let l = forest.l;
        for my_z in [1usize, 2, 3] {
            for lvl in (1..=l).rev() {
                let step = 1 << (l - lvl);
                if my_z % step != 0 {
                    continue;
                }
                let q = my_z >> (l - lvl);
                let nodes = forest.supernodes_of(lvl, q, &p.sym.part);
                let k = my_z / step;
                let role = if k % 2 == 1 {
                    ReduceRole::Sender
                } else {
                    ReduceRole::Receiver
                };
                let dag = LevelTaskDag::build(&p.sym, &forest, &nodes, lvl, my_z, role);
                dag.assert_acyclic();
                let npanel = dag
                    .tasks
                    .iter()
                    .filter(|t| matches!(t, TaskKind::Panel(_)))
                    .count();
                let nschur = dag
                    .tasks
                    .iter()
                    .filter(|t| matches!(t, TaskKind::Schur(_)))
                    .count();
                assert_eq!(npanel, nodes.len());
                assert_eq!(nschur, nodes.len());
                // One reduce task per ancestor supernode of every level
                // below lvl.
                let expected: usize = (0..lvl)
                    .map(|l_a| {
                        forest
                            .supernodes_of(l_a, my_z >> (l - l_a), &p.sym.part)
                            .len()
                    })
                    .sum();
                assert_eq!(dag.tasks.len(), 2 * nodes.len() + expected);
            }
        }
    }

    #[test]
    fn send_positions_are_the_last_writer_plus_one() {
        let (p, forest) = prep(16, 2);
        let l = forest.l;
        // z = 1 is the sender at the (single) pairing level lvl = l.
        let lvl = l;
        let my_z = 1usize;
        let nodes = forest.supernodes_of(lvl, my_z, &p.sym.part);
        let plan = eager_send_plan(&p.sym, &forest, &nodes, lvl, my_z);
        assert_eq!(plan.at.len(), nodes.len() + 1);
        assert!(plan.total() > 0, "deep levels must have ancestors to ship");
        for (pos, bucket) in plan.at.iter().enumerate() {
            for t in bucket {
                // No scheduled node at or after `pos` writes s; the node
                // just before `pos` (if any) does.
                for (i, &k) in nodes.iter().enumerate() {
                    let writes = p.sym.fill.struct_of[k].binary_search(&t.s).is_ok();
                    if i >= pos {
                        assert!(!writes, "writer after readiness position");
                    }
                    if pos > 0 && i == pos - 1 {
                        assert!(writes, "readiness position is not a writer");
                    }
                }
            }
        }
        // The plan covers exactly the boundary enumeration.
        let expected: usize = (0..lvl)
            .map(|l_a| {
                forest
                    .supernodes_of(l_a, my_z >> (l - l_a), &p.sym.part)
                    .len()
            })
            .sum();
        assert_eq!(plan.total(), expected);
    }

    #[test]
    fn some_sends_hoist_ahead_of_the_boundary() {
        // The whole point: on a real nested-dissection structure, not
        // every ancestor supernode is written by the level's last node.
        let (p, forest) = prep(24, 4);
        let l = forest.l;
        let mut hoisted = 0usize;
        let mut total = 0usize;
        for my_z in [1usize, 3] {
            let lvl = l; // deepest pairing level: every odd z sends
            let nodes = forest.supernodes_of(lvl, my_z, &p.sym.part);
            let plan = eager_send_plan(&p.sym, &forest, &nodes, lvl, my_z);
            hoisted += plan.hoisted();
            total += plan.total();
        }
        assert!(total > 0);
        assert!(
            hoisted > 0,
            "no send hoisted on any sender — the task graph would be a no-op"
        );
    }
}
