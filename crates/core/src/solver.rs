//! End-to-end 3D solver API and the measurement output the experiment
//! harnesses consume.

use crate::factor3d::factor_3d;
use crate::forest::EtreeForest;
use crate::gather::gather_factors_to_grid0;
use crate::solve3d::solve_3d;
use simgrid::topology::build_grid_comms;
use simgrid::{
    Backend, FailKind, FaultPlan, Grid3d, Machine, MachineFailure, RankReport, RetryPolicy,
    Schedule, TimeModel, TrafficSummary,
};
use slu2d::driver::Prepared;
use slu2d::factor2d::FactorOpts;
use slu2d::solve2d::solve_nodes;
use slu2d::store::BlockStore;
use std::sync::Arc;

/// How the triangular solve is distributed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SolveStrategy {
    /// Fully distributed: forward/backward substitution follows the 3D
    /// factor layout, with accumulator reductions and solution broadcasts
    /// along the z-axis (see [`crate::solve3d`]). The default.
    Distributed3d,
    /// Ship every factor panel to grid 0 and solve on one layer (see
    /// [`crate::gather`]); simpler, more traffic, used as a cross-check.
    GatherToGrid0,
}

/// Configuration of one 3D run: grid shape plus tuning knobs.
#[derive(Clone, Debug)]
pub struct SolverConfig {
    /// 2D layer shape: `pr x pc` processes per grid.
    pub pr: usize,
    pub pc: usize,
    /// Number of stacked 2D grids; must be a power of two.
    pub pz: usize,
    /// Lookahead window for the 2D kernel (§II-F).
    pub lookahead: usize,
    /// Static-pivoting threshold.
    pub pivot_threshold: f64,
    /// Run Schur updates through the batched gather-GEMM-scatter path
    /// (one register-blocked GEMM per supernode instead of one tiny GEMM
    /// per block pair). Bit-identical factors and identical simulated
    /// clocks either way — purely a host-performance knob (docs/perf.md).
    pub batched_schur: bool,
    /// Iterative-refinement sweeps after the solve. SuperLU_DIST pairs
    /// static pivoting with refinement to recover accuracy lost to pivot
    /// perturbations (§VI: "SuperLU_DIST uses static pivoting with
    /// iterative refinement"); 0 disables.
    pub refine_steps: usize,
    /// How to distribute the triangular solve.
    pub solve_strategy: SolveStrategy,
    /// Machine model for the simulated cluster.
    pub model: TimeModel,
    /// Record per-rank span/activity traces (enables the Gantt chart,
    /// Chrome trace export, and critical-path attribution on the output).
    /// Costs memory proportional to the operation count; off by default.
    pub tracing: bool,
    /// Profile host wall-clock time per rank (`obs::hostprof`): RAII
    /// scopes attribute the thread's measured wall to a fixed phase
    /// taxonomy (panel-factor/gather/gemm/scatter/solves/comm-wait plus an
    /// orchestration residual), summing to 100% by construction. Purely
    /// host-side — simulated clocks, factors, and digests are untouched.
    /// Off by default.
    pub host_profiling: bool,
    /// Run under the communication sanitizer (`commcheck`): vector-clock
    /// race detection on wildcard receives, message-leak accounting, and a
    /// wait-for-graph deadlock detector that aborts a hung run within
    /// ~100ms naming the exact cycle. Off by default — then no clocks, no
    /// send table, and no detector thread exist (zero overhead). The
    /// report lands in [`Output3d::sanitizer`]; findings panic at the end
    /// of the run so CI cannot miss them.
    pub sanitize: bool,
    /// Seeded deterministic fault plan (`simgrid::faultlab`): message
    /// drop/dup/delay rules, rank stall windows, link degradation. `None`
    /// (the default) costs nothing. Parse one from the `salu --faults`
    /// grammar with [`FaultPlan::parse`].
    pub fault_plan: Option<FaultPlan>,
    /// Ack/retransmit recovery for droppable sends. With recovery on, a
    /// faulted run delivers the exact fault-free payload sequence: factors
    /// stay *bitwise identical* (see [`Output3d::factor_digest`]), only
    /// simulated clocks shift. `None` means drops are simply lost — the
    /// run then fails structurally (deadlock or leak naming the edge).
    pub retry: Option<RetryPolicy>,
    /// Simulated-time receive deadline in seconds: a receive whose message
    /// arrives later than this fails the rank with a structured error
    /// naming phase/supernode/level, replacing the wall-clock
    /// `SALU_RECV_TIMEOUT_SECS` backstop as the primary stall detector.
    pub recv_deadline: Option<f64>,
    /// Execution backend for the simulated machine (docs/backends.md).
    /// [`Backend::Threaded`] (the default) runs one free-running OS thread
    /// per rank; [`Backend::Event`] runs ranks as cooperatively scheduled
    /// tasks, making paper-scale grids (`pr*pc*pz = 4096` and beyond)
    /// single-process-cheap. Factor digests, simulated makespans, and all
    /// observability ledgers are bitwise identical between backends; host
    /// profiling is threaded-only and the machine rejects
    /// `host_profiling = true` under `Event` with a config error.
    pub backend: Backend,
    /// When the ancestor-reduction sends fire (docs/backends.md,
    /// "Schedules"). [`Schedule::Level`] (the default) ships every
    /// replicated-ancestor supernode at the level boundary, as in the
    /// paper's Algorithm 1. [`Schedule::TaskGraph`] derives a per-rank
    /// dependency DAG from symbolic analysis ([`crate::taskgraph`]) and
    /// hoists each send to the completion of the supernode's last local
    /// Schur writer. Factors, solutions, and the wire/memory ledgers are
    /// bitwise identical between schedules on both backends; only
    /// simulated clocks (and the makespan) may drop.
    pub schedule: Schedule,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            pr: 1,
            pc: 1,
            pz: 1,
            lookahead: 8,
            pivot_threshold: 1e-10,
            batched_schur: false,
            refine_steps: 0,
            solve_strategy: SolveStrategy::Distributed3d,
            model: TimeModel::edison_like(),
            tracing: false,
            host_profiling: false,
            sanitize: false,
            fault_plan: None,
            retry: None,
            recv_deadline: None,
            backend: Backend::Threaded,
            schedule: Schedule::default(),
        }
    }
}

/// A structured solver failure from [`try_factor_and_solve`] /
/// [`try_factor_only`]: the machine's *primary* (earliest non-cascade)
/// rank failure, so the report names the original cause — e.g. the stalled
/// z-layer a `reduce` recv was waiting on — not whichever rank died in the
/// cascade.
#[derive(Clone, Debug)]
pub struct SolverError {
    /// World rank of the primary failure.
    pub rank: usize,
    /// Traffic phase active when it failed (`fact`, `reduce`, `solve`, ...).
    pub phase: String,
    /// Structured cause (recv deadline, payload mismatch, solver stage...).
    pub kind: FailKind,
    /// Number of ranks that failed in the primary's wake.
    pub cascades: usize,
}

impl SolverError {
    fn from_machine(mf: MachineFailure) -> Self {
        let primary = mf.primary();
        SolverError {
            rank: primary.rank,
            phase: primary.phase.clone(),
            kind: primary.kind.clone(),
            cascades: mf.failures.len() - 1,
        }
    }

    /// Supernode named by a solver-stage failure, if any.
    pub fn supernode(&self) -> Option<usize> {
        match &self.kind {
            FailKind::Solver { supernode, .. } => *supernode,
            _ => None,
        }
    }

    /// Forest level named by a solver-stage failure, if any.
    pub fn level(&self) -> Option<usize> {
        match &self.kind {
            FailKind::Solver { level, .. } => *level,
            _ => None,
        }
    }
}

impl std::fmt::Display for SolverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "solver failed on rank {} (phase `{}`): {}",
            self.rank, self.phase, self.kind
        )?;
        if self.cascades > 0 {
            write!(f, " (+{} cascaded rank failure(s))", self.cascades)?;
        }
        Ok(())
    }
}

impl std::error::Error for SolverError {}

/// Everything a 3D run reports.
pub struct Output3d {
    /// Solution in the original ordering (when a RHS was supplied).
    pub x: Option<Vec<f64>>,
    /// Per-rank traffic/time reports.
    pub reports: Vec<RankReport>,
    /// Total static-pivot perturbations.
    pub perturbations: usize,
    /// Supernodes whose panel phase ran ahead via lookahead (summed over
    /// ranks).
    pub lookahead_hits: usize,
    /// Maximum per-rank factor storage in words — the Fig. 11 numerator.
    pub max_store_words: u64,
    /// Total factor storage over all ranks, in words (replication makes
    /// this grow with `Pz`; the Fig. 11 overhead ratio uses it).
    pub total_store_words: u64,
    /// The tree-forest partition used (for critical-path diagnostics).
    pub forest: EtreeForest,
    /// Communication-correctness report; `None` unless the run had
    /// [`SolverConfig::sanitize`] set. A sanitized run with findings
    /// panics before this is ever returned, so a present report is clean.
    pub sanitizer: Option<simgrid::CommReport>,
    /// Order-independent digest over every rank's factored blocks (sorted
    /// block keys, then raw f64 bit patterns). Two runs produced *bitwise
    /// identical* L/U factors iff their digests match — the chaos suite's
    /// recovery guarantee ("faults with recovery change clocks, never
    /// values") is asserted through this.
    pub factor_digest: u64,
}

impl Output3d {
    /// Aggregate traffic summary.
    pub fn summary(&self) -> TrafficSummary {
        TrafficSummary::from_reports(&self.reports)
    }

    /// Max per-rank words sent during 2D factorization (`W_fact`, Fig. 10).
    pub fn w_fact(&self) -> u64 {
        TrafficSummary::max_sent_words_in(&self.reports, "fact")
    }

    /// Max per-rank words sent during ancestor reduction (`W_red`, Fig. 10).
    pub fn w_red(&self) -> u64 {
        TrafficSummary::max_sent_words_in(&self.reports, "reduce")
    }

    /// Simulated critical-path factorization time: the largest clock over
    /// ranks at the end of the *factorization* (excludes solve when the run
    /// included one only if measured via `factor_only`).
    pub fn makespan(&self) -> f64 {
        self.summary().makespan
    }

    /// Per-rank span/activity stores; `None` unless the run had
    /// [`SolverConfig::tracing`] set.
    pub fn rank_obs(&self) -> Option<Vec<simgrid::RankObs>> {
        self.reports
            .iter()
            .map(|r| r.trace.clone())
            .collect::<Option<Vec<_>>>()
    }

    /// Chrome trace-event document of a traced run (load in
    /// <https://ui.perfetto.dev>). `None` when tracing was off.
    pub fn chrome_trace(&self) -> Option<simgrid::Json> {
        self.rank_obs().map(|obs| simgrid::obs::chrome_trace(&obs))
    }

    /// Critical path through the send→recv dependency graph of a traced
    /// run. `None` when tracing was off.
    pub fn critical_path(&self) -> Option<simgrid::CriticalPath> {
        self.rank_obs()
            .map(|obs| simgrid::CriticalPath::analyze(&obs))
    }

    /// Machine-wide metrics: every rank's registry merged (always
    /// available — metrics do not require tracing).
    pub fn metrics(&self) -> simgrid::MetricsRegistry {
        simgrid::merged_metrics(&self.reports)
    }

    /// Machine-wide memory profile document: per-rank ledger reports plus
    /// the max/sum/per-class summary (always available — the ledger does
    /// not require tracing).
    pub fn mem_profile(&self) -> simgrid::Json {
        let per_rank: Vec<_> = self.reports.iter().map(|r| r.memprof.clone()).collect();
        simgrid::memprof_json(&per_rank)
    }

    /// Max per-rank ledger high-water mark (bytes).
    pub fn max_peak_bytes(&self) -> u64 {
        self.reports
            .iter()
            .map(|r| r.memprof.peak_bytes)
            .max()
            .unwrap_or(0)
    }

    /// Sum over ranks of ledger high-water marks (bytes) — the live-ledger
    /// memory measure behind the regenerated Fig. 11 table.
    pub fn total_peak_bytes(&self) -> u64 {
        self.reports.iter().map(|r| r.memprof.peak_bytes).sum()
    }

    /// Sum over ranks of peak-instant bytes attributed to one memory
    /// class.
    pub fn peak_class_bytes(&self, class: simgrid::MemClass) -> u64 {
        self.reports
            .iter()
            .map(|r| r.memprof.peak_class_bytes(class))
            .sum()
    }

    /// Machine-wide host-time profile document: per-rank wall-clock phase
    /// breakdowns with derived flop-rate/bandwidth gauges and folded
    /// stacks. `None` unless the run had
    /// [`SolverConfig::host_profiling`] set.
    pub fn hostprof_profile(&self) -> Option<simgrid::Json> {
        let per_rank: Option<Vec<_>> = self.reports.iter().map(|r| r.hostprof.clone()).collect();
        per_rank.map(|v| simgrid::hostprof_json(&v))
    }

    /// Per-rank host-time reports, when profiling was on.
    pub fn hostprof_reports(&self) -> Option<Vec<simgrid::HostReport>> {
        self.reports.iter().map(|r| r.hostprof.clone()).collect()
    }

    /// Machine-wide wire-volume profile document: per-rank comm-ledger
    /// reports plus per-class/per-axis/per-level totals and the
    /// padding-waste ratios (always available — the ledger does not
    /// require tracing).
    pub fn commvol_profile(&self) -> simgrid::Json {
        let per_rank: Vec<_> = self.reports.iter().map(|r| r.commvol.clone()).collect();
        simgrid::commvol_json(&per_rank)
    }

    /// Sum over ranks of algorithmic words sent under one communication
    /// class (wire ledger).
    pub fn class_words(&self, class: simgrid::CommClass) -> u64 {
        self.reports
            .iter()
            .map(|r| r.commvol.class_cell(class).words)
            .sum()
    }

    /// Max per-rank algorithmic words sent (wire ledger) — the measured
    /// counterpart of the cost model's per-process volume `W(p, pz)`.
    pub fn max_rank_sent_words(&self) -> u64 {
        self.reports
            .iter()
            .map(|r| r.commvol.sent_words())
            .max()
            .unwrap_or(0)
    }

    /// Sum over ranks of algorithmic words sent along one grid axis.
    pub fn axis_words(&self, axis: simgrid::GridAxis) -> u64 {
        self.reports
            .iter()
            .map(|r| r.commvol.axis_words(axis))
            .sum()
    }
}

/// FNV-1a over a block store's sorted keys and raw f64 bit patterns:
/// equal digests ⇔ bitwise-equal local factors.
fn store_digest(store: &BlockStore) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut keys: Vec<(usize, usize)> = store.keys().collect();
    keys.sort_unstable();
    let mut h = OFFSET;
    let mix = |h: &mut u64, v: u64| {
        for byte in v.to_le_bytes() {
            *h ^= u64::from(byte);
            *h = h.wrapping_mul(PRIME);
        }
    };
    for (i, j) in keys {
        mix(&mut h, i as u64);
        mix(&mut h, j as u64);
        for &v in store.get(i, j).expect("listed key").as_slice() {
            mix(&mut h, v.to_bits());
        }
    }
    h
}

/// Factor only (no solve): the measurement entry point for every
/// factorization experiment.
pub fn factor_only(prep: &Prepared, cfg: &SolverConfig) -> Output3d {
    run(prep, cfg, None)
}

/// Factor and, when `rhs` is given, solve `A x = b` end to end. The
/// returned solution is in the original (pre-permutation) ordering.
pub fn factor_and_solve(prep: &Prepared, cfg: &SolverConfig, rhs: Option<Vec<f64>>) -> Output3d {
    run(prep, cfg, rhs)
}

/// Like [`factor_only`], but a failing run yields a structured
/// [`SolverError`] instead of a panic.
pub fn try_factor_only(prep: &Prepared, cfg: &SolverConfig) -> Result<Output3d, SolverError> {
    try_run(prep, cfg, None).map_err(SolverError::from_machine)
}

/// Like [`factor_and_solve`], but a failing run yields a structured
/// [`SolverError`] — the primary rank failure with its phase, and for
/// solver-stage failures the supernode and forest level — instead of a
/// panic.
pub fn try_factor_and_solve(
    prep: &Prepared,
    cfg: &SolverConfig,
    rhs: Option<Vec<f64>>,
) -> Result<Output3d, SolverError> {
    try_run(prep, cfg, rhs).map_err(SolverError::from_machine)
}

fn run(prep: &Prepared, cfg: &SolverConfig, rhs: Option<Vec<f64>>) -> Output3d {
    match try_run(prep, cfg, rhs) {
        Ok(out) => out,
        Err(mf) => panic!("{}", mf.render()),
    }
}

fn try_run(
    prep: &Prepared,
    cfg: &SolverConfig,
    rhs: Option<Vec<f64>>,
) -> Result<Output3d, MachineFailure> {
    assert!(cfg.pz.is_power_of_two(), "Pz must be a power of two");
    let grid3 = Grid3d::new(cfg.pr, cfg.pc, cfg.pz);
    let mut machine = Machine::new(grid3.size(), cfg.model).with_backend(cfg.backend);
    if cfg.tracing {
        machine = machine.with_tracing();
    }
    if cfg.host_profiling {
        machine = machine.with_host_profiling();
    }
    if cfg.sanitize {
        machine = machine.with_sanitizer();
    }
    if let Some(plan) = &cfg.fault_plan {
        machine = machine.with_fault_plan(plan.clone());
    }
    if let Some(retry) = cfg.retry {
        machine = machine.with_retry(retry);
    }
    if let Some(deadline) = cfg.recv_deadline {
        machine = machine.with_recv_deadline(deadline);
    }
    let forest = Arc::new(EtreeForest::build(&prep.tree, &prep.sym, cfg.pz));
    let pa = Arc::clone(&prep.pa);
    let sym = Arc::clone(&prep.sym);
    let rhs_p = rhs.map(|b| Arc::new(prep.permute_rhs(&b)));
    let opts = FactorOpts {
        lookahead: cfg.lookahead,
        pivot_threshold: cfg.pivot_threshold,
        batched_schur: cfg.batched_schur,
    };
    let forest_cl = Arc::clone(&forest);
    let cfg_refine = cfg.refine_steps;
    let strategy = cfg.solve_strategy;
    let schedule = cfg.schedule;

    let out = machine.try_run(move |rank| {
        let comms = build_grid_comms(rank, &grid3);
        let (my_r, my_c, my_z) = comms.coords;

        // Allocate this grid's blocks: its forest parts plus every
        // replicated ancestor; values land on each block's designated
        // initialization grid, zeros elsewhere (§III-A).
        let keep = |sn: usize| forest_cl.keeps(sym.part.node_of_sn[sn], my_z);
        let value_pred = |bi: usize, bj: usize| {
            let (ni, nj) = (sym.part.node_of_sn[bi], sym.part.node_of_sn[bj]);
            let deeper = if forest_cl.part_level[ni] >= forest_cl.part_level[nj] {
                ni
            } else {
                nj
            };
            forest_cl.factoring_grid(deeper) == my_z
        };
        let mut store = BlockStore::build_with_value_pred(
            &pa,
            &sym,
            &grid3.grid2d,
            my_r,
            my_c,
            &keep,
            &value_pred,
        );
        let store_words = store.total_words();

        // A structured stage failure ends this rank in an orderly way: the
        // machine's failure board attributes the run to it (not to the
        // ranks that cascade), and `try_run` surfaces it as the error.
        let outcome = match factor_3d(
            rank, &grid3, &comms, &mut store, &sym, &forest_cl, opts, schedule,
        ) {
            Ok(o) => o,
            Err(kind) => rank.fail(kind),
        };
        // Digest before any solve: GatherToGrid0 mutates the store.
        let factor_digest = store_digest(&store);

        let refine_steps = cfg_refine;
        let x_partial = rhs_p.as_ref().and_then(|b| {
            rank.set_phase("solve");
            match strategy {
                SolveStrategy::Distributed3d => {
                    let world = rank.world();
                    let uindex = slu2d::solve2d::transpose_index(&sym);
                    let solve_once = |rank: &mut simgrid::Rank, rhs: &[f64]| match solve_3d(
                        rank, &grid3, &comms, &store, &sym, &forest_cl, opts, &uindex, rhs,
                    ) {
                        Ok(xp) => xp,
                        Err(kind) => rank.fail(kind),
                    };
                    let xp = solve_once(rank, b);
                    // Every rank materializes the full solution so iterative
                    // refinement can compute residuals locally.
                    let mut x_full = rank.allreduce_sum(&world, xp, simgrid::tags::CB_SOLVE_X);
                    for step in 0..refine_steps {
                        let ax = pa.matvec(&x_full);
                        let r: Vec<f64> = b.iter().zip(ax).map(|(bi, axi)| bi - axi).collect();
                        let dxp = solve_once(rank, &r);
                        let dx =
                            rank.allreduce_sum(&world, dxp, simgrid::tags::CB_REFINE | step as u64);
                        for (xi, di) in x_full.iter_mut().zip(dx) {
                            *xi += di;
                        }
                    }
                    if rank.id() == 0 {
                        Some(x_full)
                    } else {
                        None
                    }
                }
                SolveStrategy::GatherToGrid0 => {
                    gather_factors_to_grid0(rank, &comms, &mut store, &sym, &forest_cl);
                    if my_z != 0 {
                        return None;
                    }
                    let env = slu2d::factor2d::FactorEnv {
                        grid: grid3.grid2d,
                        my_r,
                        my_c,
                        row: comms.row.clone(),
                        col: comms.col.clone(),
                        opts,
                    };
                    let nodes: Vec<usize> = (0..sym.nsup()).collect();
                    let xp = solve_nodes(rank, &env, &store, &sym, &nodes, b);
                    // Every layer rank materializes the full solution so
                    // iterative refinement can compute residuals locally.
                    let mut x_full =
                        rank.allreduce_sum(&comms.layer, xp, simgrid::tags::CB_SOLVE_X);
                    for step in 0..refine_steps {
                        // r = b - A x, computed redundantly (deterministic)
                        // on each layer rank from the shared matrix values.
                        let ax = pa.matvec(&x_full);
                        let r: Vec<f64> = b.iter().zip(ax).map(|(bi, axi)| bi - axi).collect();
                        let dxp = solve_nodes(rank, &env, &store, &sym, &nodes, &r);
                        let dx = rank.allreduce_sum(
                            &comms.layer,
                            dxp,
                            simgrid::tags::CB_REFINE | step as u64,
                        );
                        for (xi, di) in x_full.iter_mut().zip(dx) {
                            *xi += di;
                        }
                    }
                    if comms.layer.local_rank() == 0 {
                        Some(x_full)
                    } else {
                        None
                    }
                }
            }
        });
        (
            outcome.perturbations,
            outcome.lookahead_hits,
            store_words,
            factor_digest,
            x_partial,
        )
    })?;

    if let Some(rep) = &out.sanitizer {
        assert!(
            rep.is_clean(),
            "communication sanitizer found defects:\n{}",
            rep.render()
        );
    }
    let perturbations = out.results.iter().map(|r| r.0).sum();
    let lookahead_hits = out.results.iter().map(|r| r.1).sum();
    let max_store_words = out.results.iter().map(|r| r.2).max().unwrap_or(0);
    let total_store_words = out.results.iter().map(|r| r.2).sum();
    // Fold the per-rank digests in world-rank order (the order is part of
    // the identity: rank r's factors must match rank r's).
    let factor_digest = out.results.iter().fold(0xcbf2_9ce4_8422_2325u64, |h, r| {
        (h.rotate_left(17) ^ r.3).wrapping_mul(0x0000_0100_0000_01b3)
    });
    let x = out
        .results
        .into_iter()
        .find_map(|r| r.4)
        .map(|px| prep.unpermute_solution(&px));
    Ok(Output3d {
        x,
        reports: out.reports,
        perturbations,
        lookahead_hits,
        max_store_words,
        total_store_words,
        forest: Arc::try_unwrap(forest).unwrap_or_else(|a| (*a).clone()),
        sanitizer: out.sanitizer,
        factor_digest,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsemat::matgen::{grid2d_5pt, grid3d_7pt, kkt_3d};
    use sparsemat::testmats::Geometry;
    use sparsemat::Csr;

    fn check(a: Csr, geometry: Geometry, pr: usize, pc: usize, pz: usize, tol: f64) -> Output3d {
        let n = a.nrows;
        let x_true: Vec<f64> = (0..n).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let b = a.matvec(&x_true);
        let prep = Prepared::new(a, geometry, 8, 8);
        let cfg = SolverConfig {
            pr,
            pc,
            pz,
            model: TimeModel::zero(),
            ..Default::default()
        };
        let out = factor_and_solve(&prep, &cfg, Some(b.clone()));
        let x = out.x.as_ref().expect("solution");
        let r = prep.a.residual_inf(x, &b);
        let bmax = b.iter().fold(1.0f64, |m, v| m.max(v.abs()));
        assert!(
            r / bmax < tol,
            "{pr}x{pc}x{pz}: relative residual {}",
            r / bmax
        );
        out
    }

    #[test]
    fn pz1_equals_2d_baseline() {
        check(
            grid2d_5pt(12, 12, 0.1, 1),
            Geometry::Grid2d { nx: 12, ny: 12 },
            2,
            2,
            1,
            1e-8,
        );
    }

    #[test]
    fn pz2_single_layer_ranks() {
        check(
            grid2d_5pt(12, 12, 0.1, 2),
            Geometry::Grid2d { nx: 12, ny: 12 },
            1,
            1,
            2,
            1e-8,
        );
    }

    #[test]
    fn pz2_with_2x2_layers() {
        check(
            grid2d_5pt(14, 14, 0.1, 3),
            Geometry::Grid2d { nx: 14, ny: 14 },
            2,
            2,
            2,
            1e-8,
        );
    }

    #[test]
    fn pz4_planar() {
        check(
            grid2d_5pt(16, 16, 0.1, 4),
            Geometry::Grid2d { nx: 16, ny: 16 },
            1,
            2,
            4,
            1e-8,
        );
    }

    #[test]
    fn pz8_planar_deep_forest() {
        check(
            grid2d_5pt(20, 20, 0.1, 5),
            Geometry::Grid2d { nx: 20, ny: 20 },
            1,
            1,
            8,
            1e-8,
        );
    }

    #[test]
    fn pz2_nonplanar() {
        check(
            grid3d_7pt(5, 5, 5, 0.1, 6),
            Geometry::Grid3d {
                nx: 5,
                ny: 5,
                nz: 5,
            },
            2,
            1,
            2,
            1e-8,
        );
    }

    #[test]
    fn pz4_kkt_multilevel_ordering() {
        check(kkt_3d(3, 3, 3, 1e-2, 7), Geometry::General, 1, 2, 4, 1e-6);
    }

    #[test]
    fn reduction_traffic_appears_only_for_pz_gt_1() {
        let a = grid2d_5pt(12, 12, 0.1, 8);
        let prep = Prepared::new(a, Geometry::Grid2d { nx: 12, ny: 12 }, 8, 8);
        let o1 = factor_only(
            &prep,
            &SolverConfig {
                pr: 2,
                pc: 2,
                pz: 1,
                model: TimeModel::zero(),
                ..Default::default()
            },
        );
        assert_eq!(o1.w_red(), 0);
        let o2 = factor_only(
            &prep,
            &SolverConfig {
                pr: 2,
                pc: 2,
                pz: 2,
                model: TimeModel::zero(),
                ..Default::default()
            },
        );
        assert!(o2.w_red() > 0, "Pz=2 must reduce ancestors along z");
        // And the per-process 2D-factorization volume shrinks (the headline
        // effect of the algorithm).
        assert!(
            o2.w_fact() < o1.w_fact(),
            "W_fact {} (Pz=2) !< {} (Pz=1)",
            o2.w_fact(),
            o1.w_fact()
        );
    }

    #[test]
    fn memory_grows_with_replication() {
        let a = grid3d_7pt(6, 6, 6, 0.1, 9);
        let prep = Prepared::new(
            a,
            Geometry::Grid3d {
                nx: 6,
                ny: 6,
                nz: 6,
            },
            8,
            8,
        );
        let m1 = factor_only(
            &prep,
            &SolverConfig {
                pr: 1,
                pc: 2,
                pz: 1,
                model: TimeModel::zero(),
                ..Default::default()
            },
        )
        .max_store_words;
        let m4 = factor_only(
            &prep,
            &SolverConfig {
                pr: 1,
                pc: 2,
                pz: 4,
                model: TimeModel::zero(),
                ..Default::default()
            },
        )
        .max_store_words;
        // Same number of ranks per layer; Pz=4 replicates ancestors, so the
        // busiest rank must hold more than ... well, per-rank layer memory:
        // with Pz=4 each layer holds 1/4 of the subtrees plus ancestors, so
        // the per-rank max can go either way; what MUST grow is total:
        // max-per-rank x ranks. Compare totals instead.
        assert!(
            4 * 2 * m4 > 2 * m1,
            "replication cannot shrink total memory"
        );
    }

    #[test]
    fn sanitized_full_run_is_clean() {
        // The whole 3D factor+solve pipeline under the communication
        // sanitizer: every send matched, no wildcard races, no leaks. (Any
        // finding would panic inside `run`.)
        let a = grid2d_5pt(12, 12, 0.1, 11);
        let n = a.nrows;
        let x_true: Vec<f64> = (0..n).map(|i| ((i * 5 % 11) as f64) - 5.0).collect();
        let b = a.matvec(&x_true);
        let prep = Prepared::new(a, Geometry::Grid2d { nx: 12, ny: 12 }, 8, 8);
        let cfg = SolverConfig {
            pr: 2,
            pc: 1,
            pz: 2,
            model: TimeModel::zero(),
            sanitize: true,
            ..Default::default()
        };
        let out = factor_and_solve(&prep, &cfg, Some(b));
        let rep = out.sanitizer.as_ref().expect("sanitized run must report");
        assert!(rep.is_clean(), "{}", rep.render());
        assert_eq!(rep.msgs_sent, rep.msgs_received, "{}", rep.render());
        assert!(rep.msgs_sent > 0);
        assert!(out.x.is_some());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_pz() {
        let a = grid2d_5pt(8, 8, 0.0, 0);
        let prep = Prepared::new(a, Geometry::Grid2d { nx: 8, ny: 8 }, 8, 8);
        let _ = factor_only(
            &prep,
            &SolverConfig {
                pz: 3,
                ..Default::default()
            },
        );
    }
}
