//! Distributed 3D triangular solve: forward/backward substitution that
//! follows the factorization's data placement instead of gathering factors
//! to one grid.
//!
//! The structure mirrors Algorithm 1:
//!
//! - **Forward** (leaves → root): each active grid forward-substitutes its
//!   forest level with the 2D fan-in kernel, accumulating `L(I,j) y_j`
//!   contributions into its replicated *ancestor accumulator* segments;
//!   after each level, pairs of grids sum those segments along the z-axis
//!   (the vector analogue of the ancestor reduction).
//! - **Backward** (root → leaves): the surviving grid back-substitutes the
//!   top levels; as the recursion descends, each newly activated grid first
//!   receives the ancestor solution segments from its pair partner over the
//!   z-axis and applies its own `U(j,k) x_k` cross terms, then solves its
//!   level.
//!
//! Every supernode is solved exactly once — on the grid that factored it —
//! so summing the per-rank outputs over the whole machine yields the
//! solution. SuperLU_DIST gained an analogous 3D solve after the paper;
//! here it doubles as a consistency check against the gather-based solve
//! in [`crate::gather`].

use crate::forest::EtreeForest;
use simgrid::topology::GridComms;
use simgrid::{FailKind, Grid3d, Payload, Rank};
use slu2d::factor2d::{FactorEnv, FactorOpts};
use slu2d::solve2d::{apply_ancestor_x, backward_nodes, forward_nodes, DistSolveState};
use slu2d::store::BlockStore;
use std::sync::Arc;
use symbolic::Symbolic;

use simgrid::tags::{T_ACC_RED, T_X_DOWN};

/// Solve `L U x = b` with the factors laid out as [`crate::factor3d`] left
/// them. `b` must be the permuted right-hand side, available on every rank.
/// Returns this rank's partial solution (zero where other ranks own the
/// segments); the caller sums over *all* ranks of the machine.
///
/// Like [`crate::factor3d::factor_3d`], a z-line transfer that cannot
/// complete (or carries the wrong payload kind) surfaces as a structured
/// [`FailKind::Solver`] naming the sweep and forest level, for the caller
/// to fail the rank with.
#[allow(clippy::too_many_arguments)]
pub fn solve_3d(
    rank: &mut Rank,
    grid3: &Grid3d,
    comms: &GridComms,
    store: &BlockStore,
    sym: &Symbolic,
    forest: &EtreeForest,
    opts: FactorOpts,
    uindex: &Arc<Vec<Vec<usize>>>,
    b: &[f64],
) -> Result<Vec<f64>, FailKind> {
    let l = forest.l;
    let (my_r, my_c, my_z) = comms.coords;
    let env = FactorEnv {
        grid: grid3.grid2d,
        my_r,
        my_c,
        row: comms.row.clone(),
        col: comms.col.clone(),
        opts,
    };
    let mut st = DistSolveState::with_index(sym, Arc::clone(uindex));
    let mut x_out = vec![0.0; sym.part.n()];

    // ---- Forward sweep: leaves to root, acc reduced along z. ----
    for lvl in (0..=l).rev() {
        let step = 1usize << (l - lvl);
        if my_z % step != 0 {
            continue;
        }
        let q = my_z >> (l - lvl);
        let nodes = forest.supernodes_of(lvl, q, &sym.part);
        let sweep_span = rank.span_enter(simgrid::SpanCat::Level, &format!("fwd{lvl}"));
        forward_nodes(rank, &env, store, sym, &nodes, b, &mut st);
        if lvl == 0 {
            rank.span_exit(sweep_span);
            break;
        }
        // Pairwise accumulator reduction over all shared ancestor levels.
        let k = my_z / step;
        let ancestors = ancestor_supernodes(forest, sym, my_z, lvl);
        if k.is_multiple_of(2) {
            let src_z = my_z + step;
            let fwd_err = |detail: String| FailKind::Solver {
                phase: "solve-fwd".to_string(),
                supernode: None,
                level: Some(lvl),
                detail,
            };
            let data = rank
                .recv_checked(&comms.zline, src_z, T_ACC_RED | lvl as u64)
                .map_err(|e| {
                    fwd_err(format!(
                        "accumulator reduction recv from z={src_z} failed: {e}"
                    ))
                })?
                .try_into_f64s()
                .map_err(|e| fwd_err(format!("accumulator reduction from z={src_z}: {e}")))?;
            let mut off = 0;
            for &s in &ancestors {
                for i in sym.part.ranges[s].clone() {
                    st.acc[i] += data[off];
                    off += 1;
                }
            }
            debug_assert_eq!(off, data.len());
        } else {
            let dest_z = my_z - step;
            let mut data = Vec::new();
            for &s in &ancestors {
                data.extend_from_slice(&st.acc[sym.part.ranges[s].clone()]);
            }
            rank.send(
                &comms.zline,
                dest_z,
                T_ACC_RED | lvl as u64,
                Payload::F64s(data),
            );
        }
        rank.span_exit(sweep_span);
    }

    // ---- Backward sweep: root to leaves, x broadcast down the pair tree. ----
    for lvl in 0..=l {
        let step = 1usize << (l - lvl);
        if my_z % step != 0 {
            continue;
        }
        let k = my_z / step;
        let sweep_span = rank.span_enter(simgrid::SpanCat::Level, &format!("bwd{lvl}"));
        // A grid is "born" at the first level where it is active; except for
        // grid 0 (born at level 0), it first receives the ancestor solution
        // segments from its pair partner.
        let born_here = my_z != 0 && k % 2 == 1;
        if born_here {
            let dest_z = my_z - step;
            let bwd_err = |detail: String| FailKind::Solver {
                phase: "solve-bwd".to_string(),
                supernode: None,
                level: Some(lvl),
                detail,
            };
            let (meta, data) = rank
                .recv_checked(&comms.zline, dest_z, T_X_DOWN | lvl as u64)
                .map_err(|e| bwd_err(format!("ancestor-x recv from z={dest_z} failed: {e}")))?
                .try_into_packed()
                .map_err(|e| bwd_err(format!("ancestor-x from z={dest_z}: {e}")))?;
            let mut off = 0;
            for &s in &meta {
                let w = sym.part.width(s);
                let seg = &data[off..off + w];
                off += w;
                apply_ancestor_x(rank, &env, store, sym, s, seg, &mut st);
            }
            debug_assert_eq!(off, data.len());
        }
        let q = my_z >> (l - lvl);
        let nodes = forest.supernodes_of(lvl, q, &sym.part);
        backward_nodes(rank, &env, store, sym, &nodes, &mut st, &mut x_out);

        // Hand the now-known chain solutions to the grid born at the next
        // level (my pair partner there).
        if lvl < l {
            let half = step / 2;
            let peer_z = my_z + half;
            // Segments this rank can supply: every chain supernode in my
            // process column whose x is known locally (levels <= lvl).
            let mut meta = Vec::new();
            let mut data = Vec::new();
            for la in 0..=lvl {
                let qa = my_z >> (l - la);
                for s in forest.supernodes_of(la, qa, &sym.part) {
                    if s % grid3.grid2d.pc == my_c {
                        let xk = st.x.get(&s).unwrap_or_else(|| {
                            panic!("x segment of chain supernode {s} unknown on column rank")
                        });
                        meta.push(s);
                        data.extend_from_slice(xk);
                    }
                }
            }
            rank.send(
                &comms.zline,
                peer_z,
                T_X_DOWN | (lvl + 1) as u64,
                Payload::Packed { meta, data },
            );
        }
        rank.span_exit(sweep_span);
    }
    Ok(x_out)
}

/// All supernodes in the ancestor chain above level `lvl` for grid `z`,
/// ascending.
fn ancestor_supernodes(forest: &EtreeForest, sym: &Symbolic, z: usize, lvl: usize) -> Vec<usize> {
    let l = forest.l;
    let mut out = Vec::new();
    for la in 0..lvl {
        let qa = z >> (l - la);
        out.extend(forest.supernodes_of(la, qa, &sym.part));
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use crate::solver::{factor_and_solve, SolveStrategy, SolverConfig};
    use simgrid::TimeModel;
    use slu2d::driver::Prepared;
    use sparsemat::matgen::{grid2d_5pt, grid3d_7pt};
    use sparsemat::testmats::Geometry;

    fn residual_with(
        a: sparsemat::Csr,
        geometry: Geometry,
        pr: usize,
        pc: usize,
        pz: usize,
    ) -> f64 {
        let n = a.nrows;
        let x_true: Vec<f64> = (0..n).map(|i| ((i * 11 % 19) as f64) - 9.0).collect();
        let b = a.matvec(&x_true);
        let prep = Prepared::new(a, geometry, 8, 8);
        let out = factor_and_solve(
            &prep,
            &SolverConfig {
                pr,
                pc,
                pz,
                solve_strategy: SolveStrategy::Distributed3d,
                model: TimeModel::zero(),
                ..Default::default()
            },
            Some(b.clone()),
        );
        let bmax = b.iter().fold(1.0f64, |m, v| m.max(v.abs()));
        prep.a.residual_inf(&out.x.unwrap(), &b) / bmax
    }

    #[test]
    fn distributed_solve_deep_z() {
        let r = residual_with(
            grid2d_5pt(16, 16, 0.1, 1),
            Geometry::Grid2d { nx: 16, ny: 16 },
            1,
            1,
            8,
        );
        assert!(r < 1e-9, "residual {r}");
    }

    #[test]
    fn distributed_solve_mixed_layers() {
        let r = residual_with(
            grid3d_7pt(5, 5, 5, 0.1, 2),
            Geometry::Grid3d {
                nx: 5,
                ny: 5,
                nz: 5,
            },
            2,
            2,
            4,
        );
        assert!(r < 1e-9, "residual {r}");
    }

    #[test]
    fn distributed_solve_rectangular_layers() {
        let r = residual_with(
            grid2d_5pt(14, 14, 0.1, 3),
            Geometry::Grid2d { nx: 14, ny: 14 },
            3,
            1,
            2,
        );
        assert!(r < 1e-9, "residual {r}");
    }

    #[test]
    fn solve_traffic_is_tagged_solve() {
        // The 3D solve must never pollute the factorization's W_fact/W_red
        // counters (they feed Fig. 10).
        let a = grid2d_5pt(10, 10, 0.1, 4);
        let b: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let prep = Prepared::new(a, Geometry::Grid2d { nx: 10, ny: 10 }, 8, 8);
        let cfg = SolverConfig {
            pr: 1,
            pc: 2,
            pz: 2,
            model: TimeModel::zero(),
            ..Default::default()
        };
        let fact = crate::solver::factor_only(&prep, &cfg);
        let solved = factor_and_solve(&prep, &cfg, Some(b));
        assert_eq!(fact.w_fact(), solved.w_fact());
        assert_eq!(fact.w_red(), solved.w_red());
        // ... and the solve did send something, under its own label.
        let solve_words = simgrid::TrafficSummary::max_sent_words_in(&solved.reports, "solve");
        assert!(solve_words > 0);
    }
}
