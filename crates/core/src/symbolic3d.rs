//! Distributed symbolic factorization: the block-fill analysis computed in
//! parallel with Algorithm 1's own skeleton.
//!
//! SuperLU_DIST performs symbolic factorization in parallel; this
//! reproduction's sequential `symbolic::block_symbolic` plays that role for
//! the numeric experiments, and the routine here demonstrates the
//! distributed counterpart on the simulated machine:
//!
//! 1. partition the separator tree by **vertex counts** (no flop model
//!    exists before the symbolic phase — this is exactly why a cheap
//!    balance heuristic is needed here),
//! 2. each z-grid runs the symbolic recurrence over its own subtree
//!    supernodes, recording the structs that propagate to replicated
//!    ancestors,
//! 3. pairs of grids **union** their pending ancestor contributions along
//!    the z-axis (the set analogue of the paper's ancestor reduction) and
//!    the surviving grid continues with the next level,
//! 4. grid 0 finally gathers the per-supernode structs so the result can
//!    be compared against the sequential analysis (they match exactly —
//!    tested).
//!
//! Only the lead rank `(0, 0)` of each layer computes; symbolic work is a
//! tiny serial fraction of factorization and SuperLU similarly runs it on
//! a rank subset.

use crate::forest::{EtreeForest, PartitionStrategy};
use ordering::SepTree;
use simgrid::topology::GridComms;
use simgrid::{Grid3d, Payload, Rank};
use std::collections::HashMap;
use symbolic::{BlockFill, SnPartition};

use simgrid::tags::{T_SYM_GATHER, T_SYM_RED};

/// Build the vertex-count-based tree-forest used by the symbolic phase.
pub fn symbolic_forest(tree: &SepTree, pz: usize) -> EtreeForest {
    let node_cost: Vec<u64> = tree.nodes.iter().map(|n| n.width() as u64).collect();
    EtreeForest::build_with_costs(tree, &node_cost, pz, PartitionStrategy::Greedy)
}

/// State of the distributed symbolic recurrence on one grid.
struct SymState {
    /// Completed structs, by supernode.
    struct_of: HashMap<usize, Vec<usize>>,
    /// Pending contributions to not-yet-processed supernodes: the structs
    /// of children whose elimination-tree parent lies above the current
    /// level.
    pending: HashMap<usize, Vec<Vec<usize>>>,
}

impl SymState {
    /// Run the symbolic recurrence over `nodes` (ascending), consuming any
    /// pending contributions addressed to them.
    fn process(&mut self, ablocks: &HashMap<usize, Vec<usize>>, nodes: &[usize]) {
        for &s in nodes {
            let mut merged: Vec<usize> = ablocks.get(&s).cloned().unwrap_or_default();
            if let Some(contribs) = self.pending.remove(&s) {
                for c in contribs {
                    merged.extend(c.into_iter().filter(|&i| i > s));
                }
            }
            merged.sort_unstable();
            merged.dedup();
            if let Some(&p) = merged.first() {
                // Propagate to the elimination-tree parent (which is either
                // later in this node list or a replicated ancestor).
                self.pending.entry(p).or_default().push(merged.clone());
            }
            self.struct_of.insert(s, merged);
        }
    }
}

/// Run the distributed symbolic factorization. Every rank calls this; the
/// complete [`BlockFill`] is returned on world rank 0 (`None` elsewhere).
///
/// `a` must be the reordered pattern-symmetric matrix and `part` the
/// supernode partition — both cheap, local preprocessing products.
pub fn distributed_symbolic(
    rank: &mut Rank,
    grid3: &Grid3d,
    comms: &GridComms,
    a: &sparsemat::Csr,
    part: &SnPartition,
    tree: &SepTree,
) -> Option<BlockFill> {
    let forest = symbolic_forest(tree, grid3.pz);
    let l = forest.l;
    let (my_r, my_c, my_z) = comms.coords;
    let lead = my_r == 0 && my_c == 0;
    let nsup = part.nsup();

    // Local (cheap, replicated) prep: the block pattern of A's lower
    // triangle, restricted to the supernodes this grid keeps.
    let mut ablocks: HashMap<usize, Vec<usize>> = HashMap::new();
    if lead {
        for i in 0..a.nrows {
            let si = part.sn_of_col[i];
            for &j in a.row_cols(i) {
                let sj = part.sn_of_col[j];
                if si > sj && forest.keeps(part.node_of_sn[sj], my_z) {
                    ablocks.entry(sj).or_default().push(si);
                }
            }
        }
        for v in ablocks.values_mut() {
            v.sort_unstable();
            v.dedup();
        }
    }

    let mut st = SymState {
        struct_of: HashMap::new(),
        pending: HashMap::new(),
    };

    for lvl in (0..=l).rev() {
        let step = 1usize << (l - lvl);
        if my_z % step != 0 {
            continue;
        }
        if lead {
            let q = my_z >> (l - lvl);
            let nodes = forest.supernodes_of(lvl, q, part);
            st.process(&ablocks, &nodes);
        }
        if lvl == 0 {
            break;
        }
        // Pairwise union of pending ancestor contributions along z.
        let k = my_z / step;
        if lead {
            if k.is_multiple_of(2) {
                let src_z = my_z + step;
                let payload = rank.recv(&comms.zline, src_z, T_SYM_RED | lvl as u64);
                for (s, contrib) in decode_pending(payload) {
                    st.pending.entry(s).or_default().push(contrib);
                }
            } else {
                let dest_z = my_z - step;
                let payload = encode_pending(&st.pending);
                st.pending.clear();
                rank.send(&comms.zline, dest_z, T_SYM_RED | lvl as u64, payload);
            }
        }
    }

    // Gather completed structs to grid 0's lead rank.
    if lead {
        if my_z != 0 {
            rank.send(&comms.zline, 0, T_SYM_GATHER, encode_structs(&st.struct_of));
            None
        } else {
            for src_z in 1..grid3.pz {
                let payload = rank.recv(&comms.zline, src_z, T_SYM_GATHER);
                for (s, v) in decode_pending(payload) {
                    // Factoring grids own their supernodes exclusively; a
                    // struct may arrive only once.
                    st.struct_of.entry(s).or_insert(v);
                }
            }
            // Assemble the BlockFill in supernode order.
            let mut struct_of = Vec::with_capacity(nsup);
            let mut parent = Vec::with_capacity(nsup);
            for s in 0..nsup {
                let v = st.struct_of.remove(&s).unwrap_or_default();
                parent.push(v.first().copied());
                struct_of.push(v);
            }
            Some(BlockFill { struct_of, parent })
        }
    } else {
        None
    }
}

fn encode_pending(pending: &HashMap<usize, Vec<Vec<usize>>>) -> Payload {
    let mut meta = Vec::new();
    let mut keys: Vec<&usize> = pending.keys().collect();
    keys.sort_unstable();
    for &&s in &keys {
        for contrib in &pending[&s] {
            meta.push(s);
            meta.push(contrib.len());
            meta.extend_from_slice(contrib);
        }
    }
    Payload::Idx(meta)
}

fn encode_structs(structs: &HashMap<usize, Vec<usize>>) -> Payload {
    let mut meta = Vec::new();
    let mut keys: Vec<&usize> = structs.keys().collect();
    keys.sort_unstable();
    for &&s in &keys {
        meta.push(s);
        meta.push(structs[&s].len());
        meta.extend_from_slice(&structs[&s]);
    }
    Payload::Idx(meta)
}

fn decode_pending(payload: Payload) -> Vec<(usize, Vec<usize>)> {
    let meta = payload.into_idx();
    let mut out = Vec::new();
    let mut off = 0;
    while off < meta.len() {
        let s = meta[off];
        let len = meta[off + 1];
        out.push((s, meta[off + 2..off + 2 + len].to_vec()));
        off += 2 + len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ordering::{nested_dissection, Graph, NdOptions};
    use simgrid::topology::build_grid_comms;
    use simgrid::{Machine, TimeModel};
    use sparsemat::matgen::{grid2d_5pt, grid3d_7pt, random_band};
    use sparsemat::testmats::Geometry;
    use std::sync::Arc;
    use symbolic::block_symbolic;

    /// Distributed and sequential symbolic must agree bit for bit.
    fn check_equivalence(a: sparsemat::Csr, geometry: Geometry, pr: usize, pc: usize, pz: usize) {
        let g = Graph::from_matrix(&a);
        let tree = nested_dissection(
            &g,
            NdOptions {
                leaf_size: 8,
                geometry,
                ..Default::default()
            },
        );
        let pa = Arc::new(a.permute_sym(&tree.perm).symmetrize_pattern());
        let part = Arc::new(SnPartition::from_septree(&tree, 8));
        let seq = block_symbolic(&pa, &part);

        let grid3 = Grid3d::new(pr, pc, pz);
        let machine = Machine::new(grid3.size(), TimeModel::zero());
        let tree = Arc::new(tree);
        let pa2 = Arc::clone(&pa);
        let part2 = Arc::clone(&part);
        let out = machine.run(move |rank| {
            let comms = build_grid_comms(rank, &grid3);
            distributed_symbolic(rank, &grid3, &comms, &pa2, &part2, &tree)
        });
        let dist = out.results[0].as_ref().expect("rank 0 gets the result");
        assert_eq!(dist.struct_of, seq.struct_of);
        assert_eq!(dist.parent, seq.parent);
        // Everyone else returns None.
        assert!(out.results[1..].iter().all(|r| r.is_none()));
    }

    #[test]
    fn matches_sequential_on_planar_grid() {
        check_equivalence(
            grid2d_5pt(14, 14, 0.1, 1),
            Geometry::Grid2d { nx: 14, ny: 14 },
            1,
            1,
            4,
        );
    }

    #[test]
    fn matches_sequential_on_3d_grid_with_layers() {
        check_equivalence(
            grid3d_7pt(5, 5, 5, 0.1, 2),
            Geometry::Grid3d {
                nx: 5,
                ny: 5,
                nz: 5,
            },
            2,
            2,
            2,
        );
    }

    #[test]
    fn matches_sequential_on_random_graphs() {
        for seed in 0..4 {
            check_equivalence(random_band(70, 4, 0.6, seed), Geometry::General, 1, 2, 4);
        }
    }

    #[test]
    fn pz1_degenerates_to_sequential() {
        check_equivalence(
            grid2d_5pt(10, 10, 0.1, 3),
            Geometry::Grid2d { nx: 10, ny: 10 },
            1,
            1,
            1,
        );
    }

    #[test]
    fn reduction_traffic_exists_for_pz_gt_1() {
        let a = grid2d_5pt(12, 12, 0.1, 4);
        let g = Graph::from_matrix(&a);
        let tree = nested_dissection(
            &g,
            NdOptions {
                leaf_size: 8,
                geometry: Geometry::Grid2d { nx: 12, ny: 12 },
                ..Default::default()
            },
        );
        let pa = Arc::new(a.permute_sym(&tree.perm).symmetrize_pattern());
        let part = Arc::new(SnPartition::from_septree(&tree, 8));
        let tree = Arc::new(tree);
        let grid3 = Grid3d::new(1, 1, 4);
        let machine = Machine::new(4, TimeModel::zero());
        let out = machine.run(move |rank| {
            let comms = build_grid_comms(rank, &grid3);
            distributed_symbolic(rank, &grid3, &comms, &pa, &part, &tree).is_some()
        });
        let s = out.summary();
        assert!(s.total_sent_words > 0, "symbolic must exchange structs");
        assert!(out.results[0]);
    }
}
