#![forbid(unsafe_code)]

//! The paper's contribution: a communication-avoiding 3D sparse LU
//! factorization (Sao, Li, Vuduc; IPDPS 2018).
//!
//! The algorithm arranges `P = Pxy x Pz` processes as `Pz` stacked 2D grids
//! and partitions the elimination tree into an *elimination tree-forest*
//! `E_f` (§III-C): `Pz` independent subtree-forests at the deepest level
//! plus progressively shared ancestor forests above them. Each 2D grid
//! factors its own forest while accumulating Schur-complement updates into
//! *replicated copies* of the ancestor blocks; after each level, pairs of
//! grids sum their ancestor copies along the z-axis (*ancestor reduction*)
//! and the surviving half proceeds (Algorithm 1).
//!
//! Module map:
//! - [`forest`]: the greedy inter-grid load-balancing partition of the
//!   separator tree into `E_f` (paper Fig. 8), plus the replication/keep
//!   queries that decide which blocks each grid allocates and initializes.
//! - [`factor3d`]: Algorithm 1 itself — per-level 2D factorization (via
//!   [`slu2d::factor_nodes`]) and the pairwise ancestor reduction.
//! - [`gather`]: the bring-home step that collects factor panels onto grid
//!   0 so the (non-benchmarked) solve phase can run on one layer.
//! - [`solver`]: the end-to-end API — order, analyze, partition, factor,
//!   solve — plus the measurement output every experiment harness consumes.
//!
//! ```
//! use lu3d::solver::{SolverConfig, factor_and_solve};
//! use slu2d::driver::Prepared;
//! use sparsemat::matgen::grid2d_5pt;
//! use sparsemat::testmats::Geometry;
//!
//! let a = grid2d_5pt(12, 12, 0.1, 0);
//! let x_true: Vec<f64> = (0..a.nrows).map(|i| i as f64 * 0.1).collect();
//! let b = a.matvec(&x_true);
//! let prep = Prepared::new(a, Geometry::Grid2d { nx: 12, ny: 12 }, 8, 8);
//! let cfg = SolverConfig { pr: 1, pc: 2, pz: 2, ..Default::default() };
//! let out = factor_and_solve(&prep, &cfg, Some(b.clone()));
//! let x = out.x.unwrap();
//! let resid = prep.a.residual_inf(&x, &b);
//! assert!(resid < 1e-8);
//! ```

pub mod factor3d;
pub mod forest;
pub mod gather;
pub mod solve3d;
pub mod solver;
pub mod symbolic3d;
pub mod taskgraph;

pub use factor3d::factor_3d;
pub use forest::EtreeForest;
pub use solver::{
    factor_and_solve, factor_only, try_factor_and_solve, try_factor_only, Output3d, SolverConfig,
    SolverError,
};
pub use symbolic3d::distributed_symbolic;
