//! Bring-home of factor panels to grid 0 for the solve phase.
//!
//! After Algorithm 1, each supernode's factored panels live on the grid
//! that factored it (the paper's "final state": the L and U factors are
//! distributed among the process grids). The triangular solve in this
//! reproduction runs on grid 0's layer, so the other grids first ship their
//! factor blocks home along the z-axis — point-to-point between ranks with
//! identical `(x, y)` coordinates, mirroring the ancestor-reduction routing.
//!
//! The paper does not benchmark the solve phase; this step exists for end-
//! to-end correctness (residual checks) and is tagged under the `"solve"`
//! traffic phase so it never pollutes the factorization statistics.

use crate::forest::EtreeForest;
use simgrid::topology::GridComms;
use simgrid::Rank;
use slu2d::store::{pack_blocks, unpack_blocks, BlockStore};
use symbolic::Symbolic;

use simgrid::tags::T_GATHER;

/// Ship every factor block owned by this rank whose supernode was factored
/// on a non-zero grid to the corresponding rank of grid 0 (or receive them,
/// on grid 0). After this returns on grid 0, its layer holds the complete
/// factorization.
pub fn gather_factors_to_grid0(
    rank: &mut Rank,
    comms: &GridComms,
    store: &mut BlockStore,
    sym: &Symbolic,
    forest: &EtreeForest,
) {
    let (my_r, my_c, my_z) = comms.coords;
    let grid = simgrid::Grid2d {
        pr: comms.col.size(),
        pc: comms.row.size(),
    };
    let nsup = sym.nsup();
    for s in 0..nsup {
        let node = sym.part.node_of_sn[s];
        let g0 = forest.factoring_grid(node);
        if g0 == 0 {
            continue; // already home
        }
        if my_z != 0 && my_z != g0 {
            continue;
        }
        // Deterministic owned-block list for supernode s: diagonal plus
        // both panels. Both endpoints compute it identically.
        let mut blocks: Vec<(usize, usize)> = Vec::new();
        if grid.owner(s, s) == (my_r, my_c) {
            blocks.push((s, s));
        }
        for &i in &sym.fill.struct_of[s] {
            if grid.owner(i, s) == (my_r, my_c) {
                blocks.push((i, s));
            }
            if grid.owner(s, i) == (my_r, my_c) {
                blocks.push((s, i));
            }
        }
        if blocks.is_empty() {
            continue;
        }
        let tag = T_GATHER | s as u64;
        if my_z == g0 {
            let items: Vec<(usize, &densela::Mat)> = blocks
                .iter()
                .map(|&(i, j)| {
                    (
                        i * nsup + j,
                        store
                            .get(i, j)
                            .unwrap_or_else(|| panic!("factoring grid missing block ({i},{j})")),
                    )
                })
                .collect();
            let payload = pack_blocks(&items);
            rank.send(&comms.zline, 0, tag, payload);
        } else {
            // my_z == 0: receive and install.
            let payload = rank.recv(&comms.zline, g0, tag);
            for (code, m) in unpack_blocks(payload) {
                let (i, j) = (code / nsup, code % nsup);
                store.insert(i, j, m);
            }
        }
    }
}
