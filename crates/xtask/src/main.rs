#![forbid(unsafe_code)]

//! Workspace automation. Currently one task:
//!
//! `cargo run -p xtask -- lint-determinism`
//!
//! A static source lint for the two classic determinism leaks in a
//! simulated-machine codebase whose reports must be bit-reproducible:
//!
//! 1. **Unordered iteration** — iterating a `HashMap`/`HashSet` and letting
//!    the hash order reach a report, ledger, or wire. A site is clean if it
//!    visibly restores order (a `sort` nearby), folds into an ordered
//!    container (`BTreeMap`/`BTreeSet`), or reduces commutatively (`sum`,
//!    `count`, `all`, `any`, `min`, `max`, `fold`). Anything else needs an
//!    explicit `// det-lint: allow(unordered): <why>` on the same or the
//!    preceding line.
//! 2. **Wall-clock reads** — `Instant::now()` / `SystemTime::now()` outside
//!    `crates/simgrid/src/timemodel.rs`. Simulated time must come from the
//!    time model; host-side profiling reads are fine but must declare
//!    themselves with `// det-lint: allow(wall-clock): <why>`.
//!
//! The lint is a line-based heuristic (no type inference): it tracks
//! identifiers bound to `HashMap`/`HashSet` within one file and flags
//! iterator-producing calls on them. That catches the real-world pattern —
//! a hash container drained straight into output — while the pragma escape
//! hatch keeps justified sites self-documenting.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::exit;

fn main() {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint-determinism") => {
            let findings = lint_determinism();
            if findings.is_empty() {
                println!("lint-determinism: clean");
            } else {
                for f in &findings {
                    eprintln!("{f}");
                }
                eprintln!("lint-determinism: {} finding(s)", findings.len());
                exit(1);
            }
        }
        _ => {
            eprintln!(
                "usage: cargo run -p xtask -- <task>\n\
                 \n\
                 tasks:\n\
                 \x20 lint-determinism  flag HashMap/HashSet iteration that can leak\n\
                 \x20                   hash order into reports, and wall-clock reads\n\
                 \x20                   outside the time model (see docs/commplan.md)"
            );
            exit(2);
        }
    }
}

fn workspace_root() -> PathBuf {
    // xtask lives at <root>/crates/xtask.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("xtask sits two levels below the workspace root")
        .to_path_buf()
}

/// Directories never scanned: vendored shims, build output, and test-only
/// trees (tests may iterate however they like — their assertions are
/// order-free by construction or they fail visibly). The `xtask` crate
/// skips itself: its source spells out the very patterns it greps for.
const SKIP_DIRS: &[&str] = &["shims", "target", "tests", "examples", "benches", "xtask"];

/// The one file allowed to read the host clock without a pragma.
const TIMEMODEL: &str = "crates/simgrid/src/timemodel.rs";

fn lint_determinism() -> Vec<String> {
    let root = workspace_root();
    let mut files = Vec::new();
    for top in ["crates", "src"] {
        collect_rs_files(&root.join(top), &mut files);
    }
    files.sort();
    let mut findings = Vec::new();
    for file in &files {
        let rel = file
            .strip_prefix(&root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let Ok(text) = fs::read_to_string(file) else {
            continue;
        };
        lint_file(&rel, &text, &mut findings);
    }
    findings
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                collect_rs_files(&path, out);
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Extract the identifier ending just before byte offset `end`.
fn ident_before(line: &str, end: usize) -> Option<&str> {
    let head = &line[..end];
    let start = head.rfind(|c: char| !is_ident_char(c)).map_or(0, |i| i + 1);
    let id = &head[start..];
    (!id.is_empty() && !id.starts_with(|c: char| c.is_ascii_digit())).then_some(id)
}

/// Names bound to a `HashMap`/`HashSet` in this file: struct fields and
/// parameters (`name: [&[mut ]]Hash{Map,Set}<`) and let-bindings
/// (`let [mut ]name ... = Hash{Map,Set}::...`).
fn hash_bound_names(lines: &[&str]) -> Vec<String> {
    let mut names = Vec::new();
    let mut add = |n: &str| {
        if !n.is_empty() && !names.iter().any(|x| x == n) {
            names.push(n.to_string());
        }
    };
    for line in lines {
        for ty in ["HashMap<", "HashSet<"] {
            let mut from = 0;
            while let Some(pos) = line[from..].find(ty) {
                let at = from + pos;
                from = at + ty.len();
                // Walk back over `: `, `&`, `mut ` to the declared name.
                let head = line[..at].trim_end();
                let head = head.strip_suffix('&').unwrap_or(head).trim_end();
                let head = head.strip_suffix("mut").unwrap_or(head).trim_end();
                let head = head.strip_suffix('&').unwrap_or(head).trim_end();
                if let Some(head) = head.strip_suffix(':') {
                    if let Some(id) = ident_before(head.trim_end(), head.trim_end().len()) {
                        add(id);
                    }
                }
            }
        }
        if let Some(eq) = line
            .find("= HashMap::")
            .or_else(|| line.find("= HashSet::"))
        {
            if let Some(let_at) = line.find("let ") {
                let binding = line[let_at + 4..eq].trim();
                let binding = binding.strip_prefix("mut ").unwrap_or(binding);
                let end = binding
                    .find(|c: char| !is_ident_char(c))
                    .unwrap_or(binding.len());
                add(&binding[..end]);
            }
        }
    }
    names
}

/// Iterator-producing calls whose order is the hash order.
const ITER_CALLS: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".into_iter()",
    ".into_keys()",
    ".into_values()",
    ".drain(",
];

/// Evidence within the site's vicinity that hash order cannot leak: the
/// stream is re-sorted, folded into an ordered container, or reduced by a
/// commutative operation.
const ORDER_FREE: &[&str] = &[
    "sort", ".sum()", ".sum::<", ".count()", ".all(", ".any(", ".min(", ".max(", ".min_by",
    ".max_by", ".fold(", "BTreeMap", "BTreeSet",
];

fn has_pragma(lines: &[&str], i: usize, kind: &str) -> bool {
    let tag = format!("det-lint: allow({kind})");
    lines[i].contains(&tag) || (i > 0 && lines[i - 1].contains(&tag))
}

fn order_free_nearby(lines: &[&str], i: usize) -> bool {
    lines[i..(i + 4).min(lines.len())]
        .iter()
        .any(|l| ORDER_FREE.iter().any(|p| l.contains(p)))
}

fn lint_file(rel: &str, text: &str, findings: &mut Vec<String>) {
    let mut lines: Vec<&str> = text.lines().collect();
    // Test modules sit at the bottom of files by convention; everything
    // from the first `#[cfg(test)]` down is out of scope.
    if let Some(cut) = lines.iter().position(|l| l.trim() == "#[cfg(test)]") {
        lines.truncate(cut);
    }

    if rel != TIMEMODEL {
        for (i, line) in lines.iter().enumerate() {
            if (line.contains("Instant::now") || line.contains("SystemTime::now"))
                && !has_pragma(&lines, i, "wall-clock")
            {
                findings.push(format!(
                    "{rel}:{}: wall-clock read outside {TIMEMODEL}; derive time from \
                     the time model or annotate `// det-lint: allow(wall-clock): <why>`",
                    i + 1
                ));
            }
        }
    }

    let names = hash_bound_names(&lines);
    if names.is_empty() {
        return;
    }
    for (i, line) in lines.iter().enumerate() {
        for name in &names {
            let mut hit = ITER_CALLS.iter().any(|call| {
                let needle = format!("{name}{call}");
                line.match_indices(&needle).any(|(at, _)| {
                    at == 0 || !is_ident_char(line[..at].chars().next_back().unwrap())
                })
            });
            // `for x in map` / `for x in &map` (but not `in map[...]`,
            // which indexes rather than iterates).
            if !hit {
                for pre in [" in &", " in "] {
                    let needle = format!("{pre}{name}");
                    hit |= line.match_indices(&needle).any(|(at, m)| {
                        let after = at + m.len();
                        let next = line[after..].chars().next();
                        !matches!(next, Some(c) if is_ident_char(c) || c == '[' || c == '.')
                    });
                }
            }
            if hit && !has_pragma(&lines, i, "unordered") && !order_free_nearby(&lines, i) {
                findings.push(format!(
                    "{rel}:{}: iteration over hash container `{name}` with no visible \
                     reordering; sort the stream, use a BTree container, or annotate \
                     `// det-lint: allow(unordered): <why>`",
                    i + 1
                ));
                break;
            }
        }
    }
}
