//! Non-planar (3D-geometry) cost model: §IV-C / Table II of the paper.
//!
//! For 3D-geometry problems the top separator has dimension `n^(2/3)`, the
//! LU factors occupy `O(n^(4/3))` words, and about 20% of that is
//! concentrated in the top separator — so replication is expensive and the
//! 3D algorithm only wins constant factors. Table II gives (with constants
//! `kappa`, `kappa_1`, `kappa_0` that the paper leaves symbolic):
//!
//! - `M_2D = n^(4/3) / P`
//! - `M_3D = (n^(4/3)/P) (kappa Pz + Pz^(-1/3))`
//! - `W_2D = n^(4/3) / sqrt(P)`
//! - `W_3D = (n^(4/3)/sqrt(P)) (kappa_1 sqrt(Pz) + (1 - kappa_1) Pz^(-4/3))`
//! - `L_2D = n`, `L_3D = n / Pz^(2/3) + kappa_0 n^(2/3)`
//!
//! We calibrate `kappa = 0.2` (the paper's "almost 20% of the LU factors
//! are in the top separator") and `kappa_1 = 0.11` so that the best-case
//! communication reduction over `Pz` equals the paper's stated `2.89x`.

use crate::{Alg, CostPrediction};

/// Fraction of LU-factor words in the top separator (paper §IV-C: ~20%).
pub const KAPPA: f64 = 0.2;
/// Fraction of 2D communication attributable to the replicated top levels;
/// calibrated so `max_Pz W_2D / W_3D ~= 2.89` (paper §IV-C).
pub const KAPPA_1: f64 = 0.11;
/// Latency constant for the replicated-ancestor term.
pub const KAPPA_0: f64 = 1.0;

/// Cost model for a non-planar (3D geometry) model problem.
#[derive(Clone, Copy, Debug)]
pub struct NonPlanarModel {
    pub n: f64,
    pub p: f64,
}

impl NonPlanarModel {
    pub fn new(n: f64, p: f64) -> Self {
        assert!(n > 1.0 && p >= 1.0);
        NonPlanarModel { n, p }
    }

    /// Per-process memory in words (Table II).
    pub fn memory(&self, alg: Alg, pz: f64) -> f64 {
        let lu = self.n.powf(4.0 / 3.0);
        match alg {
            Alg::TwoD => lu / self.p,
            Alg::ThreeD => lu / self.p * (KAPPA * pz + pz.powf(-1.0 / 3.0)),
        }
    }

    /// Per-process communication volume on the critical path, in words
    /// (Table II).
    pub fn comm(&self, alg: Alg, pz: f64) -> f64 {
        let lu = self.n.powf(4.0 / 3.0);
        match alg {
            Alg::TwoD => lu / self.p.sqrt(),
            Alg::ThreeD => {
                lu / self.p.sqrt() * (KAPPA_1 * pz.sqrt() + (1.0 - KAPPA_1) * pz.powf(-4.0 / 3.0))
            }
        }
    }

    /// Messages on the critical path (Table II).
    pub fn latency(&self, alg: Alg, pz: f64) -> f64 {
        match alg {
            Alg::TwoD => self.n,
            Alg::ThreeD => self.n / pz.powf(2.0 / 3.0) + KAPPA_0 * self.n.powf(2.0 / 3.0),
        }
    }

    /// Full prediction triple. `pz` is ignored for [`Alg::TwoD`].
    pub fn predict(&self, alg: Alg, pz: f64) -> CostPrediction {
        CostPrediction {
            memory_words: self.memory(alg, pz),
            comm_words: self.comm(alg, pz),
            latency_msgs: self.latency(alg, pz),
        }
    }

    /// The `Pz` (power of two, up to `max_pz`) minimizing predicted
    /// communication.
    pub fn best_pz_for_comm(&self, max_pz: usize) -> usize {
        let mut best = (1usize, f64::INFINITY);
        let mut pz = 1usize;
        while pz <= max_pz {
            let w = self.comm(Alg::ThreeD, pz as f64);
            if w < best.1 {
                best = (pz, w);
            }
            pz *= 2;
        }
        best.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_gain_calibrated_to_paper() {
        // The continuous optimum should give roughly the paper's 2.89x.
        let m = NonPlanarModel::new(1e7, 1e4);
        let w2 = m.comm(Alg::TwoD, 1.0);
        let mut best = 0.0f64;
        let mut pz = 1.0;
        while pz <= 64.0 {
            best = best.max(w2 / m.comm(Alg::ThreeD, pz));
            pz *= 1.25;
        }
        assert!((best - 2.89).abs() < 0.5, "best gain {best}");
    }

    #[test]
    fn latency_reduction_grows_with_pz() {
        let m = NonPlanarModel::new(1e6, 4096.0);
        let l2 = m.latency(Alg::TwoD, 1.0);
        let l8 = m.latency(Alg::ThreeD, 8.0);
        let l64 = m.latency(Alg::ThreeD, 64.0);
        assert!(l8 < l2 && l64 < l8);
    }

    #[test]
    fn best_pz_is_interior() {
        let m = NonPlanarModel::new(1e7, 1e4);
        let pz = m.best_pz_for_comm(128);
        assert!((2..=16).contains(&pz), "pz={pz}");
    }

    #[test]
    fn comm_at_pz1_matches_2d_up_to_model_constant() {
        let m = NonPlanarModel::new(1e6, 256.0);
        let w2 = m.comm(Alg::TwoD, 1.0);
        let w3 = m.comm(Alg::ThreeD, 1.0);
        assert!((w2 - w3).abs() / w2 < 1e-12);
    }
}
