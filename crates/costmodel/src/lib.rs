#![forbid(unsafe_code)]

//! Analytical cost models from the paper's Section IV (Table II).
//!
//! These closed-form expressions predict per-process memory (`M`),
//! per-process communication volume on the critical path (`W`), and latency
//! (`L`, messages on the critical path) for the 2D baseline and the 3D
//! algorithm, on planar (2D-geometry) and non-planar (3D-geometry) model
//! problems. The experiment harness prints them side by side with measured
//! counters (the `table2_model` binary), and [`optimal_pz_planar`]
//! implements Equation (8): `Pz* = (1/2) log2 n`.
//!
//! All functions work in *words* (8-byte units) and *message counts*; they
//! are exact up to the constant factors the paper keeps explicit.

//! ```
//! use costmodel::{optimal_pz_planar, Alg, PlanarModel};
//!
//! let model = PlanarModel::new((1u64 << 22) as f64, 4096.0);
//! let w2d = model.comm(Alg::TwoD, 1.0);
//! let pz = optimal_pz_planar((1u64 << 22) as f64) as f64;
//! let w3d = model.comm(Alg::ThreeD, pz);
//! assert!(w3d < w2d); // the 3D algorithm communicates less at Pz*
//! ```

pub mod conformance;
pub mod nonplanar;
pub mod planar;

pub use conformance::{check_conformance, ConformanceCheck, ConformanceInput, ConformanceReport};
pub use nonplanar::NonPlanarModel;
pub use planar::{optimal_pz_planar, PlanarModel};

/// Which algorithm a prediction refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Alg {
    /// Baseline `dSparseLU2D` on a `sqrt(P) x sqrt(P)`-ish grid.
    TwoD,
    /// The paper's `dSparseLU3D` with a given `Pz`.
    ThreeD,
}

/// A prediction triple: memory, communication volume, latency.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostPrediction {
    /// Per-process memory, in words.
    pub memory_words: f64,
    /// Per-process communication volume on the critical path, in words.
    pub comm_words: f64,
    /// Messages on the critical path.
    pub latency_msgs: f64,
}

/// log2 with a floor of 1 to keep the asymptotic formulas meaningful for
/// tiny `n` used in tests.
pub(crate) fn lg(x: f64) -> f64 {
    x.log2().max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planar_3d_beats_2d_in_comm_at_scale() {
        // For a large planar problem the 3D algorithm at the optimal Pz
        // reduces W by ~ sqrt(log n) (paper abstract).
        let n = 1 << 24;
        let p = 4096;
        let pz = optimal_pz_planar(n as f64).max(2) as f64;
        let m2 = PlanarModel::new(n as f64, p as f64);
        let w2 = m2.predict(Alg::TwoD, 1.0).comm_words;
        let w3 = m2.predict(Alg::ThreeD, pz).comm_words;
        assert!(w3 < w2, "w3={w3} w2={w2}");
        let gain = w2 / w3;
        let expected = (lg(n as f64)).sqrt();
        // Within a factor ~3 of the asymptotic prediction.
        assert!(gain > expected / 3.0, "gain={gain} expected~{expected}");
    }

    #[test]
    fn planar_3d_latency_factor() {
        let n = 1u64 << 20;
        let p = 1024u64;
        let pz = 8.0;
        let m = PlanarModel::new(n as f64, p as f64);
        let l2 = m.predict(Alg::TwoD, 1.0).latency_msgs;
        let l3 = m.predict(Alg::ThreeD, pz).latency_msgs;
        // L3D = n/Pz + sqrt(n) << L2D = n
        assert!(l3 < l2 / (pz / 2.0));
    }

    #[test]
    fn optimal_pz_matches_eq8() {
        assert_eq!(optimal_pz_planar(2f64.powi(16)), 8); // 16/2
        assert_eq!(optimal_pz_planar(2f64.powi(24)), 12);
    }

    #[test]
    fn nonplanar_memory_grows_with_pz() {
        // Non-planar separators are large: replicating them is expensive
        // (paper: 200% overhead at Pz=16 for nlpkkt80).
        let m = NonPlanarModel::new(1e6, 1024.0);
        let m1 = m.predict(Alg::ThreeD, 1.0).memory_words;
        let m16 = m.predict(Alg::ThreeD, 16.0).memory_words;
        assert!(m16 > 1.5 * m1);
    }

    #[test]
    fn nonplanar_comm_gain_saturates_near_3x() {
        // Paper §IV-C: best-case per-process communication reduction for
        // non-planar problems is a constant ~2.89x.
        let m = NonPlanarModel::new(1e7, 4096.0);
        let w2 = m.predict(Alg::TwoD, 1.0).comm_words;
        let best = (1..=7)
            .map(|l| {
                let pz = (1 << l) as f64;
                w2 / m.predict(Alg::ThreeD, pz).comm_words
            })
            .fold(0.0f64, f64::max);
        assert!(best > 1.5 && best < 4.0, "best gain {best}");
    }
}
