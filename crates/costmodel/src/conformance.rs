//! Cost-model conformance: compare measured memory peaks and
//! communication volumes against the Section IV predictions and emit a
//! machine-readable pass/fail report with per-metric tolerance bands.
//!
//! The asymptotic formulas carry unknown constant factors, so every check
//! compares a *ratio of ratios*: the measured 3D/2D ratio divided by the
//! model's 3D/2D ratio. Constants cancel on both sides; what remains is
//! whether the measured scaling tracks the predicted scaling. Tolerance
//! bands are wide by design — the simulated test problems are orders of
//! magnitude smaller than the `n → ∞` regime the model describes (see
//! docs/memprof.md for the calibration) — but tight enough that charging
//! the wrong class, losing the replication term, or breaking the z-axis
//! reduction path moves a metric out of band.

use crate::{Alg, NonPlanarModel, PlanarModel};
use obs::Json;

/// Everything a conformance run needs: problem/grid shape plus the four
/// measured quantities (plain numbers, so callers own the measurement).
#[derive(Clone, Copy, Debug)]
pub struct ConformanceInput {
    /// Matrix dimension.
    pub n: f64,
    /// Total process count (`pr * pc * pz`).
    pub p: f64,
    /// Replication depth of the 3D run.
    pub pz: f64,
    /// Planar (2D-geometry) problem? Selects the model family.
    pub planar: bool,
    /// Measured max per-rank peak memory of the 3D run, in words.
    pub mem3d_words: f64,
    /// Measured max per-rank peak memory of the 2D baseline (same total
    /// `p`, `pz = 1`), in words.
    pub mem2d_words: f64,
    /// Measured max per-rank sent words of the 3D run (`W_fact + W_red`).
    pub w3d_words: f64,
    /// Measured max per-rank sent words of the 2D baseline.
    pub w2d_words: f64,
    /// Measured max per-rank words sent in the z-axis ancestor reduction
    /// (`W_red` — the wire ledger's `ZReduction` class / `reduce` phase).
    /// Feeds the planar-only `comm.zred_share` check; ignored otherwise.
    pub wz_words: f64,
}

/// One metric's verdict: the measured and predicted 3D/2D ratios, their
/// quotient, and the tolerance band it must land in.
#[derive(Clone, Debug)]
pub struct ConformanceCheck {
    pub metric: String,
    pub measured: f64,
    pub predicted: f64,
    /// `measured / predicted` — 1.0 is perfect conformance.
    pub ratio: f64,
    pub lo: f64,
    pub hi: f64,
    pub pass: bool,
}

impl ConformanceCheck {
    fn new(metric: &str, measured: f64, predicted: f64, lo: f64, hi: f64) -> Self {
        let ratio = if predicted > 0.0 {
            measured / predicted
        } else {
            f64::INFINITY
        };
        ConformanceCheck {
            metric: metric.to_string(),
            measured,
            predicted,
            ratio,
            lo,
            hi,
            pass: ratio.is_finite() && ratio >= lo && ratio <= hi,
        }
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("metric".into(), Json::str(self.metric.clone())),
            ("measured".into(), Json::num(self.measured)),
            ("predicted".into(), Json::num(self.predicted)),
            ("ratio".into(), Json::num(self.ratio)),
            ("lo".into(), Json::num(self.lo)),
            ("hi".into(), Json::num(self.hi)),
            ("pass".into(), Json::Bool(self.pass)),
        ])
    }
}

/// The full conformance verdict.
#[derive(Clone, Debug)]
pub struct ConformanceReport {
    pub input: ConformanceInput,
    pub checks: Vec<ConformanceCheck>,
    pub passed: bool,
}

impl ConformanceReport {
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("n".into(), Json::num(self.input.n)),
            ("p".into(), Json::num(self.input.p)),
            ("pz".into(), Json::num(self.input.pz)),
            ("planar".into(), Json::Bool(self.input.planar)),
            ("passed".into(), Json::Bool(self.passed)),
            (
                "checks".into(),
                Json::Arr(self.checks.iter().map(|c| c.to_json()).collect()),
            ),
        ])
    }

    /// One-line-per-check text rendering for terminals.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for c in &self.checks {
            out.push_str(&format!(
                "{:6} {:24} measured {:8.3}  model {:8.3}  ratio {:6.3}  band [{}, {}]\n",
                if c.pass { "ok" } else { "FAIL" },
                c.metric,
                c.measured,
                c.predicted,
                c.ratio,
                c.lo,
                c.hi,
            ));
        }
        out.push_str(if self.passed {
            "conformance: PASS\n"
        } else {
            "conformance: FAIL\n"
        });
        out
    }
}

/// Model 3D/2D ratios for the input's problem family.
fn model_ratios(inp: &ConformanceInput) -> (f64, f64) {
    if inp.planar {
        let m = PlanarModel::new(inp.n, inp.p);
        (
            m.memory(Alg::ThreeD, inp.pz) / m.memory(Alg::TwoD, 1.0),
            m.comm(Alg::TwoD, 1.0) / m.comm(Alg::ThreeD, inp.pz),
        )
    } else {
        let m = NonPlanarModel::new(inp.n, inp.p);
        (
            m.memory(Alg::ThreeD, inp.pz) / m.memory(Alg::TwoD, 1.0),
            m.comm(Alg::TwoD, 1.0) / m.comm(Alg::ThreeD, inp.pz),
        )
    }
}

/// Tolerance band on the measured/model memory ratio-of-ratios.
/// Calibrated on `grid2d:64` (n = 4096, P = 16) across `Pz ∈ {1, 2, 4, 8}`:
/// the observed quotient falls from 0.91 at `Pz = 1` to 0.44 at `Pz = 8`
/// (the model's replication term `2nPz/P` overstates growth at tiny `n`).
/// A lost replication charge shows up as ≈ `1/Pz` (0.096 at `Pz = 8`),
/// safely below the floor; a double-charge as ≈ `Pz`, above the ceiling.
pub fn mem_ratio_band(_pz: f64) -> (f64, f64) {
    (0.20, 3.0)
}

/// Tolerance band on the measured/model communication-gain ratio-of-ratios.
/// Same calibration suite: the quotient *grows* with `Pz` (1.2, 2.0, 3.1,
/// 5.1 at `Pz = 1, 2, 4, 8`) because the model's per-grid broadcast term
/// `2√Pz · n/√P` is pessimistic for small, well-separated problems. The
/// ceiling therefore scales with `Pz`; the floor stays flat — a run that
/// communicates `Pz×` more than modeled (e.g. a broken z-reduction that
/// re-broadcasts ancestors every level) drops the quotient well below it.
pub fn comm_gain_band(pz: f64) -> (f64, f64) {
    (0.25, 2.0 * pz.max(2.0))
}

/// Tolerance band on the measured/model z-reduction *share* of the 3D
/// volume (`W_red / W_3D` versus equation (10) over (7)+(10)). Calibrated
/// on the same `grid2d:64` suite (`n = 4096`, `P = 16`): the quotient
/// observed 0.16 (`Pz = 2`), 0.80 (4), 0.93 (8), 1.69 (16) — low at small
/// `Pz` because the simulated reduction packs only structurally-owned
/// blocks while the model charges the full `n·Pz·lg(Pz)/P` band. The band
/// leaves ~3x headroom each way; a lost z-reduction charge drives the
/// quotient toward 0 and through the floor, a reduction that re-ships
/// every replica each level pushes it through the ceiling.
pub fn zred_share_band(_pz: f64) -> (f64, f64) {
    (0.05, 5.0)
}

/// Run every check. `Pz = 1` degenerates to near-unit ratios on both
/// sides, so the report passes (the 3D run *is* the baseline).
pub fn check_conformance(inp: ConformanceInput) -> ConformanceReport {
    let (mem_model, gain_model) = model_ratios(&inp);
    let mem_meas = inp.mem3d_words / inp.mem2d_words.max(1.0);
    let gain_meas = inp.w2d_words / inp.w3d_words.max(1.0);
    let (mem_lo, mem_hi) = mem_ratio_band(inp.pz);
    let (gain_lo, gain_hi) = comm_gain_band(inp.pz);
    let mut checks = vec![
        ConformanceCheck::new("mem.m3d_over_m2d", mem_meas, mem_model, mem_lo, mem_hi),
        ConformanceCheck::new("comm.w2d_over_w3d", gain_meas, gain_model, gain_lo, gain_hi),
    ];
    // Wire-ledger replication audit, planar-only (the non-planar model has
    // no clean xy/z split) and only when replication actually happens.
    if inp.planar && inp.pz > 1.0 {
        let m = PlanarModel::new(inp.n, inp.p);
        let share_model = m.comm_z(inp.pz) / m.comm(Alg::ThreeD, inp.pz);
        let share_meas = inp.wz_words / inp.w3d_words.max(1.0);
        let (z_lo, z_hi) = zred_share_band(inp.pz);
        checks.push(ConformanceCheck::new(
            "comm.zred_share",
            share_meas,
            share_model,
            z_lo,
            z_hi,
        ));
        // The headline claim: replication must *reduce* measured per-rank
        // volume relative to the 2D baseline. Direct measured gain against
        // a predicted break-even of 1.0 — no model constants involved.
        checks.push(ConformanceCheck::new(
            "comm.volume_gain",
            gain_meas,
            1.0,
            1.0,
            1e9,
        ));
    }
    let passed = checks.iter().all(|c| c.pass);
    ConformanceReport {
        input: inp,
        checks,
        passed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_input() -> ConformanceInput {
        ConformanceInput {
            n: 4096.0,
            p: 16.0,
            pz: 4.0,
            planar: true,
            mem3d_words: 0.0,
            mem2d_words: 0.0,
            w3d_words: 0.0,
            w2d_words: 0.0,
            wz_words: 0.0,
        }
    }

    #[test]
    fn perfect_model_agreement_passes() {
        let mut inp = base_input();
        let m = PlanarModel::new(inp.n, inp.p);
        inp.mem2d_words = m.memory(Alg::TwoD, 1.0);
        inp.mem3d_words = m.memory(Alg::ThreeD, inp.pz);
        inp.w2d_words = m.comm(Alg::TwoD, 1.0);
        inp.w3d_words = m.comm(Alg::ThreeD, inp.pz);
        inp.wz_words = m.comm_z(inp.pz);
        let rep = check_conformance(inp);
        assert!(rep.passed, "{}", rep.render());
        assert_eq!(rep.checks.len(), 4, "planar pz>1 runs the full audit");
        for c in rep.checks.iter().filter(|c| c.metric != "comm.volume_gain") {
            assert!((c.ratio - 1.0).abs() < 1e-12, "{}: {}", c.metric, c.ratio);
        }
    }

    #[test]
    fn order_of_magnitude_memory_bug_fails() {
        let mut inp = base_input();
        inp.pz = 8.0;
        let m = PlanarModel::new(inp.n, inp.p);
        inp.mem2d_words = m.memory(Alg::TwoD, 1.0);
        // A 3D run that reports *no* replication growth at Pz=8: the
        // model expects a clear multiple, so the quotient falls below
        // the band.
        inp.mem3d_words = inp.mem2d_words * 0.2;
        inp.w2d_words = m.comm(Alg::TwoD, 1.0);
        inp.w3d_words = m.comm(Alg::ThreeD, inp.pz);
        inp.wz_words = m.comm_z(inp.pz);
        let rep = check_conformance(inp);
        assert!(!rep.passed, "{}", rep.render());
        assert!(!rep.checks[0].pass);
        assert!(rep.checks[1].pass);
    }

    #[test]
    fn nonplanar_model_is_selected() {
        let mut inp = base_input();
        inp.planar = false;
        let m = NonPlanarModel::new(inp.n, inp.p);
        inp.mem2d_words = m.memory(Alg::TwoD, 1.0);
        inp.mem3d_words = m.memory(Alg::ThreeD, inp.pz);
        inp.w2d_words = m.comm(Alg::TwoD, 1.0);
        inp.w3d_words = m.comm(Alg::ThreeD, inp.pz);
        let rep = check_conformance(inp);
        assert!(rep.passed, "{}", rep.render());
    }

    #[test]
    fn report_json_has_per_check_bands() {
        let mut inp = base_input();
        inp.mem2d_words = 100.0;
        inp.mem3d_words = 150.0;
        inp.w2d_words = 100.0;
        inp.w3d_words = 60.0;
        inp.wz_words = 12.0;
        let rep = check_conformance(inp);
        let doc = Json::parse(&rep.to_json().dump()).unwrap();
        let checks = doc.get("checks").unwrap().as_arr().unwrap();
        assert_eq!(checks.len(), 4);
        for c in checks {
            assert!(c.get("lo").unwrap().as_f64().unwrap() > 0.0);
            assert!(c.get("pass").unwrap().as_bool().is_some());
        }
        assert_eq!(
            doc.get("passed").unwrap().as_bool(),
            Some(rep.passed),
            "top-level verdict mirrors the checks"
        );
    }

    #[test]
    fn regressed_volume_gain_fails() {
        // A "3D" run that ships *more* per-rank words than the 2D baseline
        // defeats the algorithm's point; the audit must say so even when
        // the ratio-of-ratios checks stay in band.
        let mut inp = base_input();
        let m = PlanarModel::new(inp.n, inp.p);
        inp.mem2d_words = m.memory(Alg::TwoD, 1.0);
        inp.mem3d_words = m.memory(Alg::ThreeD, inp.pz);
        inp.w2d_words = m.comm(Alg::TwoD, 1.0);
        inp.w3d_words = inp.w2d_words * 1.5;
        inp.wz_words = m.comm_z(inp.pz) * 1.5;
        let rep = check_conformance(inp);
        let gain = rep
            .checks
            .iter()
            .find(|c| c.metric == "comm.volume_gain")
            .unwrap();
        assert!(!gain.pass, "{}", rep.render());
        assert!(!rep.passed);
    }

    #[test]
    fn missing_z_reduction_fails_share_check() {
        // A run that reports zero z-axis traffic at Pz=4 lost the ancestor
        // reduction (or misclassified it): the share drops out of band.
        let mut inp = base_input();
        let m = PlanarModel::new(inp.n, inp.p);
        inp.mem2d_words = m.memory(Alg::TwoD, 1.0);
        inp.mem3d_words = m.memory(Alg::ThreeD, inp.pz);
        inp.w2d_words = m.comm(Alg::TwoD, 1.0);
        inp.w3d_words = m.comm(Alg::ThreeD, inp.pz);
        inp.wz_words = 0.0;
        let rep = check_conformance(inp);
        let share = rep
            .checks
            .iter()
            .find(|c| c.metric == "comm.zred_share")
            .unwrap();
        assert!(!share.pass, "{}", rep.render());
    }

    #[test]
    fn nonplanar_skips_z_split_checks() {
        let mut inp = base_input();
        inp.planar = false;
        inp.mem2d_words = 1.0;
        inp.mem3d_words = 1.0;
        inp.w2d_words = 1.0;
        inp.w3d_words = 1.0;
        let rep = check_conformance(inp);
        assert_eq!(rep.checks.len(), 2, "no clean xy/z split off-plane");
    }

    #[test]
    fn pz1_is_trivially_conformant() {
        let mut inp = base_input();
        inp.pz = 1.0;
        inp.mem2d_words = 500.0;
        inp.mem3d_words = 500.0;
        inp.w2d_words = 800.0;
        inp.w3d_words = 800.0;
        let rep = check_conformance(inp);
        assert!(rep.passed, "{}", rep.render());
    }
}
