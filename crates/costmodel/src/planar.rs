//! Planar-graph (2D-geometry) cost model: §IV-B of the paper.
//!
//! For a planar graph with `n` vertices, nested dissection gives separators
//! of size `sqrt(n / 2^i)` at level `i` and `~log2 n` levels. The paper
//! derives (equation numbers from §IV-B):
//!
//! - (4)  `M_2D = (n/P) log n`
//! - (5)  `M_3D = (1/P)(2 n Pz + n log(n/Pz))`
//! - (6)  `W_2D = n log n / sqrt(P)`
//! - (7)  `W_3D^{xy} = (n/sqrt(P)) (2 sqrt(Pz) + log n / sqrt(Pz))`
//! - (8)  optimal `Pz = (1/2) log n`
//! - (10) `W_3D^{z} = n Pz log Pz / P`
//! - (12) `L_3D = n/Pz + sqrt(n)`, versus `L_2D = n` (3)

use crate::{lg, Alg, CostPrediction};

/// Cost model for a planar model problem of dimension `n` on `P` processes.
#[derive(Clone, Copy, Debug)]
pub struct PlanarModel {
    pub n: f64,
    pub p: f64,
}

impl PlanarModel {
    pub fn new(n: f64, p: f64) -> Self {
        assert!(n > 1.0 && p >= 1.0);
        PlanarModel { n, p }
    }

    /// Per-process memory in words (equations (4) and (5)).
    pub fn memory(&self, alg: Alg, pz: f64) -> f64 {
        let (n, p) = (self.n, self.p);
        match alg {
            Alg::TwoD => n / p * lg(n),
            Alg::ThreeD => (2.0 * n * pz + n * lg(n / pz)) / p,
        }
    }

    /// Per-process communication volume on the critical path, in words
    /// (equations (6), (7) + (10)).
    pub fn comm(&self, alg: Alg, pz: f64) -> f64 {
        match alg {
            Alg::TwoD => self.n * lg(self.n) / self.p.sqrt(),
            Alg::ThreeD => self.comm_xy(pz) + self.comm_z(pz),
        }
    }

    /// The xy-plane (2D factorization) term of the 3D volume alone:
    /// equation (7), `W_3D^{xy}`. The wire ledger's replication audit
    /// compares the measured `fact`-phase volume against this.
    pub fn comm_xy(&self, pz: f64) -> f64 {
        let (n, p) = (self.n, self.p);
        n / p.sqrt() * (2.0 * pz.sqrt() + lg(n) / pz.sqrt())
    }

    /// The z-axis ancestor-reduction term alone: equation (10),
    /// `W_3D^{z}`. Note `lg` floors at 1.0, so this term stays positive
    /// even at `pz = 1` — kept as-is so `comm()` is exactly the historic
    /// sum; conformance skips the z-share check at `pz = 1`.
    pub fn comm_z(&self, pz: f64) -> f64 {
        let (n, p) = (self.n, self.p);
        n * pz * lg(pz).max(0.0) / p
    }

    /// Messages on the critical path (equations (3) and (12)). Expressed in
    /// units of supernode steps: the 2D algorithm touches every one of the
    /// `O(n)` supernodes on every process; the 3D algorithm only the local
    /// tree (`n / Pz`) plus the replicated ancestors (`sqrt(n)`).
    pub fn latency(&self, alg: Alg, pz: f64) -> f64 {
        let n = self.n;
        match alg {
            Alg::TwoD => n,
            Alg::ThreeD => n / pz + n.sqrt(),
        }
    }

    /// Full prediction triple. `pz` is ignored for [`Alg::TwoD`].
    pub fn predict(&self, alg: Alg, pz: f64) -> CostPrediction {
        CostPrediction {
            memory_words: self.memory(alg, pz),
            comm_words: self.comm(alg, pz),
            latency_msgs: self.latency(alg, pz),
        }
    }
}

/// Equation (8): the communication-minimizing `Pz` for planar problems,
/// `Pz* = (1/2) log2 n`, rounded to the nearest integer (the implementation
/// additionally rounds to a power of two when configuring real grids).
pub fn optimal_pz_planar(n: f64) -> usize {
    (0.5 * lg(n)).round().max(1.0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn w3d_has_interior_minimum_in_pz() {
        // Equation (7): W^xy is minimized near Pz = log(n)/2; the full W
        // (with the reduction term) still has an interior minimum.
        let m = PlanarModel::new(2f64.powi(22), 4096.0);
        let w: Vec<f64> = (0..8)
            .map(|l| m.comm(Alg::ThreeD, (1u32 << l) as f64))
            .collect();
        let min_idx = w
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(min_idx > 0 && min_idx < 7, "minimum at boundary: {w:?}");
    }

    #[test]
    fn memory_overhead_is_mild_for_planar() {
        // Paper Fig. 11: ~30% overhead at Pz=16 for K2D5pt.
        let m = PlanarModel::new(16.8e6, 96.0);
        let m2 = m.memory(Alg::TwoD, 1.0);
        let m3 = m.memory(Alg::ThreeD, 16.0);
        let overhead = m3 / m2 - 1.0;
        assert!(overhead > 0.0 && overhead < 1.5, "overhead {overhead}");
    }

    #[test]
    fn comm_2d_scaling_in_p() {
        let a = PlanarModel::new(1e6, 64.0).comm(Alg::TwoD, 1.0);
        let b = PlanarModel::new(1e6, 256.0).comm(Alg::TwoD, 1.0);
        assert!((a / b - 2.0).abs() < 1e-9); // ~ 1/sqrt(P)
    }
}
