#![forbid(unsafe_code)]

//! Symbolic factorization substrate: from a nested-dissection separator tree
//! to the supernodal block structure the numerical factorization fills in.
//!
//! Pipeline (all pattern-only, no numerics):
//!
//! 1. [`supernode`]: split every separator-tree node into panels of at most
//!    `maxsup` columns — the supernodes. Large separators become panel
//!    chains, exactly how SuperLU_DIST bounds supernode width.
//! 2. [`fill`]: block-level symbolic LU. Computes, for every supernode `s`,
//!    the list of block rows `I > s` with a nonzero block `L(I, s)` (and by
//!    pattern symmetry the blocks `U(s, I)`), plus the supernodal
//!    elimination tree (paper §II-D).
//! 3. [`stats`]: predicted factor storage and flop counts per supernode /
//!    per tree node — the cost function `T(v)` the paper's inter-grid load
//!    balancing heuristic minimizes (§III-C).
//!
//! # Granularity substitution (documented in DESIGN.md)
//!
//! SuperLU computes fill at vertex granularity and stores compressed row
//! subsets inside each block. This reproduction computes fill on the
//! *supernode quotient graph* (block granularity) and stores blocks as
//! padded dense panels. Block-level symbolic factorization is self-
//! consistent (the fill path theorem holds on the quotient graph), slightly
//! overestimates fill exactly like supernode amalgamation does, and matches
//! the dense-separator-block model the paper's own analysis (§IV) uses.

pub mod fill;
pub mod stats;
pub mod supernode;

pub use fill::{block_symbolic, BlockFill};
pub use stats::{FillStats, SnCost};
pub use supernode::SnPartition;

use ordering::SepTree;
use sparsemat::Csr;

/// The complete symbolic factorization: everything the distributed
/// numerical phases need to allocate and schedule.
#[derive(Clone, Debug)]
pub struct Symbolic {
    /// Supernode partition of the columns.
    pub part: SnPartition,
    /// Block fill pattern and supernodal elimination tree.
    pub fill: BlockFill,
    /// Per-supernode cost/size predictions.
    pub cost: SnCost,
}

impl Symbolic {
    /// Analyze a reordered, pattern-symmetric matrix against its separator
    /// tree. `maxsup` bounds supernode width.
    ///
    /// `a` must already be permuted by `tree.perm` and pattern-symmetric
    /// (see `Csr::symmetrize_pattern`).
    ///
    /// ```
    /// use ordering::{nested_dissection, Graph, NdOptions};
    /// use sparsemat::matgen::grid2d_5pt;
    /// use sparsemat::testmats::Geometry;
    /// use symbolic::Symbolic;
    ///
    /// let a = grid2d_5pt(12, 12, 0.0, 0);
    /// let tree = nested_dissection(
    ///     &Graph::from_matrix(&a),
    ///     NdOptions { leaf_size: 8, geometry: Geometry::Grid2d { nx: 12, ny: 12 }, ..Default::default() },
    /// );
    /// let pa = a.permute_sym(&tree.perm).symmetrize_pattern();
    /// let sym = Symbolic::analyze(&pa, &tree, 16);
    /// // LU factors always contain at least the matrix pattern itself.
    /// assert!(sym.stats().factor_words as usize >= pa.nnz() / 2);
    /// ```
    pub fn analyze(a: &Csr, tree: &SepTree, maxsup: usize) -> Symbolic {
        assert_eq!(a.nrows, tree.n(), "matrix/tree size mismatch");
        let part = SnPartition::from_septree(tree, maxsup);
        let fill = block_symbolic(a, &part);
        let cost = SnCost::compute(&part, &fill);
        Symbolic { part, fill, cost }
    }

    /// Number of supernodes.
    pub fn nsup(&self) -> usize {
        self.part.ranges.len()
    }

    /// Overall fill statistics.
    pub fn stats(&self) -> FillStats {
        FillStats::from_cost(&self.cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ordering::{nested_dissection, Graph, NdOptions};
    use sparsemat::matgen::grid2d_5pt;
    use sparsemat::testmats::Geometry;

    #[test]
    fn analyze_end_to_end() {
        let k = 12;
        let a = grid2d_5pt(k, k, 0.1, 0);
        let g = Graph::from_matrix(&a);
        let tree = nested_dissection(
            &g,
            NdOptions {
                leaf_size: 8,
                geometry: Geometry::Grid2d { nx: k, ny: k },
                ..Default::default()
            },
        );
        let pa = a.permute_sym(&tree.perm).symmetrize_pattern();
        let sym = Symbolic::analyze(&pa, &tree, 16);
        assert!(sym.nsup() > 4);
        let st = sym.stats();
        // LU factors must be at least as large as the matrix lower triangle.
        assert!(st.factor_words as usize >= a.nnz() / 2);
        assert!(st.total_flops > 0);
    }
}
