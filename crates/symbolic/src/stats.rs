//! Predicted storage and flop costs per supernode.
//!
//! These are the quantities the rest of the stack schedules against:
//!
//! - `factor_words(s)`: words of LU-factor storage supernode `s` owns
//!   (diagonal block + padded L and U panels) — the basis of the memory
//!   accounting behind Fig. 11;
//! - `flops(s)`: flops to factor supernode `s` (diagonal LU + two panel
//!   TRSMs + the full Schur-complement GEMM fan-out) — the paper's cost
//!   function `T(v)` for the inter-grid load-balance heuristic (§III-C).

use crate::fill::BlockFill;
use crate::supernode::SnPartition;

/// Per-supernode predicted costs.
#[derive(Clone, Debug)]
pub struct SnCost {
    /// Words of factor storage owned by each supernode.
    pub factor_words: Vec<u64>,
    /// Flops to factor each supernode (including its Schur fan-out).
    pub flops: Vec<u64>,
    /// Total padded row width of each supernode's below-diagonal panel.
    pub panel_rows: Vec<u64>,
}

impl SnCost {
    /// Compute costs from the partition and fill pattern.
    pub fn compute(part: &SnPartition, fill: &BlockFill) -> SnCost {
        let nsup = part.nsup();
        let mut factor_words = Vec::with_capacity(nsup);
        let mut flops = Vec::with_capacity(nsup);
        let mut panel_rows = Vec::with_capacity(nsup);
        for s in 0..nsup {
            let ns = part.width(s) as u64;
            let m: u64 = fill.struct_of[s]
                .iter()
                .map(|&i| part.width(i) as u64)
                .sum();
            // Storage: diagonal ns^2, L panel m*ns, U panel ns*m.
            factor_words.push(ns * ns + 2 * m * ns);
            // Flops: getrf (2/3 ns^3) + two trsms (ns^2 m each) + Schur
            // update GEMMs: for every target pair (I,J) in struct(s),
            // 2 * w(I) * w(J) * ns, summing over all pairs = 2 ns m^2.
            flops.push(2 * ns * ns * ns / 3 + 2 * ns * ns * m + 2 * ns * m * m);
            panel_rows.push(m);
        }
        SnCost {
            factor_words,
            flops,
            panel_rows,
        }
    }

    /// Total flops of the factorization of a subtree given by the supernode
    /// list `sns`.
    pub fn flops_of(&self, sns: &[usize]) -> u64 {
        sns.iter().map(|&s| self.flops[s]).sum()
    }
}

/// Whole-factorization summary.
#[derive(Clone, Copy, Debug, Default)]
pub struct FillStats {
    /// Total words of LU-factor storage.
    pub factor_words: u64,
    /// Total predicted flops.
    pub total_flops: u64,
    /// Number of supernodes.
    pub nsup: usize,
    /// Largest padded panel row count.
    pub max_panel_rows: u64,
}

impl FillStats {
    pub fn from_cost(cost: &SnCost) -> FillStats {
        FillStats {
            factor_words: cost.factor_words.iter().sum(),
            total_flops: cost.flops.iter().sum(),
            nsup: cost.flops.len(),
            max_panel_rows: cost.panel_rows.iter().copied().max().unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ordering::{nested_dissection, Graph, NdOptions};
    use sparsemat::matgen::{grid2d_5pt, grid3d_7pt};
    use sparsemat::testmats::Geometry;

    fn costs_for(a: &sparsemat::Csr, geom: Geometry) -> (SnCost, FillStats) {
        let g = Graph::from_matrix(a);
        let tree = nested_dissection(
            &g,
            NdOptions {
                leaf_size: 16,
                geometry: geom,
                ..Default::default()
            },
        );
        let pa = a.permute_sym(&tree.perm).symmetrize_pattern();
        let part = crate::supernode::SnPartition::from_septree(&tree, 16);
        let fill = crate::fill::block_symbolic(&pa, &part);
        let cost = SnCost::compute(&part, &fill);
        let stats = FillStats::from_cost(&cost);
        (cost, stats)
    }

    #[test]
    fn fill_grows_superlinearly_with_n_planar() {
        // Planar LU factors are Theta(n log n); quadrupling n should grow
        // factor words by clearly more than 4x but far less than 16x.
        let (_, s1) = costs_for(
            &grid2d_5pt(16, 16, 0.0, 0),
            Geometry::Grid2d { nx: 16, ny: 16 },
        );
        let (_, s2) = costs_for(
            &grid2d_5pt(32, 32, 0.0, 0),
            Geometry::Grid2d { nx: 32, ny: 32 },
        );
        let ratio = s2.factor_words as f64 / s1.factor_words as f64;
        assert!(ratio > 3.5 && ratio < 12.0, "ratio {ratio}");
    }

    #[test]
    fn flops_dominated_by_top_separators_in_3d() {
        // The paper's §V-B observation: for strongly 3D problems the top
        // few etree levels hold most of the computation.
        let a = grid3d_7pt(8, 8, 8, 0.0, 0);
        let g = Graph::from_matrix(&a);
        let tree = nested_dissection(
            &g,
            NdOptions {
                leaf_size: 16,
                geometry: Geometry::Grid3d {
                    nx: 8,
                    ny: 8,
                    nz: 8,
                },
                ..Default::default()
            },
        );
        let pa = a.permute_sym(&tree.perm).symmetrize_pattern();
        let part = crate::supernode::SnPartition::from_septree(&tree, 16);
        let fill = crate::fill::block_symbolic(&pa, &part);
        let cost = SnCost::compute(&part, &fill);
        let total: u64 = cost.flops.iter().sum();
        // Top three levels of tree nodes (the 8^3 test grid is shallow;
        // the share concentrates further as n grows):
        let top: u64 = (0..part.nsup())
            .filter(|&s| tree.nodes[part.node_of_sn[s]].level <= 2)
            .map(|s| cost.flops[s])
            .sum();
        assert!(
            top as f64 > 0.3 * total as f64,
            "top levels hold {top} of {total}"
        );
    }

    #[test]
    fn flops_of_sums_subsets() {
        let (cost, stats) = costs_for(
            &grid2d_5pt(12, 12, 0.0, 0),
            Geometry::Grid2d { nx: 12, ny: 12 },
        );
        let all: Vec<usize> = (0..cost.flops.len()).collect();
        assert_eq!(cost.flops_of(&all), stats.total_flops);
        assert_eq!(cost.flops_of(&[]), 0);
    }
}
