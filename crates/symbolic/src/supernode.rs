//! Supernode partition: separator-tree nodes split into bounded-width
//! panels.

use ordering::SepTree;
use std::ops::Range;

/// The supernode (panel) partition of the matrix columns.
///
/// Supernodes are numbered in elimination order; their column ranges tile
/// `0..n` in ascending order. Every supernode belongs to exactly one
/// separator-tree node; a wide separator contributes a *chain* of panels
/// (consecutive supernode ids).
#[derive(Clone, Debug)]
pub struct SnPartition {
    /// Column range of each supernode, ascending and contiguous.
    pub ranges: Vec<Range<usize>>,
    /// Supernode id of each column.
    pub sn_of_col: Vec<usize>,
    /// Separator-tree node owning each supernode.
    pub node_of_sn: Vec<usize>,
    /// Supernodes of each separator-tree node, ascending (the panel chain).
    pub sns_of_node: Vec<Vec<usize>>,
}

impl SnPartition {
    /// Split every tree node's column range into panels of at most `maxsup`
    /// columns. Empty nodes (empty separators of disconnected subgraphs)
    /// contribute no supernodes.
    pub fn from_septree(tree: &SepTree, maxsup: usize) -> SnPartition {
        assert!(maxsup >= 1, "maxsup must be positive");
        let n = tree.n();
        let mut ranges = Vec::new();
        let mut node_of_sn = Vec::new();
        let mut sns_of_node = vec![Vec::new(); tree.nodes.len()];

        // Nodes are in postorder but their column ranges are not globally
        // sorted by node index; supernodes must be emitted in *column*
        // order. Sort node ids by range start.
        let mut by_start: Vec<usize> = (0..tree.nodes.len()).collect();
        by_start.sort_by_key(|&i| tree.nodes[i].cols.start);

        for &node in &by_start {
            let cols = tree.nodes[node].cols.clone();
            let mut s = cols.start;
            while s < cols.end {
                let e = (s + maxsup).min(cols.end);
                sns_of_node[node].push(ranges.len());
                ranges.push(s..e);
                node_of_sn.push(node);
                s = e;
            }
        }

        let mut sn_of_col = vec![usize::MAX; n];
        for (sn, r) in ranges.iter().enumerate() {
            for c in r.clone() {
                sn_of_col[c] = sn;
            }
        }
        debug_assert!(sn_of_col.iter().all(|&s| s != usize::MAX));

        SnPartition {
            ranges,
            sn_of_col,
            node_of_sn,
            sns_of_node,
        }
    }

    /// Number of supernodes.
    pub fn nsup(&self) -> usize {
        self.ranges.len()
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.sn_of_col.len()
    }

    /// Width (column count) of supernode `s`.
    #[inline]
    pub fn width(&self, s: usize) -> usize {
        self.ranges[s].end - self.ranges[s].start
    }

    /// The widest supernode.
    pub fn max_width(&self) -> usize {
        (0..self.nsup()).map(|s| self.width(s)).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ordering::{nested_dissection, Graph, NdOptions};
    use sparsemat::matgen::grid2d_5pt;
    use sparsemat::testmats::Geometry;

    fn tree_16() -> (sparsemat::Csr, SepTree) {
        let a = grid2d_5pt(16, 16, 0.0, 0);
        let g = Graph::from_matrix(&a);
        let tree = nested_dissection(
            &g,
            NdOptions {
                leaf_size: 16,
                geometry: Geometry::Grid2d { nx: 16, ny: 16 },
                ..Default::default()
            },
        );
        (a, tree)
    }

    #[test]
    fn ranges_tile_and_ascend() {
        let (_, tree) = tree_16();
        let part = SnPartition::from_septree(&tree, 8);
        let mut expect = 0;
        for r in &part.ranges {
            assert_eq!(r.start, expect);
            assert!(r.end > r.start && r.end - r.start <= 8);
            expect = r.end;
        }
        assert_eq!(expect, 256);
    }

    #[test]
    fn panel_chains_are_consecutive() {
        let (_, tree) = tree_16();
        let part = SnPartition::from_septree(&tree, 4);
        for sns in &part.sns_of_node {
            for w in sns.windows(2) {
                assert_eq!(w[1], w[0] + 1, "panels of one node must be a chain");
                assert_eq!(part.ranges[w[0]].end, part.ranges[w[1]].start);
            }
        }
    }

    #[test]
    fn sn_of_col_consistent() {
        let (_, tree) = tree_16();
        let part = SnPartition::from_septree(&tree, 8);
        for (sn, r) in part.ranges.iter().enumerate() {
            for c in r.clone() {
                assert_eq!(part.sn_of_col[c], sn);
            }
        }
    }

    #[test]
    fn maxsup_one_gives_scalar_supernodes() {
        let (_, tree) = tree_16();
        let part = SnPartition::from_septree(&tree, 1);
        assert_eq!(part.nsup(), 256);
        assert_eq!(part.max_width(), 1);
    }
}
