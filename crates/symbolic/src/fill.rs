//! Block-level symbolic LU factorization on the supernode quotient graph.
//!
//! Works entirely at supernode granularity: the input pattern is reduced to
//! block form (block `(I, J)` present iff any entry of `A` falls in it), and
//! the classic symbolic-Cholesky recurrence runs on blocks:
//!
//! ```text
//! struct(s) = blocks of A below s  ∪  ⋃ { struct(c) \ {s} : parent(c) = s }
//! parent(s) = min struct(s)
//! ```
//!
//! Because the input pattern is symmetric (SuperLU_DIST factors the
//! symmetrized pattern under static pivoting), `L` and `U` have transposed
//! block structures: `struct(s)` lists both the `L(I, s)` blocks (column
//! panel) and the `U(s, I)` blocks (row panel).

use crate::supernode::SnPartition;
use sparsemat::Csr;

/// The block fill pattern and the supernodal elimination tree.
#[derive(Clone, Debug)]
pub struct BlockFill {
    /// For each supernode `s`, the ascending list of supernodes `I > s`
    /// such that block `L(I, s)` (equivalently `U(s, I)`) is structurally
    /// nonzero.
    pub struct_of: Vec<Vec<usize>>,
    /// Supernodal elimination-tree parent: the first block row below the
    /// diagonal block. `None` for roots (supernodes with empty struct).
    pub parent: Vec<Option<usize>>,
}

impl BlockFill {
    /// Number of structurally nonzero off-diagonal blocks in `L` (equal to
    /// the count in `U` by symmetry).
    pub fn num_lblocks(&self) -> usize {
        self.struct_of.iter().map(|s| s.len()).sum()
    }

    /// Children lists of the supernodal elimination tree.
    pub fn children(&self) -> Vec<Vec<usize>> {
        let mut ch = vec![Vec::new(); self.parent.len()];
        for (s, p) in self.parent.iter().enumerate() {
            if let Some(p) = p {
                ch[*p].push(s);
            }
        }
        ch
    }

    /// True if `anc` is an ancestor of `s` (or equal) in the supernodal
    /// elimination tree.
    pub fn is_ancestor(&self, s: usize, anc: usize) -> bool {
        let mut cur = Some(s);
        while let Some(c) = cur {
            if c == anc {
                return true;
            }
            cur = self.parent[c];
        }
        false
    }
}

/// Run the block symbolic factorization. `a` must be pattern-symmetric and
/// already in elimination (nested-dissection) order.
pub fn block_symbolic(a: &Csr, part: &SnPartition) -> BlockFill {
    let nsup = part.nsup();

    // 1. Block pattern of the strict lower triangle of A: for each column
    //    supernode J, the set of row supernodes I > J. Built from rows
    //    (pattern symmetric: row i of A lists the columns j, so block
    //    (sn(i), sn(j)) with sn(i) > sn(j) contributes to column sn(j)).
    let mut ablocks: Vec<Vec<usize>> = vec![Vec::new(); nsup];
    for i in 0..a.nrows {
        let si = part.sn_of_col[i];
        for &j in a.row_cols(i) {
            let sj = part.sn_of_col[j];
            if si > sj {
                ablocks[sj].push(si);
            }
        }
    }
    for list in &mut ablocks {
        list.sort_unstable();
        list.dedup();
    }

    // 2. Symbolic recurrence in ascending supernode order (elimination
    //    order). Children contribute their structs to their etree parent.
    let mut struct_of: Vec<Vec<usize>> = vec![Vec::new(); nsup];
    let mut parent: Vec<Option<usize>> = vec![None; nsup];
    let mut pending_children: Vec<Vec<usize>> = vec![Vec::new(); nsup];

    for s in 0..nsup {
        // Merge A-blocks with children's propagated structs.
        let mut merged = std::mem::take(&mut ablocks[s]);
        for &c in &pending_children[s] {
            merged.extend(struct_of[c].iter().copied().filter(|&i| i > s));
        }
        merged.sort_unstable();
        merged.dedup();
        if let Some(&p) = merged.first() {
            parent[s] = Some(p);
            pending_children[p].push(s);
        }
        struct_of[s] = merged;
    }

    BlockFill { struct_of, parent }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ordering::{nested_dissection, Graph, NdOptions};
    use sparsemat::matgen::{grid2d_5pt, grid3d_7pt};
    use sparsemat::testmats::Geometry;
    use sparsemat::{Coo, Perm};

    fn analyze(
        a: &sparsemat::Csr,
        geom: Geometry,
        leaf: usize,
        maxsup: usize,
    ) -> (BlockFill, SnPartition, Perm) {
        let g = Graph::from_matrix(a);
        let tree = nested_dissection(
            &g,
            NdOptions {
                leaf_size: leaf,
                geometry: geom,
                ..Default::default()
            },
        );
        let pa = a.permute_sym(&tree.perm).symmetrize_pattern();
        let part = SnPartition::from_septree(&tree, maxsup);
        let fill = block_symbolic(&pa, &part);
        (fill, part, tree.perm)
    }

    #[test]
    fn arrow_matrix_has_no_extra_fill() {
        // Arrow pointing down-right: dense last row/col, diagonal else.
        // With natural order this has NO fill; block symbolic on scalar
        // supernodes must reproduce that.
        let n = 8;
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 4.0);
            if i + 1 < n {
                coo.push(i, n - 1, 1.0);
                coo.push(n - 1, i, 1.0);
            }
        }
        let a = coo.to_csr();
        // Build a trivial septree: all scalar leaves under a root? Simplest:
        // use a single-node "tree" via identity ND on general geometry with
        // leaf_size 1 won't give the natural order. Instead drive
        // block_symbolic directly with a hand-made partition.
        let part = SnPartition {
            ranges: (0..n).map(|i| i..i + 1).collect(),
            sn_of_col: (0..n).collect(),
            node_of_sn: vec![0; n],
            sns_of_node: vec![(0..n).collect()],
        };
        let fill = block_symbolic(&a, &part);
        // Column i (i < n-1) has exactly one block: row n-1.
        for s in 0..n - 1 {
            assert_eq!(fill.struct_of[s], vec![n - 1], "col {s}");
            assert_eq!(fill.parent[s], Some(n - 1));
        }
        assert!(fill.struct_of[n - 1].is_empty());
        assert_eq!(fill.parent[n - 1], None);
    }

    #[test]
    fn tridiagonal_fill_is_bidiagonal() {
        let n = 10;
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0);
            if i + 1 < n {
                coo.push(i, i + 1, -1.0);
                coo.push(i + 1, i, -1.0);
            }
        }
        let a = coo.to_csr();
        let part = SnPartition {
            ranges: (0..n).map(|i| i..i + 1).collect(),
            sn_of_col: (0..n).collect(),
            node_of_sn: vec![0; n],
            sns_of_node: vec![(0..n).collect()],
        };
        let fill = block_symbolic(&a, &part);
        for s in 0..n - 1 {
            assert_eq!(fill.struct_of[s], vec![s + 1]);
        }
    }

    #[test]
    fn fill_closure_property() {
        // The invariant the numerical phase relies on: if I and J are both
        // in struct(s) with J < I, then I is in struct(J) — every Schur
        // update target block exists in the allocated pattern.
        let a = grid2d_5pt(12, 12, 0.0, 0);
        let (fill, _, _) = analyze(&a, Geometry::Grid2d { nx: 12, ny: 12 }, 8, 4);
        for s in 0..fill.struct_of.len() {
            let st = &fill.struct_of[s];
            for (xi, &j) in st.iter().enumerate() {
                for &i in &st[xi + 1..] {
                    assert!(
                        fill.struct_of[j].binary_search(&i).is_ok(),
                        "update target ({i},{j}) from {s} missing"
                    );
                }
            }
        }
    }

    #[test]
    fn fill_closure_property_3d_multilevel() {
        let a = grid3d_7pt(5, 5, 5, 0.0, 0);
        let (fill, _, _) = analyze(&a, Geometry::General, 10, 6);
        for s in 0..fill.struct_of.len() {
            let st = &fill.struct_of[s];
            for (xi, &j) in st.iter().enumerate() {
                for &i in &st[xi + 1..] {
                    assert!(fill.struct_of[j].binary_search(&i).is_ok());
                }
            }
        }
    }

    #[test]
    fn parents_are_first_struct_entry_and_acyclic() {
        let a = grid2d_5pt(10, 10, 0.0, 0);
        let (fill, _, _) = analyze(&a, Geometry::Grid2d { nx: 10, ny: 10 }, 6, 4);
        let nsup = fill.parent.len();
        for s in 0..nsup {
            match fill.parent[s] {
                Some(p) => {
                    assert!(p > s);
                    assert_eq!(fill.struct_of[s][0], p);
                }
                None => assert!(fill.struct_of[s].is_empty()),
            }
        }
        // The last supernode is always a root.
        assert_eq!(fill.parent[nsup - 1], None);
    }

    #[test]
    fn struct_contains_original_blocks() {
        // Fill only adds blocks, never removes: every A-block below the
        // diagonal must appear in the struct.
        let a = grid2d_5pt(8, 8, 0.0, 0);
        let g = Graph::from_matrix(&a);
        let tree = nested_dissection(
            &g,
            NdOptions {
                leaf_size: 4,
                geometry: Geometry::Grid2d { nx: 8, ny: 8 },
                ..Default::default()
            },
        );
        let pa = a.permute_sym(&tree.perm).symmetrize_pattern();
        let part = SnPartition::from_septree(&tree, 4);
        let fill = block_symbolic(&pa, &part);
        for i in 0..pa.nrows {
            for &j in pa.row_cols(i) {
                let (si, sj) = (part.sn_of_col[i], part.sn_of_col[j]);
                if si > sj {
                    assert!(
                        fill.struct_of[sj].binary_search(&si).is_ok(),
                        "A-block ({si},{sj}) missing from fill"
                    );
                }
            }
        }
    }

    #[test]
    fn ancestor_query() {
        let a = grid2d_5pt(8, 8, 0.0, 0);
        let (fill, _, _) = analyze(&a, Geometry::Grid2d { nx: 8, ny: 8 }, 4, 4);
        let nsup = fill.parent.len();
        // Everything reaches the last supernode on a connected matrix.
        for s in 0..nsup {
            assert!(fill.is_ancestor(s, nsup - 1));
        }
        assert!(!fill.is_ancestor(nsup - 1, 0));
    }
}
