//! Campaign spec: the declarative description of a perf sweep.
//!
//! A spec is a TOML file (see [`crate::toml`] for the supported subset)
//! with one `[campaign]` header, an optional `[tolerance]` table, and one
//! `[[point]]` block per matrix configuration. Each `[[point]]` names a
//! matrix (a `sparsemat::testmats` proxy or a generator spec) and sweeps
//! the grid/options axes; [`CampaignSpec::expand`] takes the cross product
//! into concrete [`Job`]s, skipping (and reporting) invalid combinations
//! like `p % pz != 0` rather than silently shrinking the sweep.

use crate::compare::Tolerance;
use crate::toml::{self, Table, Value};
use simgrid::{Backend, Schedule};

/// Where a point's matrix comes from.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum MatrixSource {
    /// A named `sparsemat::testmats` proxy at a named scale
    /// (`tiny` | `small` | `bench`).
    Named { name: String, scale: String },
    /// A generator spec in `salu --gen` syntax, e.g. `grid3d:16`,
    /// `kkt:10`.
    Gen { spec: String },
}

impl MatrixSource {
    /// Short label used in point keys and artifact paths.
    pub fn label(&self) -> String {
        match self {
            MatrixSource::Named { name, .. } => name.clone(),
            MatrixSource::Gen { spec } => spec.replace(':', ""),
        }
    }

    /// The `scale` column recorded in snapshots.
    pub fn scale(&self) -> String {
        match self {
            MatrixSource::Named { scale, .. } => scale.clone(),
            MatrixSource::Gen { .. } => "gen".into(),
        }
    }
}

/// One `[[point]]` block, before sweep expansion.
#[derive(Clone, Debug)]
pub struct PointSpec {
    pub matrix: MatrixSource,
    pub leaf: usize,
    pub maxsup: usize,
    pub p: Vec<usize>,
    pub pz: Vec<usize>,
    pub batched: Vec<bool>,
    pub lookahead: Vec<usize>,
    /// Fault-plan specs in `FaultPlan::parse` syntax; `""` means no
    /// faults (the common case, and the default sweep).
    pub faults: Vec<String>,
    /// Execution backends to sweep (`threaded` | `event`); defaults to
    /// threaded only, matching every historical snapshot.
    pub backend: Vec<Backend>,
    /// Communication schedules to sweep (`level` | `taskgraph`); defaults
    /// to level only, matching every historical snapshot.
    pub schedule: Vec<Schedule>,
    /// Per-point repetition override. Paper-scale points (P = 4096) take
    /// minutes per rep; this lets one point opt out of the campaign-wide
    /// best-of-N without loosening the small points.
    pub reps: Option<usize>,
}

/// One concrete run: a single cell of the sweep cross product.
#[derive(Clone, Debug)]
pub struct Job {
    pub matrix: MatrixSource,
    pub leaf: usize,
    pub maxsup: usize,
    pub p: usize,
    pub pz: usize,
    pub batched: bool,
    pub lookahead: usize,
    /// `None` = fault-free.
    pub faults: Option<String>,
    pub backend: Backend,
    pub schedule: Schedule,
    pub reps: usize,
}

impl Job {
    /// Filesystem-safe slug naming this job's artifact directory.
    pub fn slug(&self) -> String {
        let mut s = format!(
            "{}-p{}-pz{}-{}",
            self.matrix.label(),
            self.p,
            self.pz,
            if self.batched { "batched" } else { "perblock" }
        );
        if self.lookahead != 8 {
            s.push_str(&format!("-la{}", self.lookahead));
        }
        if self.faults.is_some() {
            s.push_str("-faults");
        }
        if self.backend != Backend::Threaded {
            s.push_str(&format!("-{}", self.backend));
        }
        if self.schedule != Schedule::Level {
            s.push_str(&format!("-{}", self.schedule));
        }
        s
    }
}

/// A fully parsed campaign.
#[derive(Clone, Debug)]
pub struct CampaignSpec {
    pub name: String,
    /// Label stamped into the emitted snapshot's `pr` field (e.g. `pr8`).
    pub pr_label: String,
    /// Best-of-N repetitions for the wall-clock column.
    pub reps: usize,
    /// Parallel job slots. 1 (the default) keeps wall-clock measurements
    /// unperturbed; raise it when sweeping simulated-only metrics.
    pub workers: usize,
    /// Baseline snapshot to compare against after the run, if any.
    pub baseline: Option<String>,
    /// Also write a Chrome trace per job (one extra traced run each).
    pub trace: bool,
    pub tolerance: Tolerance,
    pub points: Vec<PointSpec>,
}

impl CampaignSpec {
    /// Parse a spec document.
    pub fn parse(text: &str) -> Result<CampaignSpec, String> {
        let doc = toml::parse(text)?;
        let header = doc
            .section("campaign")
            .ok_or("spec has no [campaign] section")?;
        let name = req_str(header, "campaign", "name")?;
        let pr_label = opt_str(header, "pr")?.unwrap_or_else(|| name.clone());
        let reps = opt_usize(header, "campaign", "reps")?.unwrap_or(1).max(1);
        let workers = opt_usize(header, "campaign", "workers")?
            .unwrap_or(1)
            .max(1);
        let baseline = opt_str(header, "baseline")?;
        let trace = match header.get("trace") {
            Some(v) => v.as_bool().ok_or("[campaign] trace must be a boolean")?,
            None => false,
        };
        let mut tolerance = Tolerance::default();
        if let Some(t) = doc.section("tolerance") {
            if let Some(v) = t.get("wall") {
                tolerance.wall = v.as_f64().ok_or("[tolerance] wall must be a number")?;
            }
            if let Some(v) = t.get("sim") {
                tolerance.sim = v.as_f64().ok_or("[tolerance] sim must be a number")?;
            }
            if let Some(v) = t.get("gate_wall") {
                tolerance.gate_wall = v
                    .as_bool()
                    .ok_or("[tolerance] gate_wall must be a boolean")?;
            }
        }
        let mut points = Vec::new();
        for (i, table) in doc.sections_named("point").into_iter().enumerate() {
            points.push(parse_point(table).map_err(|e| format!("[[point]] #{}: {e}", i + 1))?);
        }
        if points.is_empty() {
            return Err("spec has no [[point]] blocks".into());
        }
        Ok(CampaignSpec {
            name,
            pr_label,
            reps,
            workers,
            baseline,
            trace,
            tolerance,
            points,
        })
    }

    /// Expand sweeps into concrete jobs. Combinations where `p` is not a
    /// multiple of `pz` cannot form a grid; they are returned separately so
    /// the runner can report them instead of dropping them silently.
    pub fn expand(&self) -> (Vec<Job>, Vec<String>) {
        let mut jobs = Vec::new();
        let mut skipped = Vec::new();
        for pt in &self.points {
            for &p in &pt.p {
                for &pz in &pt.pz {
                    if !pz.is_power_of_two() || p % pz != 0 {
                        skipped.push(format!(
                            "{} p={p} pz={pz}: pz must be a power of two dividing p",
                            pt.matrix.label()
                        ));
                        continue;
                    }
                    for &batched in &pt.batched {
                        for &lookahead in &pt.lookahead {
                            for faults in &pt.faults {
                                for &backend in &pt.backend {
                                    for &schedule in &pt.schedule {
                                        jobs.push(Job {
                                            matrix: pt.matrix.clone(),
                                            leaf: pt.leaf,
                                            maxsup: pt.maxsup,
                                            p,
                                            pz,
                                            batched,
                                            lookahead,
                                            faults: (!faults.is_empty()).then(|| faults.clone()),
                                            backend,
                                            schedule,
                                            reps: pt.reps.unwrap_or(self.reps),
                                        });
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        (jobs, skipped)
    }
}

fn parse_point(t: &Table) -> Result<PointSpec, String> {
    let matrix = match (t.get("matrix"), t.get("gen")) {
        (Some(m), None) => MatrixSource::Named {
            name: m.as_str().ok_or("matrix must be a string")?.to_string(),
            scale: match t.get("scale") {
                Some(v) => v.as_str().ok_or("scale must be a string")?.to_string(),
                None => "small".into(),
            },
        },
        (None, Some(g)) => MatrixSource::Gen {
            spec: g.as_str().ok_or("gen must be a string")?.to_string(),
        },
        (Some(_), Some(_)) => return Err("give either matrix or gen, not both".into()),
        (None, None) => return Err("needs a matrix name or a gen spec".into()),
    };
    let usize_list = |key: &str, default: usize| -> Result<Vec<usize>, String> {
        match t.get(key) {
            None => Ok(vec![default]),
            Some(v) => {
                let vals: Option<Vec<usize>> = v.as_list().iter().map(Value::as_usize).collect();
                let vals =
                    vals.ok_or_else(|| format!("{key} must be a non-negative integer list"))?;
                if vals.is_empty() {
                    return Err(format!("{key} sweep is empty"));
                }
                Ok(vals)
            }
        }
    };
    let p = usize_list("p", 0)?;
    if p == vec![0] {
        return Err("needs a p sweep (total rank counts)".into());
    }
    let pz = usize_list("pz", 1)?;
    let lookahead = usize_list("lookahead", 8)?;
    let batched = match t.get("batched") {
        None => vec![false],
        Some(v) => {
            let vals: Option<Vec<bool>> = v.as_list().iter().map(Value::as_bool).collect();
            let vals = vals.ok_or("batched must be a boolean list")?;
            if vals.is_empty() {
                return Err("batched sweep is empty".into());
            }
            vals
        }
    };
    let faults = match t.get("faults") {
        None => vec![String::new()],
        Some(v) => {
            let vals: Option<Vec<String>> = v
                .as_list()
                .iter()
                .map(|x| x.as_str().map(str::to_string))
                .collect();
            let vals = vals.ok_or("faults must be a string list")?;
            if vals.is_empty() {
                return Err("faults sweep is empty".into());
            }
            vals
        }
    };
    let backend = match t.get("backend") {
        None => vec![Backend::Threaded],
        Some(v) => {
            let vals: Option<Vec<Backend>> = v
                .as_list()
                .iter()
                .map(|x| x.as_str().and_then(|s| s.parse().ok()))
                .collect();
            let vals = vals.ok_or("backend must be a list of 'threaded' | 'event'")?;
            if vals.is_empty() {
                return Err("backend sweep is empty".into());
            }
            vals
        }
    };
    let schedule = match t.get("schedule") {
        None => vec![Schedule::Level],
        Some(v) => {
            let vals: Option<Vec<Schedule>> = v
                .as_list()
                .iter()
                .map(|x| x.as_str().and_then(|s| s.parse().ok()))
                .collect();
            let vals = vals.ok_or("schedule must be a list of 'level' | 'taskgraph'")?;
            if vals.is_empty() {
                return Err("schedule sweep is empty".into());
            }
            vals
        }
    };
    let reps = match t.get("reps") {
        None => None,
        Some(v) => Some(
            v.as_usize()
                .ok_or("reps must be a non-negative integer")?
                .max(1),
        ),
    };
    Ok(PointSpec {
        matrix,
        leaf: single_usize(t, "leaf", 32)?,
        maxsup: single_usize(t, "maxsup", 32)?,
        p,
        pz,
        batched,
        lookahead,
        faults,
        backend,
        schedule,
        reps,
    })
}

fn single_usize(t: &Table, key: &str, default: usize) -> Result<usize, String> {
    match t.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_usize()
            .ok_or_else(|| format!("{key} must be a non-negative integer")),
    }
}

fn req_str(t: &Table, section: &str, key: &str) -> Result<String, String> {
    t.get(key)
        .and_then(|v| v.as_str())
        .map(str::to_string)
        .ok_or_else(|| format!("[{section}] needs a string '{key}'"))
}

fn opt_str(t: &Table, key: &str) -> Result<Option<String>, String> {
    match t.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| format!("'{key}' must be a string")),
    }
}

fn opt_usize(t: &Table, section: &str, key: &str) -> Result<Option<usize>, String> {
    match t.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_usize()
            .map(Some)
            .ok_or_else(|| format!("[{section}] '{key}' must be a non-negative integer")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = "\
[campaign]
name = \"smoke\"
pr = \"pr8\"
reps = 3
workers = 2
baseline = \"results/BENCH_pr4.json\"

[tolerance]
wall = 0.5
sim = 0.02

[[point]]
matrix = \"k2d5pt\"
p = [16]
pz = [1, 4]
batched = [false, true]

[[point]]
gen = \"grid3d:8\"
p = 8
pz = [2, 3]
";

    #[test]
    fn parses_and_expands_cross_product() {
        let spec = CampaignSpec::parse(SPEC).unwrap();
        assert_eq!(spec.name, "smoke");
        assert_eq!(spec.pr_label, "pr8");
        assert_eq!(spec.reps, 3);
        assert_eq!(spec.baseline.as_deref(), Some("results/BENCH_pr4.json"));
        assert_eq!(spec.tolerance.sim, 0.02);
        let (jobs, skipped) = spec.expand();
        // point 1: 1 p x 2 pz x 2 batched = 4; point 2: pz=2 only (pz=3 is
        // not a power of two) = 1.
        assert_eq!(jobs.len(), 5);
        assert_eq!(skipped.len(), 1);
        assert!(skipped[0].contains("pz=3"));
        assert!(jobs.iter().any(|j| j.pz == 4 && j.batched));
        assert_eq!(
            jobs[4].matrix,
            MatrixSource::Gen {
                spec: "grid3d:8".into()
            }
        );
        assert_eq!(jobs[4].slug(), "grid3d8-p8-pz2-perblock");
    }

    #[test]
    fn defaults_fill_unswept_axes() {
        let spec = CampaignSpec::parse(
            "[campaign]\nname = \"d\"\n[[point]]\nmatrix = \"nlpkkt\"\np = 4\n",
        )
        .unwrap();
        let (jobs, skipped) = spec.expand();
        assert!(skipped.is_empty());
        assert_eq!(jobs.len(), 1);
        let j = &jobs[0];
        assert_eq!(
            (j.pz, j.batched, j.lookahead, j.leaf, j.maxsup),
            (1, false, 8, 32, 32)
        );
        assert!(j.faults.is_none());
        assert_eq!(j.schedule, Schedule::Level);
        assert_eq!(j.reps, 1);
        assert_eq!(spec.pr_label, "d", "pr label defaults to the name");
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(
            CampaignSpec::parse("[campaign]\nname = \"x\"\n").is_err(),
            "no points"
        );
        assert!(
            CampaignSpec::parse("[campaign]\nname = \"x\"\n[[point]]\np = 4\n").is_err(),
            "no matrix"
        );
        assert!(
            CampaignSpec::parse(
                "[campaign]\nname = \"x\"\n[[point]]\nmatrix = \"a\"\ngen = \"b:1\"\np = 4\n"
            )
            .is_err(),
            "both matrix and gen"
        );
        assert!(
            CampaignSpec::parse("[campaign]\nname = \"x\"\n[[point]]\nmatrix = \"a\"\n").is_err(),
            "no p sweep"
        );
    }

    #[test]
    fn backend_sweeps_expand_and_suffix_the_slug() {
        let spec = CampaignSpec::parse(
            "[campaign]\nname = \"b\"\nreps = 3\n\
             [[point]]\nmatrix = \"a\"\np = 4\nbackend = [\"threaded\", \"event\"]\nreps = 1\n",
        )
        .unwrap();
        let (jobs, _) = spec.expand();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].backend, Backend::Threaded);
        assert_eq!(jobs[1].backend, Backend::Event);
        assert!(!jobs[0].slug().contains("event"));
        assert!(jobs[1].slug().ends_with("-event"));
        // the per-point override beats the campaign-wide best-of-N
        assert_eq!((jobs[0].reps, jobs[1].reps), (1, 1));
        // unswept points stay threaded at the campaign reps
        let d = CampaignSpec::parse(
            "[campaign]\nname = \"d\"\nreps = 3\n[[point]]\nmatrix = \"a\"\np = 4\n",
        )
        .unwrap();
        let (jobs, _) = d.expand();
        assert_eq!(jobs[0].backend, Backend::Threaded);
        assert_eq!(jobs[0].reps, 3);
        assert!(
            CampaignSpec::parse(
                "[campaign]\nname = \"x\"\n[[point]]\nmatrix = \"a\"\np = 4\nbackend = [\"fiber\"]\n"
            )
            .is_err(),
            "unknown backend names must be rejected at parse time"
        );
    }

    #[test]
    fn the_committed_smoke_campaign_stays_valid() {
        // The CI gate runs this exact file; a spec that no longer parses
        // or silently loses its paper-scale point should fail here, not
        // on the runner.
        let text = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../campaigns/smoke.toml"
        ))
        .expect("campaigns/smoke.toml exists");
        let spec = CampaignSpec::parse(&text).unwrap();
        let (jobs, skipped) = spec.expand();
        assert!(skipped.is_empty(), "{skipped:?}");
        // k2d5pt sweeps both backends...
        assert!(jobs
            .iter()
            .any(|j| j.matrix.label() == "k2d5pt" && j.backend == Backend::Event));
        // ...and the paper-scale event point is present, single-rep.
        let paper = jobs
            .iter()
            .find(|j| j.p == 4096)
            .expect("smoke campaign carries the P=4096 point");
        assert_eq!(paper.backend, Backend::Event);
        assert_eq!(paper.reps, 1);
        assert_eq!(paper.slug(), "grid2d64-p4096-pz1-perblock-event");
    }

    #[test]
    fn schedule_sweeps_expand_and_suffix_the_slug() {
        let spec = CampaignSpec::parse(
            "[campaign]\nname = \"s\"\n\
             [[point]]\ngen = \"kkt:4\"\np = 8\npz = [4]\nbackend = [\"event\"]\n\
             schedule = [\"level\", \"taskgraph\"]\n",
        )
        .unwrap();
        let (jobs, _) = spec.expand();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].schedule, Schedule::Level);
        assert_eq!(jobs[1].schedule, Schedule::TaskGraph);
        // level stays suffix-free so historical artifact paths never move
        assert_eq!(jobs[0].slug(), "kkt4-p8-pz4-perblock-event");
        assert_eq!(jobs[1].slug(), "kkt4-p8-pz4-perblock-event-taskgraph");
        assert!(
            CampaignSpec::parse(
                "[campaign]\nname = \"x\"\n[[point]]\nmatrix = \"a\"\np = 4\nschedule = [\"eager\"]\n"
            )
            .is_err(),
            "unknown schedule names must be rejected at parse time"
        );
    }

    #[test]
    fn the_committed_scaling_campaign_stays_valid() {
        // The CI schedule gate runs this exact file; it must keep pairing
        // every point across both schedules on the event backend.
        let text = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../campaigns/scaling.toml"
        ))
        .expect("campaigns/scaling.toml exists");
        let spec = CampaignSpec::parse(&text).unwrap();
        assert_eq!(spec.pr_label, "pr10");
        let (jobs, skipped) = spec.expand();
        assert!(skipped.is_empty(), "{skipped:?}");
        // 4 P values x 2 Pz x 2 schedules, all event-backend
        assert_eq!(jobs.len(), 16);
        assert!(jobs.iter().all(|j| j.backend == Backend::Event));
        let tg: Vec<_> = jobs
            .iter()
            .filter(|j| j.schedule == Schedule::TaskGraph)
            .collect();
        assert_eq!(tg.len(), 8, "every grid point runs under both schedules");
        // the paper-scale replicated point is the headline pair
        assert!(tg.iter().any(|j| j.p == 4096 && j.pz == 4));
    }

    #[test]
    fn fault_sweeps_map_empty_string_to_fault_free() {
        let spec = CampaignSpec::parse(
            "[campaign]\nname = \"f\"\n[[point]]\nmatrix = \"a\"\np = 4\nfaults = [\"\", \"drop:p=0.05\"]\n",
        )
        .unwrap();
        let (jobs, _) = spec.expand();
        assert_eq!(jobs.len(), 2);
        assert!(jobs[0].faults.is_none());
        assert_eq!(jobs[1].faults.as_deref(), Some("drop:p=0.05"));
        assert!(jobs[1].slug().ends_with("-faults"));
    }
}
