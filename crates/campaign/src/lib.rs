#![forbid(unsafe_code)]

//! Perf-campaign runner: declarative sweeps, per-job artifacts, and
//! bench-regression gates.
//!
//! A campaign is a TOML spec (see `campaigns/*.toml` and docs/campaign.md)
//! that sweeps generator/matrix × `n` × `P` × `Pz` × options
//! (`batched`, `lookahead`, `faults`, `backend`). The runner expands the
//! sweep into jobs, factors each one best-of-N, writes per-job artifact
//! directories (metrics / memprof / commvol / hostprof — the latter for
//! threaded-backend jobs only, optionally a Chrome trace), and emits:
//!
//! - a `BENCH_<pr>.json` snapshot (schema `salu-bench-snapshot/3`) that
//!   extends the `results/BENCH_*.json` trajectory, and
//! - a markdown run report, plus — when a baseline is given — a
//!   regression report with per-metric verdicts
//!   (improved / unchanged / regressed / incomparable).
//!
//! The comparator loads every historical snapshot generation (v1–v3) and
//! matches points by
//! `(matrix, n, p, pz, batched, lookahead, faults, backend)`;
//! deterministic simulated metrics gate under a tight tolerance band,
//! host wall-clock under a loose, by default non-gating one. The
//! `salu-campaign` binary fronts all of this for the CLI and CI.

pub mod compare;
pub mod report;
pub mod runner;
pub mod snapshot;
pub mod spec;
pub mod toml;

pub use compare::{
    compare, schedule_gate, Comparison, MetricVerdict, PointComparison, ScheduleGate, Tolerance,
    Verdict,
};
pub use report::{compare_markdown, run_markdown};
pub use runner::{run_campaign, CampaignOutcome};
pub use snapshot::{BenchPoint, PointKey, Snapshot, DEFAULT_LOOKAHEAD, METRICS};
pub use spec::{CampaignSpec, Job, MatrixSource, PointSpec};
