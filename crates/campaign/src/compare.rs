//! Regression comparator over bench snapshots.
//!
//! Matches the points of a new snapshot against a baseline (any schema
//! generation — see [`crate::snapshot`]), diffs each shared metric, and
//! assigns per-metric verdicts. Every metric is lower-is-better.
//!
//! Two tolerance bands apply: `sim` for deterministic simulated/ledger
//! metrics (tight — these only move when the algorithm moves) and `wall`
//! for host wall-clock (loose — these move with the machine). Wall
//! verdicts are reported but, by default, do **not** gate: a CI runner is
//! not the machine the baseline was measured on. Set
//! `gate_wall = true` in the spec's `[tolerance]` table (or pass
//! `--gate-wall`) to make wall regressions fail the run too.

use crate::snapshot::{is_wall_metric, PointKey, Snapshot, METRICS};
use simgrid::Json;

/// Relative tolerance bands and gating policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Tolerance {
    /// Band for host wall-clock metrics (relative, e.g. 0.5 = ±50%).
    pub wall: f64,
    /// Band for simulated/ledger metrics (relative).
    pub sim: f64,
    /// Whether wall regressions fail the gate.
    pub gate_wall: bool,
}

impl Default for Tolerance {
    fn default() -> Self {
        Tolerance {
            wall: 0.5,
            sim: 0.02,
            gate_wall: false,
        }
    }
}

/// Outcome for one metric of one matched point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    Improved,
    Unchanged,
    Regressed,
    /// No ratio exists (NaN/infinite input, or a zero baseline with a
    /// nonzero wall measurement). Never gates.
    Incomparable,
}

impl Verdict {
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::Improved => "improved",
            Verdict::Unchanged => "unchanged",
            Verdict::Regressed => "regressed",
            Verdict::Incomparable => "incomparable",
        }
    }
}

/// One metric's comparison.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricVerdict {
    pub metric: String,
    pub old: f64,
    pub new: f64,
    /// `new / old` when defined, else NaN.
    pub ratio: f64,
    pub verdict: Verdict,
    /// Whether a `Regressed` verdict on this metric fails the gate.
    pub gated: bool,
}

/// All metric verdicts for one matched point.
#[derive(Clone, Debug, PartialEq)]
pub struct PointComparison {
    pub key: PointKey,
    pub verdicts: Vec<MetricVerdict>,
}

impl PointComparison {
    pub fn regressed(&self) -> bool {
        self.verdicts
            .iter()
            .any(|v| v.gated && v.verdict == Verdict::Regressed)
    }
}

/// The full diff of two snapshots.
#[derive(Clone, Debug)]
pub struct Comparison {
    pub baseline_label: String,
    pub new_label: String,
    pub tol: Tolerance,
    pub matched: Vec<PointComparison>,
    /// Baseline points with no counterpart in the new snapshot (coverage
    /// shrank — reported, not gated).
    pub missing: Vec<PointKey>,
    /// New points with no baseline counterpart (new coverage).
    pub extra: Vec<PointKey>,
}

impl Comparison {
    /// True when any gated metric of any matched point regressed — the
    /// CI failure condition.
    pub fn regressed(&self) -> bool {
        self.matched.iter().any(PointComparison::regressed)
    }

    /// Counts of (improved, unchanged, regressed, incomparable) across
    /// all matched metrics.
    pub fn tallies(&self) -> (usize, usize, usize, usize) {
        let mut t = (0, 0, 0, 0);
        for p in &self.matched {
            for v in &p.verdicts {
                match v.verdict {
                    Verdict::Improved => t.0 += 1,
                    Verdict::Unchanged => t.1 += 1,
                    Verdict::Regressed => t.2 += 1,
                    Verdict::Incomparable => t.3 += 1,
                }
            }
        }
        t
    }

    /// Machine-readable report document.
    pub fn to_json(&self) -> Json {
        let points = self
            .matched
            .iter()
            .map(|p| {
                Json::Obj(vec![
                    ("point".into(), Json::str(p.key.to_string())),
                    ("regressed".into(), Json::Bool(p.regressed())),
                    (
                        "metrics".into(),
                        Json::Arr(
                            p.verdicts
                                .iter()
                                .map(|v| {
                                    Json::Obj(vec![
                                        ("metric".into(), Json::str(&v.metric)),
                                        ("old".into(), Json::num(v.old)),
                                        ("new".into(), Json::num(v.new)),
                                        ("ratio".into(), Json::num(v.ratio)),
                                        ("verdict".into(), Json::str(v.verdict.as_str())),
                                        ("gated".into(), Json::Bool(v.gated)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        let keys =
            |ks: &[PointKey]| Json::Arr(ks.iter().map(|k| Json::str(k.to_string())).collect());
        Json::Obj(vec![
            ("schema".into(), Json::str("salu-bench-compare/1")),
            ("baseline".into(), Json::str(&self.baseline_label)),
            ("new".into(), Json::str(&self.new_label)),
            ("tolerance_wall".into(), Json::num(self.tol.wall)),
            ("tolerance_sim".into(), Json::num(self.tol.sim)),
            ("gate_wall".into(), Json::Bool(self.tol.gate_wall)),
            ("regressed".into(), Json::Bool(self.regressed())),
            ("points".into(), Json::Arr(points)),
            ("missing".into(), keys(&self.missing)),
            ("extra".into(), keys(&self.extra)),
        ])
    }
}

/// Compare one metric pair under a relative tolerance band.
fn judge(old: f64, new: f64, tol: f64) -> (Verdict, f64) {
    if !old.is_finite() || !new.is_finite() {
        return (Verdict::Incomparable, f64::NAN);
    }
    if old == 0.0 {
        // A deterministic metric appearing from zero is a real change
        // (e.g. W_red becoming nonzero); there is just no ratio for it.
        return if new == 0.0 {
            (Verdict::Unchanged, 1.0)
        } else {
            (Verdict::Regressed, f64::NAN)
        };
    }
    if old < 0.0 || new < 0.0 {
        // All snapshot metrics are nonnegative; a negative value is a
        // corrupt document, not a perf signal.
        return (Verdict::Incomparable, f64::NAN);
    }
    let ratio = new / old;
    let rel = (new - old) / old;
    let verdict = if rel > tol {
        Verdict::Regressed
    } else if rel < -tol {
        Verdict::Improved
    } else {
        Verdict::Unchanged
    };
    (verdict, ratio)
}

/// Outcome of the schedule gate over one snapshot (see [`schedule_gate`]).
#[derive(Clone, Debug, Default)]
pub struct ScheduleGate {
    /// `(level-point key, level makespan, taskgraph makespan)` per pair.
    pub pairs: Vec<(PointKey, f64, f64)>,
    /// Human-readable gate failures; empty means the gate passed.
    pub violations: Vec<String>,
}

impl ScheduleGate {
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Pair every `schedule=taskgraph` point of a snapshot with its
/// `schedule=level` twin (same key otherwise) and require the task-graph
/// makespan to be less than or equal to the level makespan on every pair.
///
/// The makespans are deterministic simulated metrics, so no tolerance
/// band applies: hoisted z-reduction sends must never push the critical
/// path past the bulk-synchronous level order on any committed campaign
/// point. An unpaired taskgraph point is itself a violation — the gate
/// must never silently shrink to zero coverage.
pub fn schedule_gate(snap: &Snapshot) -> ScheduleGate {
    let mut gate = ScheduleGate::default();
    for tp in &snap.points {
        if tp.key.schedule.as_deref() != Some("taskgraph") {
            continue;
        }
        let level_key = PointKey {
            schedule: None,
            ..tp.key.clone()
        };
        let Some(lp) = snap.find(&level_key) else {
            gate.violations
                .push(format!("{}: no level twin in the snapshot", tp.key));
            continue;
        };
        let (Some(lm), Some(tm)) = (lp.metric("makespan_secs"), tp.metric("makespan_secs")) else {
            gate.violations
                .push(format!("{level_key}: a side is missing makespan_secs"));
            continue;
        };
        if tm > lm {
            gate.violations.push(format!(
                "{level_key}: taskgraph makespan {tm:.9e} exceeds level {lm:.9e} ({:+.4}%)",
                (tm - lm) / lm * 100.0
            ));
        }
        gate.pairs.push((level_key, lm, tm));
    }
    gate
}

/// Diff `new` against `baseline`.
pub fn compare(new: &Snapshot, baseline: &Snapshot, tol: Tolerance) -> Comparison {
    let mut matched = Vec::new();
    let mut extra = Vec::new();
    for np in &new.points {
        let Some(bp) = baseline.find(&np.key) else {
            extra.push(np.key.clone());
            continue;
        };
        let mut verdicts = Vec::new();
        for m in METRICS {
            let (Some(old), Some(newv)) = (bp.metric(m), np.metric(m)) else {
                continue; // metric absent on one side: nothing to judge
            };
            let wall = is_wall_metric(m);
            let band = if wall { tol.wall } else { tol.sim };
            let (verdict, ratio) = judge(old, newv, band);
            verdicts.push(MetricVerdict {
                metric: m.to_string(),
                old,
                new: newv,
                ratio,
                verdict,
                gated: !wall || tol.gate_wall,
            });
        }
        matched.push(PointComparison {
            key: np.key.clone(),
            verdicts,
        });
    }
    let missing = baseline
        .points
        .iter()
        .filter(|bp| new.find(&bp.key).is_none())
        .map(|bp| bp.key.clone())
        .collect();
    Comparison {
        baseline_label: baseline.label.clone(),
        new_label: new.label.clone(),
        tol,
        matched,
        missing,
        extra,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::BenchPoint;

    fn key(matrix: &str, pz: u64, batched: bool) -> PointKey {
        PointKey {
            matrix: matrix.into(),
            n: 100,
            p: 16,
            pz,
            batched,
            lookahead: None,
            faults: None,
            backend: None,
            schedule: None,
        }
    }

    fn snap(label: &str, points: Vec<BenchPoint>) -> Snapshot {
        Snapshot {
            version: 3,
            label: label.into(),
            points,
        }
    }

    fn pt(k: PointKey, wall: f64, makespan: f64) -> BenchPoint {
        BenchPoint {
            key: k,
            scale: "small".into(),
            metrics: vec![
                ("wall_secs".into(), wall),
                ("makespan_secs".into(), makespan),
            ],
        }
    }

    #[test]
    fn verdicts_respect_tolerance_boundaries() {
        let tol = Tolerance {
            wall: 0.5,
            sim: 0.02,
            gate_wall: false,
        };
        // exactly at the band edge is Unchanged (strict inequality)
        assert_eq!(judge(100.0, 102.0, tol.sim).0, Verdict::Unchanged);
        assert_eq!(judge(100.0, 98.0, tol.sim).0, Verdict::Unchanged);
        // just beyond flips
        assert_eq!(judge(100.0, 102.1, tol.sim).0, Verdict::Regressed);
        assert_eq!(judge(100.0, 97.9, tol.sim).0, Verdict::Improved);
        // the loose wall band swallows a 1.4x swing
        assert_eq!(judge(0.010, 0.014, tol.wall).0, Verdict::Unchanged);
        assert_eq!(judge(0.010, 0.016, tol.wall).0, Verdict::Regressed);
    }

    #[test]
    fn nan_and_zero_guards() {
        assert_eq!(judge(f64::NAN, 1.0, 0.1).0, Verdict::Incomparable);
        assert_eq!(judge(1.0, f64::INFINITY, 0.1).0, Verdict::Incomparable);
        assert_eq!(judge(0.0, 0.0, 0.1).0, Verdict::Unchanged);
        // a deterministic metric appearing from zero is a regression with
        // no ratio
        let (v, r) = judge(0.0, 5.0, 0.1);
        assert_eq!(v, Verdict::Regressed);
        assert!(r.is_nan());
        assert_eq!(judge(-1.0, 1.0, 0.1).0, Verdict::Incomparable);
    }

    #[test]
    fn wall_regressions_do_not_gate_by_default() {
        let base = snap("pr4", vec![pt(key("m", 1, false), 0.010, 2.0)]);
        let new = snap("pr8", vec![pt(key("m", 1, false), 0.100, 2.0)]);
        let cmp = compare(&new, &base, Tolerance::default());
        let wall = &cmp.matched[0].verdicts[0];
        assert_eq!(wall.verdict, Verdict::Regressed);
        assert!(!wall.gated);
        assert!(!cmp.regressed(), "ungated wall regression must not gate");
        // flipping the policy gates it
        let cmp = compare(
            &new,
            &base,
            Tolerance {
                gate_wall: true,
                ..Tolerance::default()
            },
        );
        assert!(cmp.regressed());
    }

    #[test]
    fn sim_regressions_gate() {
        let base = snap("pr4", vec![pt(key("m", 1, false), 0.010, 2.0)]);
        let new = snap("pr8", vec![pt(key("m", 1, false), 0.010, 2.5)]);
        let cmp = compare(&new, &base, Tolerance::default());
        assert!(cmp.regressed());
        let (imp, unch, reg, inc) = cmp.tallies();
        assert_eq!((imp, unch, reg, inc), (0, 1, 1, 0));
    }

    #[test]
    fn missing_and_extra_points_are_reported_not_gated() {
        let base = snap(
            "pr4",
            vec![
                pt(key("m", 1, false), 0.01, 2.0),
                pt(key("m", 4, false), 0.01, 1.0),
            ],
        );
        let new = snap(
            "pr8",
            vec![
                pt(key("m", 1, false), 0.01, 2.0),
                pt(key("m", 1, true), 0.01, 2.0),
            ],
        );
        let cmp = compare(&new, &base, Tolerance::default());
        assert_eq!(cmp.matched.len(), 1);
        assert_eq!(cmp.missing, vec![key("m", 4, false)]);
        assert_eq!(cmp.extra, vec![key("m", 1, true)]);
        assert!(!cmp.regressed());
    }

    #[test]
    fn schedule_gate_pairs_points_and_flags_regressions() {
        let tg = |k: PointKey| PointKey {
            schedule: Some("taskgraph".into()),
            ..k
        };
        // taskgraph <= level on both pairs: gate passes, ties allowed
        let snap_ok = snap(
            "pr10",
            vec![
                pt(key("m", 1, false), 0.01, 2.0),
                pt(tg(key("m", 1, false)), 0.01, 2.0),
                pt(key("m", 4, false), 0.01, 1.0),
                pt(tg(key("m", 4, false)), 0.01, 0.9),
            ],
        );
        let gate = schedule_gate(&snap_ok);
        assert!(gate.ok(), "{:?}", gate.violations);
        assert_eq!(gate.pairs.len(), 2);
        // a taskgraph point above its level twin fails the gate
        let snap_bad = snap(
            "pr10",
            vec![
                pt(key("m", 4, false), 0.01, 1.0),
                pt(tg(key("m", 4, false)), 0.01, 1.1),
            ],
        );
        let gate = schedule_gate(&snap_bad);
        assert!(!gate.ok());
        assert!(gate.violations[0].contains("exceeds level"));
        // an unpaired taskgraph point is a violation, not silence
        let snap_orphan = snap("pr10", vec![pt(tg(key("m", 4, false)), 0.01, 1.0)]);
        let gate = schedule_gate(&snap_orphan);
        assert!(!gate.ok());
        assert!(gate.violations[0].contains("no level twin"));
        // level-only snapshots produce zero pairs (the CLI rejects that)
        let gate = schedule_gate(&snap("pr10", vec![pt(key("m", 4, false), 0.01, 1.0)]));
        assert!(gate.ok() && gate.pairs.is_empty());
    }

    #[test]
    fn report_json_carries_the_gate_flag() {
        let base = snap("pr4", vec![pt(key("m", 1, false), 0.01, 2.0)]);
        let new = snap("pr8", vec![pt(key("m", 1, false), 0.01, 2.5)]);
        let cmp = compare(&new, &base, Tolerance::default());
        let doc = cmp.to_json();
        assert_eq!(doc.get("regressed").and_then(Json::as_bool), Some(true));
        let reparsed = Json::parse(&doc.pretty()).unwrap();
        assert_eq!(reparsed.get("baseline").and_then(Json::as_str), Some("pr4"));
    }
}
