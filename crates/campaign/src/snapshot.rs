//! Bench-snapshot documents: the `BENCH_*.json` perf trajectory.
//!
//! Every PR that moves performance leaves one snapshot in `results/`. Three
//! schema generations exist and the loader reads all of them into the same
//! logical shape, so the comparator can diff any pair:
//!
//! - `salu-bench-snapshot/1` (`BENCH_pr3.json`): one point per config,
//!   per-block Schur path only — loads as `batched = false`.
//! - `salu-bench-snapshot/2` (`BENCH_pr4.json`): each point carries both
//!   `wall_secs` and `wall_secs_batched` — loads as **two** logical points
//!   (`batched = false` / `true`) sharing the simulated metrics, which are
//!   path-independent by construction.
//! - `salu-bench-snapshot/3` (campaign runner output): one point per job
//!   with an explicit `batched` flag plus the swept options (`lookahead`,
//!   `faults`) in the key.
//!
//! Points are keyed by
//! `(matrix, n, p, pz, batched, lookahead, faults, backend)`; `scale` is
//! carried for display but not matched on (matrix + n already pin the
//! problem). Documents that predate a key column match its default
//! (`lookahead = 8`, `backend = "threaded"`).

use simgrid::Json;

/// Identity of one measured configuration.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PointKey {
    pub matrix: String,
    pub n: u64,
    pub p: u64,
    pub pz: u64,
    pub batched: bool,
    /// `None` in v1/v2 documents (which predate option sweeps) and for
    /// v3 points at the default window; matched as equal to the default.
    pub lookahead: Option<u64>,
    pub faults: Option<String>,
    /// Execution backend (`threaded` | `event`). `None` in documents that
    /// predate the backend column; matched as equal to `threaded`, so
    /// every historical snapshot keeps comparing against threaded runs.
    pub backend: Option<String>,
    /// Communication schedule (`level` | `taskgraph`). `None` in documents
    /// that predate the schedule column; matched as equal to `level`, so
    /// every historical snapshot keeps comparing against level-order runs.
    pub schedule: Option<String>,
}

impl PointKey {
    /// Canonical form for matching: v1/v2 points carry no lookahead field,
    /// and v3 points at the default window mean the same configuration.
    #[allow(clippy::type_complexity)]
    fn canon(
        &self,
    ) -> (
        String,
        u64,
        u64,
        u64,
        bool,
        u64,
        Option<String>,
        String,
        String,
    ) {
        (
            self.matrix.clone(),
            self.n,
            self.p,
            self.pz,
            self.batched,
            self.lookahead.unwrap_or(DEFAULT_LOOKAHEAD),
            self.faults.clone(),
            self.backend.clone().unwrap_or_else(|| "threaded".into()),
            self.schedule.clone().unwrap_or_else(|| "level".into()),
        )
    }

    pub fn matches(&self, other: &PointKey) -> bool {
        self.canon() == other.canon()
    }
}

/// The default lookahead window (`SolverConfig::default().lookahead`),
/// assumed for snapshot generations that predate option sweeps.
pub const DEFAULT_LOOKAHEAD: u64 = 8;

impl std::fmt::Display for PointKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} n={} P={} Pz={} {}",
            self.matrix,
            self.n,
            self.p,
            self.pz,
            if self.batched { "batched" } else { "per-block" }
        )?;
        if let Some(la) = self.lookahead {
            if la != DEFAULT_LOOKAHEAD {
                write!(f, " la={la}")?;
            }
        }
        if let Some(fa) = &self.faults {
            write!(f, " faults={fa}")?;
        }
        if let Some(b) = &self.backend {
            if b != "threaded" {
                write!(f, " backend={b}")?;
            }
        }
        if let Some(s) = &self.schedule {
            if s != "level" {
                write!(f, " schedule={s}")?;
            }
        }
        Ok(())
    }
}

/// The comparable metrics of one point, in emission order. `wall_secs` is
/// the only host-sensitive column; everything else is simulated or
/// ledger-derived and therefore deterministic.
pub const METRICS: &[&str] = &[
    "wall_secs",
    "makespan_secs",
    "max_peak_bytes",
    "total_peak_bytes",
    "w_fact_words",
    "w_red_words",
    "total_sent_words",
];

/// True for metrics measured on the host wall clock (noisy across machines
/// and runs); false for simulated/ledger metrics (deterministic).
pub fn is_wall_metric(name: &str) -> bool {
    name == "wall_secs"
}

/// One measured configuration with its metric values.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchPoint {
    pub key: PointKey,
    /// Display-only provenance column (`small` / `bench` / `gen` ...).
    pub scale: String,
    /// `(metric name, value)` in [`METRICS`] order; a document missing a
    /// metric simply omits it.
    pub metrics: Vec<(String, f64)>,
}

impl BenchPoint {
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }
}

/// A loaded snapshot document.
#[derive(Clone, Debug, PartialEq)]
pub struct Snapshot {
    /// Schema generation (1, 2, or 3).
    pub version: u32,
    /// The `pr` label, e.g. `pr4`.
    pub label: String,
    pub points: Vec<BenchPoint>,
}

impl Snapshot {
    /// Parse any supported `BENCH_*.json` generation.
    pub fn parse(text: &str) -> Result<Snapshot, String> {
        let doc = Json::parse(text)?;
        let schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("snapshot has no schema field")?;
        let version: u32 = schema
            .strip_prefix("salu-bench-snapshot/")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("unknown snapshot schema '{schema}'"))?;
        if !(1..=3).contains(&version) {
            return Err(format!("unsupported snapshot schema version {version}"));
        }
        let label = doc
            .get("pr")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string();
        let raw = doc
            .get("points")
            .and_then(Json::as_arr)
            .ok_or("snapshot has no points array")?;
        let mut points = Vec::new();
        for (i, pt) in raw.iter().enumerate() {
            load_point(pt, version, &mut points).map_err(|e| format!("point #{i}: {e}"))?;
        }
        Ok(Snapshot {
            version,
            label,
            points,
        })
    }

    /// Read and parse a snapshot file.
    pub fn load(path: &str) -> Result<Snapshot, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("failed to read {path}: {e}"))?;
        Snapshot::parse(&text).map_err(|e| format!("{path}: {e}"))
    }

    /// The point matching `key`, if any.
    pub fn find(&self, key: &PointKey) -> Option<&BenchPoint> {
        self.points.iter().find(|p| p.key.matches(key))
    }

    /// Serialize as a v3 document (the only generation the workspace
    /// writes going forward).
    pub fn to_json(&self) -> Json {
        let points = self
            .points
            .iter()
            .map(|p| {
                let mut fields = vec![
                    ("matrix".into(), Json::str(&p.key.matrix)),
                    ("scale".into(), Json::str(&p.scale)),
                    ("n".into(), Json::num(p.key.n as f64)),
                    ("p".into(), Json::num(p.key.p as f64)),
                    ("pz".into(), Json::num(p.key.pz as f64)),
                    ("batched".into(), Json::Bool(p.key.batched)),
                    (
                        "lookahead".into(),
                        Json::num(p.key.lookahead.unwrap_or(DEFAULT_LOOKAHEAD) as f64),
                    ),
                    (
                        "backend".into(),
                        Json::str(p.key.backend.as_deref().unwrap_or("threaded")),
                    ),
                    (
                        "schedule".into(),
                        Json::str(p.key.schedule.as_deref().unwrap_or("level")),
                    ),
                ];
                if let Some(fa) = &p.key.faults {
                    fields.push(("faults".into(), Json::str(fa)));
                }
                for (k, v) in &p.metrics {
                    fields.push((k.clone(), Json::num(*v)));
                }
                Json::Obj(fields)
            })
            .collect();
        Json::Obj(vec![
            ("schema".into(), Json::str("salu-bench-snapshot/3")),
            ("pr".into(), Json::str(&self.label)),
            ("points".into(), Json::Arr(points)),
        ])
    }
}

fn load_point(pt: &Json, version: u32, out: &mut Vec<BenchPoint>) -> Result<(), String> {
    let str_field = |k: &str| pt.get(k).and_then(Json::as_str).map(str::to_string);
    let num_field = |k: &str| -> Result<u64, String> {
        pt.get(k)
            .and_then(Json::as_f64)
            .map(|v| v as u64)
            .ok_or_else(|| format!("missing numeric field '{k}'"))
    };
    let matrix = str_field("matrix").ok_or("missing matrix name")?;
    let scale = str_field("scale").unwrap_or_default();
    let base = PointKey {
        matrix,
        n: num_field("n")?,
        p: num_field("p")?,
        pz: num_field("pz")?,
        batched: false,
        lookahead: None,
        faults: None,
        backend: None,
        schedule: None,
    };
    let sim_metrics = |skip_wall: bool| -> Vec<(String, f64)> {
        METRICS
            .iter()
            .filter(|m| !(skip_wall && is_wall_metric(m)))
            .filter_map(|m| pt.get(m).and_then(Json::as_f64).map(|v| (m.to_string(), v)))
            .collect()
    };
    match version {
        1 => out.push(BenchPoint {
            key: base,
            scale,
            metrics: sim_metrics(false),
        }),
        2 => {
            // One v2 record is two logical points: the per-block wall and
            // the batched wall, sharing the (path-independent) simulated
            // metrics.
            out.push(BenchPoint {
                key: base.clone(),
                scale: scale.clone(),
                metrics: sim_metrics(false),
            });
            if let Some(wb) = pt.get("wall_secs_batched").and_then(Json::as_f64) {
                let mut metrics = vec![("wall_secs".to_string(), wb)];
                metrics.extend(sim_metrics(true));
                out.push(BenchPoint {
                    key: PointKey {
                        batched: true,
                        ..base
                    },
                    scale,
                    metrics,
                });
            }
        }
        3 => {
            let key = PointKey {
                batched: pt.get("batched").and_then(Json::as_bool).unwrap_or(false),
                lookahead: pt.get("lookahead").and_then(Json::as_f64).map(|v| v as u64),
                faults: str_field("faults"),
                backend: str_field("backend"),
                schedule: str_field("schedule"),
                ..base
            };
            out.push(BenchPoint {
                key,
                scale,
                metrics: sim_metrics(false),
            });
        }
        _ => unreachable!("version validated by caller"),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v1_doc() -> String {
        r#"{
          "schema": "salu-bench-snapshot/1", "pr": "pr3",
          "points": [{"matrix": "k2d5pt", "n": 4096, "p": 16, "pz": 1,
                      "wall_secs": 0.03, "makespan_secs": 0.007,
                      "max_peak_bytes": 566032, "total_peak_bytes": 5318408,
                      "w_fact_words": 204950, "w_red_words": 0,
                      "total_sent_words": 1868472}]
        }"#
        .to_string()
    }

    fn v2_doc() -> String {
        r#"{
          "schema": "salu-bench-snapshot/2", "pr": "pr4",
          "points": [{"matrix": "k2d5pt", "scale": "small", "n": 4096,
                      "p": 16, "pz": 1,
                      "wall_secs": 0.034, "wall_secs_batched": 0.032,
                      "batched_speedup": 1.05, "makespan_secs": 0.0068,
                      "max_peak_bytes": 566032, "total_peak_bytes": 5260912,
                      "w_fact_words": 204950, "w_red_words": 0,
                      "total_sent_words": 1868472}]
        }"#
        .to_string()
    }

    #[test]
    fn v1_loads_as_perblock_points() {
        let s = Snapshot::parse(&v1_doc()).unwrap();
        assert_eq!((s.version, s.label.as_str()), (1, "pr3"));
        assert_eq!(s.points.len(), 1);
        let p = &s.points[0];
        assert!(!p.key.batched);
        assert_eq!(p.key.lookahead, None);
        assert_eq!(p.metric("wall_secs"), Some(0.03));
        assert_eq!(p.metric("w_fact_words"), Some(204950.0));
    }

    #[test]
    fn v2_splits_into_two_logical_points() {
        let s = Snapshot::parse(&v2_doc()).unwrap();
        assert_eq!(s.points.len(), 2);
        let (pb, ba) = (&s.points[0], &s.points[1]);
        assert!(!pb.key.batched);
        assert!(ba.key.batched);
        assert_eq!(pb.metric("wall_secs"), Some(0.034));
        assert_eq!(ba.metric("wall_secs"), Some(0.032));
        // simulated metrics are shared between the two logical points
        assert_eq!(pb.metric("makespan_secs"), ba.metric("makespan_secs"));
        // batched_speedup is derived, not a compared metric
        assert_eq!(pb.metric("batched_speedup"), None);
    }

    #[test]
    fn v3_roundtrips_through_to_json() {
        let snap = Snapshot {
            version: 3,
            label: "pr8".into(),
            points: vec![BenchPoint {
                key: PointKey {
                    matrix: "nlpkkt".into(),
                    n: 1024,
                    p: 16,
                    pz: 4,
                    batched: true,
                    lookahead: Some(4),
                    faults: Some("drop:p=0.05".into()),
                    backend: Some("event".into()),
                    schedule: Some("taskgraph".into()),
                },
                scale: "small".into(),
                metrics: vec![
                    ("wall_secs".into(), 0.007),
                    ("makespan_secs".into(), 5.5e-4),
                ],
            }],
        };
        let reparsed = Snapshot::parse(&snap.to_json().pretty()).unwrap();
        assert_eq!(reparsed.version, 3);
        assert_eq!(reparsed.points, snap.points);
    }

    #[test]
    fn v1_and_v3_default_lookahead_match() {
        let a = PointKey {
            matrix: "m".into(),
            n: 10,
            p: 4,
            pz: 1,
            batched: false,
            lookahead: None,
            faults: None,
            backend: None,
            schedule: None,
        };
        let b = PointKey {
            lookahead: Some(DEFAULT_LOOKAHEAD),
            ..a.clone()
        };
        let c = PointKey {
            lookahead: Some(2),
            ..a.clone()
        };
        assert!(a.matches(&b));
        assert!(!a.matches(&c));
        assert!(!a.matches(&PointKey {
            batched: true,
            ..a.clone()
        }));
    }

    #[test]
    fn backend_column_defaults_to_threaded_for_old_documents() {
        let old = PointKey {
            matrix: "m".into(),
            n: 10,
            p: 4,
            pz: 1,
            batched: false,
            lookahead: None,
            faults: None,
            backend: None,
            schedule: None,
        };
        // An absent column and an explicit "threaded" are the same point;
        // an event point is new coverage, never matched against threaded.
        assert!(old.matches(&PointKey {
            backend: Some("threaded".into()),
            ..old.clone()
        }));
        assert!(!old.matches(&PointKey {
            backend: Some("event".into()),
            ..old.clone()
        }));
        // Display keeps old keys stable and flags only non-default backends.
        assert!(!old.to_string().contains("backend"));
        let evt = PointKey {
            backend: Some("event".into()),
            ..old
        };
        assert!(evt.to_string().ends_with("backend=event"));
    }

    #[test]
    fn schedule_column_defaults_to_level_for_old_documents() {
        let old = PointKey {
            matrix: "m".into(),
            n: 10,
            p: 4,
            pz: 1,
            batched: false,
            lookahead: None,
            faults: None,
            backend: None,
            schedule: None,
        };
        // An absent column and an explicit "level" are the same point; a
        // taskgraph point is new coverage, never matched against level.
        assert!(old.matches(&PointKey {
            schedule: Some("level".into()),
            ..old.clone()
        }));
        assert!(!old.matches(&PointKey {
            schedule: Some("taskgraph".into()),
            ..old.clone()
        }));
        // Display keeps old keys stable and flags only non-default
        // schedules.
        assert!(!old.to_string().contains("schedule"));
        let tg = PointKey {
            schedule: Some("taskgraph".into()),
            ..old
        };
        assert!(tg.to_string().ends_with("schedule=taskgraph"));
    }

    #[test]
    fn unknown_schema_is_an_error() {
        assert!(Snapshot::parse(r#"{"schema": "salu-bench-snapshot/9", "points": []}"#).is_err());
        assert!(Snapshot::parse(r#"{"points": []}"#).is_err());
        assert!(Snapshot::parse(r#"{"schema": "other/1", "points": []}"#).is_err());
    }
}
