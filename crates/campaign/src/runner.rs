//! Campaign execution: expand a spec into jobs, run them (optionally in
//! parallel), and collect one [`Snapshot`] point per job plus per-job
//! artifact directories.
//!
//! Each job factors its matrix `reps` times and keeps the **minimum** host
//! wall-clock — the standard estimator for run-to-run noise, lifted from
//! the old `bench_snapshot` binary. Simulated metrics (makespan, ledger
//! bytes, wire words) are bitwise deterministic, so they are taken from
//! the last repetition after asserting the factor digest never moved.
//!
//! Every job writes `metrics.json`, `memprof.json`, `commvol.json`, and
//! `hostprof.json` into `<out>/jobs/<slug>/`; with `trace = true` in the
//! spec, one extra traced repetition also writes `trace.json` (kept out of
//! the timed repetitions so tracing overhead never pollutes the wall
//! column).

use crate::snapshot::{BenchPoint, PointKey, Snapshot, DEFAULT_LOOKAHEAD};
use crate::spec::{CampaignSpec, Job, MatrixSource};
use lu3d::solver::{try_factor_only, Output3d, SolverConfig};
use simgrid::{Backend, FaultPlan, RetryPolicy, Schedule, TimeModel};
use slu2d::driver::Prepared;
use sparsemat::testmats::{test_matrix, Geometry, Scale};
use sparsemat::{matgen, Csr};
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Everything a finished campaign run produced.
pub struct CampaignOutcome {
    pub snapshot: Snapshot,
    /// Sweep combinations that could not form a grid (reported by the
    /// CLI so the sweep never shrinks silently).
    pub skipped: Vec<String>,
    /// One human-readable line per job, in job order.
    pub lines: Vec<String>,
    /// Jobs that errored or panicked, as `slug: reason` lines. A failed
    /// job never tears down the sweep — the remaining jobs still run and
    /// snapshot; the CLI turns a non-empty list into exit 1.
    pub failed: Vec<String>,
}

/// Build the matrix for one source. Generator seeds are pinned so the
/// same spec always factors the same matrix.
fn build_matrix(source: &MatrixSource) -> Result<(Csr, Geometry), String> {
    match source {
        MatrixSource::Named { name, scale } => {
            let scale = match scale.as_str() {
                "tiny" => Scale::Tiny,
                "small" => Scale::Small,
                "bench" => Scale::Bench,
                other => return Err(format!("unknown scale '{other}'")),
            };
            let tm = test_matrix(name, scale);
            Ok((tm.matrix, tm.geometry))
        }
        MatrixSource::Gen { spec } => {
            let (kind, size) = spec
                .split_once(':')
                .ok_or_else(|| format!("bad gen spec '{spec}', expected KIND:SIZE"))?;
            let k: usize = size
                .parse()
                .map_err(|_| format!("bad size in gen spec '{spec}'"))?;
            let unsym = 0.1;
            match kind {
                "grid2d" => Ok((
                    matgen::grid2d_5pt(k, k, unsym, 1),
                    Geometry::Grid2d { nx: k, ny: k },
                )),
                "grid2d9" => Ok((
                    matgen::grid2d_9pt(k, k, unsym, 1),
                    Geometry::Grid2d { nx: k, ny: k },
                )),
                "grid3d" => Ok((
                    matgen::grid3d_7pt(k, k, k, unsym, 1),
                    Geometry::Grid3d {
                        nx: k,
                        ny: k,
                        nz: k,
                    },
                )),
                "grid3d27" => Ok((
                    matgen::grid3d_27pt(k, k, k, unsym, 1),
                    Geometry::Grid3d {
                        nx: k,
                        ny: k,
                        nz: k,
                    },
                )),
                "kkt" => Ok((matgen::kkt_3d(k, k, k, 1e-2, 1), Geometry::General)),
                other => Err(format!("unknown generator kind '{other}'")),
            }
        }
    }
}

/// Solver config for one job. Mirrors `bench::config`'s near-square layer
/// split so campaign points are comparable with the historical snapshots.
fn job_config(job: &Job) -> Result<SolverConfig, String> {
    let pxy = job.p / job.pz;
    if pxy == 0 {
        return Err(format!("p={} pz={}: empty layer", job.p, job.pz));
    }
    let (pr, pc) = bench::layer_shape(pxy);
    let fault_plan = match &job.faults {
        Some(spec) => {
            Some(FaultPlan::parse(spec, 1).map_err(|e| format!("bad faults spec '{spec}': {e}"))?)
        }
        None => None,
    };
    Ok(SolverConfig {
        pr,
        pc,
        pz: job.pz,
        model: TimeModel::edison_like(),
        lookahead: job.lookahead,
        batched_schur: job.batched,
        backend: job.backend,
        schedule: job.schedule,
        // Host-time phase attribution only makes sense when every rank
        // really runs in parallel; event-mode runs skip hostprof.json.
        host_profiling: job.backend == Backend::Threaded,
        retry: fault_plan.is_some().then(RetryPolicy::default),
        fault_plan,
        ..Default::default()
    })
}

/// Result of one job's timed repetitions.
struct JobRun {
    wall_secs: f64,
    out: Output3d,
    n: usize,
}

fn run_job(job: &Job, prep: &Prepared) -> Result<JobRun, String> {
    let cfg = job_config(job)?;
    let mut wall = f64::INFINITY;
    let mut last: Option<Output3d> = None;
    for _ in 0..job.reps.max(1) {
        // det-lint: allow(wall-clock): campaign jobs measure host wall time
        let t0 = std::time::Instant::now();
        let out = try_factor_only(prep, &cfg).map_err(|e| format!("{} failed: {e}", job.slug()))?;
        wall = wall.min(t0.elapsed().as_secs_f64());
        if let Some(prev) = &last {
            if prev.factor_digest != out.factor_digest {
                return Err(format!(
                    "{}: factor digest moved between repetitions ({:#018x} != {:#018x})",
                    job.slug(),
                    prev.factor_digest,
                    out.factor_digest
                ));
            }
        }
        last = Some(out);
    }
    Ok(JobRun {
        wall_secs: wall,
        out: last.expect("at least one repetition"),
        n: prep.a.nrows,
    })
}

/// Write one job's artifact files; returns a line describing the dir.
fn write_artifacts(
    dir: &Path,
    job: &Job,
    prep: &Prepared,
    run: &JobRun,
    trace: bool,
) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
    let write = |name: &str, doc: &simgrid::Json| -> Result<(), String> {
        let path = dir.join(name);
        std::fs::write(&path, doc.pretty()).map_err(|e| format!("write {}: {e}", path.display()))
    };
    write("metrics.json", &run.out.metrics().to_json())?;
    write("memprof.json", &run.out.mem_profile())?;
    write("commvol.json", &run.out.commvol_profile())?;
    if let Some(doc) = run.out.hostprof_profile() {
        write("hostprof.json", &doc)?;
    }
    if trace {
        // One extra traced repetition, outside the timed loop: tracing
        // allocates span stores and would pollute the wall column.
        let mut cfg = job_config(job)?;
        cfg.tracing = true;
        let out = try_factor_only(prep, &cfg)
            .map_err(|e| format!("{} trace run failed: {e}", job.slug()))?;
        if out.factor_digest != run.out.factor_digest {
            return Err(format!(
                "{}: traced run changed the factor digest",
                job.slug()
            ));
        }
        write(
            "trace.json",
            &out.chrome_trace().expect("tracing was enabled"),
        )?;
    }
    Ok(())
}

/// Convert one finished job into a snapshot point.
fn to_point(job: &Job, run: &JobRun) -> BenchPoint {
    let s = run.out.summary();
    BenchPoint {
        key: PointKey {
            matrix: job.matrix.label(),
            n: run.n as u64,
            p: job.p as u64,
            pz: job.pz as u64,
            batched: job.batched,
            lookahead: (job.lookahead as u64 != DEFAULT_LOOKAHEAD).then_some(job.lookahead as u64),
            faults: job.faults.clone(),
            backend: (job.backend != Backend::Threaded).then(|| job.backend.to_string()),
            schedule: (job.schedule != Schedule::Level).then(|| job.schedule.to_string()),
        },
        scale: job.matrix.scale(),
        metrics: vec![
            ("wall_secs".into(), run.wall_secs),
            ("makespan_secs".into(), run.out.makespan()),
            ("max_peak_bytes".into(), run.out.max_peak_bytes() as f64),
            ("total_peak_bytes".into(), run.out.total_peak_bytes() as f64),
            ("w_fact_words".into(), run.out.w_fact() as f64),
            ("w_red_words".into(), run.out.w_red() as f64),
            ("total_sent_words".into(), s.total_sent_words as f64),
        ],
    }
}

/// Convert a panic in one job into that job's failure. A panic that
/// unwound out of a scoped worker thread would re-raise at scope exit and
/// tear down every sibling's in-flight work; caught here it is just a
/// failed job like any `Err`, and the sweep keeps going.
fn panic_firewall<T>(slug: &str, work: impl FnOnce() -> Result<T, String>) -> Result<T, String> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(work)).unwrap_or_else(|payload| {
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "non-string panic payload".into());
        Err(format!("{slug}: job panicked: {msg}"))
    })
}

/// Run every job of a campaign. Jobs execute on `spec.workers` threads;
/// results keep job order regardless of completion order.
pub fn run_campaign(spec: &CampaignSpec, out_dir: &Path) -> Result<CampaignOutcome, String> {
    let (jobs, skipped) = spec.expand();
    if jobs.is_empty() {
        return Err("campaign expanded to zero jobs".into());
    }
    // Preprocess each distinct (matrix, leaf, maxsup) once, serially: the
    // symbolic phase is shared work, not part of the measured wall.
    let mut preps: HashMap<(MatrixSource, usize, usize), Arc<Prepared>> = HashMap::new();
    for job in &jobs {
        if let std::collections::hash_map::Entry::Vacant(e) =
            preps.entry((job.matrix.clone(), job.leaf, job.maxsup))
        {
            let (matrix, geometry) = build_matrix(&job.matrix)?;
            e.insert(Arc::new(Prepared::new(
                matrix, geometry, job.leaf, job.maxsup,
            )));
        }
    }
    let jobs_dir = out_dir.join("jobs");
    type JobResult = Result<(BenchPoint, String), String>;
    let results: Mutex<Vec<Option<JobResult>>> = Mutex::new(vec![None; jobs.len()]);
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..spec.workers.min(jobs.len()) {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let job = &jobs[i];
                let prep = &preps[&(job.matrix.clone(), job.leaf, job.maxsup)];
                let dir = jobs_dir.join(job.slug());
                let res = panic_firewall(&job.slug(), || {
                    run_job(job, prep).and_then(|run| {
                        write_artifacts(&dir, job, prep, &run, spec.trace)?;
                        let point = to_point(job, &run);
                        let line = format!(
                            "{:<40} wall {:>9.4}s  makespan {:>10.6}s  peak {:>8.2} MB  {:>10} words",
                            job.slug(),
                            run.wall_secs,
                            run.out.makespan(),
                            run.out.max_peak_bytes() as f64 / 1e6,
                            point.metric("total_sent_words").unwrap_or(0.0) as u64,
                        );
                        Ok((point, line))
                    })
                });
                results.lock().expect("results lock")[i] = Some(res);
            });
        }
    });
    let mut points = Vec::new();
    let mut lines = Vec::new();
    let mut failed = Vec::new();
    for slot in results.into_inner().expect("results lock") {
        match slot.expect("every job ran") {
            Ok((point, line)) => {
                points.push(point);
                lines.push(line);
            }
            Err(e) => failed.push(e),
        }
    }
    Ok(CampaignOutcome {
        snapshot: Snapshot {
            version: 3,
            label: spec.pr_label.clone(),
            points,
        },
        skipped,
        lines,
        failed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CampaignSpec;

    #[test]
    fn tiny_campaign_runs_and_snapshots() {
        let spec = CampaignSpec::parse(
            "[campaign]\nname = \"t\"\npr = \"test\"\nreps = 2\nworkers = 2\n\
             [[point]]\nmatrix = \"k2d5pt\"\nscale = \"tiny\"\np = [4]\npz = [1, 2]\nbatched = [false, true]\n",
        )
        .unwrap();
        let dir = std::env::temp_dir().join(format!("campaign-test-{}", std::process::id()));
        let out = run_campaign(&spec, &dir).unwrap();
        assert_eq!(out.snapshot.points.len(), 4);
        assert!(out.skipped.is_empty());
        // batched and per-block share the simulated metrics
        let key = |batched| PointKey {
            matrix: "k2d5pt".into(),
            n: out.snapshot.points[0].key.n,
            p: 4,
            pz: 1,
            batched,
            lookahead: None,
            faults: None,
            backend: None,
            schedule: None,
        };
        let pb = out.snapshot.find(&key(false)).unwrap();
        let ba = out.snapshot.find(&key(true)).unwrap();
        assert_eq!(pb.metric("makespan_secs"), ba.metric("makespan_secs"));
        assert!(pb.metric("wall_secs").unwrap() > 0.0);
        // artifacts landed per job
        for p in &out.snapshot.points {
            let slug = format!(
                "k2d5pt-p{}-pz{}-{}",
                p.key.p,
                p.key.pz,
                if p.key.batched { "batched" } else { "perblock" }
            );
            for f in [
                "metrics.json",
                "memprof.json",
                "commvol.json",
                "hostprof.json",
            ] {
                assert!(dir.join("jobs").join(&slug).join(f).is_file(), "{slug}/{f}");
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn event_jobs_share_sim_metrics_and_skip_hostprof() {
        let spec = CampaignSpec::parse(
            "[campaign]\nname = \"e\"\npr = \"test\"\n\
             [[point]]\nmatrix = \"k2d5pt\"\nscale = \"tiny\"\np = [4]\npz = [2]\nbackend = [\"threaded\", \"event\"]\n",
        )
        .unwrap();
        let dir = std::env::temp_dir().join(format!("campaign-evt-{}", std::process::id()));
        let out = run_campaign(&spec, &dir).unwrap();
        assert!(out.failed.is_empty(), "{:?}", out.failed);
        assert_eq!(out.snapshot.points.len(), 2);
        let (thr, evt) = (&out.snapshot.points[0], &out.snapshot.points[1]);
        assert_eq!(thr.key.backend, None);
        assert_eq!(evt.key.backend.as_deref(), Some("event"));
        // every simulated/ledger metric is backend-independent, bitwise
        for m in [
            "makespan_secs",
            "max_peak_bytes",
            "w_fact_words",
            "total_sent_words",
        ] {
            assert_eq!(thr.metric(m), evt.metric(m), "{m}");
        }
        let evt_dir = dir.join("jobs").join("k2d5pt-p4-pz2-perblock-event");
        assert!(evt_dir.join("commvol.json").is_file());
        assert!(
            !evt_dir.join("hostprof.json").exists(),
            "event jobs must not claim host-time attribution"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn schedule_jobs_share_ledgers_and_key_the_schedule() {
        let spec = CampaignSpec::parse(
            "[campaign]\nname = \"s\"\npr = \"test\"\n\
             [[point]]\nmatrix = \"k2d5pt\"\nscale = \"tiny\"\np = [4]\npz = [2]\n\
             backend = [\"event\"]\nschedule = [\"level\", \"taskgraph\"]\n",
        )
        .unwrap();
        let dir = std::env::temp_dir().join(format!("campaign-sched-{}", std::process::id()));
        let out = run_campaign(&spec, &dir).unwrap();
        assert!(out.failed.is_empty(), "{:?}", out.failed);
        assert_eq!(out.snapshot.points.len(), 2);
        let (lv, tg) = (&out.snapshot.points[0], &out.snapshot.points[1]);
        assert_eq!(lv.key.schedule, None);
        assert_eq!(tg.key.schedule.as_deref(), Some("taskgraph"));
        // hoisting only moves clocks: every ledger metric stays bitwise
        for m in [
            "max_peak_bytes",
            "total_peak_bytes",
            "w_fact_words",
            "w_red_words",
            "total_sent_words",
        ] {
            assert_eq!(lv.metric(m), tg.metric(m), "{m}");
        }
        // both artifact dirs landed, the taskgraph one under its suffix
        for slug in [
            "k2d5pt-p4-pz2-perblock-event",
            "k2d5pt-p4-pz2-perblock-event-taskgraph",
        ] {
            assert!(
                dir.join("jobs").join(slug).join("commvol.json").is_file(),
                "{slug}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_jobs_are_recorded_without_sinking_the_sweep() {
        // Job 1's faults spec fails to parse inside the worker pool; job 2
        // is healthy and must still run, point, and snapshot.
        let spec = CampaignSpec::parse(
            "[campaign]\nname = \"f\"\npr = \"test\"\n\
             [[point]]\nmatrix = \"k2d5pt\"\nscale = \"tiny\"\np = [4]\nfaults = [\"not-a-fault-spec\", \"\"]\n",
        )
        .unwrap();
        let dir = std::env::temp_dir().join(format!("campaign-fail-{}", std::process::id()));
        let out = run_campaign(&spec, &dir).unwrap();
        assert_eq!(out.failed.len(), 1, "{:?}", out.failed);
        assert!(
            out.failed[0].contains("not-a-fault-spec"),
            "{}",
            out.failed[0]
        );
        assert_eq!(out.snapshot.points.len(), 1);
        assert!(out.snapshot.points[0].key.faults.is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn panic_firewall_turns_unwinds_into_job_failures() {
        let ok = panic_firewall("s", || Ok::<_, String>(7));
        assert_eq!(ok, Ok(7));
        let err = panic_firewall("slug-a", || -> Result<(), String> { panic!("boom {}", 3) });
        assert_eq!(err, Err("slug-a: job panicked: boom 3".into()));
        let err = panic_firewall("slug-b", || -> Result<(), String> {
            panic!("static payload")
        });
        assert_eq!(err, Err("slug-b: job panicked: static payload".into()));
    }

    #[test]
    fn gen_sources_and_bad_scales() {
        assert!(build_matrix(&MatrixSource::Gen {
            spec: "grid2d:4".into()
        })
        .is_ok());
        assert!(build_matrix(&MatrixSource::Gen {
            spec: "nope:4".into()
        })
        .is_err());
        assert!(build_matrix(&MatrixSource::Gen {
            spec: "grid2d".into()
        })
        .is_err());
        assert!(build_matrix(&MatrixSource::Named {
            name: "k2d5pt".into(),
            scale: "huge".into()
        })
        .is_err());
    }
}
