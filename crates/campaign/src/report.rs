//! Markdown rendering for campaign runs and regression comparisons.

use crate::compare::{Comparison, Verdict};
use crate::snapshot::Snapshot;

/// Render the run report: one table row per point, metrics as columns,
/// plus sections for failed jobs and skipped sweep combinations.
pub fn run_markdown(snapshot: &Snapshot, skipped: &[String], failed: &[String]) -> String {
    let mut md = String::new();
    md.push_str(&format!(
        "# Campaign report: {}\n\n{} points{}.\n\n",
        snapshot.label,
        snapshot.points.len(),
        if failed.is_empty() {
            String::new()
        } else {
            format!(", **{} job(s) FAILED**", failed.len())
        }
    ));
    md.push_str(
        "| point | scale | wall (s) | makespan (s) | max peak (MB) | W_fact | W_red | sent words |\n\
         |---|---|---:|---:|---:|---:|---:|---:|\n",
    );
    for p in &snapshot.points {
        let m = |k: &str| p.metric(k).unwrap_or(f64::NAN);
        md.push_str(&format!(
            "| {} | {} | {:.4} | {:.6} | {:.2} | {} | {} | {} |\n",
            p.key,
            p.scale,
            m("wall_secs"),
            m("makespan_secs"),
            m("max_peak_bytes") / 1e6,
            m("w_fact_words") as u64,
            m("w_red_words") as u64,
            m("total_sent_words") as u64,
        ));
    }
    if !failed.is_empty() {
        md.push_str("\n## Failed jobs\n\n");
        for f in failed {
            md.push_str(&format!("- {f}\n"));
        }
    }
    if !skipped.is_empty() {
        md.push_str("\n## Skipped sweep combinations\n\n");
        for s in skipped {
            md.push_str(&format!("- {s}\n"));
        }
    }
    md
}

/// Render the regression report: per-point verdict tables plus the
/// missing/extra coverage diff.
pub fn compare_markdown(cmp: &Comparison) -> String {
    let mut md = String::new();
    let (imp, unch, reg, inc) = cmp.tallies();
    md.push_str(&format!(
        "# Regression report: {} vs {}\n\n\
         Gate: **{}** — {} improved, {} unchanged, {} regressed, {} incomparable \
         (tolerance: wall ±{:.0}%, sim ±{:.0}%{}).\n\n",
        cmp.new_label,
        cmp.baseline_label,
        if cmp.regressed() {
            "REGRESSED"
        } else {
            "clean"
        },
        imp,
        unch,
        reg,
        inc,
        cmp.tol.wall * 100.0,
        cmp.tol.sim * 100.0,
        if cmp.tol.gate_wall {
            ", wall gated"
        } else {
            ", wall ungated"
        },
    ));
    for p in &cmp.matched {
        md.push_str(&format!("## {}\n\n", p.key));
        md.push_str("| metric | baseline | new | ratio | verdict |\n|---|---:|---:|---:|---|\n");
        for v in &p.verdicts {
            let mark = match v.verdict {
                Verdict::Regressed if v.gated => " **(gated)**",
                _ => "",
            };
            md.push_str(&format!(
                "| {} | {:.6} | {:.6} | {} | {}{} |\n",
                v.metric,
                v.old,
                v.new,
                if v.ratio.is_finite() {
                    format!("{:.3}", v.ratio)
                } else {
                    "—".into()
                },
                v.verdict.as_str(),
                mark,
            ));
        }
        md.push('\n');
    }
    if !cmp.missing.is_empty() {
        md.push_str("## Baseline points not re-measured\n\n");
        for k in &cmp.missing {
            md.push_str(&format!("- {k}\n"));
        }
        md.push('\n');
    }
    if !cmp.extra.is_empty() {
        md.push_str("## New points (no baseline)\n\n");
        for k in &cmp.extra {
            md.push_str(&format!("- {k}\n"));
        }
        md.push('\n');
    }
    md
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compare::{compare, Tolerance};
    use crate::snapshot::{BenchPoint, PointKey};

    fn point(batched: bool, makespan: f64) -> BenchPoint {
        BenchPoint {
            key: PointKey {
                matrix: "m".into(),
                n: 64,
                p: 4,
                pz: 1,
                batched,
                lookahead: None,
                faults: None,
                backend: None,
                schedule: None,
            },
            scale: "tiny".into(),
            metrics: vec![
                ("wall_secs".into(), 0.01),
                ("makespan_secs".into(), makespan),
            ],
        }
    }

    #[test]
    fn reports_render_verdicts_and_coverage() {
        let base = Snapshot {
            version: 2,
            label: "pr4".into(),
            points: vec![point(false, 2.0), point(true, 2.0)],
        };
        let new = Snapshot {
            version: 3,
            label: "pr8".into(),
            points: vec![point(false, 2.5)],
        };
        let cmp = compare(&new, &base, Tolerance::default());
        let md = compare_markdown(&cmp);
        assert!(md.contains("REGRESSED"));
        assert!(md.contains("**(gated)**"));
        assert!(md.contains("Baseline points not re-measured"));
        let run = run_markdown(&new, &["m p=4 pz=3".into()], &[]);
        assert!(run.contains("| m n=64 P=4 Pz=1 per-block |"));
        assert!(run.contains("Skipped sweep"));
        assert!(!run.contains("Failed jobs"));
        let run = run_markdown(&new, &[], &["slug: job panicked: boom".into()]);
        assert!(run.contains("**1 job(s) FAILED**"));
        assert!(run.contains("- slug: job panicked: boom"));
    }
}
