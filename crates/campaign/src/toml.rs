//! Minimal TOML subset parser for campaign specs.
//!
//! The workspace builds offline (no serde/toml crates), so campaign specs
//! are parsed by hand, mirroring `obs::json`. The supported subset is
//! exactly what `campaigns/*.toml` needs:
//!
//! - `[section]` tables and `[[section]]` arrays of tables;
//! - `key = value` pairs where a value is a quoted string, a boolean,
//!   a number, or a flat array `[v1, v2, ...]` of those;
//! - `#` comments (full-line or trailing) and blank lines.
//!
//! No inline tables, no nested keys (`a.b = 1`), no multi-line strings,
//! no datetimes. Unknown syntax is a hard error naming the line, never a
//! silent skip — a typo in a sweep spec must not quietly shrink the
//! campaign.

/// A parsed TOML value (subset).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Str(String),
    Num(f64),
    Bool(bool),
    Arr(Vec<Value>),
}

impl Value {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Value::Num(v) if *v >= 0.0 && v.fract() == 0.0 => Some(*v as usize),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a list: arrays yield their elements, scalars yield a
    /// one-element list. Sweep fields accept both `pz = 4` and
    /// `pz = [1, 4]`.
    pub fn as_list(&self) -> Vec<Value> {
        match self {
            Value::Arr(vs) => vs.clone(),
            other => vec![other.clone()],
        }
    }
}

/// One `[section]` or `[[section]]` table: ordered key/value pairs.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Table {
    pub entries: Vec<(String, Value)>,
}

impl Table {
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// A parsed document: sections in file order. Repeated `[[name]]` headers
/// produce one entry per occurrence, all under `name`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Doc {
    pub sections: Vec<(String, Table)>,
}

impl Doc {
    /// First section with this name (for singleton `[section]` tables).
    pub fn section(&self, name: &str) -> Option<&Table> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, t)| t)
    }

    /// Every section with this name, in order (for `[[section]]` arrays).
    pub fn sections_named(&self, name: &str) -> Vec<&Table> {
        self.sections
            .iter()
            .filter(|(n, _)| n == name)
            .map(|(_, t)| t)
            .collect()
    }
}

/// Parse a spec document. Errors carry the 1-based line number.
pub fn parse(text: &str) -> Result<Doc, String> {
    let mut doc = Doc::default();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = header(line, "[[", "]]") {
            doc.sections.push((name, Table::default()));
        } else if let Some(name) = header(line, "[", "]") {
            doc.sections.push((name, Table::default()));
        } else if let Some((key, val)) = line.split_once('=') {
            let key = key.trim();
            if key.is_empty()
                || !key
                    .chars()
                    .all(|c| c.is_alphanumeric() || c == '_' || c == '-')
            {
                return Err(format!("line {lineno}: bad key '{key}'"));
            }
            let value = parse_value(val.trim()).map_err(|e| format!("line {lineno}: {e}"))?;
            let table = match doc.sections.last_mut() {
                Some((_, t)) => t,
                None => return Err(format!("line {lineno}: key before any [section]")),
            };
            if table.get(key).is_some() {
                return Err(format!("line {lineno}: duplicate key '{key}'"));
            }
            table.entries.push((key.to_string(), value));
        } else {
            return Err(format!("line {lineno}: unrecognized syntax '{line}'"));
        }
    }
    Ok(doc)
}

/// Drop a trailing `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// `[name]` / `[[name]]` section header, or None.
fn header(line: &str, open: &str, close: &str) -> Option<String> {
    let body = line.strip_prefix(open)?.strip_suffix(close)?;
    // `[[x]]` also matches the `[`/`]` probe with body `[x]`; reject so the
    // caller's `[[`-first ordering is not load-bearing.
    if body.starts_with('[') || body.ends_with(']') {
        return None;
    }
    let name = body.trim();
    (!name.is_empty()
        && name
            .chars()
            .all(|c| c.is_alphanumeric() || c == '_' || c == '-'))
    .then(|| name.to_string())
}

fn parse_value(s: &str) -> Result<Value, String> {
    let s = s.trim();
    if s.is_empty() {
        return Err("empty value".into());
    }
    if let Some(body) = s.strip_prefix('[') {
        let body = body
            .strip_suffix(']')
            .ok_or_else(|| format!("unterminated array '{s}'"))?;
        let mut items = Vec::new();
        for part in split_top(body)? {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let v = parse_value(part)?;
            if matches!(v, Value::Arr(_)) {
                return Err("nested arrays are not supported".into());
            }
            items.push(v);
        }
        return Ok(Value::Arr(items));
    }
    if let Some(body) = s.strip_prefix('"') {
        let body = body
            .strip_suffix('"')
            .ok_or_else(|| format!("unterminated string {s}"))?;
        if body.contains('"') {
            return Err(format!("embedded quote in string {s}"));
        }
        return Ok(Value::Str(body.to_string()));
    }
    match s {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    s.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| format!("bad value '{s}' (expected string, bool, number, or array)"))
}

/// Split an array body on commas outside quotes.
fn split_top(body: &str) -> Result<Vec<String>, String> {
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    for c in body.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                cur.push(c);
            }
            ',' if !in_str => {
                parts.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    if in_str {
        return Err(format!("unterminated string in array '{body}'"));
    }
    parts.push(cur);
    Ok(parts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_and_scalars() {
        let doc = parse(
            "# campaign spec\n\
             [campaign]\n\
             name = \"smoke\"  # trailing comment\n\
             reps = 3\n\
             gate = true\n",
        )
        .unwrap();
        let c = doc.section("campaign").unwrap();
        assert_eq!(c.get("name").unwrap().as_str(), Some("smoke"));
        assert_eq!(c.get("reps").unwrap().as_usize(), Some(3));
        assert_eq!(c.get("gate").unwrap().as_bool(), Some(true));
        assert!(doc.section("missing").is_none());
    }

    #[test]
    fn array_of_tables_keeps_every_occurrence() {
        let doc = parse(
            "[[point]]\nmatrix = \"k2d5pt\"\npz = [1, 4]\n\
             [[point]]\nmatrix = \"nlpkkt\"\npz = 4\n",
        )
        .unwrap();
        let pts = doc.sections_named("point");
        assert_eq!(pts.len(), 2);
        assert_eq!(
            pts[0].get("pz").unwrap().as_list(),
            vec![Value::Num(1.0), Value::Num(4.0)]
        );
        // scalar sweeps read as one-element lists
        assert_eq!(pts[1].get("pz").unwrap().as_list(), vec![Value::Num(4.0)]);
    }

    #[test]
    fn arrays_mix_strings_and_keep_commas_in_quotes() {
        let doc = parse("[a]\nfaults = [\"\", \"drop:p=0.05,seed=2\"]\n").unwrap();
        let v = doc.section("a").unwrap().get("faults").unwrap().as_list();
        assert_eq!(v[0].as_str(), Some(""));
        assert_eq!(v[1].as_str(), Some("drop:p=0.05,seed=2"));
    }

    #[test]
    fn errors_name_the_line() {
        assert!(parse("[a]\nx = \n").unwrap_err().starts_with("line 2"));
        assert!(parse("x = 1\n").unwrap_err().contains("before any"));
        assert!(parse("[a]\nwhat is this\n")
            .unwrap_err()
            .contains("unrecognized"));
        assert!(parse("[a]\nx = 1\nx = 2\n")
            .unwrap_err()
            .contains("duplicate"));
        assert!(parse("[a]\nx = [1, [2]]\n").unwrap_err().contains("nested"));
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let doc = parse("[a]\ns = \"a#b\"\n").unwrap();
        assert_eq!(
            doc.section("a").unwrap().get("s").unwrap().as_str(),
            Some("a#b")
        );
    }
}
