//! `salu-campaign` — run declarative perf campaigns and gate regressions.
//!
//! ```sh
//! # run a campaign: jobs + artifacts + BENCH_<pr>.json + report.md
//! salu-campaign run campaigns/smoke.toml --out-dir results/campaign/smoke
//!
//! # compare any two snapshots (v1, v2, or v3 schema)
//! salu-campaign compare results/campaign/smoke/BENCH_pr8.json results/BENCH_pr4.json
//! ```
//!
//! `run` exits 1 when a job fails or when the spec names a `baseline`
//! and any gated metric regressed; `compare` exits 1 on a gated
//! regression. Exit 2 means bad usage or unreadable input.

use campaign::{
    compare, compare_markdown, run_campaign, run_markdown, schedule_gate, CampaignSpec, Snapshot,
    Tolerance,
};
use std::path::PathBuf;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage:\n\
         \x20 salu-campaign run SPEC.toml [--out-dir DIR] [--baseline FILE] [--jobs N]\n\
         \x20 salu-campaign compare NEW.json BASELINE.json [--tol-wall X] [--tol-sim X] [--gate-wall]\n\
         \x20 salu-campaign schedule-gate SNAPSHOT.json\n\
         \n\
         run      expand the sweep spec, execute every job (best-of-N wall,\n\
         \x20        per-job artifact dirs), write BENCH_<pr>.json and report.md\n\
         \x20        into --out-dir (default results/campaign/<name>), and — when\n\
         \x20        a baseline is configured — also regression.md/.json, failing\n\
         \x20        on gated regressions.\n\
         compare  diff two BENCH_*.json snapshots (any schema generation) and\n\
         \x20        print the regression report. --tol-* override the default\n\
         \x20        bands (wall 0.5, sim 0.02); --gate-wall makes wall\n\
         \x20        regressions fail the gate too.\n\
         schedule-gate\n\
         \x20        pair every schedule=taskgraph point with its level twin\n\
         \x20        and fail (exit 1) if any taskgraph makespan exceeds its\n\
         \x20        level makespan, if a taskgraph point is unpaired, or if\n\
         \x20        the snapshot has no pairs at all.\n\
         \n\
         See docs/campaign.md."
    );
    exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        Some("schedule-gate") => cmd_schedule_gate(&args[1..]),
        _ => usage(),
    }
}

fn cmd_run(args: &[String]) -> ! {
    let mut spec_path = None;
    let mut out_dir = None;
    let mut baseline_flag = None;
    let mut jobs_flag = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out-dir" => out_dir = Some(PathBuf::from(value(&mut it, "--out-dir"))),
            "--baseline" => baseline_flag = Some(value(&mut it, "--baseline")),
            "--jobs" => {
                jobs_flag = Some(
                    value(&mut it, "--jobs")
                        .parse::<usize>()
                        .unwrap_or_else(|_| {
                            eprintln!("--jobs needs a positive integer");
                            usage()
                        }),
                )
            }
            other if spec_path.is_none() && !other.starts_with('-') => {
                spec_path = Some(other.to_string())
            }
            other => {
                eprintln!("unknown argument {other}");
                usage()
            }
        }
    }
    let Some(spec_path) = spec_path else { usage() };
    let text = std::fs::read_to_string(&spec_path).unwrap_or_else(|e| {
        eprintln!("failed to read {spec_path}: {e}");
        exit(2)
    });
    let mut spec = CampaignSpec::parse(&text).unwrap_or_else(|e| {
        eprintln!("{spec_path}: {e}");
        exit(2)
    });
    if let Some(j) = jobs_flag {
        spec.workers = j.max(1);
    }
    if baseline_flag.is_some() {
        spec.baseline = baseline_flag;
    }
    let out_dir = out_dir.unwrap_or_else(|| PathBuf::from("results/campaign").join(&spec.name));
    std::fs::create_dir_all(&out_dir).unwrap_or_else(|e| {
        eprintln!("failed to create {}: {e}", out_dir.display());
        exit(2)
    });

    let (jobs, _) = spec.expand();
    println!(
        "campaign '{}': {} jobs, best-of-{}, {} worker(s) -> {}",
        spec.name,
        jobs.len(),
        spec.reps,
        spec.workers,
        out_dir.display()
    );
    let outcome = run_campaign(&spec, &out_dir).unwrap_or_else(|e| {
        eprintln!("campaign failed:\n{e}");
        exit(1)
    });
    for line in &outcome.lines {
        println!("  {line}");
    }
    for f in &outcome.failed {
        eprintln!("  FAILED: {f}");
    }
    for s in &outcome.skipped {
        println!("  skipped: {s}");
    }

    let bench_path = out_dir.join(format!("BENCH_{}.json", spec.pr_label));
    write_file(&bench_path, &outcome.snapshot.to_json().pretty());
    write_file(
        &out_dir.join("report.md"),
        &run_markdown(&outcome.snapshot, &outcome.skipped, &outcome.failed),
    );
    println!(
        "snapshot written to {} ({} points)",
        bench_path.display(),
        outcome.snapshot.points.len()
    );
    // Failed jobs fail the run, but only after the surviving points have
    // been snapshotted, reported, and (below) compared.
    let failed_jobs = !outcome.failed.is_empty();
    if failed_jobs {
        eprintln!("{} job(s) failed — see report.md", outcome.failed.len());
    }

    let Some(baseline_path) = &spec.baseline else {
        exit(if failed_jobs { 1 } else { 0 })
    };
    let baseline = Snapshot::load(baseline_path).unwrap_or_else(|e| {
        eprintln!("{e}");
        exit(2)
    });
    let cmp = compare(&outcome.snapshot, &baseline, spec.tolerance);
    write_file(&out_dir.join("regression.md"), &compare_markdown(&cmp));
    write_file(&out_dir.join("regression.json"), &cmp.to_json().pretty());
    let (imp, unch, reg, inc) = cmp.tallies();
    println!(
        "vs {baseline_path}: {} matched points ({imp} improved, {unch} unchanged, \
         {reg} regressed, {inc} incomparable); {} missing, {} new",
        cmp.matched.len(),
        cmp.missing.len(),
        cmp.extra.len()
    );
    if cmp.regressed() {
        eprintln!(
            "regression gate FAILED — see {}",
            out_dir.join("regression.md").display()
        );
        exit(1);
    }
    println!("regression gate clean");
    exit(if failed_jobs { 1 } else { 0 })
}

fn cmd_compare(args: &[String]) -> ! {
    let mut paths = Vec::new();
    let mut tol = Tolerance::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tol-wall" => tol.wall = parse_f64(&value(&mut it, "--tol-wall")),
            "--tol-sim" => tol.sim = parse_f64(&value(&mut it, "--tol-sim")),
            "--gate-wall" => tol.gate_wall = true,
            other if !other.starts_with('-') => paths.push(other.to_string()),
            other => {
                eprintln!("unknown argument {other}");
                usage()
            }
        }
    }
    let [new_path, base_path] = paths.as_slice() else {
        usage()
    };
    let load = |p: &str| {
        Snapshot::load(p).unwrap_or_else(|e| {
            eprintln!("{e}");
            exit(2)
        })
    };
    let cmp = compare(&load(new_path), &load(base_path), tol);
    print!("{}", compare_markdown(&cmp));
    exit(if cmp.regressed() { 1 } else { 0 })
}

fn cmd_schedule_gate(args: &[String]) -> ! {
    let [path] = args else { usage() };
    let snap = Snapshot::load(path).unwrap_or_else(|e| {
        eprintln!("{e}");
        exit(2)
    });
    let gate = schedule_gate(&snap);
    for (key, level, tg) in &gate.pairs {
        println!(
            "  {key}: level {level:.9e}  taskgraph {tg:.9e}  ({:+.4}%)",
            (tg - level) / level * 100.0
        );
    }
    for v in &gate.violations {
        eprintln!("  VIOLATION: {v}");
    }
    if gate.pairs.is_empty() && gate.ok() {
        eprintln!("schedule gate FAILED — {path} has no level/taskgraph pairs");
        exit(1);
    }
    if !gate.ok() {
        eprintln!(
            "schedule gate FAILED — {} violation(s)",
            gate.violations.len()
        );
        exit(1);
    }
    println!(
        "schedule gate clean: taskgraph <= level on all {} pair(s)",
        gate.pairs.len()
    );
    exit(0)
}

fn value(it: &mut std::slice::Iter<'_, String>, flag: &str) -> String {
    it.next().cloned().unwrap_or_else(|| {
        eprintln!("missing value for {flag}");
        usage()
    })
}

fn parse_f64(s: &str) -> f64 {
    s.parse().unwrap_or_else(|_| {
        eprintln!("bad number '{s}'");
        usage()
    })
}

fn write_file(path: &std::path::Path, content: &str) {
    std::fs::write(path, content).unwrap_or_else(|e| {
        eprintln!("failed to write {}: {e}", path.display());
        exit(1)
    });
}
