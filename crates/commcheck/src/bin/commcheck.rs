//! Standalone offline trace linter.
//!
//! One trace: lint it (pairing, FIFO, collective participation).
//! Two traces: additionally check the schedules are identical
//! (reduction-order determinism across runs).
//!
//! Exit status 0 = clean, 1 = findings, 2 = usage or I/O error.

use obs::Json;
use std::process::ExitCode;

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let paths: Vec<&str> = args.iter().map(|s| s.as_str()).collect();
    let run = || -> Result<bool, String> {
        match paths.as_slice() {
            [one] => {
                let doc = load(one)?;
                let report = commcheck::lint_trace(&doc)?;
                print!("{}", report.render());
                Ok(report.is_clean())
            }
            [a, b] => {
                let (da, db) = (load(a)?, load(b)?);
                let ra = commcheck::lint_trace(&da)?;
                let rb = commcheck::lint_trace(&db)?;
                print!("{}", ra.render());
                print!("{}", rb.render());
                let mut clean = ra.is_clean() && rb.is_clean();
                match commcheck::check_determinism(&da, &db) {
                    Ok(()) => println!("commcheck determinism: schedules identical"),
                    Err(why) => {
                        println!("commcheck determinism: {why}");
                        clean = false;
                    }
                }
                Ok(clean)
            }
            _ => Err("usage: commcheck TRACE.json [SECOND_TRACE.json]".into()),
        }
    };
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("commcheck: {e}");
            ExitCode::from(2)
        }
    }
}
