//! Wait-for-graph deadlock detection for the simulated machine.
//!
//! Every rank registers an edge when it blocks in a receive (directly or
//! inside a collective, which is built on receives): *who* it waits for and
//! *what* it waits on (ctx, tag, phase). A detector finds the set of ranks
//! that can never make progress — each waiting only on ranks that are
//! themselves stuck or finished — and publishes a report naming the exact
//! cycle, which every blocked rank picks up and aborts with.
//!
//! Detection is a two-phase protocol to tolerate in-flight messages: a
//! candidate stuck set is only *confirmed* if every member is still in the
//! same blocked episode after a grace period (a message in flight to a
//! blocked rank wakes it within microseconds, changing its episode).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// What a blocked rank is waiting on.
#[derive(Clone, Debug)]
pub struct WaitInfo {
    /// World ranks that could unblock this rank. One element for a
    /// deterministic `recv(src, ..)`; all other communicator members for a
    /// wildcard receive.
    pub targets: Vec<usize>,
    /// True for a wildcard (any-source) receive: any one target suffices.
    pub wildcard: bool,
    pub ctx: u64,
    pub tag: u64,
    /// Traffic phase label active on the waiting rank.
    pub phase: String,
}

impl WaitInfo {
    fn describe(&self) -> String {
        let src = if self.wildcard {
            "ANY".to_string()
        } else {
            self.targets
                .first()
                .map(|t| t.to_string())
                .unwrap_or_default()
        };
        format!(
            "(ctx={}, src={src}, tag={}, phase={})",
            self.ctx, self.tag, self.phase
        )
    }
}

#[derive(Clone, Debug, Default)]
enum RankState {
    #[default]
    Running,
    Blocked(WaitInfo),
    Done,
}

#[derive(Debug, Default)]
struct Slot {
    state: RankState,
    /// Bumped on every `block`, so the detector can tell "still in the same
    /// wait" from "woke up and blocked again".
    episode: u64,
}

/// The machine-wide wait-for graph. One per [`Machine::run`]; shared by all
/// rank threads and the detector.
#[derive(Debug)]
pub struct WaitGraph {
    slots: Mutex<Vec<Slot>>,
    deadlock: Mutex<Option<String>>,
    found: AtomicBool,
}

impl WaitGraph {
    pub fn new(nranks: usize) -> Self {
        WaitGraph {
            slots: Mutex::new((0..nranks).map(|_| Slot::default()).collect()),
            deadlock: Mutex::new(None),
            found: AtomicBool::new(false),
        }
    }

    /// Register that `rank` is blocking on a receive.
    pub fn block(&self, rank: usize, info: WaitInfo) {
        let mut slots = self.slots.lock().unwrap();
        slots[rank].state = RankState::Blocked(info);
        slots[rank].episode += 1;
    }

    /// Register that `rank` found its message and resumed.
    pub fn unblock(&self, rank: usize) {
        let mut slots = self.slots.lock().unwrap();
        slots[rank].state = RankState::Running;
    }

    /// Register that `rank`'s SPMD closure returned (or panicked): it will
    /// never send again.
    pub fn mark_done(&self, rank: usize) {
        let mut slots = self.slots.lock().unwrap();
        slots[rank].state = RankState::Done;
    }

    /// True when every rank in `targets` has terminated (marked done).
    /// A blocked receive whose possible senders are all done can never
    /// complete; the fault layer uses this to resolve waits on dead peers
    /// as cascade failures instead of hanging until the timeout backstop.
    pub fn all_done(&self, targets: &[usize]) -> bool {
        let slots = self.slots.lock().unwrap();
        targets
            .iter()
            .all(|&t| matches!(slots[t].state, RankState::Done))
    }

    /// The confirmed deadlock report, if the detector found one. Cheap to
    /// poll: a relaxed atomic guards the lock.
    pub fn deadlock_report(&self) -> Option<String> {
        if !self.found.load(Ordering::Relaxed) {
            return None;
        }
        self.deadlock.lock().unwrap().clone()
    }

    /// One line per rank: Running / Done / Blocked on what. This is the
    /// wait-for-graph state named by the receive-timeout backstop message.
    pub fn dump(&self) -> String {
        let slots = self.slots.lock().unwrap();
        let mut out = String::from("wait-for graph:\n");
        for (r, s) in slots.iter().enumerate() {
            match &s.state {
                RankState::Running => out.push_str(&format!("  rank {r}: running\n")),
                RankState::Done => out.push_str(&format!("  rank {r}: finished\n")),
                RankState::Blocked(w) => {
                    out.push_str(&format!("  rank {r}: blocked in recv {}\n", w.describe()))
                }
            }
        }
        out
    }

    /// Find the candidate stuck set: blocked ranks all of whose wait
    /// targets are finished or themselves in the set (greatest fixed
    /// point). Members can never be unblocked — unless a message to one of
    /// them is still in flight, which [`WaitGraph::run_detector`] rules out
    /// by re-checking episodes after a grace period.
    fn candidate_stuck(&self) -> Vec<(usize, u64)> {
        let slots = self.slots.lock().unwrap();
        let n = slots.len();
        let mut stuck: Vec<bool> = slots
            .iter()
            .map(|s| matches!(s.state, RankState::Blocked(_)))
            .collect();
        let done: Vec<bool> = slots
            .iter()
            .map(|s| matches!(s.state, RankState::Done))
            .collect();
        loop {
            let mut changed = false;
            for r in 0..n {
                if !stuck[r] {
                    continue;
                }
                let RankState::Blocked(w) = &slots[r].state else {
                    unreachable!()
                };
                // A rank stays in the set only if every potential sender
                // can never send again. (For a deterministic receive there
                // is exactly one target; for a wildcard, all of them.)
                let hopeless = w.targets.iter().all(|&t| done[t] || stuck[t]);
                if !hopeless {
                    stuck[r] = false;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        (0..n)
            .filter(|&r| stuck[r])
            .map(|r| (r, slots[r].episode))
            .collect()
    }

    /// Format the confirmed stuck set as the abort report.
    fn format_deadlock(&self, members: &[(usize, u64)]) -> String {
        let slots = self.slots.lock().unwrap();
        let mut out = format!(
            "deadlock detected: {} rank(s) can never make progress\n",
            members.len()
        );
        for &(r, _) in members {
            if let RankState::Blocked(w) = &slots[r].state {
                let waits: Vec<String> = w.targets.iter().map(|t| t.to_string()).collect();
                out.push_str(&format!(
                    "  rank {r} blocked in recv {} waiting on rank(s) {}\n",
                    w.describe(),
                    waits.join(",")
                ));
            }
        }
        out
    }

    /// Synchronous detection for schedulers that *know* the machine is
    /// quiescent. The event-driven backend calls this when its ready queue
    /// empties with live ranks still blocked: under cooperative scheduling
    /// no message can be in flight at that point, so the candidate stuck
    /// set needs no grace period — it *is* the verdict. Publishes the
    /// report (blocked ranks pick it up via [`WaitGraph::deadlock_report`])
    /// and returns it; `None` when no rank is hopelessly stuck.
    pub fn detect_now(&self) -> Option<String> {
        let stuck = self.candidate_stuck();
        if stuck.is_empty() {
            return None;
        }
        let report = self.format_deadlock(&stuck);
        *self.deadlock.lock().unwrap() = Some(report.clone());
        self.found.store(true, Ordering::SeqCst);
        Some(report)
    }

    /// Detector loop: scan for a candidate stuck set, confirm it after a
    /// grace period (same members, same blocked episodes), then publish the
    /// report for blocked ranks to abort with. Runs until `stop` is set or
    /// a deadlock is confirmed. The machine owns this on a dedicated
    /// `commcheck-detector` thread when the sanitizer is enabled.
    pub fn run_detector(&self, stop: &AtomicBool) {
        const SCAN: Duration = Duration::from_millis(10);
        const GRACE: Duration = Duration::from_millis(50);
        while !stop.load(Ordering::Relaxed) {
            std::thread::sleep(SCAN);
            let candidate = self.candidate_stuck();
            if candidate.is_empty() {
                continue;
            }
            // Grace period: any in-flight message to a member wakes it and
            // bumps its episode (or unblocks it outright).
            std::thread::sleep(GRACE);
            if stop.load(Ordering::Relaxed) {
                return;
            }
            let confirmed = self.candidate_stuck();
            if confirmed == candidate {
                let report = self.format_deadlock(&confirmed);
                *self.deadlock.lock().unwrap() = Some(report);
                self.found.store(true, Ordering::SeqCst);
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wait(targets: Vec<usize>, ctx: u64, tag: u64) -> WaitInfo {
        WaitInfo {
            targets,
            wildcard: false,
            ctx,
            tag,
            phase: "fact".into(),
        }
    }

    #[test]
    fn cross_recv_cycle_is_stuck() {
        let g = WaitGraph::new(2);
        g.block(0, wait(vec![1], 0, 5));
        g.block(1, wait(vec![0], 0, 6));
        let stuck = g.candidate_stuck();
        assert_eq!(stuck.iter().map(|s| s.0).collect::<Vec<_>>(), vec![0, 1]);
        let rep = g.format_deadlock(&stuck);
        assert!(rep.contains("rank 0"), "{rep}");
        assert!(rep.contains("tag=5"), "{rep}");
        assert!(rep.contains("tag=6"), "{rep}");
        assert!(rep.contains("phase=fact"), "{rep}");
    }

    #[test]
    fn waiting_on_running_rank_is_not_stuck() {
        let g = WaitGraph::new(3);
        g.block(0, wait(vec![1], 0, 1));
        g.block(1, wait(vec![2], 0, 1));
        // Rank 2 is running: the chain can still drain.
        assert!(g.candidate_stuck().is_empty());
    }

    #[test]
    fn waiting_on_finished_rank_is_stuck() {
        let g = WaitGraph::new(2);
        g.mark_done(1);
        g.block(0, wait(vec![1], 0, 9));
        let stuck = g.candidate_stuck();
        assert_eq!(stuck.len(), 1);
        assert_eq!(stuck[0].0, 0);
    }

    #[test]
    fn wildcard_needs_all_targets_hopeless() {
        let g = WaitGraph::new(3);
        let mut w = wait(vec![1, 2], 0, 1);
        w.wildcard = true;
        g.block(0, w);
        g.mark_done(1);
        // Rank 2 still running: the wildcard could still be satisfied.
        assert!(g.candidate_stuck().is_empty());
        g.mark_done(2);
        assert_eq!(g.candidate_stuck().len(), 1);
    }

    #[test]
    fn unblock_clears_the_edge_and_episode_advances() {
        let g = WaitGraph::new(2);
        g.block(0, wait(vec![1], 0, 1));
        g.mark_done(1);
        let before = g.candidate_stuck();
        assert_eq!(before.len(), 1);
        g.unblock(0);
        assert!(g.candidate_stuck().is_empty());
        g.block(0, wait(vec![1], 0, 2));
        let after = g.candidate_stuck();
        assert_eq!(after.len(), 1);
        assert_ne!(before[0].1, after[0].1, "episode must advance");
    }

    #[test]
    fn detector_confirms_and_publishes() {
        let g = std::sync::Arc::new(WaitGraph::new(2));
        g.block(0, wait(vec![1], 7, 5));
        g.block(1, wait(vec![0], 7, 6));
        let stop = std::sync::Arc::new(AtomicBool::new(false));
        let (g2, s2) = (std::sync::Arc::clone(&g), std::sync::Arc::clone(&stop));
        let h = std::thread::spawn(move || g2.run_detector(&s2));
        h.join().unwrap();
        let rep = g.deadlock_report().expect("deadlock must be confirmed");
        assert!(rep.contains("deadlock detected"), "{rep}");
        assert!(rep.contains("ctx=7"), "{rep}");
    }

    #[test]
    fn detect_now_publishes_without_grace() {
        let g = WaitGraph::new(3);
        g.block(0, wait(vec![1], 2, 5));
        g.block(1, wait(vec![0], 2, 6));
        // Rank 2 is running: not part of the stuck set, detection still fires.
        let rep = g
            .detect_now()
            .expect("cycle must be detected synchronously");
        assert!(rep.contains("deadlock detected: 2 rank(s)"), "{rep}");
        assert!(rep.contains("ctx=2"), "{rep}");
        assert_eq!(g.deadlock_report().as_deref(), Some(rep.as_str()));
    }

    #[test]
    fn detect_now_is_none_while_progress_is_possible() {
        let g = WaitGraph::new(2);
        g.block(0, wait(vec![1], 0, 1));
        // Rank 1 is running: nothing is stuck, nothing is published.
        assert!(g.detect_now().is_none());
        assert!(g.deadlock_report().is_none());
    }

    #[test]
    fn all_done_tracks_termination() {
        let g = WaitGraph::new(3);
        assert!(!g.all_done(&[1, 2]));
        g.mark_done(1);
        assert!(!g.all_done(&[1, 2]));
        assert!(g.all_done(&[1]));
        g.mark_done(2);
        assert!(g.all_done(&[1, 2]));
        assert!(g.all_done(&[]), "vacuously true for no targets");
    }

    #[test]
    fn dump_names_every_rank_state() {
        let g = WaitGraph::new(3);
        g.block(1, wait(vec![2], 0, 4));
        g.mark_done(2);
        let d = g.dump();
        assert!(d.contains("rank 0: running"), "{d}");
        assert!(d.contains("rank 1: blocked in recv"), "{d}");
        assert!(d.contains("src=2"), "{d}");
        assert!(d.contains("rank 2: finished"), "{d}");
    }
}
