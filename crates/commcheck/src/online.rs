//! Shared state of the online sanitizer: the outstanding-send table that
//! backs both happens-before race detection and finalize-time leak
//! reporting.
//!
//! The machine owns one [`SanState`] per sanitized run. Every send
//! registers itself (with the sender's vector clock and phase); every
//! receive retires the matched entry. A wildcard match asks the table
//! whether any *other* outstanding send to the same `(dst, ctx, tag)` slot
//! is concurrent with the matched one under happens-before — if so, the
//! match order was a coin flip and a [`Finding::Race`] is recorded.
//! Whatever is still outstanding when every rank has finished is a
//! [`Finding::Leak`].

use crate::report::{CommReport, Finding};
use crate::vclock::VClock;
use std::collections::HashMap;
use std::sync::Mutex;

/// One send that has not yet been matched by a receive.
#[derive(Clone, Debug)]
pub struct SendRec {
    pub src: usize,
    pub dst: usize,
    pub ctx: u64,
    pub tag: u64,
    pub words: u64,
    /// Sender's traffic phase at send time.
    pub phase: String,
    /// Sender's vector clock at the send event.
    pub clock: VClock,
}

#[derive(Debug, Default)]
struct Inner {
    /// Message uid → its send record, removed when received.
    outstanding: HashMap<u64, SendRec>,
    findings: Vec<Finding>,
    msgs_sent: u64,
    msgs_received: u64,
    wildcard_matches: u64,
}

/// Machine-wide sanitizer state, shared by all rank threads.
#[derive(Debug, Default)]
pub struct SanState {
    inner: Mutex<Inner>,
}

impl SanState {
    pub fn new() -> Self {
        SanState::default()
    }

    /// Register a send. Called by the sending rank with its ticked clock.
    pub fn on_send(&self, uid: u64, rec: SendRec) {
        let mut g = self.inner.lock().unwrap();
        g.msgs_sent += 1;
        g.outstanding.insert(uid, rec);
    }

    /// Retire a matched message. Returns its send record.
    pub fn on_recv(&self, uid: u64) -> Option<SendRec> {
        let mut g = self.inner.lock().unwrap();
        g.msgs_received += 1;
        g.outstanding.remove(&uid)
    }

    /// Check a wildcard match for happens-before races: any other
    /// outstanding send to `(receiver, ctx, tag)` whose clock is concurrent
    /// with the matched send's could equally have matched, so the choice
    /// was nondeterministic. Records one finding per concurrent rival.
    /// Call *before* [`SanState::on_recv`] retires the matched uid.
    pub fn check_wildcard_match(
        &self,
        receiver: usize,
        ctx: u64,
        tag: u64,
        matched_uid: u64,
        phase: &str,
    ) {
        let mut g = self.inner.lock().unwrap();
        g.wildcard_matches += 1;
        let Some(matched) = g.outstanding.get(&matched_uid).cloned() else {
            return;
        };
        let mut races = Vec::new();
        for (uid, rec) in &g.outstanding {
            if *uid == matched_uid || rec.dst != receiver || rec.ctx != ctx || rec.tag != tag {
                continue;
            }
            if rec.src != matched.src && rec.clock.concurrent_with(&matched.clock) {
                races.push(Finding::Race {
                    receiver,
                    ctx,
                    tag,
                    matched_src: matched.src,
                    rival_src: rec.src,
                    phase: phase.to_string(),
                });
            }
        }
        g.findings.extend(races);
    }

    /// Record an arbitrary finding.
    pub fn push_finding(&self, f: Finding) {
        self.inner.lock().unwrap().findings.push(f);
    }

    /// Finalize: every send still outstanding is a leak. Call after all
    /// rank threads have been joined (nothing is in flight any more).
    pub fn into_report(self) -> CommReport {
        let mut g = self.inner.into_inner().unwrap();
        let mut leftovers: Vec<(u64, SendRec)> = g.outstanding.drain().collect();
        // Deterministic report order regardless of hash iteration.
        leftovers.sort_by_key(|(uid, _)| *uid);
        for (_, rec) in leftovers {
            g.findings.push(Finding::Leak {
                src: rec.src,
                dst: rec.dst,
                ctx: rec.ctx,
                tag: rec.tag,
                words: rec.words,
                phase: rec.phase,
            });
        }
        CommReport {
            findings: g.findings,
            msgs_sent: g.msgs_sent,
            msgs_received: g.msgs_received,
            wildcard_matches: g.wildcard_matches,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(src: usize, dst: usize, ctx: u64, tag: u64, clock: VClock) -> SendRec {
        SendRec {
            src,
            dst,
            ctx,
            tag,
            words: 4,
            phase: "fact".into(),
            clock,
        }
    }

    #[test]
    fn concurrent_rivals_are_reported_as_races() {
        let s = SanState::new();
        let mut c1 = VClock::new(3);
        c1.tick(1);
        let mut c2 = VClock::new(3);
        c2.tick(2);
        s.on_send(10, rec(1, 0, 0, 7, c1));
        s.on_send(20, rec(2, 0, 0, 7, c2));
        s.check_wildcard_match(0, 0, 7, 10, "reduce");
        s.on_recv(10);
        let rep = s.into_report();
        let races: Vec<_> = rep.races().collect();
        assert_eq!(races.len(), 1);
        match races[0] {
            Finding::Race {
                matched_src,
                rival_src,
                tag,
                ..
            } => {
                assert_eq!((*matched_src, *rival_src, *tag), (1, 2, 7));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn ordered_sends_are_not_races() {
        let s = SanState::new();
        // Rank 1 sends, rank 2 observed that send (merged clock), then sent.
        let mut c1 = VClock::new(3);
        c1.tick(1);
        let mut c2 = c1.clone();
        c2.tick(2);
        s.on_send(10, rec(1, 0, 0, 7, c1));
        s.on_send(20, rec(2, 0, 0, 7, c2));
        s.check_wildcard_match(0, 0, 7, 10, "fact");
        s.on_recv(10);
        assert_eq!(s.into_report().races().count(), 0);
    }

    #[test]
    fn different_slot_never_races() {
        let s = SanState::new();
        let mut c1 = VClock::new(3);
        c1.tick(1);
        let mut c2 = VClock::new(3);
        c2.tick(2);
        s.on_send(10, rec(1, 0, 0, 7, c1));
        s.on_send(20, rec(2, 0, 0, 8, c2)); // different tag
        s.check_wildcard_match(0, 0, 7, 10, "fact");
        s.on_recv(10);
        assert_eq!(s.into_report().races().count(), 0);
    }

    #[test]
    fn unreceived_sends_become_leaks() {
        let s = SanState::new();
        let c = VClock::new(2);
        s.on_send(5, rec(0, 1, 2, 3, c.clone()));
        s.on_send(6, rec(0, 1, 2, 4, c));
        s.on_recv(5);
        let rep = s.into_report();
        let leaks: Vec<_> = rep.leaks().collect();
        assert_eq!(leaks.len(), 1);
        match leaks[0] {
            Finding::Leak { src, dst, tag, .. } => assert_eq!((*src, *dst, *tag), (0, 1, 4)),
            _ => unreachable!(),
        }
        assert_eq!(rep.msgs_sent, 2);
        assert_eq!(rep.msgs_received, 1);
    }
}
