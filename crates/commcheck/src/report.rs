//! Findings the online sanitizer reports at finalize.

use std::fmt;

/// One communication-correctness defect found during a sanitized run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Finding {
    /// Two sends concurrent under happens-before competed for the same
    /// wildcard receive slot: the match order — and therefore anything
    /// order-sensitive downstream, like a floating-point reduction — is
    /// nondeterministic.
    Race {
        receiver: usize,
        ctx: u64,
        tag: u64,
        /// The message that actually matched.
        matched_src: usize,
        /// The concurrent competitor (in flight or already queued).
        rival_src: usize,
        /// Phase label active on the receiver at match time.
        phase: String,
    },
    /// A message that was sent but never received: still sitting in the
    /// destination's channel or pending queue when the run finished.
    Leak {
        src: usize,
        dst: usize,
        ctx: u64,
        tag: u64,
        words: u64,
        /// Phase label active on the sender when it sent.
        phase: String,
    },
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Finding::Race {
                receiver,
                ctx,
                tag,
                matched_src,
                rival_src,
                phase,
            } => write!(
                f,
                "RACE: wildcard recv on rank {receiver} (ctx={ctx}, tag={tag}, \
                 phase={phase}) matched a send from rank {matched_src} while a \
                 concurrent send from rank {rival_src} could equally have \
                 matched — message order is nondeterministic"
            ),
            Finding::Leak {
                src,
                dst,
                ctx,
                tag,
                words,
                phase,
            } => write!(
                f,
                "LEAK: message {src} -> {dst} (ctx={ctx}, tag={tag}, \
                 {words} words, phase={phase}) was sent but never received"
            ),
        }
    }
}

/// Everything the online sanitizer observed over one run.
#[derive(Clone, Debug, Default)]
pub struct CommReport {
    pub findings: Vec<Finding>,
    /// Messages sent while sanitized.
    pub msgs_sent: u64,
    /// Messages matched by a receive.
    pub msgs_received: u64,
    /// Wildcard matches that were checked for races.
    pub wildcard_matches: u64,
}

impl CommReport {
    /// No defects found.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Findings of the race kind.
    pub fn races(&self) -> impl Iterator<Item = &Finding> {
        self.findings
            .iter()
            .filter(|f| matches!(f, Finding::Race { .. }))
    }

    /// Findings of the leak kind.
    pub fn leaks(&self) -> impl Iterator<Item = &Finding> {
        self.findings
            .iter()
            .filter(|f| matches!(f, Finding::Leak { .. }))
    }

    /// Human-readable multi-line report.
    pub fn render(&self) -> String {
        let mut out = format!(
            "commcheck: {} sent, {} received, {} wildcard matches checked\n",
            self.msgs_sent, self.msgs_received, self.wildcard_matches
        );
        if self.is_clean() {
            out.push_str("commcheck: clean — no races, no leaks\n");
        } else {
            for f in &self.findings {
                out.push_str(&format!("commcheck: {f}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn findings_render_with_rank_and_slot_detail() {
        let mut rep = CommReport::default();
        rep.findings.push(Finding::Race {
            receiver: 0,
            ctx: 3,
            tag: 7,
            matched_src: 1,
            rival_src: 2,
            phase: "reduce".into(),
        });
        rep.findings.push(Finding::Leak {
            src: 1,
            dst: 0,
            ctx: 0,
            tag: 9,
            words: 64,
            phase: "fact".into(),
        });
        assert!(!rep.is_clean());
        assert_eq!(rep.races().count(), 1);
        assert_eq!(rep.leaks().count(), 1);
        let r = rep.render();
        assert!(r.contains("RACE"), "{r}");
        assert!(r.contains("ctx=3, tag=7"), "{r}");
        assert!(r.contains("LEAK"), "{r}");
        assert!(r.contains("1 -> 0"), "{r}");
        assert!(r.contains("phase=fact"), "{r}");
    }

    #[test]
    fn clean_report_says_so() {
        let rep = CommReport::default();
        assert!(rep.is_clean());
        assert!(rep.render().contains("clean"));
    }
}
