//! Vector clocks: the happens-before partial order over rank events.
//!
//! Every sanitized rank keeps one clock; its own component ticks on each
//! send and receive, and a receive merges the sender's clock (piggybacked
//! on the message). Two events are *concurrent* when neither clock
//! dominates the other — the condition under which two in-flight messages
//! could legally match a wildcard receive in either order.

/// A vector clock over `n` ranks. Component `i` counts the communication
/// events rank `i` had performed when the clock was captured.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VClock(Vec<u64>);

/// Outcome of comparing two vector clocks under happens-before.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Ordering {
    /// `self` happens before `other` (strictly dominated).
    Before,
    /// `other` happens before `self`.
    After,
    /// Identical clocks (same event).
    Equal,
    /// Neither dominates: the events are concurrent.
    Concurrent,
}

impl VClock {
    /// The zero clock for a machine of `n` ranks.
    pub fn new(n: usize) -> Self {
        VClock(vec![0; n])
    }

    /// Advance this rank's own component by one event.
    pub fn tick(&mut self, rank: usize) {
        self.0[rank] += 1;
    }

    /// Component-wise maximum: absorb everything `other` has observed.
    pub fn merge(&mut self, other: &VClock) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(*b);
        }
    }

    /// Happens-before comparison of the events the clocks were captured at.
    pub fn compare(&self, other: &VClock) -> Ordering {
        let mut le = true;
        let mut ge = true;
        for (a, b) in self.0.iter().zip(&other.0) {
            if a > b {
                le = false;
            }
            if a < b {
                ge = false;
            }
        }
        match (le, ge) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Before,
            (false, true) => Ordering::After,
            (false, false) => Ordering::Concurrent,
        }
    }

    /// True when neither clock dominates the other.
    pub fn concurrent_with(&self, other: &VClock) -> bool {
        self.compare(other) == Ordering::Concurrent
    }

    /// This rank's own component (event count).
    pub fn component(&self, rank: usize) -> u64 {
        self.0[rank]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_and_compare_order_events() {
        let mut a = VClock::new(3);
        let mut b = VClock::new(3);
        assert_eq!(a.compare(&b), Ordering::Equal);
        a.tick(0); // a = [1,0,0]
        assert_eq!(b.compare(&a), Ordering::Before);
        assert_eq!(a.compare(&b), Ordering::After);
        b.tick(1); // b = [0,1,0]: neither dominates
        assert!(a.concurrent_with(&b));
        assert!(b.concurrent_with(&a));
    }

    #[test]
    fn merge_establishes_happens_before() {
        // Rank 0 sends to rank 1; rank 1's next event happens after it.
        let mut sender = VClock::new(2);
        sender.tick(0); // the send event
        let mut receiver = VClock::new(2);
        receiver.merge(&sender);
        receiver.tick(1); // the receive event
        assert_eq!(sender.compare(&receiver), Ordering::Before);
        // A later send by rank 1 is ordered after rank 0's send.
        receiver.tick(1);
        assert!(!sender.concurrent_with(&receiver));
    }

    #[test]
    fn transitive_chain_is_ordered() {
        // 0 -> 1 -> 2: rank 0's send and rank 2's send are ordered.
        let mut c0 = VClock::new(3);
        c0.tick(0);
        let mut c1 = VClock::new(3);
        c1.merge(&c0);
        c1.tick(1);
        c1.tick(1); // rank 1 forwards
        let mut c2 = VClock::new(3);
        c2.merge(&c1);
        c2.tick(2);
        c2.tick(2); // rank 2 sends
        assert_eq!(c0.compare(&c2), Ordering::Before);
    }
}
