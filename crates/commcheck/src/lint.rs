//! Offline trace linter: replay a Chrome trace-event document exported by
//! `obs` and statically check the communication schedule.
//!
//! Checks, in order:
//!
//! 1. **Structure** — the document is a well-formed trace (delegated to
//!    [`obs::validate_chrome_trace`]): properly nested slices, every flow
//!    arrow with both ends.
//! 2. **Pairing** — every message uid has exactly one send and exactly one
//!    receive, with matching word counts and mutually consistent peers; an
//!    unreceived send is reported as a leak.
//! 3. **Causality** — a receive never completes before its send started.
//! 4. **FIFO** — per `(src, dst, ctx, tag)` slot, messages are received in
//!    the order they were sent (the matching invariant bitwise-reproducible
//!    reductions rely on).
//! 5. **Collective participation** — for each communicator context, every
//!    rank that communicates under it inside collective spans executes the
//!    same sequence of collectives, in the same order.
//!
//! [`check_determinism`] additionally compares two traces of the *same*
//! program event-by-event, the offline form of the race detector's
//! guarantee: a schedule that is deterministic across runs.

use obs::{validate_chrome_trace, Json};
use std::collections::{BTreeMap, HashMap};

/// Aggregate facts the linter established.
#[derive(Clone, Copy, Debug, Default)]
pub struct LintStats {
    /// Thread tracks (ranks) in the trace.
    pub tracks: usize,
    /// Distinct message uids seen.
    pub messages: usize,
    /// Messages with a complete send/recv pair.
    pub matched: usize,
    /// Distinct communicator contexts seen on messages.
    pub contexts: usize,
    /// Collective slices that took part in the participation check.
    pub colls: usize,
}

/// The linter's verdict on one trace document.
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    pub findings: Vec<String>,
    pub stats: LintStats,
}

impl LintReport {
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    pub fn render(&self) -> String {
        let s = self.stats;
        let mut out = format!(
            "commcheck lint: {} tracks, {} messages ({} paired), {} contexts, {} collective slices\n",
            s.tracks, s.messages, s.matched, s.contexts, s.colls
        );
        if self.is_clean() {
            out.push_str("commcheck lint: clean\n");
        } else {
            for f in &self.findings {
                out.push_str(&format!("commcheck lint: {f}\n"));
            }
        }
        out
    }
}

/// One send or receive slice pulled out of the trace.
#[derive(Clone, Debug)]
struct CommEv {
    track: i64,
    is_send: bool,
    ts: f64,
    dur: f64,
    peer: Option<i64>,
    words: u64,
    uid: u64,
    ctx: u64,
    tag: u64,
}

/// One collective span slice.
#[derive(Clone, Debug)]
struct CollSlice {
    ts: f64,
    dur: f64,
    name: String,
}

fn arg_u64(ev: &Json, key: &str) -> Option<u64> {
    ev.get("args")?.get(key)?.as_f64().map(|v| v as u64)
}

/// What [`extract`] pulls out of a trace: the comm events, the collective
/// slices per track, and how many send/recv slices lacked commcheck args.
type Extracted = (Vec<CommEv>, BTreeMap<i64, Vec<CollSlice>>, usize);

fn extract(doc: &Json) -> Result<Extracted, String> {
    let events = doc
        .get("traceEvents")
        .and_then(|e| e.as_arr())
        .ok_or("missing traceEvents array")?;
    let mut comms = Vec::new();
    let mut colls: BTreeMap<i64, Vec<CollSlice>> = BTreeMap::new();
    let mut missing_ids = 0usize;
    for ev in events {
        if ev.get("ph").and_then(|p| p.as_str()) != Some("X") {
            continue;
        }
        let cat = ev.get("cat").and_then(|c| c.as_str()).unwrap_or("");
        let tid = ev.get("tid").and_then(|t| t.as_f64()).unwrap_or(0.0) as i64;
        let ts = ev.get("ts").and_then(|t| t.as_f64()).unwrap_or(0.0);
        let dur = ev.get("dur").and_then(|d| d.as_f64()).unwrap_or(0.0);
        let name = ev.get("name").and_then(|n| n.as_str()).unwrap_or("");
        if cat == "coll" {
            colls.entry(tid).or_default().push(CollSlice {
                ts,
                dur,
                name: name.to_string(),
            });
        } else if cat == "activity" && (name == "send" || name == "recv") {
            let (Some(uid), Some(ctx), Some(tag)) =
                (arg_u64(ev, "uid"), arg_u64(ev, "ctx"), arg_u64(ev, "tag"))
            else {
                missing_ids += 1;
                continue;
            };
            comms.push(CommEv {
                track: tid,
                is_send: name == "send",
                ts,
                dur,
                peer: ev
                    .get("args")
                    .and_then(|a| a.get("peer"))
                    .and_then(|p| p.as_f64())
                    .map(|p| p as i64),
                words: arg_u64(ev, "words").unwrap_or(0),
                uid,
                ctx,
                tag,
            });
        }
    }
    Ok((comms, colls, missing_ids))
}

/// Lint one trace document. `Err` means the document is not a parseable
/// trace at all; findings inside the `Ok` report are protocol defects.
pub fn lint_trace(doc: &Json) -> Result<LintReport, String> {
    let mut report = LintReport::default();

    // 1. Structure.
    let cstats = validate_chrome_trace(doc)?;
    report.stats.tracks = cstats.tracks;

    let (comms, colls, missing_ids) = extract(doc)?;
    if missing_ids > 0 {
        report.findings.push(format!(
            "{missing_ids} send/recv slice(s) carry no (uid, ctx, tag) args — \
             trace predates commcheck instrumentation, message checks skipped"
        ));
    }

    // 2 + 3. Pairing and causality, keyed by uid.
    let mut by_uid: BTreeMap<u64, (Vec<&CommEv>, Vec<&CommEv>)> = BTreeMap::new();
    for ev in &comms {
        let slot = by_uid.entry(ev.uid).or_default();
        if ev.is_send {
            slot.0.push(ev);
        } else {
            slot.1.push(ev);
        }
    }
    report.stats.messages = by_uid.len();
    let mut contexts: BTreeMap<u64, ()> = BTreeMap::new();
    for ev in &comms {
        contexts.insert(ev.ctx, ());
    }
    report.stats.contexts = contexts.len();
    for (uid, (sends, recvs)) in &by_uid {
        match (sends.as_slice(), recvs.as_slice()) {
            ([s], [r]) => {
                report.stats.matched += 1;
                if s.words != r.words {
                    report.findings.push(format!(
                        "message {uid} (ctx={}, tag={}): sent {} words but received {}",
                        s.ctx, s.tag, s.words, r.words
                    ));
                }
                if s.peer != Some(r.track) || r.peer != Some(s.track) {
                    report.findings.push(format!(
                        "message {uid}: send {} -> {:?} does not mirror recv on {} from {:?}",
                        s.track, s.peer, r.track, r.peer
                    ));
                }
                if (s.ctx, s.tag) != (r.ctx, r.tag) {
                    report.findings.push(format!(
                        "message {uid}: sent on (ctx={}, tag={}) but received on (ctx={}, tag={})",
                        s.ctx, s.tag, r.ctx, r.tag
                    ));
                }
                let eps = 1e-6 * (1.0 + s.ts.abs());
                if r.ts + r.dur < s.ts - eps {
                    report.findings.push(format!(
                        "message {uid}: receive on rank {} ends at {} before its \
                         send on rank {} starts at {} — causality violation",
                        r.track,
                        r.ts + r.dur,
                        s.track,
                        s.ts
                    ));
                }
            }
            ([s], []) => report.findings.push(format!(
                "unreceived message (leak): uid {uid} from rank {} to rank {:?} \
                 (ctx={}, tag={}, {} words)",
                s.track, s.peer, s.ctx, s.tag, s.words
            )),
            ([], [r]) => report.findings.push(format!(
                "orphan receive: uid {uid} on rank {} from rank {:?} \
                 (ctx={}, tag={}) has no send",
                r.track, r.peer, r.ctx, r.tag
            )),
            (ss, rs) => report.findings.push(format!(
                "message uid {uid} is not unique: {} sends, {} receives",
                ss.len(),
                rs.len()
            )),
        }
    }

    // 4. Per-(src, dst, ctx, tag) FIFO: receive order must equal send order.
    // Document order within a track is the rank's true chronological order.
    let mut send_seq: HashMap<(i64, i64, u64, u64), Vec<u64>> = HashMap::new();
    let mut recv_seq: HashMap<(i64, i64, u64, u64), Vec<u64>> = HashMap::new();
    for ev in &comms {
        let Some(peer) = ev.peer else { continue };
        if ev.is_send {
            send_seq
                .entry((ev.track, peer, ev.ctx, ev.tag))
                .or_default()
                .push(ev.uid);
        } else {
            recv_seq
                .entry((peer, ev.track, ev.ctx, ev.tag))
                .or_default()
                .push(ev.uid);
        }
    }
    let mut fifo_keys: Vec<_> = recv_seq.keys().copied().collect();
    fifo_keys.sort_unstable();
    for key in fifo_keys {
        let recvd = &recv_seq[&key];
        let sent: Vec<u64> = send_seq
            .get(&key)
            .map(|s| {
                s.iter()
                    .copied()
                    // Skip unreceived sends (reported as leaks above).
                    .filter(|u| by_uid.get(u).is_some_and(|(_, r)| !r.is_empty()))
                    .collect()
            })
            .unwrap_or_default();
        if *recvd != sent {
            let (src, dst, ctx, tag) = key;
            report.findings.push(format!(
                "FIFO violation on slot (src={src}, dst={dst}, ctx={ctx}, tag={tag}): \
                 sent order {sent:?} but received order {recvd:?}"
            ));
        }
    }

    // 5. Collective participation: per context, every participating rank
    // must run the same sequence of collectives. A rank participates in a
    // collective slice when one of its messages under that context sits
    // inside the slice.
    let mut coll_seq: BTreeMap<u64, BTreeMap<i64, Vec<String>>> = BTreeMap::new();
    for ev in &comms {
        let Some(track_colls) = colls.get(&ev.track) else {
            continue;
        };
        let eps = 1e-6 * (1.0 + ev.ts.abs());
        // Innermost enclosing collective slice: the last one in document
        // (creation) order that contains the activity interval.
        let Some(idx) = track_colls
            .iter()
            .rposition(|c| c.ts <= ev.ts + eps && ev.ts + ev.dur <= c.ts + c.dur + eps)
        else {
            continue; // point-to-point outside any collective
        };
        let seq = coll_seq
            .entry(ev.ctx)
            .or_default()
            .entry(ev.track)
            .or_default();
        let name = format!("{}@{idx}", track_colls[idx].name);
        if seq.last() != Some(&name) {
            seq.push(name);
        }
    }
    for (ctx, per_track) in &coll_seq {
        let mut names_only: BTreeMap<i64, Vec<&str>> = BTreeMap::new();
        for (track, seq) in per_track {
            report.stats.colls += seq.len();
            names_only.insert(
                *track,
                seq.iter()
                    .map(|s| s.split_once('@').map(|(n, _)| n).unwrap_or(s))
                    .collect(),
            );
        }
        let mut iter = names_only.iter();
        let Some((first_track, first_seq)) = iter.next() else {
            continue;
        };
        for (track, seq) in iter {
            if seq != first_seq {
                report.findings.push(format!(
                    "collective participation mismatch on ctx {ctx}: rank {first_track} \
                     ran {first_seq:?} but rank {track} ran {seq:?}"
                ));
            }
        }
    }

    Ok(report)
}

/// Compare two traces of the same program: identical per-rank communication
/// schedules (kind, timing, peer, payload, uid, ctx, tag). This is the
/// offline determinism check — the invariant the online race detector
/// protects, verified across repeated runs.
pub fn check_determinism(a: &Json, b: &Json) -> Result<(), String> {
    // One comm event flattened for exact comparison:
    // (is_send, ts bits, dur bits, peer, words, ctx, tag).
    type EvKey = (bool, u64, u64, u64, u64, u64, u64);
    let (ca, _, _) = extract(a)?;
    let (cb, _, _) = extract(b)?;
    let per_track = |evs: &[CommEv]| -> BTreeMap<i64, Vec<EvKey>> {
        let mut m: BTreeMap<i64, Vec<_>> = BTreeMap::new();
        for e in evs {
            m.entry(e.track).or_default().push((
                e.is_send,
                e.ts.to_bits(),
                e.dur.to_bits(),
                e.peer.unwrap_or(-1) as u64,
                e.words,
                e.ctx,
                e.tag,
            ));
        }
        m
    };
    let (ma, mb) = (per_track(&ca), per_track(&cb));
    if ma.keys().collect::<Vec<_>>() != mb.keys().collect::<Vec<_>>() {
        return Err(format!(
            "different rank sets: {:?} vs {:?}",
            ma.keys().collect::<Vec<_>>(),
            mb.keys().collect::<Vec<_>>()
        ));
    }
    for (track, seq_a) in &ma {
        let seq_b = &mb[track];
        if seq_a.len() != seq_b.len() {
            return Err(format!(
                "rank {track}: {} comm events vs {}",
                seq_a.len(),
                seq_b.len()
            ));
        }
        for (i, (ea, eb)) in seq_a.iter().zip(seq_b).enumerate() {
            if ea != eb {
                return Err(format!(
                    "rank {track}, comm event {i}: schedules diverge ({ea:?} vs {eb:?})"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::{chrome_trace, ActivityKind, MsgInfo, Recorder, SpanCat};

    fn mi(uid: u64, ctx: u64, tag: u64) -> Option<MsgInfo> {
        Some(MsgInfo { uid, ctx, tag })
    }

    /// rank 0 sends two messages to rank 1 on the same slot; rank 1
    /// receives them in order, inside matching bcast spans.
    fn clean_trace() -> Json {
        let mut r0 = Recorder::new(0);
        let c = r0.enter(SpanCat::Coll, "bcast", 0.0);
        r0.activity(ActivityKind::Send, 0.0, 1.0, Some(1), 8, mi(1, 0, 5));
        r0.exit(c, 1.0);
        let c = r0.enter(SpanCat::Coll, "bcast", 1.0);
        r0.activity(ActivityKind::Send, 1.0, 2.0, Some(1), 8, mi(2, 0, 5));
        r0.exit(c, 2.0);

        let mut r1 = Recorder::new(1);
        let c = r1.enter(SpanCat::Coll, "bcast", 0.0);
        r1.activity(ActivityKind::Recv, 1.0, 1.5, Some(0), 8, mi(1, 0, 5));
        r1.exit(c, 1.5);
        let c = r1.enter(SpanCat::Coll, "bcast", 1.5);
        r1.activity(ActivityKind::Recv, 2.0, 2.5, Some(0), 8, mi(2, 0, 5));
        r1.exit(c, 2.5);
        chrome_trace(&[r0.finish(2.0), r1.finish(2.5)])
    }

    #[test]
    fn clean_trace_lints_clean() {
        let rep = lint_trace(&clean_trace()).unwrap();
        assert!(rep.is_clean(), "{}", rep.render());
        assert_eq!(rep.stats.messages, 2);
        assert_eq!(rep.stats.matched, 2);
        assert!(rep.stats.colls >= 2);
    }

    #[test]
    fn unreceived_send_is_a_leak_finding() {
        let mut r0 = Recorder::new(0);
        r0.activity(ActivityKind::Send, 0.0, 1.0, Some(1), 8, mi(9, 0, 3));
        let r1 = Recorder::new(1);
        let doc = chrome_trace(&[r0.finish(1.0), r1.finish(0.0)]);
        let rep = lint_trace(&doc).unwrap();
        assert_eq!(rep.findings.len(), 1, "{}", rep.render());
        assert!(rep.findings[0].contains("leak"), "{}", rep.findings[0]);
        assert!(rep.findings[0].contains("tag=3"), "{}", rep.findings[0]);
    }

    #[test]
    fn fifo_violation_is_reported() {
        let mut r0 = Recorder::new(0);
        r0.activity(ActivityKind::Send, 0.0, 1.0, Some(1), 8, mi(1, 0, 5));
        r0.activity(ActivityKind::Send, 1.0, 2.0, Some(1), 8, mi(2, 0, 5));
        let mut r1 = Recorder::new(1);
        // Received in the wrong order for the same (src, dst, ctx, tag).
        r1.activity(ActivityKind::Recv, 2.0, 2.5, Some(0), 8, mi(2, 0, 5));
        r1.activity(ActivityKind::Recv, 2.5, 3.0, Some(0), 8, mi(1, 0, 5));
        let doc = chrome_trace(&[r0.finish(2.0), r1.finish(3.0)]);
        let rep = lint_trace(&doc).unwrap();
        assert!(
            rep.findings.iter().any(|f| f.contains("FIFO")),
            "{}",
            rep.render()
        );
    }

    #[test]
    fn causality_violation_is_reported() {
        let mut r0 = Recorder::new(0);
        r0.activity(ActivityKind::Send, 5.0, 6.0, Some(1), 8, mi(1, 0, 2));
        let mut r1 = Recorder::new(1);
        // Receive completes at t=1, before the send started at t=5.
        r1.activity(ActivityKind::Recv, 0.5, 1.0, Some(0), 8, mi(1, 0, 2));
        let doc = chrome_trace(&[r0.finish(6.0), r1.finish(1.0)]);
        let rep = lint_trace(&doc).unwrap();
        assert!(
            rep.findings.iter().any(|f| f.contains("causality")),
            "{}",
            rep.render()
        );
    }

    #[test]
    fn collective_participation_mismatch_is_reported() {
        // Rank 0 runs bcast then reduce under ctx 1; rank 1 runs only bcast
        // (its reduce message happens outside any coll span).
        let mut r0 = Recorder::new(0);
        let c = r0.enter(SpanCat::Coll, "bcast", 0.0);
        r0.activity(ActivityKind::Send, 0.0, 1.0, Some(1), 8, mi(1, 1, 5));
        r0.exit(c, 1.0);
        let c = r0.enter(SpanCat::Coll, "reduce", 1.0);
        r0.activity(ActivityKind::Send, 1.0, 2.0, Some(1), 8, mi(2, 1, 6));
        r0.exit(c, 2.0);
        let mut r1 = Recorder::new(1);
        let c = r1.enter(SpanCat::Coll, "bcast", 0.0);
        r1.activity(ActivityKind::Recv, 1.0, 1.5, Some(0), 8, mi(1, 1, 5));
        r1.exit(c, 1.5);
        r1.activity(ActivityKind::Recv, 2.0, 2.5, Some(0), 8, mi(2, 1, 6));
        let doc = chrome_trace(&[r0.finish(2.0), r1.finish(2.5)]);
        let rep = lint_trace(&doc).unwrap();
        assert!(
            rep.findings
                .iter()
                .any(|f| f.contains("collective participation mismatch")),
            "{}",
            rep.render()
        );
    }

    #[test]
    fn determinism_check_accepts_identical_and_rejects_divergent() {
        let a = clean_trace();
        let b = clean_trace();
        check_determinism(&a, &b).unwrap();

        let mut r0 = Recorder::new(0);
        r0.activity(ActivityKind::Send, 0.0, 1.0, Some(1), 16, mi(1, 0, 5));
        r0.activity(ActivityKind::Send, 1.0, 2.0, Some(1), 8, mi(2, 0, 5));
        let mut r1 = Recorder::new(1);
        r1.activity(ActivityKind::Recv, 1.0, 1.5, Some(0), 16, mi(1, 0, 5));
        r1.activity(ActivityKind::Recv, 2.0, 2.5, Some(0), 8, mi(2, 0, 5));
        let c = chrome_trace(&[r0.finish(2.0), r1.finish(2.5)]);
        let err = check_determinism(&a, &c).unwrap_err();
        assert!(err.contains("diverge"), "{err}");
    }

    #[test]
    fn trace_without_uids_degrades_gracefully() {
        let mut r0 = Recorder::new(0);
        r0.activity(ActivityKind::Compute, 0.0, 1.0, None, 0, None);
        let doc = chrome_trace(&[r0.finish(1.0)]);
        let rep = lint_trace(&doc).unwrap();
        assert!(rep.is_clean(), "{}", rep.render());
        assert_eq!(rep.stats.messages, 0);
    }
}
