//! Communication-correctness checking for the simulated 3D LU machine.
//!
//! Two halves, sharing one vocabulary of findings:
//!
//! - **Online sanitizer** — runs *inside* a simulation when enabled.
//!   Vector clocks ([`VClock`]) piggybacked on every message give the
//!   happens-before order; the outstanding-send table ([`SanState`])
//!   detects wildcard-receive **races** (two concurrent sends competing
//!   for the same `(ctx, tag)` slot) and finalize-time **leaks** (sent but
//!   never received). The wait-for graph ([`WaitGraph`]) detects
//!   **deadlock** while the run is still alive and aborts with the exact
//!   cycle — rank, phase, `(ctx, src, tag)` — instead of a bare timeout.
//! - **Offline linter** ([`lint_trace`], [`check_determinism`]) — replays
//!   the Chrome-trace artifacts the `obs` crate exports and statically
//!   checks send↔recv pairing, per-`(ctx, tag)` FIFO order, collective
//!   participation, and schedule determinism across repeated runs. Also
//!   available as the `commcheck` binary and `salu --lint-trace`.
//!
//! This crate is a leaf: it depends only on `obs` (for the trace format),
//! never on the simulator, so `simgrid` can embed the online half without
//! a dependency cycle.

#![forbid(unsafe_code)]

pub mod lint;
pub mod online;
pub mod report;
pub mod vclock;
pub mod waitgraph;

pub use lint::{check_determinism, lint_trace, LintReport, LintStats};
pub use online::{SanState, SendRec};
pub use report::{CommReport, Finding};
pub use vclock::VClock;
pub use waitgraph::{WaitGraph, WaitInfo};
