#![forbid(unsafe_code)]

//! Fill-reducing ordering substrate: the METIS substitute.
//!
//! The paper orders matrices with METIS nested dissection before
//! factorization (§II-B). This crate provides two nested-dissection engines
//! and the separator-tree output the symbolic phase consumes:
//!
//! - [`geometric`]: exact coordinate-plane separators for regular 2D/3D
//!   grids — these reproduce the separator sizes (`sqrt(n/2^i)`, `n^(2/3)`)
//!   that the paper's analysis in §IV assumes, so measured results can be
//!   compared against the closed-form models.
//! - [`multilevel`]: a general-graph multilevel bisection (heavy-edge
//!   matching coarsening, graph-growing initial bisection, Fiduccia-
//!   Mattheyses refinement) for matrices without usable geometry (the KKT
//!   proxy, Matrix Market inputs).
//!
//! Both produce a [`septree::SepTree`]: the binary tree of separators and
//! leaf subdomains, in postorder, together with the nested-dissection
//! permutation. The elimination tree of the reordered matrix is exactly
//! this tree (paper Fig. 2c), which is what the 3D algorithm partitions
//! across process grids.

pub mod bisect;
pub mod geometric;
pub mod graph;
pub mod multilevel;
pub mod nd;
pub mod rcm;
pub mod refine;
pub mod septree;

pub use graph::Graph;
pub use nd::{nested_dissection, NdOptions};
pub use rcm::reverse_cuthill_mckee;
pub use septree::{SepNode, SepTree};
