//! The recursive nested-dissection driver.
//!
//! Dispatches between the geometric (grid) and multilevel (general graph)
//! bisection engines, recurses until subdomains fall below the leaf size,
//! and emits a [`SepTree`] in postorder together with the fill-reducing
//! permutation: within every subtree, the two halves are numbered first and
//! the separator last (paper §II-B and Fig. 2a).

use crate::geometric::{plane_bisect, Coords};
use crate::graph::Graph;
use crate::multilevel::multilevel_vertex_separator;
use crate::septree::{SepNode, SepTree};
use sparsemat::testmats::Geometry;
use sparsemat::Perm;

/// Nested-dissection configuration.
#[derive(Clone, Copy, Debug)]
pub struct NdOptions {
    /// Subdomains at or below this size become leaves (dense supernodes
    /// downstream). SuperLU's supernode relaxation plays the same role.
    pub leaf_size: usize,
    /// Seed for the randomized multilevel engine (geometric ND is exact and
    /// ignores it).
    pub seed: u64,
    /// Use geometric plane separators when the matrix carries a grid
    /// geometry; fall back to multilevel otherwise.
    pub geometry: Geometry,
}

impl Default for NdOptions {
    fn default() -> Self {
        NdOptions {
            leaf_size: 32,
            seed: 0x5a1a,
            geometry: Geometry::General,
        }
    }
}

struct NdState<'g> {
    g: &'g Graph,
    coords: Option<Coords>,
    opts: NdOptions,
    /// Output nodes, in postorder.
    nodes: Vec<SepNode>,
    /// `order[new] = old`, filled in as vertices are numbered.
    order: Vec<usize>,
}

impl<'g> NdState<'g> {
    /// Bisect `vertices`; returns `(c1, c2, sep)` or `None` if the subgraph
    /// should become a leaf (bisection failed to split it).
    fn bisect(
        &mut self,
        vertices: &[usize],
        level: usize,
    ) -> Option<(Vec<usize>, Vec<usize>, Vec<usize>)> {
        let (c1, c2, sep) = if let Some(coords) = &self.coords {
            plane_bisect(coords, vertices)
        } else {
            let (sub, map) = self.g.subgraph(vertices);
            let (assign, _) =
                multilevel_vertex_separator(&sub, self.opts.seed ^ (level as u64) << 8);
            let mut c1 = Vec::new();
            let mut c2 = Vec::new();
            let mut sep = Vec::new();
            for (local, &orig) in map.iter().enumerate() {
                match assign[local] {
                    0 => c1.push(orig),
                    1 => c2.push(orig),
                    _ => sep.push(orig),
                }
            }
            (c1, c2, sep)
        };
        // A degenerate split (everything in one part) cannot recurse.
        if c1.is_empty() && c2.is_empty() {
            return None;
        }
        if (c1.is_empty() || c2.is_empty()) && sep.is_empty() {
            return None;
        }
        Some((c1, c2, sep))
    }

    /// Recurse on `vertices`; creates this subtree's nodes in postorder and
    /// returns the subtree root's node index.
    fn recurse(&mut self, vertices: Vec<usize>, level: usize) -> usize {
        if vertices.len() <= self.opts.leaf_size {
            return self.emit_leaf(vertices, level);
        }
        match self.bisect(&vertices, level) {
            None => self.emit_leaf(vertices, level),
            Some((c1, c2, sep)) => {
                let mut children = Vec::new();
                if !c1.is_empty() {
                    children.push(self.recurse(c1, level + 1));
                }
                if !c2.is_empty() {
                    children.push(self.recurse(c2, level + 1));
                }
                let start = self.order.len();
                self.order.extend_from_slice(&sep);
                let idx = self.nodes.len();
                self.nodes.push(SepNode {
                    parent: None,
                    children: children.clone(),
                    cols: start..self.order.len(),
                    level,
                    is_leaf: children.is_empty(),
                });
                for c in children {
                    self.nodes[c].parent = Some(idx);
                }
                idx
            }
        }
    }

    fn emit_leaf(&mut self, vertices: Vec<usize>, level: usize) -> usize {
        let start = self.order.len();
        self.order.extend_from_slice(&vertices);
        let idx = self.nodes.len();
        self.nodes.push(SepNode {
            parent: None,
            children: Vec::new(),
            cols: start..self.order.len(),
            level,
            is_leaf: true,
        });
        idx
    }
}

/// Run nested dissection on the adjacency graph `g` of a matrix.
///
/// The returned tree's permutation maps the matrix into elimination order:
/// factor it with `a.permute_sym(&tree.perm)`.
///
/// ```
/// use ordering::{nested_dissection, Graph, NdOptions};
/// use sparsemat::matgen::grid2d_5pt;
/// use sparsemat::testmats::Geometry;
///
/// let a = grid2d_5pt(16, 16, 0.0, 0);
/// let tree = nested_dissection(
///     &Graph::from_matrix(&a),
///     NdOptions {
///         leaf_size: 16,
///         geometry: Geometry::Grid2d { nx: 16, ny: 16 },
///         ..Default::default()
///     },
/// );
/// tree.validate().unwrap();
/// // The top separator of a 16x16 grid is one 16-vertex plane.
/// assert_eq!(tree.nodes[tree.root()].width(), 16);
/// ```
pub fn nested_dissection(g: &Graph, opts: NdOptions) -> SepTree {
    let n = g.n();
    assert!(n > 0, "empty graph");
    let coords = match opts.geometry {
        Geometry::General => None,
        geom => {
            let c = Coords::from_geometry(&geom);
            assert_eq!(
                c.len(),
                n,
                "geometry size does not match graph vertex count"
            );
            Some(c)
        }
    };
    let mut state = NdState {
        g,
        coords,
        opts,
        nodes: Vec::new(),
        order: Vec::with_capacity(n),
    };
    let all: Vec<usize> = (0..n).collect();
    let root = state.recurse(all, 0);
    debug_assert_eq!(root, state.nodes.len() - 1);

    // Root ended up at level 0 by construction; levels already measure depth
    // from the root, as SepTree requires.
    let tree = SepTree {
        nodes: state.nodes,
        perm: Perm::from_old_order(state.order),
    };
    debug_assert!(tree.validate().is_ok(), "{:?}", tree.validate());
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsemat::matgen::{grid2d_5pt, grid3d_7pt, kkt_3d};
    use sparsemat::testmats::Geometry;

    #[test]
    fn geometric_nd_on_square_grid() {
        let k = 16;
        let a = grid2d_5pt(k, k, 0.0, 0);
        let g = Graph::from_matrix(&a);
        let tree = nested_dissection(
            &g,
            NdOptions {
                leaf_size: 8,
                geometry: Geometry::Grid2d { nx: k, ny: k },
                ..Default::default()
            },
        );
        tree.validate().unwrap();
        assert_eq!(tree.n(), 256);
        // Top separator of a 16x16 grid is one 16-vertex column.
        let root = &tree.nodes[tree.root()];
        assert_eq!(root.width(), k);
        assert!(!root.is_leaf);
    }

    #[test]
    fn separator_cascade_follows_sqrt_law() {
        let k = 32;
        let a = grid2d_5pt(k, k, 0.0, 0);
        let g = Graph::from_matrix(&a);
        let tree = nested_dissection(
            &g,
            NdOptions {
                leaf_size: 4,
                geometry: Geometry::Grid2d { nx: k, ny: k },
                ..Default::default()
            },
        );
        let sizes = tree.separator_sizes_by_level();
        // Level 0: one column (32). Level 1: two half-rows (2*16=32 minus
        // overlaps). The totals should grow at most ~sqrt(2)^i.
        assert_eq!(sizes[0], 32);
        assert!(sizes[1] >= 24 && sizes[1] <= 40, "{sizes:?}");
    }

    #[test]
    fn multilevel_nd_on_3d_grid() {
        let a = grid3d_7pt(6, 6, 6, 0.0, 0);
        let g = Graph::from_matrix(&a);
        let tree = nested_dissection(
            &g,
            NdOptions {
                leaf_size: 16,
                geometry: Geometry::General,
                ..Default::default()
            },
        );
        tree.validate().unwrap();
        assert_eq!(tree.n(), 216);
        assert!(tree.height() >= 3);
    }

    #[test]
    fn nd_on_kkt_matrix() {
        let a = kkt_3d(4, 4, 3, 1e-2, 0);
        let g = Graph::from_matrix(&a);
        let tree = nested_dissection(
            &g,
            NdOptions {
                leaf_size: 12,
                geometry: Geometry::General,
                ..Default::default()
            },
        );
        tree.validate().unwrap();
        assert_eq!(tree.n(), 96);
    }

    #[test]
    fn permutation_respects_tree_locality() {
        // Every vertex's new index must fall inside its tree node's range —
        // guaranteed by construction, but check the separator property too:
        // after permutation, no entry of the reordered matrix may connect
        // the two sibling subtrees directly.
        let k = 12;
        let a = grid2d_5pt(k, k, 0.0, 0);
        let g = Graph::from_matrix(&a);
        let tree = nested_dissection(
            &g,
            NdOptions {
                leaf_size: 8,
                geometry: Geometry::Grid2d { nx: k, ny: k },
                ..Default::default()
            },
        );
        let pa = a.permute_sym(&tree.perm);
        let root = &tree.nodes[tree.root()];
        let [left, right] = [root.children[0], root.children[1]];
        let lr = collect_range(&tree, left);
        let rr = collect_range(&tree, right);
        for i in lr.clone() {
            for &j in pa.row_cols(i) {
                assert!(
                    !rr.contains(&j),
                    "entry ({i},{j}) connects sibling subtrees"
                );
            }
        }
    }

    /// All new column indices covered by the subtree rooted at `node`.
    fn collect_range(tree: &SepTree, node: usize) -> std::ops::Range<usize> {
        // Postorder + contiguous numbering means a subtree covers the range
        // from its leftmost descendant's start to its own end.
        let mut lo = tree.nodes[node].cols.start;
        let mut stack = vec![node];
        while let Some(v) = stack.pop() {
            lo = lo.min(tree.nodes[v].cols.start);
            stack.extend_from_slice(&tree.nodes[v].children);
        }
        lo..tree.nodes[node].cols.end
    }

    #[test]
    fn leaf_size_respected() {
        let a = grid2d_5pt(20, 20, 0.0, 0);
        let g = Graph::from_matrix(&a);
        let tree = nested_dissection(
            &g,
            NdOptions {
                leaf_size: 10,
                geometry: Geometry::Grid2d { nx: 20, ny: 20 },
                ..Default::default()
            },
        );
        for node in &tree.nodes {
            if node.is_leaf {
                assert!(node.width() <= 10, "leaf width {}", node.width());
            }
        }
    }
}
