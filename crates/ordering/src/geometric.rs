//! Geometric nested dissection for regular grids.
//!
//! When the matrix comes from a stencil on an `nx x ny (x nz)` grid, the
//! optimal separators are coordinate planes: cutting the longest axis at its
//! midpoint with a width-1 plane disconnects the two halves for any
//! reach-1 stencil (5/9-point in 2D, 7/27-point in 3D). This produces
//! exactly the separator cascade the paper's planar analysis assumes
//! (`|sep at level i| = sqrt(n / 2^i)`) and the `n^(2/3)` top separator for
//! 3D geometry.

use sparsemat::testmats::Geometry;

/// Per-vertex integer coordinates derived from a grid geometry.
#[derive(Clone, Debug)]
pub struct Coords {
    pub xyz: Vec<[u32; 3]>,
}

impl Coords {
    /// Coordinates for every vertex of a grid geometry. Panics for
    /// [`Geometry::General`] (no coordinates exist).
    pub fn from_geometry(geom: &Geometry) -> Coords {
        match *geom {
            Geometry::Grid2d { nx, ny } => {
                let mut xyz = Vec::with_capacity(nx * ny);
                for y in 0..ny {
                    for x in 0..nx {
                        xyz.push([x as u32, y as u32, 0]);
                    }
                }
                Coords { xyz }
            }
            Geometry::Grid3d { nx, ny, nz } => {
                let mut xyz = Vec::with_capacity(nx * ny * nz);
                for z in 0..nz {
                    for y in 0..ny {
                        for x in 0..nx {
                            xyz.push([x as u32, y as u32, z as u32]);
                        }
                    }
                }
                Coords { xyz }
            }
            Geometry::General => panic!("no coordinates for general geometry"),
        }
    }

    /// Number of vertices covered.
    pub fn len(&self) -> usize {
        self.xyz.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.xyz.is_empty()
    }
}

/// Split `vertices` by a coordinate plane: choose the axis with the largest
/// bounding-box extent and cut at the median plane. Returns
/// `(low side, high side, separator)` in original vertex ids.
///
/// The separator is the set of vertices with the median coordinate — a
/// width-1 plane, valid for any reach-1 stencil.
pub fn plane_bisect(coords: &Coords, vertices: &[usize]) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
    assert!(!vertices.is_empty());
    // Bounding box.
    let mut lo = [u32::MAX; 3];
    let mut hi = [0u32; 3];
    for &v in vertices {
        for d in 0..3 {
            lo[d] = lo[d].min(coords.xyz[v][d]);
            hi[d] = hi[d].max(coords.xyz[v][d]);
        }
    }
    // Longest axis.
    let axis = (0..3)
        .max_by_key(|&d| hi[d] - lo[d])
        .expect("three axes exist");
    if hi[axis] == lo[axis] {
        // Degenerate: a single point per axis; cannot bisect.
        return (vertices.to_vec(), Vec::new(), Vec::new());
    }
    let mid = lo[axis] + (hi[axis] - lo[axis]) / 2;
    let mut low = Vec::new();
    let mut high = Vec::new();
    let mut sep = Vec::new();
    for &v in vertices {
        let c = coords.xyz[v][axis];
        if c < mid {
            low.push(v);
        } else if c > mid {
            high.push(v);
        } else {
            sep.push(v);
        }
    }
    (low, high, sep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use sparsemat::matgen::{grid2d_5pt, grid2d_9pt, grid3d_7pt};

    #[test]
    fn coords_match_generator_indexing() {
        let c = Coords::from_geometry(&Geometry::Grid3d {
            nx: 3,
            ny: 4,
            nz: 2,
        });
        assert_eq!(c.len(), 24);
        // idx3d(nx=3, ny=4, x=2, y=1, z=1) = (1*4+1)*3+2 = 17
        assert_eq!(c.xyz[17], [2, 1, 1]);
    }

    #[test]
    fn plane_separator_disconnects_5pt() {
        let nx = 9;
        let a = grid2d_5pt(nx, 7, 0.0, 0);
        let g = Graph::from_matrix(&a);
        let c = Coords::from_geometry(&Geometry::Grid2d { nx, ny: 7 });
        let all: Vec<usize> = (0..g.n()).collect();
        let (lo, hi, sep) = plane_bisect(&c, &all);
        assert_eq!(sep.len(), 7); // a full column of the grid
        assert_eq!(lo.len() + hi.len() + sep.len(), g.n());
        // No edge from lo to hi.
        let hiset: std::collections::HashSet<_> = hi.iter().collect();
        for &v in &lo {
            for &u in g.neighbors(v) {
                assert!(!hiset.contains(&u), "edge {v}-{u} crosses separator");
            }
        }
    }

    #[test]
    fn plane_separator_disconnects_9pt_and_7pt() {
        // Reach-1 diagonal stencils must also be cut by a width-1 plane.
        for (a, geom) in [
            (grid2d_9pt(8, 8, 0.0, 0), Geometry::Grid2d { nx: 8, ny: 8 }),
            (
                grid3d_7pt(5, 5, 5, 0.0, 0),
                Geometry::Grid3d {
                    nx: 5,
                    ny: 5,
                    nz: 5,
                },
            ),
        ] {
            let g = Graph::from_matrix(&a);
            let c = Coords::from_geometry(&geom);
            let all: Vec<usize> = (0..g.n()).collect();
            let (lo, hi, sep) = plane_bisect(&c, &all);
            assert!(!sep.is_empty());
            let hiset: std::collections::HashSet<_> = hi.iter().collect();
            for &v in &lo {
                for &u in g.neighbors(v) {
                    assert!(!hiset.contains(&u));
                }
            }
        }
    }

    #[test]
    fn degenerate_point_returns_all_low() {
        let c = Coords::from_geometry(&Geometry::Grid2d { nx: 1, ny: 1 });
        let (lo, hi, sep) = plane_bisect(&c, &[0]);
        assert_eq!(lo, vec![0]);
        assert!(hi.is_empty() && sep.is_empty());
    }
}
