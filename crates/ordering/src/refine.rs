//! Fiduccia–Mattheyses (FM) refinement of an edge bisection.
//!
//! One FM pass tentatively moves every vertex at most once, always picking
//! the highest-gain movable vertex (subject to a balance constraint),
//! remembers the best prefix of the move sequence, and rolls back to it.
//! A handful of passes converges; this is the refinement engine the
//! multilevel partitioner runs at every uncoarsening level, exactly as
//! METIS does.

use crate::bisect::Bisection;
use crate::graph::Graph;
use std::collections::BinaryHeap;

/// Maximum allowed side weight as a fraction of total (1.0 = perfectly
/// balanced halves are required; METIS-style default allows some slack).
const BALANCE_SLACK: f64 = 1.10;

#[derive(PartialEq, Eq)]
struct HeapItem {
    gain: i64,
    v: usize,
    stamp: u64,
}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.gain
            .cmp(&other.gain)
            .then_with(|| other.v.cmp(&self.v))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The gain of moving `v` to the other side: external minus internal edge
/// weight.
fn gain_of(g: &Graph, side: &[u8], v: usize) -> i64 {
    let mut ext = 0i64;
    let mut int = 0i64;
    for (u, w) in g.neighbors_weighted(v) {
        if side[u] == side[v] {
            int += w as i64;
        } else {
            ext += w as i64;
        }
    }
    ext - int
}

/// Run up to `passes` FM passes on `bis`, improving the cut in place.
/// Returns the number of passes that made an improvement.
pub fn fm_refine(g: &Graph, bis: &mut Bisection, passes: usize) -> usize {
    let n = g.n();
    let total = g.total_vwgt();
    let max_side = ((total as f64 / 2.0) * BALANCE_SLACK).ceil() as u64;
    let mut improved_passes = 0;

    for _ in 0..passes {
        let mut side = bis.side.clone();
        let mut weight = bis.weight;
        let mut locked = vec![false; n];
        let mut stamp = vec![0u64; n];
        let mut heap = BinaryHeap::new();
        for v in 0..n {
            heap.push(HeapItem {
                gain: gain_of(g, &side, v),
                v,
                stamp: 0,
            });
        }

        // Move log for rollback: (vertex, cut delta after the move).
        let mut cur_cut = bis.cut as i64;
        let mut best_cut = cur_cut;
        let mut best_len = 0usize;
        let mut moves: Vec<usize> = Vec::new();

        while let Some(item) = heap.pop() {
            let v = item.v;
            if locked[v] || item.stamp != stamp[v] {
                continue; // stale entry
            }
            let from = side[v] as usize;
            let to = 1 - from;
            // Balance check: would the destination overflow, or the source
            // become empty?
            if weight[to] + g.vwgt[v] > max_side || weight[from] <= g.vwgt[v] {
                locked[v] = true; // cannot move this pass
                continue;
            }
            // Apply the move.
            locked[v] = true;
            side[v] = to as u8;
            weight[from] -= g.vwgt[v];
            weight[to] += g.vwgt[v];
            cur_cut -= item.gain;
            moves.push(v);
            if cur_cut < best_cut {
                best_cut = cur_cut;
                best_len = moves.len();
            }
            // Update neighbour gains (lazy: push fresh entries).
            for &u in g.neighbors(v) {
                if !locked[u] {
                    stamp[u] += 1;
                    heap.push(HeapItem {
                        gain: gain_of(g, &side, u),
                        v: u,
                        stamp: stamp[u],
                    });
                }
            }
        }

        if best_cut >= bis.cut as i64 {
            break; // no improvement this pass; converged
        }
        // Roll forward only the best prefix.
        let mut side = bis.side.clone();
        for &v in &moves[..best_len] {
            side[v] = 1 - side[v];
        }
        *bis = Bisection::recompute(g, side);
        debug_assert_eq!(bis.cut as i64, best_cut);
        improved_passes += 1;
    }
    improved_passes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bisect::graph_growing_bisection;
    use sparsemat::matgen::grid2d_5pt;

    #[test]
    fn refinement_never_worsens_cut() {
        let a = grid2d_5pt(16, 16, 0.0, 0);
        let g = Graph::from_matrix(&a);
        for seed in 0..4 {
            let mut b = graph_growing_bisection(&g, 1, seed);
            let before = b.cut;
            fm_refine(&g, &mut b, 6);
            assert!(b.cut <= before, "seed {seed}: {} -> {}", before, b.cut);
            assert!(b.imbalance() < 1.4);
        }
    }

    #[test]
    fn refinement_fixes_bad_cut() {
        // Start from a deliberately awful interleaved assignment on a grid;
        // FM should reduce the cut dramatically.
        let a = grid2d_5pt(12, 12, 0.0, 0);
        let g = Graph::from_matrix(&a);
        let side: Vec<u8> = (0..g.n()).map(|v| (v % 2) as u8).collect();
        let mut b = Bisection::recompute(&g, side);
        let before = b.cut;
        fm_refine(&g, &mut b, 10);
        assert!(
            b.cut * 3 < before,
            "cut only improved from {before} to {}",
            b.cut
        );
    }

    #[test]
    fn gain_formula() {
        // Path 0-1-2 with side [0,1,1]: moving 1 to side 0 cuts edge (1,2)
        // but joins (0,1): gain = ext(1) - int(1) = 1 - 1 = 0.
        let xadj = vec![0, 1, 3, 4];
        let adj = vec![1, 0, 2, 1];
        let g = Graph::from_adjacency(xadj, adj);
        let side = vec![0u8, 1, 1];
        assert_eq!(gain_of(&g, &side, 1), 0);
        assert_eq!(gain_of(&g, &side, 0), 1);
        assert_eq!(gain_of(&g, &side, 2), -1);
    }
}
