//! Reverse Cuthill–McKee ordering: the classic bandwidth-reducing baseline.
//!
//! Not used by the 3D algorithm itself (it needs the separator tree that
//! nested dissection produces), but included as the standard comparison
//! point: RCM minimizes bandwidth, ND minimizes fill — and the fill gap is
//! exactly why sparse direct solvers order with ND (the `ordering_symbolic`
//! bench and `ordering_demo` example quantify it on this codebase).

use crate::graph::Graph;
use sparsemat::Perm;

/// Compute the reverse Cuthill–McKee permutation of `g`. Handles
/// disconnected graphs by restarting from a pseudo-peripheral vertex of
/// each unvisited component.
pub fn reverse_cuthill_mckee(g: &Graph) -> Perm {
    let n = g.n();
    let mut order = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mut neighbors: Vec<usize> = Vec::new();

    for start in 0..n {
        if visited[start] {
            continue;
        }
        // BFS from a pseudo-peripheral vertex of this component.
        let root = g.pseudo_peripheral(start);
        let root = if visited[root] { start } else { root };
        visited[root] = true;
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(root);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            // Enqueue unvisited neighbours in increasing-degree order
            // (the Cuthill-McKee tie-break).
            neighbors.clear();
            neighbors.extend(g.neighbors(v).iter().copied().filter(|&u| !visited[u]));
            neighbors.sort_unstable_by_key(|&u| g.degree(u));
            for &u in &neighbors {
                if !visited[u] {
                    visited[u] = true;
                    queue.push_back(u);
                }
            }
        }
    }
    debug_assert_eq!(order.len(), n);
    order.reverse(); // the "reverse" in RCM
    Perm::from_old_order(order)
}

/// Bandwidth of a matrix pattern under a permutation: `max |p(i) - p(j)|`
/// over nonzeros. The quantity RCM minimizes.
pub fn bandwidth(a: &sparsemat::Csr, perm: &Perm) -> usize {
    let mut bw = 0usize;
    for i in 0..a.nrows {
        let pi = perm.new_of(i);
        for &j in a.row_cols(i) {
            let pj = perm.new_of(j);
            bw = bw.max(pi.abs_diff(pj));
        }
    }
    bw
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nd::{nested_dissection, NdOptions};
    use sparsemat::matgen::{grid2d_5pt, random_band};
    use sparsemat::testmats::Geometry;

    #[test]
    fn rcm_is_a_permutation_and_reduces_bandwidth() {
        let a = grid2d_5pt(12, 12, 0.0, 0);
        let g = Graph::from_matrix(&a);
        let p = reverse_cuthill_mckee(&g);
        assert_eq!(p.len(), 144);
        // The generator's natural order has bandwidth nx = 12; a random
        // shuffle would be ~n. RCM must stay near the natural bandwidth.
        let bw = bandwidth(&a, &p);
        assert!(bw <= 16, "bandwidth {bw}");
    }

    #[test]
    fn rcm_handles_disconnected_graphs() {
        // Block-diagonal: two independent bands.
        let a = random_band(30, 2, 0.8, 1);
        let mut coo = sparsemat::Coo::new(60, 60);
        for i in 0..30 {
            for (j, v) in a.row_cols(i).iter().zip(a.row_vals(i)) {
                coo.push(i, *j, *v);
                coo.push(30 + i, 30 + *j, *v);
            }
        }
        let b = coo.to_csr();
        let g = Graph::from_matrix(&b);
        let p = reverse_cuthill_mckee(&g);
        assert_eq!(p.len(), 60);
    }

    #[test]
    fn nd_beats_rcm_on_fill_for_grids() {
        // The reason sparse LU orders with ND: compare predicted factor
        // sizes under both orderings on a planar grid.
        use symbolic_free_fill::envelope_fill;
        // The ND advantage is asymptotic (n log n vs n^(3/2) envelope);
        // use a grid large enough for the gap to be unambiguous.
        let k = 48;
        let a = grid2d_5pt(k, k, 0.0, 0);
        let g = Graph::from_matrix(&a);

        let rcm = reverse_cuthill_mckee(&g);
        let rcm_fill = envelope_fill(&a, &rcm);

        let tree = nested_dissection(
            &g,
            NdOptions {
                leaf_size: 16,
                geometry: Geometry::Grid2d { nx: k, ny: k },
                ..Default::default()
            },
        );
        let pa = a.permute_sym(&tree.perm).symmetrize_pattern();
        let nd_fill = proper_scalar_fill(&pa);
        assert!(
            (nd_fill as f64) < 0.75 * rcm_fill as f64,
            "ND fill {nd_fill} must clearly beat RCM envelope {rcm_fill}"
        );
    }

    /// Envelope (profile) fill bound for a banded ordering: the storage a
    /// band/profile solver would use.
    mod symbolic_free_fill {
        use super::*;
        pub fn envelope_fill(a: &sparsemat::Csr, perm: &Perm) -> usize {
            // Sum over rows of (row index - first nonzero column index + 1)
            // in the permuted matrix: the profile of the lower triangle.
            let n = a.nrows;
            let mut first = vec![usize::MAX; n];
            for i in 0..n {
                let pi = perm.new_of(i);
                for &j in a.row_cols(i) {
                    let pj = perm.new_of(j);
                    if pj <= pi {
                        first[pi] = first[pi].min(pj);
                    }
                }
            }
            (0..n).map(|i| i - first[i].min(i) + 1).sum()
        }
    }

    /// Exact scalar symbolic fill (lower triangle nonzero count of L).
    fn proper_scalar_fill(pa: &sparsemat::Csr) -> usize {
        let n = pa.nrows;
        let mut structs: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut total = 0usize;
        for v in 0..n {
            let mut s: Vec<usize> = pa.row_cols(v).iter().copied().filter(|&u| u > v).collect();
            for &c in &children[v] {
                s.extend(structs[c].iter().copied().filter(|&u| u > v));
            }
            s.sort_unstable();
            s.dedup();
            if let Some(&p) = s.first() {
                children[p].push(v);
            }
            total += s.len() + 1; // + diagonal
            structs[v] = s;
        }
        total
    }
}
