//! The separator tree: output of nested dissection, input to the symbolic
//! phase and the 3D algorithm's tree partitioner.

use sparsemat::Perm;
use std::ops::Range;

/// One node of the separator tree: either an internal separator or a leaf
/// subdomain.
#[derive(Clone, Debug)]
pub struct SepNode {
    /// Parent node index, `None` for the root.
    pub parent: Option<usize>,
    /// Child node indices (empty for leaves; usually 2, possibly more when a
    /// subgraph fell apart into components).
    pub children: Vec<usize>,
    /// Half-open range of *new* (post-permutation) column indices owned by
    /// this node. Children always occupy lower ranges than their parent
    /// (required for bottom-up elimination order). May be empty for an
    /// empty separator of a disconnected subgraph.
    pub cols: Range<usize>,
    /// Depth from the root (root = 0) — the level index used throughout the
    /// paper's analysis.
    pub level: usize,
    /// True for leaf subdomains (no further dissection).
    pub is_leaf: bool,
}

impl SepNode {
    /// Number of vertices owned by this node.
    pub fn width(&self) -> usize {
        self.cols.end - self.cols.start
    }
}

/// The complete nested-dissection result: nodes in **postorder** (every
/// child precedes its parent; the root is last) plus the fill-reducing
/// permutation.
#[derive(Clone, Debug)]
pub struct SepTree {
    pub nodes: Vec<SepNode>,
    pub perm: Perm,
}

impl SepTree {
    /// The root node index (always the last node).
    pub fn root(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.perm.len()
    }

    /// Height of the tree (max level + 1).
    pub fn height(&self) -> usize {
        self.nodes.iter().map(|n| n.level).max().unwrap_or(0) + 1
    }

    /// Sizes of separators by level: `sizes[level] = total vertices in
    /// separator nodes at that level`. Used to compare measured separator
    /// growth against the `sqrt(n / 2^i)` planar model.
    pub fn separator_sizes_by_level(&self) -> Vec<usize> {
        let h = self.height();
        let mut sizes = vec![0usize; h];
        for node in &self.nodes {
            if !node.is_leaf {
                sizes[node.level] += node.width();
            }
        }
        sizes
    }

    /// Validate all structural invariants; called by tests and debug
    /// assertions:
    /// 1. nodes are in postorder (children before parents),
    /// 2. column ranges of children are below their parent's,
    /// 3. the column ranges of all nodes exactly tile `0..n`,
    /// 4. parent/child links are mutually consistent.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.n();
        let mut covered = vec![false; n];
        for (i, node) in self.nodes.iter().enumerate() {
            for &c in &node.children {
                if c >= i {
                    return Err(format!("child {c} does not precede parent {i}"));
                }
                if self.nodes[c].parent != Some(i) {
                    return Err(format!("child {c} has wrong parent link"));
                }
                if self.nodes[c].cols.end > node.cols.start {
                    return Err(format!(
                        "child {c} range {:?} not below parent {i} range {:?}",
                        self.nodes[c].cols, node.cols
                    ));
                }
                if self.nodes[c].level != node.level + 1 {
                    return Err(format!("child {c} level inconsistent"));
                }
            }
            if let Some(p) = node.parent {
                if !self.nodes[p].children.contains(&i) {
                    return Err(format!("parent {p} missing child link to {i}"));
                }
            } else if i != self.root() {
                return Err(format!("non-root node {i} has no parent"));
            }
            for k in node.cols.clone() {
                if covered[k] {
                    return Err(format!("column {k} covered twice"));
                }
                covered[k] = true;
            }
            if node.is_leaf != node.children.is_empty() {
                return Err(format!("node {i} leaf flag inconsistent"));
            }
        }
        if let Some(k) = covered.iter().position(|&c| !c) {
            return Err(format!("column {k} not covered by any node"));
        }
        Ok(())
    }
}

impl SepTree {
    /// Relaxed-supernode amalgamation: collapse every subtree whose total
    /// column count is at most `max_merged` into a single leaf node.
    ///
    /// SuperLU_DIST applies the same relaxation to the bottom of the
    /// elimination tree: tiny supernodes waste panel setup and message
    /// latency, so merging them (accepting the extra fill inside the merged
    /// block) is a net win. Subtree column ranges are contiguous by
    /// construction (postorder numbering), so a merge is just a range
    /// union; the permutation is unchanged.
    pub fn amalgamate(&self, max_merged: usize) -> SepTree {
        let n_nodes = self.nodes.len();
        // Subtree column spans (contiguous: leftmost descendant start to
        // own end) and widths.
        let mut span_start: Vec<usize> = (0..n_nodes).map(|i| self.nodes[i].cols.start).collect();
        for i in 0..n_nodes {
            for &c in &self.nodes[i].children {
                span_start[i] = span_start[i].min(span_start[c]);
            }
        }
        // A node becomes a merged leaf when its whole subtree fits and its
        // parent's doesn't (top-most such node).
        let subtree_width = |i: usize| -> usize { self.nodes[i].cols.end - span_start[i] };
        let merged_root: Vec<bool> = (0..n_nodes)
            .map(|i| {
                let parent_fits = self.nodes[i]
                    .parent
                    .map(|p| subtree_width(p) <= max_merged)
                    .unwrap_or(false);
                subtree_width(i) <= max_merged && !parent_fits
            })
            .collect();
        // Rebuild, dropping descendants of merged roots. Postorder of the
        // original tree restricted to surviving nodes is still a postorder.
        let mut new_index = vec![usize::MAX; n_nodes];
        let mut nodes: Vec<SepNode> = Vec::new();
        // Determine dropped nodes top-down (walk from each merged root).
        let mut drop = vec![false; n_nodes];
        for (i, &is_root) in merged_root.iter().enumerate() {
            if is_root {
                let mut stack = self.nodes[i].children.clone();
                while let Some(v) = stack.pop() {
                    drop[v] = true;
                    stack.extend_from_slice(&self.nodes[v].children);
                }
            }
        }
        for i in 0..n_nodes {
            if drop[i] {
                continue;
            }
            let old = &self.nodes[i];
            let idx = nodes.len();
            new_index[i] = idx;
            let (cols, children, is_leaf) = if merged_root[i] {
                (span_start[i]..old.cols.end, Vec::new(), true)
            } else {
                (
                    old.cols.clone(),
                    old.children.iter().map(|&c| new_index[c]).collect(),
                    old.is_leaf,
                )
            };
            nodes.push(SepNode {
                parent: None, // fixed below
                children,
                cols,
                level: old.level,
                is_leaf,
            });
        }
        // Restore parent links and re-normalize levels (depth from root).
        for i in 0..nodes.len() {
            for ci in 0..nodes[i].children.len() {
                let c = nodes[i].children[ci];
                nodes[c].parent = Some(i);
            }
        }
        let root = nodes.len() - 1;
        fix_levels(&mut nodes, root, 0);
        let tree = SepTree {
            nodes,
            perm: self.perm.clone(),
        };
        debug_assert!(tree.validate().is_ok(), "{:?}", tree.validate());
        tree
    }
}

fn fix_levels(nodes: &mut [SepNode], v: usize, level: usize) {
    nodes[v].level = level;
    let children = nodes[v].children.clone();
    for c in children {
        fix_levels(nodes, c, level + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-built 3-node tree: two leaves + root separator.
    fn tiny_tree() -> SepTree {
        SepTree {
            nodes: vec![
                SepNode {
                    parent: Some(2),
                    children: vec![],
                    cols: 0..3,
                    level: 1,
                    is_leaf: true,
                },
                SepNode {
                    parent: Some(2),
                    children: vec![],
                    cols: 3..6,
                    level: 1,
                    is_leaf: true,
                },
                SepNode {
                    parent: None,
                    children: vec![0, 1],
                    cols: 6..8,
                    level: 0,
                    is_leaf: false,
                },
            ],
            perm: Perm::identity(8),
        }
    }

    #[test]
    fn tiny_tree_validates() {
        let t = tiny_tree();
        assert!(t.validate().is_ok());
        assert_eq!(t.root(), 2);
        assert_eq!(t.height(), 2);
        assert_eq!(t.separator_sizes_by_level(), vec![2, 0]);
    }

    #[test]
    fn validation_catches_overlap() {
        let mut t = tiny_tree();
        t.nodes[1].cols = 2..6; // overlaps node 0
        assert!(t.validate().is_err());
    }

    #[test]
    fn amalgamate_merges_small_subtrees() {
        // tiny_tree has two 3-wide leaves + 2-wide root; total width 8.
        let t = tiny_tree();
        // Threshold below any subtree: unchanged structure.
        let same = t.amalgamate(2);
        assert_eq!(same.nodes.len(), 3);
        same.validate().unwrap();
        // Threshold covering everything: the whole tree becomes one leaf.
        let one = t.amalgamate(8);
        assert_eq!(one.nodes.len(), 1);
        assert!(one.nodes[0].is_leaf);
        assert_eq!(one.nodes[0].cols, 0..8);
        one.validate().unwrap();
        // Threshold covering just the leaves: no change (leaves already
        // minimal; merging a leaf alone is a no-op structurally).
        let leaves = t.amalgamate(3);
        assert_eq!(leaves.nodes.len(), 3);
        leaves.validate().unwrap();
    }

    #[test]
    fn amalgamate_on_real_nd_tree() {
        use crate::graph::Graph;
        use crate::nd::{nested_dissection, NdOptions};
        use sparsemat::matgen::grid2d_5pt;
        use sparsemat::testmats::Geometry;
        let a = grid2d_5pt(16, 16, 0.0, 0);
        let g = Graph::from_matrix(&a);
        let tree = nested_dissection(
            &g,
            NdOptions {
                leaf_size: 4,
                geometry: Geometry::Grid2d { nx: 16, ny: 16 },
                ..Default::default()
            },
        );
        let before = tree.nodes.len();
        let merged = tree.amalgamate(24);
        merged.validate().unwrap();
        assert!(
            merged.nodes.len() < before,
            "{} !< {before}",
            merged.nodes.len()
        );
        // Permutation unchanged; every merged leaf within the bound.
        assert_eq!(merged.perm, tree.perm);
        for node in &merged.nodes {
            if node.is_leaf {
                assert!(node.width() <= 24);
            }
        }
    }

    #[test]
    fn validation_catches_bad_order() {
        let mut t = tiny_tree();
        t.nodes[2].cols = 0..2;
        t.nodes[0].cols = 6..8; // child range above parent
        assert!(t.validate().is_err());
    }
}
