//! Weighted undirected graphs in compressed adjacency form, plus the
//! traversal utilities the partitioners need.

use sparsemat::Csr;

/// An undirected graph with integer vertex and edge weights, stored as a
/// symmetric compressed adjacency structure (every edge appears in both
/// endpoint lists). Vertex weights track how many fine vertices a coarse
/// vertex represents during multilevel coarsening.
#[derive(Clone, Debug)]
pub struct Graph {
    pub xadj: Vec<usize>,
    pub adj: Vec<usize>,
    /// Edge weights, parallel to `adj`.
    pub ewgt: Vec<u64>,
    /// Vertex weights.
    pub vwgt: Vec<u64>,
}

impl Graph {
    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.vwgt.len()
    }

    /// Number of undirected edges (each stored twice).
    pub fn num_edges(&self) -> usize {
        self.adj.len() / 2
    }

    /// Total vertex weight.
    pub fn total_vwgt(&self) -> u64 {
        self.vwgt.iter().sum()
    }

    /// Neighbours of `v`.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.adj[self.xadj[v]..self.xadj[v + 1]]
    }

    /// Neighbour/edge-weight pairs of `v`.
    #[inline]
    pub fn neighbors_weighted(&self, v: usize) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.adj[self.xadj[v]..self.xadj[v + 1]]
            .iter()
            .copied()
            .zip(self.ewgt[self.xadj[v]..self.xadj[v + 1]].iter().copied())
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.xadj[v + 1] - self.xadj[v]
    }

    /// Build the adjacency graph of a sparse matrix: the pattern of
    /// `A + A^T` without the diagonal, unit weights (paper §II-B).
    pub fn from_matrix(a: &Csr) -> Graph {
        let (xadj, adj) = a.adjacency();
        let ewgt = vec![1; adj.len()];
        let vwgt = vec![1; a.nrows];
        Graph {
            xadj,
            adj,
            ewgt,
            vwgt,
        }
    }

    /// Build from raw symmetric adjacency with unit weights. Validates
    /// symmetry in debug builds.
    pub fn from_adjacency(xadj: Vec<usize>, adj: Vec<usize>) -> Graph {
        let n = xadj.len() - 1;
        let g = Graph {
            ewgt: vec![1; adj.len()],
            vwgt: vec![1; n],
            xadj,
            adj,
        };
        debug_assert!(g.check_symmetric(), "adjacency must be symmetric");
        g
    }

    /// Verify every edge appears in both directions (test helper).
    pub fn check_symmetric(&self) -> bool {
        for v in 0..self.n() {
            for &u in self.neighbors(v) {
                if u >= self.n() || !self.neighbors(u).contains(&v) {
                    return false;
                }
            }
        }
        true
    }

    /// The induced subgraph on `vertices` (original ids). Returns the
    /// subgraph and the map from subgraph id to original id.
    pub fn subgraph(&self, vertices: &[usize]) -> (Graph, Vec<usize>) {
        let mut local = vec![usize::MAX; self.n()];
        for (i, &v) in vertices.iter().enumerate() {
            local[v] = i;
        }
        let mut xadj = Vec::with_capacity(vertices.len() + 1);
        let mut adj = Vec::new();
        let mut ewgt = Vec::new();
        let mut vwgt = Vec::with_capacity(vertices.len());
        xadj.push(0);
        for &v in vertices {
            for (u, w) in self.neighbors_weighted(v) {
                if local[u] != usize::MAX {
                    adj.push(local[u]);
                    ewgt.push(w);
                }
            }
            vwgt.push(self.vwgt[v]);
            xadj.push(adj.len());
        }
        (
            Graph {
                xadj,
                adj,
                ewgt,
                vwgt,
            },
            vertices.to_vec(),
        )
    }

    /// Connected components: returns (component id per vertex, #components).
    pub fn components(&self) -> (Vec<usize>, usize) {
        let n = self.n();
        let mut comp = vec![usize::MAX; n];
        let mut ncomp = 0;
        let mut stack = Vec::new();
        for s in 0..n {
            if comp[s] != usize::MAX {
                continue;
            }
            comp[s] = ncomp;
            stack.push(s);
            while let Some(v) = stack.pop() {
                for &u in self.neighbors(v) {
                    if comp[u] == usize::MAX {
                        comp[u] = ncomp;
                        stack.push(u);
                    }
                }
            }
            ncomp += 1;
        }
        (comp, ncomp)
    }

    /// Breadth-first level structure from `start`: returns (level per
    /// vertex, vertices in BFS order). Unreached vertices get
    /// `usize::MAX`.
    pub fn bfs_levels(&self, start: usize) -> (Vec<usize>, Vec<usize>) {
        let n = self.n();
        let mut level = vec![usize::MAX; n];
        let mut order = Vec::with_capacity(n);
        let mut frontier = vec![start];
        level[start] = 0;
        let mut depth = 0;
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &v in &frontier {
                order.push(v);
                for &u in self.neighbors(v) {
                    if level[u] == usize::MAX {
                        level[u] = depth + 1;
                        next.push(u);
                    }
                }
            }
            frontier = next;
            depth += 1;
        }
        (level, order)
    }

    /// A pseudo-peripheral vertex: repeated BFS from the farthest vertex
    /// until eccentricity stops growing. Classic starting point for
    /// graph-growing bisection.
    pub fn pseudo_peripheral(&self, start: usize) -> usize {
        let mut v = start;
        let mut ecc = 0;
        for _ in 0..8 {
            let (levels, order) = self.bfs_levels(v);
            let far = *order.last().unwrap_or(&v);
            let far_ecc = levels[far];
            if far_ecc <= ecc {
                break;
            }
            ecc = far_ecc;
            v = far;
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsemat::matgen::grid2d_5pt;

    fn path_graph(n: usize) -> Graph {
        let mut xadj = vec![0usize];
        let mut adj = Vec::new();
        for v in 0..n {
            if v > 0 {
                adj.push(v - 1);
            }
            if v + 1 < n {
                adj.push(v + 1);
            }
            xadj.push(adj.len());
        }
        Graph::from_adjacency(xadj, adj)
    }

    #[test]
    fn from_matrix_grid() {
        let a = grid2d_5pt(4, 4, 0.0, 0);
        let g = Graph::from_matrix(&a);
        assert_eq!(g.n(), 16);
        assert!(g.check_symmetric());
        assert_eq!(g.degree(0), 2); // corner
        assert_eq!(g.degree(5), 4); // interior
    }

    #[test]
    fn subgraph_preserves_internal_edges() {
        let a = grid2d_5pt(3, 3, 0.0, 0);
        let g = Graph::from_matrix(&a);
        // Take the left 2x3 column block: vertices {0,1,3,4,6,7}.
        let verts = vec![0, 1, 3, 4, 6, 7];
        let (sg, map) = g.subgraph(&verts);
        assert_eq!(sg.n(), 6);
        assert_eq!(map, verts);
        assert!(sg.check_symmetric());
        // vertex 0 (orig 0) connects to orig 1 and orig 3, both inside.
        assert_eq!(sg.degree(0), 2);
    }

    #[test]
    fn components_of_disconnected() {
        // Two disjoint paths.
        let mut xadj = vec![0usize];
        let mut adj = Vec::new();
        // path 0-1
        adj.push(1);
        xadj.push(adj.len());
        adj.push(0);
        xadj.push(adj.len());
        // isolated 2
        xadj.push(adj.len());
        let g = Graph::from_adjacency(xadj, adj);
        let (comp, ncomp) = g.components();
        assert_eq!(ncomp, 2);
        assert_eq!(comp[0], comp[1]);
        assert_ne!(comp[0], comp[2]);
    }

    #[test]
    fn bfs_levels_on_path() {
        let g = path_graph(5);
        let (levels, order) = g.bfs_levels(0);
        assert_eq!(levels, vec![0, 1, 2, 3, 4]);
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn pseudo_peripheral_finds_path_end() {
        let g = path_graph(9);
        let v = g.pseudo_peripheral(4);
        assert!(v == 0 || v == 8);
    }
}
