//! Initial bisection heuristics for general graphs.
//!
//! The multilevel partitioner needs an edge bisection of the coarsest graph;
//! [`graph_growing_bisection`] provides it by growing a region from a
//! pseudo-peripheral vertex until it holds half the total vertex weight,
//! trying several seeds and keeping the best cut. [`vertex_separator_from_bisection`]
//! then converts an edge bisection into the vertex separator nested
//! dissection needs.

use crate::graph::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A two-way edge partition: `side[v] in {0, 1}`.
#[derive(Clone, Debug)]
pub struct Bisection {
    pub side: Vec<u8>,
    /// Sum of edge weights crossing the cut.
    pub cut: u64,
    /// Total vertex weight on each side.
    pub weight: [u64; 2],
}

impl Bisection {
    /// Recompute cut and side weights from scratch (used after refinement
    /// and by tests).
    pub fn recompute(g: &Graph, side: Vec<u8>) -> Bisection {
        let mut cut = 0;
        let mut weight = [0u64; 2];
        for v in 0..g.n() {
            weight[side[v] as usize] += g.vwgt[v];
            for (u, w) in g.neighbors_weighted(v) {
                if side[u] != side[v] {
                    cut += w;
                }
            }
        }
        Bisection {
            side,
            cut: cut / 2, // each crossing edge counted twice
            weight,
        }
    }

    /// Imbalance ratio: max side weight over ideal half.
    pub fn imbalance(&self) -> f64 {
        let total = (self.weight[0] + self.weight[1]).max(1);
        let maxw = self.weight[0].max(self.weight[1]);
        2.0 * maxw as f64 / total as f64
    }
}

/// Grow a region from a pseudo-peripheral vertex by BFS until it holds half
/// the total vertex weight; repeat for `ntries` seeds and keep the smallest
/// cut among balanced results. Handles disconnected graphs by continuing
/// growth from unvisited vertices.
pub fn graph_growing_bisection(g: &Graph, ntries: usize, seed: u64) -> Bisection {
    let n = g.n();
    assert!(n >= 2, "bisection needs at least 2 vertices");
    let total = g.total_vwgt();
    let target = total / 2;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut best: Option<Bisection> = None;

    for t in 0..ntries.max(1) {
        let start0 = rng.gen_range(0..n);
        let start = if t == 0 {
            g.pseudo_peripheral(start0)
        } else {
            start0
        };
        let mut side = vec![1u8; n];
        let mut grown = 0u64;
        let mut visited = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(start);
        visited[start] = true;
        let mut next_unvisited = 0usize;
        while grown < target {
            let v = match queue.pop_front() {
                Some(v) => v,
                None => {
                    // Disconnected: pick the next unvisited vertex.
                    while next_unvisited < n && visited[next_unvisited] {
                        next_unvisited += 1;
                    }
                    if next_unvisited >= n {
                        break;
                    }
                    visited[next_unvisited] = true;
                    next_unvisited
                }
            };
            side[v] = 0;
            grown += g.vwgt[v];
            for &u in g.neighbors(v) {
                if !visited[u] {
                    visited[u] = true;
                    queue.push_back(u);
                }
            }
        }
        let b = Bisection::recompute(g, side);
        let better = match &best {
            None => true,
            Some(cur) => {
                // Prefer balanced cuts; among comparably balanced, prefer
                // smaller cuts.
                let bal_b = b.imbalance();
                let bal_c = cur.imbalance();
                if (bal_b - bal_c).abs() > 0.2 {
                    bal_b < bal_c
                } else {
                    b.cut < cur.cut
                }
            }
        };
        if better {
            best = Some(b);
        }
    }
    best.expect("at least one bisection attempt")
}

/// Turn an edge bisection into a vertex separator: take the boundary
/// vertices of the side whose boundary is smaller (by vertex weight). The
/// separator is assigned `side = 2`; remaining vertices keep 0/1.
///
/// Returns `(assignment, separator size)` where `assignment[v] in {0,1,2}`.
pub fn vertex_separator_from_bisection(g: &Graph, bis: &Bisection) -> (Vec<u8>, usize) {
    let n = g.n();
    let mut boundary = [Vec::new(), Vec::new()];
    for v in 0..n {
        let s = bis.side[v] as usize;
        if g.neighbors(v).iter().any(|&u| bis.side[u] != bis.side[v]) {
            boundary[s].push(v);
        }
    }
    let bw: [u64; 2] = [
        boundary[0].iter().map(|&v| g.vwgt[v]).sum(),
        boundary[1].iter().map(|&v| g.vwgt[v]).sum(),
    ];
    let sep_side = if bw[0] <= bw[1] { 0 } else { 1 };
    let mut assign: Vec<u8> = bis.side.clone();
    for &v in &boundary[sep_side] {
        assign[v] = 2;
    }
    let sep_size = boundary[sep_side].len();
    (assign, sep_size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsemat::matgen::grid2d_5pt;

    #[test]
    fn bisects_grid_roughly_in_half() {
        let a = grid2d_5pt(12, 12, 0.0, 0);
        let g = Graph::from_matrix(&a);
        let b = graph_growing_bisection(&g, 4, 42);
        assert!(b.imbalance() < 1.3, "imbalance {}", b.imbalance());
        // A 12x12 grid has a cut of ~12 for a clean split; allow slack.
        assert!(b.cut <= 40, "cut {}", b.cut);
    }

    #[test]
    fn separator_separates() {
        let a = grid2d_5pt(10, 10, 0.0, 0);
        let g = Graph::from_matrix(&a);
        let b = graph_growing_bisection(&g, 4, 1);
        let (assign, sep) = vertex_separator_from_bisection(&g, &b);
        assert!(sep > 0);
        // No edge may connect side 0 to side 1 directly.
        for v in 0..g.n() {
            if assign[v] == 2 {
                continue;
            }
            for &u in g.neighbors(v) {
                if assign[u] != 2 {
                    assert_eq!(assign[u], assign[v], "edge {v}-{u} crosses sides");
                }
            }
        }
    }

    #[test]
    fn handles_disconnected_graph() {
        // Two separate 4-cycles.
        let mut xadj = vec![0usize];
        let mut adj = Vec::new();
        for base in [0usize, 4] {
            for i in 0..4 {
                adj.push(base + (i + 1) % 4);
                adj.push(base + (i + 3) % 4);
                xadj.push(adj.len());
            }
        }
        let g = Graph::from_adjacency(xadj, adj);
        let b = graph_growing_bisection(&g, 3, 0);
        assert!(b.weight[0] > 0 && b.weight[1] > 0);
    }

    #[test]
    fn cut_of_recompute_matches_manual() {
        // Path 0-1-2: side = [0,0,1] cuts exactly edge (1,2).
        let xadj = vec![0, 1, 3, 4];
        let adj = vec![1, 0, 2, 1];
        let g = Graph::from_adjacency(xadj, adj);
        let b = Bisection::recompute(&g, vec![0, 0, 1]);
        assert_eq!(b.cut, 1);
        assert_eq!(b.weight, [2, 1]);
    }
}
