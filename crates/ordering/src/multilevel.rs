//! Multilevel graph bisection: coarsen → bisect → uncoarsen + refine.
//!
//! This is the METIS recipe: heavy-edge matching halves the graph until it
//! is small, a graph-growing heuristic bisects the coarsest graph, and the
//! partition is projected back up with Fiduccia–Mattheyses refinement at
//! every level.

use crate::bisect::{graph_growing_bisection, vertex_separator_from_bisection, Bisection};
use crate::graph::Graph;
use crate::refine::fm_refine;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;

/// Stop coarsening when the graph is this small.
const COARSEST_SIZE: usize = 80;
/// Stop coarsening when a round shrinks the graph by less than this factor
/// (protects against matching-resistant graphs).
const MIN_SHRINK: f64 = 0.9;
/// FM passes per uncoarsening level.
const REFINE_PASSES: usize = 4;

/// One level of the coarsening hierarchy.
struct CoarseLevel {
    graph: Graph,
    /// Map from fine vertex to coarse vertex of the *next* level.
    fine_to_coarse: Vec<usize>,
}

/// Heavy-edge matching: visit vertices in random order; match each unmatched
/// vertex with its unmatched neighbour of maximal edge weight. Returns the
/// fine→coarse map and the coarse vertex count.
fn heavy_edge_matching(g: &Graph, rng: &mut StdRng) -> (Vec<usize>, usize) {
    let n = g.n();
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    let mut mate = vec![usize::MAX; n];
    for &v in &order {
        if mate[v] != usize::MAX {
            continue;
        }
        let mut best = usize::MAX;
        let mut best_w = 0u64;
        for (u, w) in g.neighbors_weighted(v) {
            if u != v && mate[u] == usize::MAX && w >= best_w {
                best = u;
                best_w = w;
            }
        }
        if best != usize::MAX {
            mate[v] = best;
            mate[best] = v;
        } else {
            mate[v] = v; // stays single
        }
    }
    // Assign coarse ids: the smaller endpoint of each pair names the pair.
    let mut fine_to_coarse = vec![usize::MAX; n];
    let mut next = 0usize;
    for v in 0..n {
        if fine_to_coarse[v] != usize::MAX {
            continue;
        }
        let m = mate[v];
        fine_to_coarse[v] = next;
        if m != v {
            fine_to_coarse[m] = next;
        }
        next += 1;
    }
    (fine_to_coarse, next)
}

/// Build the coarse graph induced by a fine→coarse map, merging parallel
/// edges (summing weights) and dropping self-loops.
fn contract(g: &Graph, fine_to_coarse: &[usize], nc: usize) -> Graph {
    let mut vwgt = vec![0u64; nc];
    for v in 0..g.n() {
        vwgt[fine_to_coarse[v]] += g.vwgt[v];
    }
    // Accumulate coarse adjacency.
    let mut edges: Vec<HashMap<usize, u64>> = vec![HashMap::new(); nc];
    for v in 0..g.n() {
        let cv = fine_to_coarse[v];
        for (u, w) in g.neighbors_weighted(v) {
            let cu = fine_to_coarse[u];
            if cu != cv {
                *edges[cv].entry(cu).or_insert(0) += w;
            }
        }
    }
    let mut xadj = Vec::with_capacity(nc + 1);
    let mut adj = Vec::new();
    let mut ewgt = Vec::new();
    xadj.push(0);
    for e in &edges {
        let mut row: Vec<(usize, u64)> = e.iter().map(|(&u, &w)| (u, w)).collect();
        row.sort_unstable_by_key(|&(u, _)| u);
        for (u, w) in row {
            adj.push(u);
            ewgt.push(w);
        }
        xadj.push(adj.len());
    }
    Graph {
        xadj,
        adj,
        ewgt,
        vwgt,
    }
}

/// Multilevel edge bisection of `g`.
pub fn multilevel_bisection(g: &Graph, seed: u64) -> Bisection {
    let mut rng = StdRng::seed_from_u64(seed);

    // Coarsening phase.
    let mut levels: Vec<CoarseLevel> = Vec::new();
    let mut cur = g.clone();
    while cur.n() > COARSEST_SIZE {
        let (map, nc) = heavy_edge_matching(&cur, &mut rng);
        if (nc as f64) > MIN_SHRINK * cur.n() as f64 {
            break; // matching stalled
        }
        let coarse = contract(&cur, &map, nc);
        levels.push(CoarseLevel {
            graph: cur,
            fine_to_coarse: map,
        });
        cur = coarse;
    }

    // Initial bisection at the coarsest level.
    let mut bis = graph_growing_bisection(&cur, 6, seed ^ 0x9e3779b9);
    fm_refine(&cur, &mut bis, REFINE_PASSES);

    // Uncoarsening phase: project and refine.
    while let Some(level) = levels.pop() {
        let fine_side: Vec<u8> = (0..level.graph.n())
            .map(|v| bis.side[level.fine_to_coarse[v]])
            .collect();
        bis = Bisection::recompute(&level.graph, fine_side);
        fm_refine(&level.graph, &mut bis, REFINE_PASSES);
    }
    bis
}

/// Multilevel *vertex-separator* bisection: the entry point nested
/// dissection uses for general graphs. Returns `assignment[v] in {0,1,2}`
/// (2 = separator) and the separator size.
pub fn multilevel_vertex_separator(g: &Graph, seed: u64) -> (Vec<u8>, usize) {
    let bis = multilevel_bisection(g, seed);
    vertex_separator_from_bisection(g, &bis)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsemat::matgen::{grid2d_5pt, grid3d_7pt};

    #[test]
    fn matching_halves_grid() {
        let g = Graph::from_matrix(&grid2d_5pt(10, 10, 0.0, 0));
        let mut rng = StdRng::seed_from_u64(1);
        let (map, nc) = heavy_edge_matching(&g, &mut rng);
        assert!((50..=70).contains(&nc), "nc={nc}");
        // Weight conservation in contraction.
        let cg = contract(&g, &map, nc);
        assert_eq!(cg.total_vwgt(), 100);
        assert!(cg.check_symmetric());
    }

    #[test]
    fn multilevel_cut_near_optimal_on_grid() {
        // A k x k grid has an optimal bisection cut of k.
        let k = 24;
        let g = Graph::from_matrix(&grid2d_5pt(k, k, 0.0, 0));
        let bis = multilevel_bisection(&g, 7);
        assert!(bis.imbalance() < 1.25, "imbalance {}", bis.imbalance());
        assert!(bis.cut <= 2 * k as u64, "cut {} vs optimal {k}", bis.cut);
    }

    #[test]
    fn separator_size_scales_like_sqrt_n_on_planar() {
        // Doubling grid side should roughly double the separator (sqrt(n)).
        let g1 = Graph::from_matrix(&grid2d_5pt(16, 16, 0.0, 0));
        let g2 = Graph::from_matrix(&grid2d_5pt(32, 32, 0.0, 0));
        let (_, s1) = multilevel_vertex_separator(&g1, 3);
        let (_, s2) = multilevel_vertex_separator(&g2, 3);
        assert!(s1 > 0 && s2 > 0);
        let ratio = s2 as f64 / s1 as f64;
        assert!(ratio > 1.0 && ratio < 5.0, "ratio {ratio}");
    }

    #[test]
    fn separator_separates_3d() {
        let g = Graph::from_matrix(&grid3d_7pt(6, 6, 6, 0.0, 0));
        let (assign, sep) = multilevel_vertex_separator(&g, 11);
        assert!(sep > 0);
        for v in 0..g.n() {
            if assign[v] == 2 {
                continue;
            }
            for &u in g.neighbors(v) {
                if assign[u] != 2 {
                    assert_eq!(assign[u], assign[v]);
                }
            }
        }
    }
}
