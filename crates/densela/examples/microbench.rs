//! Microbenchmark: the packed register-blocked kernel vs the per-block
//! axpy kernel, on the panel shapes the batched Schur update produces
//! (tall-skinny times short-wide, small inner dimension).
//!
//! ```sh
//! cargo run --release -p densela --example microbench
//! ```

use densela::Mat;
use std::time::Instant;

fn fill(m: &mut Mat, seed: u64) {
    let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
    for c in 0..m.cols() {
        for r in 0..m.rows() {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let v = (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
            *m.at_mut(r, c) = v;
        }
    }
}

fn time_it(reps: usize, mut f: impl FnMut()) -> f64 {
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t0.elapsed().as_secs_f64() / reps as f64
}

fn main() {
    for &(m, k, n, bs, bzero, rowzero) in &[
        (256usize, 32usize, 256usize, 32usize, 0.0f64, false),
        (512, 32, 512, 32, 0.0, false),
        (768, 64, 768, 64, 0.0, false),
        (1024, 32, 1024, 32, 0.0, false),
        (512, 32, 512, 32, 0.3, false),
        (512, 32, 512, 32, 0.7, false),
        // Structural sparsity: whole zero rows of B, the shape gathered U
        // panels actually have (a supernode column with no nonzeros in a
        // block row zeroes that entire row of the panel).
        (512, 32, 512, 32, 0.4, true),
        (768, 64, 768, 64, 0.4, true),
    ] {
        let mut a = Mat::zeros(m, k);
        let mut b = Mat::zeros(k, n);
        let mut c = Mat::zeros(m, n);
        fill(&mut a, 1);
        fill(&mut b, 2);
        fill(&mut c, 3);
        if bzero > 0.0 {
            // Sprinkle exact zeros into B — per-row for the structural
            // variant, per-element otherwise: the zero-skip path the
            // gathered U panels exercise.
            let mut s = 12345u64;
            for i in 0..k {
                if rowzero {
                    s ^= s << 13;
                    s ^= s >> 7;
                    s ^= s << 17;
                    if (s >> 11) as f64 / (1u64 << 53) as f64 / 2.0 + 0.5 < bzero {
                        for j in 0..n {
                            *b.at_mut(i, j) = 0.0;
                        }
                    }
                } else {
                    for j in 0..n {
                        s ^= s << 13;
                        s ^= s >> 7;
                        s ^= s << 17;
                        if (s >> 11) as f64 / (1u64 << 53) as f64 / 2.0 + 0.5 < bzero {
                            *b.at_mut(i, j) = 0.0;
                        }
                    }
                }
            }
        }
        let reps = (1 << 26) / (m * n) + 1;

        let mut c1 = c.clone();
        let t_axpy = time_it(reps, || densela::gemm(-1.0, &a, &b, 1.0, &mut c1));
        let mut c2 = c.clone();
        let t_blocked = time_it(reps, || densela::gemm_blocked(-1.0, &a, &b, 1.0, &mut c2));
        // Per-block flavor: the same multiply cut into bs x bs tiles, one
        // gemm call per (I, J) pair — what factor_step_schur does.
        let ablocks: Vec<Mat> = (0..m / bs)
            .map(|bi| {
                let mut t = Mat::zeros(bs, k);
                for c in 0..k {
                    for r in 0..bs {
                        *t.at_mut(r, c) = a.at(bi * bs + r, c);
                    }
                }
                t
            })
            .collect();
        let bblocks: Vec<Mat> = (0..n / bs)
            .map(|bj| {
                let mut t = Mat::zeros(k, bs);
                for c in 0..bs {
                    for r in 0..k {
                        *t.at_mut(r, c) = b.at(r, bj * bs + c);
                    }
                }
                t
            })
            .collect();
        let mut cblocks: Vec<Mat> = (0..(m / bs) * (n / bs))
            .map(|_| Mat::zeros(bs, bs))
            .collect();
        let t_perblock = time_it(reps, || {
            for bj in 0..n / bs {
                for bi in 0..m / bs {
                    let t = &mut cblocks[bj * (m / bs) + bi];
                    densela::gemm(-1.0, &ablocks[bi], &bblocks[bj], 1.0, t);
                }
            }
        });
        let gf = |t: f64| 2.0 * (m * n * k) as f64 / t / 1e9;
        println!(
            "m={m:4} k={k:2} n={n:4} bs={bs:2} bzero={bzero:.1}  axpy {:6.2} GF/s  blocked {:6.2} GF/s  per-block({bs}) {:6.2} GF/s  blocked/per-block {:4.2}x",
            gf(t_axpy),
            gf(t_blocked),
            gf(t_perblock),
            t_perblock / t_blocked,
        );
    }
}
