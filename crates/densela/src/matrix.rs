//! Column-major dense matrix type used by every dense kernel.

/// A column-major dense matrix of `f64`, the storage unit for supernodal
/// blocks throughout the LU stack.
///
/// Element `(i, j)` lives at linear index `i + j * rows`, matching BLAS and
/// LAPACK layout so kernel loops get stride-1 access down columns.
#[derive(Clone, Debug, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// A `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The identity matrix of dimension `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            *m.at_mut(i, i) = 1.0;
        }
        m
    }

    /// Build from a closure `f(i, j)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for j in 0..cols {
            for i in 0..rows {
                data.push(f(i, j));
            }
        }
        Mat { rows, cols, data }
    }

    /// Wrap an existing column-major buffer. `data.len()` must equal
    /// `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        Mat { rows, cols, data }
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True when either dimension is zero.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    #[inline]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i + j * self.rows]
    }

    #[inline]
    pub fn at_mut(&mut self, i: usize, j: usize) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i + j * self.rows]
    }

    /// Column `j` as a slice (stride-1 thanks to column-major layout).
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Column `j` as a mutable slice.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        &mut self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// The raw column-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The raw column-major buffer, mutable.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume into the raw buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Set every entry to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Reshape in place to `rows x cols`, zero-filled, reusing the existing
    /// allocation when it is large enough. This is the scratch-arena
    /// primitive behind the batched Schur update: one matrix serves every
    /// supernode's panel without reallocating per step.
    pub fn reshape_zeroed(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Reshape in place to `rows x cols` WITHOUT clearing: surviving
    /// entries keep stale values (only growth beyond the previous element
    /// count is zeroed, a `Vec::resize` artifact). For scratch panels whose
    /// every entry is overwritten before being read — skips the O(rows *
    /// cols) zero-fill of [`Mat::reshape_zeroed`] on each reuse.
    pub fn reshape_for_overwrite(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        let len = rows * cols;
        if self.data.len() > len {
            self.data.truncate(len);
        } else {
            self.data.resize(len, 0.0);
        }
    }

    /// Elementwise `self += other`. Dimensions must match. Used by the
    /// ancestor-reduction step to sum replicated block copies.
    pub fn add_assign(&mut self, other: &Mat) {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += *b;
        }
    }

    /// Elementwise `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f64, other: &Mat) {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * *b;
        }
    }

    /// Copy the rectangle `src` into `self` with its top-left corner at
    /// `(r0, c0)`.
    pub fn copy_block_from(&mut self, src: &Mat, r0: usize, c0: usize) {
        assert!(r0 + src.rows <= self.rows && c0 + src.cols <= self.cols);
        for j in 0..src.cols {
            let dst_col = (c0 + j) * self.rows + r0;
            self.data[dst_col..dst_col + src.rows].copy_from_slice(src.col(j));
        }
    }

    /// Extract the `nr x nc` rectangle whose top-left corner is `(r0, c0)`.
    pub fn block(&self, r0: usize, c0: usize, nr: usize, nc: usize) -> Mat {
        assert!(r0 + nr <= self.rows && c0 + nc <= self.cols);
        let mut out = Mat::zeros(nr, nc);
        for j in 0..nc {
            let src = (c0 + j) * self.rows + r0;
            out.col_mut(j).copy_from_slice(&self.data[src..src + nr]);
        }
        out
    }

    /// The transpose (fresh allocation).
    pub fn transpose(&self) -> Mat {
        let mut t = Mat::zeros(self.cols, self.rows);
        for j in 0..self.cols {
            for i in 0..self.rows {
                *t.at_mut(j, i) = self.at(i, j);
            }
        }
        t
    }

    /// Matrix-vector product `y = A * x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols);
        let mut y = vec![0.0; self.rows];
        for j in 0..self.cols {
            let xj = x[j];
            if xj != 0.0 {
                for (yi, aij) in y.iter_mut().zip(self.col(j)) {
                    *yi += aij * xj;
                }
            }
        }
        y
    }

    /// Transposed matrix-vector product `y = A^T * x`.
    pub fn tr_matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows);
        let mut y = vec![0.0; self.cols];
        for (j, yj) in y.iter_mut().enumerate() {
            let mut s = 0.0;
            for (aij, xi) in self.col(j).iter().zip(x) {
                s += aij * xi;
            }
            *yj = s;
        }
        y
    }

    /// Bytes of heap storage held by this matrix (used by the per-rank
    /// memory accounting behind the paper's Fig. 11).
    pub fn storage_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_is_column_major() {
        let m = Mat::from_fn(3, 2, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.as_slice(), &[0.0, 10.0, 20.0, 1.0, 11.0, 21.0]);
        assert_eq!(m.at(2, 1), 21.0);
    }

    #[test]
    fn block_roundtrip() {
        let m = Mat::from_fn(5, 5, |i, j| (i + 10 * j) as f64);
        let b = m.block(1, 2, 3, 2);
        assert_eq!(b.at(0, 0), m.at(1, 2));
        assert_eq!(b.at(2, 1), m.at(3, 3));
        let mut z = Mat::zeros(5, 5);
        z.copy_block_from(&b, 1, 2);
        assert_eq!(z.at(3, 3), m.at(3, 3));
        assert_eq!(z.at(0, 0), 0.0);
    }

    #[test]
    fn transpose_involution() {
        let m = Mat::from_fn(4, 7, |i, j| (3 * i + j * j) as f64);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matvec_identity() {
        let m = Mat::identity(6);
        let x: Vec<f64> = (0..6).map(|v| v as f64).collect();
        assert_eq!(m.matvec(&x), x);
    }

    #[test]
    fn add_assign_and_axpy() {
        let a0 = Mat::from_fn(3, 3, |i, j| (i + j) as f64);
        let b = Mat::from_fn(3, 3, |i, j| (i * j) as f64);
        let mut a = a0.clone();
        a.add_assign(&b);
        assert_eq!(a.at(2, 2), 4.0 + 4.0);
        let mut c = a0.clone();
        c.axpy(-1.0, &a0);
        assert!(c.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic]
    fn from_vec_checks_len() {
        let _ = Mat::from_vec(2, 2, vec![1.0; 3]);
    }
}
