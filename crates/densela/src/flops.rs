//! Per-thread floating-point operation accounting.
//!
//! Each simulated MPI rank runs on its own thread, so a thread-local counter
//! gives exact per-rank flop totals with zero synchronization cost. The
//! simulated machine converts these totals into compute time via its
//! flop-rate constant, which is how the `T_scu` component of the paper's
//! Fig. 9 is charged.

use std::cell::Cell;

thread_local! {
    static FLOPS: Cell<u64> = const { Cell::new(0) };
    static SKIPPED: Cell<u64> = const { Cell::new(0) };
}

/// Add `n` flops to the calling thread's counter. Called by every dense
/// kernel in this crate.
#[inline]
pub fn add(n: u64) {
    FLOPS.with(|f| f.set(f.get() + n));
}

/// The calling thread's accumulated flop count.
pub fn get() -> u64 {
    FLOPS.with(|f| f.get())
}

/// Reset the calling thread's counter to zero and return the prior value.
pub fn reset() -> u64 {
    FLOPS.with(|f| f.replace(0))
}

/// Record `n` flops of *skipped* work: multiply-adds a kernel avoided by
/// short-circuiting on zero scale factors (zero-padded supernodal panel
/// columns, structural zeros). Skipped work is never charged to the
/// simulated clock — only [`add`] feeds compute time — but the separate
/// ledger keeps the nominal `2mnk` total reconstructible as
/// `get() + skipped()` for kernels that would otherwise overcount.
#[inline]
pub fn add_skipped(n: u64) {
    SKIPPED.with(|f| f.set(f.get() + n));
}

/// The calling thread's accumulated skipped-flop count.
pub fn skipped() -> u64 {
    SKIPPED.with(|f| f.get())
}

/// Reset the calling thread's skipped-flop counter, returning the prior
/// value.
pub fn reset_skipped() -> u64 {
    SKIPPED.with(|f| f.replace(0))
}

/// Flops for an `m x n x k` GEMM update (`C += A*B`): `2 m n k`.
#[inline]
pub fn gemm_flops(m: usize, n: usize, k: usize) -> u64 {
    2 * (m as u64) * (n as u64) * (k as u64)
}

/// Flops for an in-place LU of an `m x n` panel (`m >= n`):
/// the standard `getrf` count `m n^2 - n^3/3` (leading order).
#[inline]
pub fn getrf_flops(m: usize, n: usize) -> u64 {
    let m = m as u64;
    let n = n as u64;
    (m * n * n).saturating_sub(n * n * n / 3)
}

/// Flops for a triangular solve with an `n x n` triangle against `nrhs`
/// right-hand sides: `n^2 * nrhs`.
#[inline]
pub fn trsm_flops(n: usize, nrhs: usize) -> u64 {
    (n as u64) * (n as u64) * (nrhs as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_and_resets() {
        reset();
        add(10);
        add(32);
        assert_eq!(get(), 42);
        assert_eq!(reset(), 42);
        assert_eq!(get(), 0);
    }

    #[test]
    fn counters_are_per_thread() {
        reset();
        add(7);
        let other = std::thread::spawn(|| {
            add(100);
            get()
        })
        .join()
        .unwrap();
        assert_eq!(other, 100);
        assert_eq!(get(), 7);
        reset();
    }

    #[test]
    fn skipped_counter_is_independent() {
        reset();
        reset_skipped();
        add(8);
        add_skipped(6);
        assert_eq!(get(), 8);
        assert_eq!(skipped(), 6);
        assert_eq!(reset_skipped(), 6);
        assert_eq!(get(), 8, "resetting skipped must not touch charged flops");
        reset();
    }

    #[test]
    fn formulas() {
        assert_eq!(gemm_flops(2, 3, 4), 48);
        assert_eq!(trsm_flops(4, 2), 32);
        // square getrf: n^3 - n^3/3 = 2/3 n^3
        assert_eq!(getrf_flops(3, 3), 27 - 9);
    }
}
