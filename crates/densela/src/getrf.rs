//! In-place LU factorization of a dense block with static pivoting.
//!
//! SuperLU_DIST — and therefore this reproduction — does **not** pivot rows
//! during the numerical factorization (§II-E: "right-looking scheme and
//! static pivoting"). Instead, near-zero diagonal entries are perturbed to a
//! small threshold, and accuracy is recovered afterwards by iterative
//! refinement. [`getrf`] implements exactly that: a blocked right-looking
//! in-place LU whose only pivoting action is the diagonal perturbation.

use crate::flops;
use crate::gemm::gemm;
use crate::matrix::Mat;
use crate::norms::max_abs;
use crate::trsm::trsm_left_lower_unit;

/// Panel width for the blocked factorization.
const NB: usize = 32;

/// How [`getrf`] treats tiny diagonal pivots.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PivotPolicy {
    /// SuperLU_DIST-style static pivoting: a pivot with
    /// `|a_kk| < threshold * ||A||_max` is replaced by
    /// `sign(a_kk) * threshold * ||A||_max` (or `+threshold*||A||_max` when
    /// exactly zero). Factorization never fails.
    Static { threshold: f64 },
    /// Fail (return the pivot index) on an exactly-zero pivot; useful in
    /// tests that want to observe singularity.
    FailOnZero,
}

/// Outcome of an in-place LU factorization.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct GetrfInfo {
    /// Number of diagonal entries that were perturbed (static pivoting).
    pub perturbations: usize,
    /// Index of the first exactly-zero pivot under [`PivotPolicy::FailOnZero`],
    /// if any. The factor content is undefined past this column.
    pub zero_pivot: Option<usize>,
}

/// Factor the square matrix `a` in place as `A = L * U` (unit lower `L`,
/// upper `U` sharing the buffer). Returns perturbation statistics.
pub fn getrf(a: &mut Mat, policy: PivotPolicy) -> GetrfInfo {
    let n = a.rows();
    assert_eq!(a.cols(), n, "getrf expects a square block");
    let mut info = GetrfInfo::default();
    if n == 0 {
        return info;
    }
    // The perturbation scale follows SuperLU_DIST: relative to the block's
    // largest entry (a proxy for ||A||).
    let anorm = max_abs(a).max(1.0);

    let mut k0 = 0;
    while k0 < n {
        let nb = NB.min(n - k0);
        // 1. Unblocked LU of the current panel columns k0..k0+nb over rows
        //    k0..n (rectangular panel, right-looking within the panel).
        for k in k0..k0 + nb {
            let mut pivot = a.at(k, k);
            match policy {
                PivotPolicy::Static { threshold } => {
                    let floor = threshold * anorm;
                    if pivot.abs() < floor {
                        pivot = if pivot >= 0.0 { floor } else { -floor };
                        *a.at_mut(k, k) = pivot;
                        info.perturbations += 1;
                    }
                }
                PivotPolicy::FailOnZero => {
                    if pivot == 0.0 {
                        info.zero_pivot.get_or_insert(k);
                        return info;
                    }
                }
            }
            let inv = 1.0 / pivot;
            for i in k + 1..n {
                *a.at_mut(i, k) *= inv;
            }
            // Update the rest of the panel (columns k+1 .. k0+nb).
            for j in k + 1..k0 + nb {
                let ukj = a.at(k, j);
                if ukj == 0.0 {
                    continue;
                }
                for i in k + 1..n {
                    let lik = a.at(i, k);
                    *a.at_mut(i, j) -= lik * ukj;
                }
            }
        }
        flops::add(flops::getrf_flops(n - k0, nb));

        let rest = k0 + nb;
        if rest < n {
            // 2. U block row: solve L11 * U12 = A12.
            let l11 = a.block(k0, k0, nb, nb);
            let mut a12 = a.block(k0, rest, nb, n - rest);
            trsm_left_lower_unit(&l11, &mut a12);
            a.copy_block_from(&a12, k0, rest);
            // 3. Trailing update: A22 -= L21 * U12.
            let l21 = a.block(rest, k0, n - rest, nb);
            let mut a22 = a.block(rest, rest, n - rest, n - rest);
            gemm(-1.0, &l21, &a12, 1.0, &mut a22);
            a.copy_block_from(&a22, rest, rest);
        }
        k0 += nb;
    }
    info
}

/// Solve `A x = b` for a single right-hand side given the in-place LU factor
/// produced by [`getrf`]. `b` is overwritten by the solution.
pub fn lu_solve_inplace(lu: &Mat, b: &mut [f64]) {
    crate::trsm::forward_subst_unit(lu, b);
    crate::trsm::backward_subst(lu, b);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_matrix(n: usize) -> Mat {
        let mut a = Mat::from_fn(n, n, |i, j| {
            let v = ((i * 31 + j * 17) % 23) as f64 / 23.0 - 0.5;
            v * 0.8
        });
        for i in 0..n {
            *a.at_mut(i, i) += n as f64 * 0.5;
        }
        a
    }

    #[test]
    fn solves_linear_system() {
        for &n in &[1usize, 2, 7, 31, 32, 33, 100] {
            let a = test_matrix(n);
            let x_true: Vec<f64> = (0..n).map(|i| (i % 5) as f64 - 2.0).collect();
            let mut b = a.matvec(&x_true);
            let mut lu = a.clone();
            let info = getrf(&mut lu, PivotPolicy::Static { threshold: 1e-12 });
            assert_eq!(info.perturbations, 0, "n={n}");
            lu_solve_inplace(&lu, &mut b);
            for i in 0..n {
                assert!((b[i] - x_true[i]).abs() < 1e-8, "n={n} i={i}");
            }
        }
    }

    #[test]
    fn static_pivoting_perturbs_singular_diagonal() {
        // A matrix with an exactly zero pivot in position 0.
        let mut a = Mat::from_fn(3, 3, |i, j| {
            if i == 0 && j == 0 {
                0.0
            } else {
                (i + j + 1) as f64
            }
        });
        let info = getrf(&mut a, PivotPolicy::Static { threshold: 1e-8 });
        assert!(info.perturbations >= 1);
        assert!(a.at(0, 0) != 0.0);
    }

    #[test]
    fn fail_on_zero_reports_column() {
        let mut a = Mat::zeros(4, 4);
        let info = getrf(&mut a, PivotPolicy::FailOnZero);
        assert_eq!(info.zero_pivot, Some(0));
    }

    #[test]
    fn blocked_matches_unblocked_result() {
        // n > NB exercises the blocked path; compare against solving.
        let n = 80;
        let a = test_matrix(n);
        let mut lu = a.clone();
        getrf(&mut lu, PivotPolicy::Static { threshold: 1e-12 });
        // Verify PA=LU reconstruction on a few entries via matvec residual.
        let x: Vec<f64> = (0..n).map(|i| ((i * 3) % 7) as f64 * 0.1).collect();
        let b = a.matvec(&x);
        let mut y = b.clone();
        lu_solve_inplace(&lu, &mut y);
        let r: f64 = y.iter().zip(&x).map(|(u, v)| (u - v).abs()).sum();
        assert!(r < 1e-7 * n as f64);
    }
}
