//! Packed, register-blocked GEMM for batched supernodal Schur updates.
//!
//! The batched gather-GEMM-scatter path concatenates a supernode's owned
//! L-blocks and U-panel pieces into two contiguous panels and multiplies
//! them in one call. At that size the axpy kernel in [`crate::gemm`] leaves
//! performance on the table: it rereads and rewrites each C column once per
//! `k` step. This kernel uses the classical BLIS decomposition instead —
//! pack A into `MR`-row slabs and B into `NR`-column slabs, then drive an
//! `MR x NR` register tile over the packed operands with `KC`/`MC`/`NC`
//! cache blocking — so each C tile stays in registers across the whole
//! inner-product loop.
//!
//! ## Bitwise contract
//!
//! [`gemm_blocked`] produces **bit-identical** results to [`crate::gemm::gemm`]
//! for every input. Floating-point addition is not associative, so this
//! pins down the exact per-element operation sequence both kernels share:
//! for each `C(i, j)`, contributions `(alpha * B(kk, j)) * A(i, kk)` are
//! added in ascending `kk` order, one rounding per multiply and per add (no
//! FMA contraction — Rust compiles strict IEEE ops), and contributions
//! whose scale `alpha * B(kk, j)` equals `0.0` are skipped entirely. The
//! register tiling only changes *which* intermediate values live in
//! registers, never the arithmetic sequence, so the factorization's
//! determinism regression holds with either kernel. The packed B panel
//! stores `alpha * B(kk, j)` so the scale product is computed exactly once,
//! with the same rounding as the axpy kernel's `alpha * bj[kk]`.
//!
//! Flop accounting follows the [`crate::flops`] contract: only performed
//! multiply-adds are charged; zero-scale pairs go to the skipped ledger.

use crate::flops;
use crate::matrix::Mat;
use std::cell::RefCell;

/// Register-tile rows: each micro-tile update keeps `MR x NR` C values in
/// registers (16 x 4 doubles = 8 512-bit accumulator vectors, or 16 256-bit
/// ones on AVX2-only hosts).
pub const MR: usize = 16;
/// Register-tile columns.
pub const NR: usize = 4;
/// Cache-block over `k`: the packed slabs hold `KC` inner-product steps.
const KC: usize = 128;
/// Cache-block over `m` (rows of A packed per slab); multiple of `MR`.
/// One A block (`MC x KC` doubles) stays resident in L2 while every
/// B column-tile sweeps over it.
const MC: usize = 256;
/// Shapes with `m` or `n` at or below this are slivers: the packing
/// overhead outweighs register reuse, so they take the axpy kernel.
pub const SLIVER: usize = 4;

/// Reusable per-thread packing workspace. Supernodal Schur updates issue
/// thousands of small-panel GEMM calls; allocating (and zero-filling)
/// fresh pack slabs per call would swamp the kernel time, so the slabs
/// persist across calls. Every region the kernel reads is written by the
/// same call's packing first, so stale contents are harmless.
#[derive(Default)]
struct Workspace {
    ap: Vec<f64>,
    bp: Vec<f64>,
    tile_kks: Vec<u16>,
    tile_len: Vec<usize>,
    tile_zeros: Vec<u64>,
    row_map: Vec<(u32, u32)>,
    col_map: Vec<(u32, u32)>,
}

thread_local! {
    static WORKSPACE: RefCell<Workspace> = RefCell::new(Workspace::default());
}

/// Grow `v` to at least `len` entries (never shrinks, keeps contents).
fn ensure<T: Clone + Default>(v: &mut Vec<T>, len: usize) {
    if v.len() < len {
        v.resize(len, T::default());
    }
}

/// `C = beta*C + alpha * A * B`, bit-identical to [`crate::gemm::gemm`]
/// (see the module docs for the shared arithmetic contract) but register-
/// blocked for large panels. Sliver shapes (`m <= 4` or `n <= 4`) fall
/// back to the axpy kernel directly.
pub fn gemm_blocked(alpha: f64, a: &Mat, b: &Mat, beta: f64, c: &mut Mat) {
    let m = a.rows();
    let k = a.cols();
    let n = b.cols();
    assert_eq!(b.rows(), k, "gemm_blocked: inner dimensions differ");
    assert_eq!(c.rows(), m, "gemm_blocked: C row count mismatch");
    assert_eq!(c.cols(), n, "gemm_blocked: C col count mismatch");
    if m <= SLIVER || n <= SLIVER {
        return crate::gemm::gemm(alpha, a, b, beta, c);
    }
    if beta != 1.0 {
        for v in c.as_mut_slice() {
            *v *= beta;
        }
    }
    gemm_core(alpha, a, b, &[0, m], &[0, n], std::slice::from_mut(c));
}

/// `C += alpha * A * B` where C is a panel *tiled from disjoint blocks*:
/// `blocks[bi * (col_off.len() - 1) + bj]` covers global rows
/// `row_off[bi]..row_off[bi + 1]` and columns `col_off[bj]..col_off[bj + 1]`.
/// The kernel loads and stores its C register tiles directly from the
/// blocks, so callers with block-partitioned targets (the batched Schur
/// update) pay no panel gather or scatter copies — the scatter *is* the
/// tile store. Same bitwise contract and flop accounting as
/// [`gemm_blocked`]; no sliver fallback (tile fragmentation, not shape,
/// decides the cost here, and the arithmetic is identical either way).
pub fn gemm_blocked_tiled(
    alpha: f64,
    a: &Mat,
    b: &Mat,
    row_off: &[usize],
    col_off: &[usize],
    blocks: &mut [Mat],
) {
    let m = a.rows();
    let n = b.cols();
    assert_eq!(b.rows(), a.cols(), "gemm_blocked_tiled: inner dims differ");
    assert_eq!(
        *row_off.last().unwrap(),
        m,
        "row offsets must cover A's rows"
    );
    assert_eq!(
        *col_off.last().unwrap(),
        n,
        "col offsets must cover B's cols"
    );
    assert_eq!(
        blocks.len(),
        (row_off.len() - 1) * (col_off.len() - 1),
        "need one block per (row stripe, col stripe) pair"
    );
    gemm_core(alpha, a, b, row_off, col_off, blocks);
}

/// Shared core of [`gemm_blocked`] / [`gemm_blocked_tiled`]: accumulating
/// (`beta = 1`) register-blocked GEMM onto a stripe-tiled C.
fn gemm_core(
    alpha: f64,
    a: &Mat,
    b: &Mat,
    row_off: &[usize],
    col_off: &[usize],
    blocks: &mut [Mat],
) {
    let m = a.rows();
    let k = a.cols();
    let n = b.cols();
    if k == 0 || alpha == 0.0 || m == 0 || n == 0 {
        return;
    }
    WORKSPACE.with(|ws| {
        let ws = &mut *ws.borrow_mut();
        gemm_core_ws(alpha, a, b, row_off, col_off, blocks, ws);
    });
}

#[allow(clippy::too_many_arguments)]
fn gemm_core_ws(
    alpha: f64,
    a: &Mat,
    b: &Mat,
    row_off: &[usize],
    col_off: &[usize],
    blocks: &mut [Mat],
    ws: &mut Workspace,
) {
    let m = a.rows();
    let k = a.cols();
    let n = b.cols();
    // Global index -> (stripe, local index) maps for C tile loads/stores.
    let s_cols = col_off.len() - 1;
    ensure(&mut ws.row_map, m);
    let row_map = &mut ws.row_map[..m];
    for bi in 0..row_off.len() - 1 {
        for (lr, rm) in row_map[row_off[bi]..row_off[bi + 1]].iter_mut().enumerate() {
            *rm = (bi as u32, lr as u32);
        }
    }
    ensure(&mut ws.col_map, n);
    let col_map = &mut ws.col_map[..n];
    for bj in 0..s_cols {
        for (lc, cm) in col_map[col_off[bj]..col_off[bj + 1]].iter_mut().enumerate() {
            *cm = (bj as u32, lc as u32);
        }
    }

    let a_buf = a.as_slice();
    let b_buf = b.as_slice();
    // Packed slabs, reused across blocks. A slab: MR-row tiles, each laid
    // out kk-major (`ap[tile][kk * MR + r]`); B slab: NR-column tiles, each
    // kk-major (`bp[tile][t * NR + c]` for the `t`-th *kept* `kk`), with
    // alpha folded in. Edge tiles are zero-padded so the micro-kernel never
    // branches on ragged bounds.
    //
    // Gathered U panels are riddled with structural zeros that arrive as
    // whole zero rows, so packing compresses them out per tile: `kk` steps
    // whose every real column has a zero scale are dropped (their
    // contributions would all be skipped anyway), and `tile_kks` records
    // the surviving original `kk` indices, ascending — the arithmetic
    // sequence per element is exactly the axpy kernel's.
    // The B panel spans the full column range: supernodal Schur updates
    // always have `k <= KC` (the supernode width), so the entire packed B
    // fits one `KC`-deep panel and packs exactly once — and with no outer
    // column loop, A also packs exactly once. The inner loops then stream
    // the (L3-resident) B panel over each L2-resident A block; at the
    // sizes the solver produces that replaces `n / NC` re-packs of A with
    // cheap streaming reads of compressed B.
    let ncb = n.div_ceil(NR) * NR;
    ensure(&mut ws.ap, MC * KC);
    ensure(&mut ws.bp, KC * ncb);
    ensure(&mut ws.tile_kks, (ncb / NR) * KC);
    ensure(&mut ws.tile_len, ncb / NR);
    // Zero scales remaining among kept rows' real columns: tiles with none
    // take the branch-free micro-kernel (the common, dense case).
    ensure(&mut ws.tile_zeros, ncb / NR);
    let (ap, bp) = (&mut ws.ap[..], &mut ws.bp[..]);
    let (tile_kks, tile_len, tile_zeros) = (
        &mut ws.tile_kks[..],
        &mut ws.tile_len[..],
        &mut ws.tile_zeros[..],
    );
    let mut performed_madds = 0u64;
    let mut skipped_pairs = 0u64;

    for jc in (0..n).step_by(ncb) {
        let nc_len = ncb.min(n - jc);
        let n_tiles = nc_len.div_ceil(NR);
        for pc in (0..k).step_by(KC) {
            let kc_len = KC.min(k - pc);
            // Pack B(pc..pc+kc_len, jc..jc+nc_len), premultiplied by alpha,
            // counting the zero scales each column-tile will skip and
            // dropping all-zero rows.
            let mut zero_pairs = 0u64;
            for jt in 0..n_tiles {
                let base = jt * NR * kc_len;
                let kbase = jt * KC;
                let tile_cols = NR.min(nc_len - jt * NR);
                let mut len = 0usize;
                let mut tz = 0u64;
                for kk in 0..kc_len {
                    let mut scales = [0.0f64; NR];
                    let mut row_zeros = 0u64;
                    for (cc, s) in scales.iter_mut().enumerate().take(tile_cols) {
                        *s = alpha * b_buf[(jc + jt * NR + cc) * k + pc + kk];
                        if *s == 0.0 {
                            row_zeros += 1;
                        }
                    }
                    zero_pairs += row_zeros;
                    if row_zeros == tile_cols as u64 {
                        continue; // every real contribution skipped: drop row
                    }
                    tz += row_zeros;
                    bp[base + len * NR..base + len * NR + NR].copy_from_slice(&scales);
                    tile_kks[kbase + len] = kk as u16;
                    len += 1;
                }
                tile_len[jt] = len;
                tile_zeros[jt] = tz;
            }
            let real_pairs = (kc_len * nc_len) as u64;
            performed_madds += m as u64 * (real_pairs - zero_pairs);
            skipped_pairs += zero_pairs;

            for ic in (0..m).step_by(MC) {
                let mc_len = MC.min(m - ic);
                let m_tiles = mc_len.div_ceil(MR);
                // Pack A(ic..ic+mc_len, pc..pc+kc_len).
                for it in 0..m_tiles {
                    let i0 = ic + it * MR;
                    let rows = MR.min(m - i0);
                    let base = it * MR * kc_len;
                    for kk in 0..kc_len {
                        let src = (pc + kk) * m + i0;
                        let dst = base + kk * MR;
                        ap[dst..dst + rows].copy_from_slice(&a_buf[src..src + rows]);
                        for r in rows..MR {
                            ap[dst + r] = 0.0;
                        }
                    }
                }

                for jt in 0..n_tiles {
                    let len = tile_len[jt];
                    if len == 0 {
                        continue; // every contribution in this tile is skipped
                    }
                    let j0 = jc + jt * NR;
                    let nr_len = NR.min(n - j0);
                    let dense = tile_zeros[jt] == 0;
                    let kks = &tile_kks[jt * KC..jt * KC + len];
                    let b_tile = &bp[jt * NR * kc_len..jt * NR * kc_len + len * NR];
                    for it in 0..m_tiles {
                        let i0 = ic + it * MR;
                        let mr_len = MR.min(m - i0);
                        let a_tile = &ap[it * MR * kc_len..(it + 1) * MR * kc_len];
                        let mut acc = [0.0f64; MR * NR];
                        load_tile(
                            &mut acc, blocks, s_cols, row_map, col_map, i0, j0, mr_len, nr_len,
                        );
                        if dense {
                            micro_tile_dense(a_tile, b_tile, kks, &mut acc);
                        } else {
                            micro_tile(a_tile, b_tile, kks, &mut acc);
                        }
                        store_tile(
                            &acc, blocks, s_cols, row_map, col_map, i0, j0, mr_len, nr_len,
                        );
                    }
                }
            }
        }
    }
    flops::add(2 * performed_madds);
    flops::add_skipped(2 * m as u64 * skipped_pairs);
}

/// Load the `mr_len x nr_len` C tile at `(i0, j0)` into the register-tile
/// accumulator, pulling each column's row range from the stripe blocks it
/// crosses. Unloaded accumulator lanes stay zero (padded rows/columns) and
/// are never stored back.
#[allow(clippy::too_many_arguments)]
#[inline]
fn load_tile(
    acc: &mut [f64; MR * NR],
    blocks: &[Mat],
    s_cols: usize,
    row_map: &[(u32, u32)],
    col_map: &[(u32, u32)],
    i0: usize,
    j0: usize,
    mr_len: usize,
    nr_len: usize,
) {
    for cc in 0..nr_len {
        let (bj, lc) = col_map[j0 + cc];
        let mut r = 0usize;
        while r < mr_len {
            let (bi, lr) = row_map[i0 + r];
            let col = blocks[bi as usize * s_cols + bj as usize].col(lc as usize);
            let lr = lr as usize;
            let frag = (mr_len - r).min(col.len() - lr);
            acc[cc * MR + r..cc * MR + r + frag].copy_from_slice(&col[lr..lr + frag]);
            r += frag;
        }
    }
}

/// Inverse of [`load_tile`]: write the accumulator's real lanes back into
/// the stripe blocks.
#[allow(clippy::too_many_arguments)]
#[inline]
fn store_tile(
    acc: &[f64; MR * NR],
    blocks: &mut [Mat],
    s_cols: usize,
    row_map: &[(u32, u32)],
    col_map: &[(u32, u32)],
    i0: usize,
    j0: usize,
    mr_len: usize,
    nr_len: usize,
) {
    for cc in 0..nr_len {
        let (bj, lc) = col_map[j0 + cc];
        let mut r = 0usize;
        while r < mr_len {
            let (bi, lr) = row_map[i0 + r];
            let col = blocks[bi as usize * s_cols + bj as usize].col_mut(lc as usize);
            let lr = lr as usize;
            let frag = (mr_len - r).min(col.len() - lr);
            col[lr..lr + frag].copy_from_slice(&acc[cc * MR + r..cc * MR + r + frag]);
            r += frag;
        }
    }
}

/// One `MR x NR` register-tile update: accumulate the packed inner
/// products over the kept `kk` steps (listed ascending in `kks`) into the
/// pre-loaded accumulator. Padded rows are computed against zero-packed A
/// lanes and never stored; padded columns carry zero scales and are
/// skipped like any other zero.
#[inline]
fn micro_tile(a_tile: &[f64], b_tile: &[f64], kks: &[u16], acc: &mut [f64; MR * NR]) {
    // Work on a by-value copy: a local array the compiler can keep in
    // registers for the whole inner-product loop (the referenced `acc` is
    // pinned to memory by the fragment copies around this call).
    let mut t_acc = *acc;
    for (t, &kk) in kks.iter().enumerate() {
        let ak = &a_tile[kk as usize * MR..kk as usize * MR + MR];
        for cc in 0..NR {
            let s = b_tile[t * NR + cc];
            if s == 0.0 {
                continue;
            }
            for rr in 0..MR {
                t_acc[cc * MR + rr] += s * ak[rr];
            }
        }
    }
    *acc = t_acc;
}

/// Branch-free variant of [`micro_tile`] for B tiles whose kept rows carry
/// no zero scales in their real columns: the skip test disappears from the
/// inner loop, so the whole `MR x NR` accumulator updates as straight-line
/// vector code. Bitwise identical to [`micro_tile`] on such tiles — the
/// skip branch would never fire. Padded columns do carry zero scales;
/// computing on them touches only accumulator lanes that are never stored.
#[inline]
fn micro_tile_dense(a_tile: &[f64], b_tile: &[f64], kks: &[u16], acc: &mut [f64; MR * NR]) {
    // By-value accumulator copy, as in [`micro_tile`]: keeps the register
    // tile in registers.
    let mut t_acc = *acc;
    for (t, &kk) in kks.iter().enumerate() {
        let ak: &[f64; MR] = a_tile[kk as usize * MR..kk as usize * MR + MR]
            .try_into()
            .unwrap();
        let bk: &[f64; NR] = b_tile[t * NR..t * NR + NR].try_into().unwrap();
        for cc in 0..NR {
            let s = bk[cc];
            for rr in 0..MR {
                t_acc[cc * MR + rr] += s * ak[rr];
            }
        }
    }
    *acc = t_acc;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{gemm, gemm_naive};

    fn mk(m: usize, n: usize, seed: u64) -> Mat {
        let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
        Mat::from_fn(m, n, |_, _| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % 1000) as f64 / 500.0 - 1.0
        })
    }

    /// Sprinkle exact zeros so the skip branch is exercised.
    fn mk_sparse(m: usize, n: usize, seed: u64) -> Mat {
        let mut a = mk(m, n, seed);
        for j in 0..n {
            for i in 0..m {
                if (i * 31 + j * 17 + seed as usize).is_multiple_of(3) {
                    *a.at_mut(i, j) = 0.0;
                }
            }
        }
        a
    }

    #[test]
    fn bitwise_identical_to_axpy_kernel() {
        // The load-bearing contract: register blocking must not change a
        // single bit versus the axpy kernel, across interior and ragged
        // tile shapes, multiple cache blocks, and zero-skip patterns.
        for &(m, n, k) in &[
            (8usize, 8usize, 8usize),
            (5, 7, 3),
            (16, 12, 64),
            (33, 29, 70),
            (130, 131, 65), // crosses MC/KC boundaries
            (256, 140, 90),
        ] {
            for &(alpha, beta) in &[(1.0, 1.0), (-1.0, 1.0), (1.5, -0.5), (2.0, 0.0)] {
                let a = mk_sparse(m, k, 1 + m as u64);
                let b = mk_sparse(k, n, 2 + n as u64);
                let mut c1 = mk(m, n, 3);
                let mut c2 = c1.clone();
                gemm(alpha, &a, &b, beta, &mut c1);
                gemm_blocked(alpha, &a, &b, beta, &mut c2);
                for j in 0..n {
                    for i in 0..m {
                        assert_eq!(
                            c1.at(i, j).to_bits(),
                            c2.at(i, j).to_bits(),
                            "({m},{n},{k}) alpha={alpha} beta={beta} at ({i},{j})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn sliver_shapes_match_gemm_naive() {
        // m or n <= 4 takes the axpy fallback; results must agree with the
        // reference triple loop to rounding accuracy.
        for &(m, n, k) in &[
            (1usize, 9usize, 12usize),
            (4, 33, 16),
            (3, 128, 64),
            (17, 2, 20),
            (129, 4, 65),
            (2, 3, 1),
        ] {
            assert!(m <= SLIVER || n <= SLIVER);
            let a = mk(m, k, 11);
            let b = mk(k, n, 12);
            let mut c1 = mk(m, n, 13);
            let mut c2 = c1.clone();
            gemm_blocked(-1.0, &a, &b, 1.0, &mut c1);
            gemm_naive(-1.0, &a, &b, 1.0, &mut c2);
            for j in 0..n {
                for i in 0..m {
                    assert!(
                        (c1.at(i, j) - c2.at(i, j)).abs() < 1e-10,
                        "({m},{n},{k}) at ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn charges_same_flops_as_axpy_kernel() {
        let (m, n, k) = (40usize, 37usize, 70usize);
        let a = mk_sparse(m, k, 21);
        let b = mk_sparse(k, n, 22);
        let mut c1 = Mat::zeros(m, n);
        let mut c2 = Mat::zeros(m, n);
        flops::reset();
        flops::reset_skipped();
        gemm(-1.0, &a, &b, 1.0, &mut c1);
        let (f1, s1) = (flops::reset(), flops::reset_skipped());
        gemm_blocked(-1.0, &a, &b, 1.0, &mut c2);
        let (f2, s2) = (flops::reset(), flops::reset_skipped());
        assert_eq!(f1, f2, "charged flops must match the axpy kernel");
        assert_eq!(s1, s2, "skipped flops must match the axpy kernel");
        assert_eq!(f1 + s1, flops::gemm_flops(m, n, k));
    }

    #[test]
    fn empty_k_only_scales() {
        let a = Mat::zeros(6, 0);
        let b = Mat::zeros(0, 8);
        let mut c = Mat::from_fn(6, 8, |i, j| (i + j) as f64);
        gemm_blocked(2.0, &a, &b, 0.5, &mut c);
        assert_eq!(c.at(5, 7), 6.0);
    }
}
