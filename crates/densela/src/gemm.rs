//! General matrix-matrix multiply: the Schur-complement workhorse.
//!
//! The sparse LU Schur update `A_ij -= L_ik * U_kj` (paper §II-E) is a plain
//! dense GEMM once supernodal blocks are stored as padded dense panels. The
//! kernel here is an axpy-form column-major GEMM with k-blocking: for each
//! column of `C` it accumulates `A(:,k) * B(k,j)` with stride-1 inner loops,
//! which the compiler auto-vectorizes.

use crate::flops;
use crate::matrix::Mat;

/// Block size over the `k` dimension; keeps the active panel of `A` in cache.
const KB: usize = 64;

/// `C = beta*C + alpha * A * B` with `A: m x k`, `B: k x n`, `C: m x n`.
///
/// Panics if dimensions are inconsistent.
pub fn gemm(alpha: f64, a: &Mat, b: &Mat, beta: f64, c: &mut Mat) {
    let m = a.rows();
    let k = a.cols();
    let n = b.cols();
    assert_eq!(b.rows(), k, "gemm: inner dimensions differ");
    assert_eq!(c.rows(), m, "gemm: C row count mismatch");
    assert_eq!(c.cols(), n, "gemm: C col count mismatch");
    if m == 0 || n == 0 {
        return;
    }

    if beta != 1.0 {
        for v in c.as_mut_slice() {
            *v *= beta;
        }
    }
    if k == 0 || alpha == 0.0 {
        return;
    }

    let a_buf = a.as_slice();
    let b_buf = b.as_slice();
    let mut skipped_pairs = 0u64;
    for k0 in (0..k).step_by(KB) {
        let k1 = (k0 + KB).min(k);
        for j in 0..n {
            let cj = c.col_mut(j);
            let bj = &b_buf[j * k..(j + 1) * k];
            for kk in k0..k1 {
                let scale = alpha * bj[kk];
                if scale == 0.0 {
                    skipped_pairs += 1;
                    continue;
                }
                let ak = &a_buf[kk * m..(kk + 1) * m];
                for (ci, ai) in cj.iter_mut().zip(ak) {
                    *ci += scale * *ai;
                }
            }
        }
    }
    // Charge only the multiply-adds actually performed; zero-scale columns
    // (padded supernodal panels) go to the skipped ledger instead of the
    // simulated clock.
    flops::add(2 * m as u64 * ((n * k) as u64 - skipped_pairs));
    flops::add_skipped(2 * m as u64 * skipped_pairs);
}

/// Convenience wrapper for the Schur-update form `C -= A * B`.
pub fn gemm_notrans(c: &mut Mat, a: &Mat, b: &Mat) {
    gemm(-1.0, a, b, 1.0, c);
}

/// `C = beta*C + alpha * A * B^T` with `A: m x k`, `B: n x k`, `C: m x n`.
///
/// The symmetric Schur-update kernel (`A(I,J) -= L(I,k) L(J,k)^T` in the
/// Cholesky path) without materializing the transpose: column `j` of `C`
/// accumulates `A(:,kk) * B(j,kk)` with stride-1 inner loops.
pub fn gemm_nt(alpha: f64, a: &Mat, b: &Mat, beta: f64, c: &mut Mat) {
    let m = a.rows();
    let k = a.cols();
    let n = b.rows();
    assert_eq!(b.cols(), k, "gemm_nt: inner dimensions differ");
    assert_eq!(c.rows(), m, "gemm_nt: C row count mismatch");
    assert_eq!(c.cols(), n, "gemm_nt: C col count mismatch");
    if m == 0 || n == 0 {
        return;
    }
    if beta != 1.0 {
        for v in c.as_mut_slice() {
            *v *= beta;
        }
    }
    if k == 0 || alpha == 0.0 {
        return;
    }
    let a_buf = a.as_slice();
    let mut skipped_pairs = 0u64;
    for k0 in (0..k).step_by(KB) {
        let k1 = (k0 + KB).min(k);
        for j in 0..n {
            let cj = c.col_mut(j);
            for kk in k0..k1 {
                let scale = alpha * b.at(j, kk);
                if scale == 0.0 {
                    skipped_pairs += 1;
                    continue;
                }
                let ak = &a_buf[kk * m..(kk + 1) * m];
                for (ci, ai) in cj.iter_mut().zip(ak) {
                    *ci += scale * *ai;
                }
            }
        }
    }
    flops::add(2 * m as u64 * ((n * k) as u64 - skipped_pairs));
    flops::add_skipped(2 * m as u64 * skipped_pairs);
}

/// Reference triple-loop GEMM used only by tests and property checks.
pub fn gemm_naive(alpha: f64, a: &Mat, b: &Mat, beta: f64, c: &mut Mat) {
    let m = a.rows();
    let k = a.cols();
    let n = b.cols();
    assert_eq!(b.rows(), k);
    assert_eq!((c.rows(), c.cols()), (m, n));
    for j in 0..n {
        for i in 0..m {
            let mut s = 0.0;
            for kk in 0..k {
                s += a.at(i, kk) * b.at(kk, j);
            }
            let v = c.at(i, j);
            *c.at_mut(i, j) = beta * v + alpha * s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(m: usize, n: usize, seed: u64) -> Mat {
        let mut s = seed;
        Mat::from_fn(m, n, |_, _| {
            // xorshift for deterministic pseudo-random fill
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % 1000) as f64 / 500.0 - 1.0
        })
    }

    #[test]
    fn matches_naive() {
        for &(m, n, k) in &[
            (1usize, 1usize, 1usize),
            (5, 7, 3),
            (16, 16, 16),
            (33, 9, 70),
        ] {
            let a = mk(m, k, 1);
            let b = mk(k, n, 2);
            let mut c1 = mk(m, n, 3);
            let mut c2 = c1.clone();
            gemm(1.5, &a, &b, -0.5, &mut c1);
            gemm_naive(1.5, &a, &b, -0.5, &mut c2);
            for j in 0..n {
                for i in 0..m {
                    assert!((c1.at(i, j) - c2.at(i, j)).abs() < 1e-10);
                }
            }
        }
    }

    #[test]
    fn gemm_nt_matches_explicit_transpose() {
        for &(m, n, k) in &[
            (1usize, 1usize, 1usize),
            (5, 7, 3),
            (16, 16, 16),
            (9, 33, 20),
        ] {
            let a = mk(m, k, 11);
            let b = mk(n, k, 12);
            let mut c1 = mk(m, n, 13);
            let mut c2 = c1.clone();
            gemm_nt(-1.5, &a, &b, 0.5, &mut c1);
            gemm(-1.5, &a, &b.transpose(), 0.5, &mut c2);
            for j in 0..n {
                for i in 0..m {
                    assert!((c1.at(i, j) - c2.at(i, j)).abs() < 1e-10, "({i},{j})");
                }
            }
        }
    }

    #[test]
    fn zero_k_only_scales() {
        let a = Mat::zeros(3, 0);
        let b = Mat::zeros(0, 4);
        let mut c = Mat::from_fn(3, 4, |i, j| (i + j) as f64);
        gemm(2.0, &a, &b, 0.5, &mut c);
        assert_eq!(c.at(2, 3), 2.5);
    }

    #[test]
    fn counts_flops() {
        // Dense operands: every multiply-add runs, the full 2mnk is
        // charged, and nothing lands on the skipped ledger.
        flops::reset();
        flops::reset_skipped();
        let a = mk(8, 4, 5);
        let b = mk(4, 6, 6);
        let mut c = Mat::zeros(8, 6);
        gemm(1.0, &a, &b, 0.0, &mut c);
        assert_eq!(flops::reset(), flops::gemm_flops(8, 6, 4));
        assert_eq!(flops::reset_skipped(), 0);
    }

    #[test]
    fn zero_scale_work_is_skipped_not_charged() {
        // A padded (all-zero) column of B contributes no arithmetic: its
        // multiply-adds move to the skipped ledger, and charged + skipped
        // still reconstructs the nominal 2mnk. This is the contract the
        // batched Schur path relies on for honest simulated-clock charges
        // on zero-padded supernodal panels.
        let (m, n, k) = (8usize, 6usize, 4usize);
        let a = mk(m, k, 5);
        let mut b = mk(k, n, 6);
        for kk in 0..k {
            *b.at_mut(kk, 2) = 0.0; // one dead column
        }
        flops::reset();
        flops::reset_skipped();
        let mut c = Mat::zeros(m, n);
        gemm(1.0, &a, &b, 0.0, &mut c);
        let charged = flops::reset();
        let skipped = flops::reset_skipped();
        let dead = flops::gemm_flops(m, 1, k);
        assert_eq!(charged, flops::gemm_flops(m, n, k) - dead);
        assert_eq!(skipped, dead);

        // Same contract for the transposed-B kernel.
        flops::reset();
        flops::reset_skipped();
        let bt = b.transpose();
        let mut c2 = Mat::zeros(m, n);
        gemm_nt(1.0, &a, &bt, 0.0, &mut c2);
        assert_eq!(flops::reset(), flops::gemm_flops(m, n, k) - dead);
        assert_eq!(flops::reset_skipped(), dead);
    }

    #[test]
    fn identity_multiplication() {
        let a = mk(6, 6, 9);
        let id = Mat::identity(6);
        let mut c = Mat::zeros(6, 6);
        gemm(1.0, &a, &id, 0.0, &mut c);
        assert_eq!(c, a);
    }
}
