//! Triangular solves with multiple right-hand sides: the panel-solve kernels.
//!
//! After the diagonal block `A_kk` of a supernode is factored into
//! `L_kk * U_kk`, the paper's panel-solve step (§II-E, kernel 3) computes
//!
//! - `U_kj = L_kk^{-1} A_kj`  — [`trsm_left_lower_unit`]
//! - `L_ik = A_ik U_kk^{-1}`  — [`trsm_right_upper`]
//!
//! Both operate in place on the right-hand-side panel. The triangular factor
//! is passed as the in-place `getrf` output: `L` is the strict lower triangle
//! with an implicit unit diagonal, `U` the upper triangle including the
//! diagonal.

use crate::flops;
use crate::matrix::Mat;

/// In-place solve `L * X = B` where `L` is the unit lower triangle stored in
/// `lu` (a square in-place LU factor). `b` holds `B` on entry, `X` on exit.
///
/// `b` may be rectangular: `lu.rows() == b.rows()`.
pub fn trsm_left_lower_unit(lu: &Mat, b: &mut Mat) {
    let n = lu.rows();
    assert_eq!(lu.cols(), n, "triangular factor must be square");
    assert_eq!(b.rows(), n, "rhs row count mismatch");
    let nrhs = b.cols();
    if n == 0 || nrhs == 0 {
        return;
    }
    let lbuf = lu.as_slice();
    for j in 0..nrhs {
        let x = b.col_mut(j);
        // Forward substitution, column-oriented: once x[k] is final, subtract
        // x[k] * L(:,k) from the remainder (stride-1 over the L column).
        for k in 0..n {
            let xk = x[k];
            if xk == 0.0 {
                continue;
            }
            let lcol = &lbuf[k * n..(k + 1) * n];
            for i in k + 1..n {
                x[i] -= xk * lcol[i];
            }
        }
    }
    flops::add(flops::trsm_flops(n, nrhs));
}

/// In-place solve `X * U = B` where `U` is the (non-unit) upper triangle
/// stored in `lu`. `b` holds `B` on entry, `X` on exit.
///
/// `b` may be rectangular: `lu.rows() == b.cols()`.
pub fn trsm_right_upper(lu: &Mat, b: &mut Mat) {
    let n = lu.rows();
    assert_eq!(lu.cols(), n, "triangular factor must be square");
    assert_eq!(b.cols(), n, "rhs col count mismatch");
    let m = b.rows();
    if n == 0 || m == 0 {
        return;
    }
    // Solve column by column of X: X(:,k) = (B(:,k) - X(:,0..k) * U(0..k,k)) / U(k,k).
    for k in 0..n {
        let ukk = lu.at(k, k);
        assert!(ukk != 0.0, "zero pivot in trsm_right_upper at {k}");
        for l in 0..k {
            let ulk = lu.at(l, k);
            if ulk == 0.0 {
                continue;
            }
            // b(:,k) -= b(:,l) * U(l,k); need split borrow of two columns.
            let (lo, hi) = b.as_mut_slice().split_at_mut(k * m);
            let xl = &lo[l * m..(l + 1) * m];
            let xk = &mut hi[..m];
            for (bk, bl) in xk.iter_mut().zip(xl) {
                *bk -= *bl * ulk;
            }
        }
        let inv = 1.0 / ukk;
        for v in b.col_mut(k) {
            *v *= inv;
        }
    }
    flops::add(flops::trsm_flops(n, m));
}

/// Forward substitution `L y = b` for a single vector, unit-diagonal `L`
/// taken from an in-place LU factor.
pub fn forward_subst_unit(lu: &Mat, b: &mut [f64]) {
    let n = lu.rows();
    assert_eq!(b.len(), n);
    for k in 0..n {
        let xk = b[k];
        if xk == 0.0 {
            continue;
        }
        for i in k + 1..n {
            b[i] -= xk * lu.at(i, k);
        }
    }
    flops::add((n * n) as u64 / 2);
}

/// Backward substitution `U x = y` for a single vector, `U` taken from an
/// in-place LU factor.
pub fn backward_subst(lu: &Mat, b: &mut [f64]) {
    let n = lu.rows();
    assert_eq!(b.len(), n);
    for k in (0..n).rev() {
        let ukk = lu.at(k, k);
        assert!(ukk != 0.0, "zero pivot in backward_subst at {k}");
        b[k] /= ukk;
        let xk = b[k];
        if xk == 0.0 {
            continue;
        }
        for i in 0..k {
            b[i] -= xk * lu.at(i, k);
        }
    }
    flops::add((n * n) as u64 / 2);
}

/// Forward substitution `U^T y = b` for a single vector (`U^T` is lower
/// triangular with the diagonal), `U` taken from an in-place LU factor.
/// Used by transpose solves (`A^T x = b`) for condition estimation.
pub fn forward_subst_utrans(lu: &Mat, b: &mut [f64]) {
    let n = lu.rows();
    assert_eq!(b.len(), n);
    for k in 0..n {
        let mut v = b[k];
        // Column k of U above the diagonal = row entries of U^T left of k.
        for i in 0..k {
            v -= lu.at(i, k) * b[i];
        }
        let ukk = lu.at(k, k);
        assert!(ukk != 0.0, "zero pivot in forward_subst_utrans at {k}");
        b[k] = v / ukk;
    }
    flops::add((n * n) as u64 / 2);
}

/// Backward substitution `L^T x = y` for a single vector (`L^T` is unit
/// upper triangular), `L` taken from an in-place LU factor.
pub fn backward_subst_ltrans_unit(lu: &Mat, b: &mut [f64]) {
    let n = lu.rows();
    assert_eq!(b.len(), n);
    for k in (0..n).rev() {
        let mut v = b[k];
        for i in k + 1..n {
            v -= lu.at(i, k) * b[i];
        }
        b[k] = v;
    }
    flops::add((n * n) as u64 / 2);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::gemm;

    /// Build a well-conditioned square LU-format matrix: unit lower L and
    /// upper U packed into one buffer.
    fn packed_lu(n: usize) -> Mat {
        Mat::from_fn(n, n, |i, j| {
            if i == j {
                2.0 + (i % 3) as f64
            } else if i > j {
                0.1 / (1.0 + (i - j) as f64) // L part
            } else {
                0.2 / (1.0 + (j - i) as f64) // U part
            }
        })
    }

    fn extract_l(lu: &Mat) -> Mat {
        let n = lu.rows();
        Mat::from_fn(n, n, |i, j| {
            if i == j {
                1.0
            } else if i > j {
                lu.at(i, j)
            } else {
                0.0
            }
        })
    }

    fn extract_u(lu: &Mat) -> Mat {
        let n = lu.rows();
        Mat::from_fn(n, n, |i, j| if i <= j { lu.at(i, j) } else { 0.0 })
    }

    #[test]
    fn left_lower_solves() {
        let n = 9;
        let lu = packed_lu(n);
        let l = extract_l(&lu);
        let x_true = Mat::from_fn(n, 4, |i, j| (i + 2 * j) as f64 * 0.3 - 1.0);
        let mut b = Mat::zeros(n, 4);
        gemm(1.0, &l, &x_true, 0.0, &mut b);
        trsm_left_lower_unit(&lu, &mut b);
        for j in 0..4 {
            for i in 0..n {
                assert!((b.at(i, j) - x_true.at(i, j)).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn right_upper_solves() {
        let n = 8;
        let lu = packed_lu(n);
        let u = extract_u(&lu);
        let x_true = Mat::from_fn(5, n, |i, j| ((i * j) % 7) as f64 * 0.25 - 0.5);
        let mut b = Mat::zeros(5, n);
        gemm(1.0, &x_true, &u, 0.0, &mut b);
        trsm_right_upper(&lu, &mut b);
        for j in 0..n {
            for i in 0..5 {
                assert!((b.at(i, j) - x_true.at(i, j)).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn vector_substitutions_invert_lu() {
        let n = 12;
        let lu = packed_lu(n);
        let l = extract_l(&lu);
        let u = extract_u(&lu);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64) * 0.5 - 2.0).collect();
        // b = L * U * x
        let ux = u.matvec(&x_true);
        let mut b = l.matvec(&ux);
        forward_subst_unit(&lu, &mut b);
        backward_subst(&lu, &mut b);
        for i in 0..n {
            assert!((b[i] - x_true[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn transpose_substitutions_invert_lu_transpose() {
        // Solve A^T x = b via U^T then L^T substitution.
        let n = 10;
        let lu = packed_lu(n);
        let l = extract_l(&lu);
        let u = extract_u(&lu);
        let x_true: Vec<f64> = (0..n).map(|i| ((i * 3) % 7) as f64 - 2.0).collect();
        // b = (L U)^T x = U^T (L^T x)
        let ltx = l.tr_matvec(&x_true);
        let mut b = u.tr_matvec(&ltx);
        forward_subst_utrans(&lu, &mut b);
        backward_subst_ltrans_unit(&lu, &mut b);
        for i in 0..n {
            assert!((b[i] - x_true[i]).abs() < 1e-10, "i={i}");
        }
    }

    #[test]
    fn empty_rhs_is_noop() {
        let lu = packed_lu(4);
        let mut b = Mat::zeros(4, 0);
        trsm_left_lower_unit(&lu, &mut b);
        let mut b2 = Mat::zeros(0, 4);
        trsm_right_upper(&lu, &mut b2);
    }
}
