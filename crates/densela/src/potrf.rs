//! Cholesky factorization of an SPD block: the diagonal kernel for the
//! symmetric (LL^T) variant of the solver stack.
//!
//! The paper's §VII notes the 3D principles "could be applied to other
//! variants of sparse factorization, such as Cholesky"; the `slu2d::cholseq`
//! module builds that variant on this kernel.

use crate::flops;
use crate::matrix::Mat;

/// Outcome of a Cholesky factorization attempt.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PotrfInfo {
    /// Index of the first non-positive pivot, if the matrix was not
    /// numerically SPD. Factor content is undefined past this column.
    pub not_spd_at: Option<usize>,
}

/// Factor the SPD matrix `a` in place as `A = L * L^T`. On exit the lower
/// triangle holds `L` and the strict upper triangle holds `L^T` (mirrored),
/// so the block can be consumed by the same triangular-solve kernels as an
/// LU-format block.
pub fn potrf(a: &mut Mat) -> PotrfInfo {
    let n = a.rows();
    assert_eq!(a.cols(), n, "potrf expects a square block");
    for k in 0..n {
        let mut d = a.at(k, k);
        for j in 0..k {
            let l = a.at(k, j);
            d -= l * l;
        }
        if d <= 0.0 {
            return PotrfInfo {
                not_spd_at: Some(k),
            };
        }
        let lkk = d.sqrt();
        *a.at_mut(k, k) = lkk;
        let inv = 1.0 / lkk;
        for i in k + 1..n {
            let mut v = a.at(i, k);
            for j in 0..k {
                v -= a.at(i, j) * a.at(k, j);
            }
            let lik = v * inv;
            *a.at_mut(i, k) = lik;
            *a.at_mut(k, i) = lik; // mirror for L^T consumers
        }
    }
    flops::add(flops::getrf_flops(n, n) / 2);
    PotrfInfo { not_spd_at: None }
}

/// Forward substitution `L y = b` for a single vector against a `potrf`
/// factor (non-unit diagonal, unlike the LU kernels).
pub fn chol_forward(l: &Mat, b: &mut [f64]) {
    let n = l.rows();
    assert_eq!(b.len(), n);
    for k in 0..n {
        b[k] /= l.at(k, k);
        let xk = b[k];
        for i in k + 1..n {
            b[i] -= xk * l.at(i, k);
        }
    }
    flops::add((n * n) as u64 / 2);
}

/// Backward substitution `L^T x = y` for a single vector against a `potrf`
/// factor.
pub fn chol_backward(l: &Mat, b: &mut [f64]) {
    let n = l.rows();
    assert_eq!(b.len(), n);
    for k in (0..n).rev() {
        let mut v = b[k];
        for i in k + 1..n {
            v -= l.at(i, k) * b[i];
        }
        b[k] = v / l.at(k, k);
    }
    flops::add((n * n) as u64 / 2);
}

/// In-place solve `X * L^T = B` (right solve against the transposed
/// Cholesky factor): the panel kernel `L(I,k) = A(I,k) L_kk^{-T}`.
pub fn trsm_right_ltrans(l: &Mat, b: &mut Mat) {
    let n = l.rows();
    assert_eq!(l.cols(), n);
    assert_eq!(b.cols(), n, "rhs col count mismatch");
    let m = b.rows();
    // Column k of X: X(:,k) = (B(:,k) - sum_{j<k} X(:,j) L(k,j)) / L(k,k).
    for k in 0..n {
        for j in 0..k {
            let lkj = l.at(k, j);
            if lkj == 0.0 {
                continue;
            }
            let (lo, hi) = b.as_mut_slice().split_at_mut(k * m);
            let xj = &lo[j * m..(j + 1) * m];
            let xk = &mut hi[..m];
            for (bk, bj) in xk.iter_mut().zip(xj) {
                *bk -= *bj * lkj;
            }
        }
        let inv = 1.0 / l.at(k, k);
        for v in b.col_mut(k) {
            *v *= inv;
        }
    }
    flops::add(flops::trsm_flops(n, m));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::gemm;

    fn spd(n: usize) -> Mat {
        // A^T A + n I is SPD.
        let base = Mat::from_fn(n, n, |i, j| ((i * 3 + j * 7) % 5) as f64 / 5.0 - 0.3);
        let mut m = Mat::zeros(n, n);
        gemm(1.0, &base.transpose(), &base, 0.0, &mut m);
        for i in 0..n {
            *m.at_mut(i, i) += n as f64;
        }
        m
    }

    #[test]
    fn reconstructs_a() {
        let n = 12;
        let a = spd(n);
        let mut f = a.clone();
        assert_eq!(potrf(&mut f).not_spd_at, None);
        // L * L^T == A (read L from the lower triangle).
        for i in 0..n {
            for j in 0..n {
                let mut v = 0.0;
                for k in 0..=i.min(j) {
                    v += f.at(i, k) * f.at(j, k);
                }
                assert!((v - a.at(i, j)).abs() < 1e-10, "({i},{j})");
            }
        }
    }

    #[test]
    fn mirrored_upper_triangle() {
        let n = 6;
        let mut f = spd(n);
        potrf(&mut f);
        for i in 0..n {
            for j in 0..i {
                assert_eq!(f.at(i, j), f.at(j, i));
            }
        }
    }

    #[test]
    fn solves_spd_system() {
        let n = 20;
        let a = spd(n);
        let x_true: Vec<f64> = (0..n).map(|i| (i % 7) as f64 - 3.0).collect();
        let mut b = a.matvec(&x_true);
        let mut f = a.clone();
        potrf(&mut f);
        chol_forward(&f, &mut b);
        chol_backward(&f, &mut b);
        for i in 0..n {
            assert!((b[i] - x_true[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn rejects_indefinite() {
        let mut a = Mat::identity(3);
        *a.at_mut(2, 2) = -1.0;
        assert_eq!(potrf(&mut a).not_spd_at, Some(2));
    }

    #[test]
    fn right_ltrans_panel_solve() {
        let n = 8;
        let a = spd(n);
        let mut f = a.clone();
        potrf(&mut f);
        // Build B = X * L^T for known X, recover X.
        let x_true = Mat::from_fn(5, n, |i, j| ((i + 2 * j) % 9) as f64 * 0.2 - 0.7);
        let lt = Mat::from_fn(n, n, |i, j| if j >= i { f.at(j, i) } else { 0.0 });
        let mut b = Mat::zeros(5, n);
        gemm(1.0, &x_true, &lt, 0.0, &mut b);
        trsm_right_ltrans(&f, &mut b);
        for j in 0..n {
            for i in 0..5 {
                assert!((b.at(i, j) - x_true.at(i, j)).abs() < 1e-9);
            }
        }
    }
}
