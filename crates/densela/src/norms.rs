//! Matrix norms used for residual checks and static-pivoting thresholds.

use crate::matrix::Mat;

/// Frobenius norm `sqrt(sum a_ij^2)`.
pub fn frobenius_norm(a: &Mat) -> f64 {
    a.as_slice().iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// One-norm: maximum absolute column sum.
pub fn one_norm(a: &Mat) -> f64 {
    (0..a.cols())
        .map(|j| a.col(j).iter().map(|v| v.abs()).sum::<f64>())
        .fold(0.0, f64::max)
}

/// Infinity-norm: maximum absolute row sum.
pub fn inf_norm(a: &Mat) -> f64 {
    let mut rowsum = vec![0.0f64; a.rows()];
    for j in 0..a.cols() {
        for (r, v) in rowsum.iter_mut().zip(a.col(j)) {
            *r += v.abs();
        }
    }
    rowsum.into_iter().fold(0.0, f64::max)
}

/// Largest absolute entry.
pub fn max_abs(a: &Mat) -> f64 {
    a.as_slice().iter().fold(0.0f64, |m, v| m.max(v.abs()))
}

/// Euclidean norm of a vector.
pub fn vec_norm2(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norms_of_known_matrix() {
        // [[1, -2], [3, 4]] column-major.
        let a = Mat::from_vec(2, 2, vec![1.0, 3.0, -2.0, 4.0]);
        assert!((frobenius_norm(&a) - (30.0f64).sqrt()).abs() < 1e-14);
        assert_eq!(one_norm(&a), 6.0); // max(|1|+|3|, |-2|+|4|)
        assert_eq!(inf_norm(&a), 7.0); // max(1+2, 3+4)
        assert_eq!(max_abs(&a), 4.0);
    }

    #[test]
    fn vector_norm() {
        assert!((vec_norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        assert_eq!(vec_norm2(&[]), 0.0);
    }
}
