// Indexing loops are the clearer idiom in numeric kernel code.
#![allow(clippy::needless_range_loop)]
#![forbid(unsafe_code)]

//! Dense linear-algebra substrate: the BLAS/LAPACK proxy used by the sparse
//! LU factorization stack.
//!
//! The paper's implementation calls MKL for the dense kernels inside each
//! supernodal block operation (GEMM for Schur-complement updates, TRSM for
//! panel solves, GETRF for diagonal-block factorization). This crate provides
//! those kernels in pure Rust with identical semantics plus per-thread flop
//! accounting, which the simulated machine uses to charge compute time to
//! each rank.
//!
//! Conventions
//! - All matrices are **column-major** ([`Mat`]), matching BLAS.
//! - LU factorization uses **static pivoting**: tiny diagonal entries are
//!   perturbed instead of row-swapped, exactly the SuperLU_DIST policy the
//!   paper assumes (§II-E "static pivoting").
//! - Every kernel adds its flop count to a thread-local counter (see
//!   [`flops`]), so a simulated rank can meter its own arithmetic.

pub mod flops;
pub mod gemm;
pub mod getrf;
pub mod matrix;
pub mod microkernel;
pub mod norms;
pub mod potrf;
pub mod trsm;

pub use gemm::{gemm, gemm_notrans, gemm_nt};
pub use getrf::{getrf, lu_solve_inplace, GetrfInfo, PivotPolicy};
pub use matrix::Mat;
pub use microkernel::{gemm_blocked, gemm_blocked_tiled};
pub use norms::{frobenius_norm, inf_norm, max_abs, one_norm};
pub use potrf::{chol_backward, chol_forward, potrf, trsm_right_ltrans, PotrfInfo};
pub use trsm::{
    backward_subst, backward_subst_ltrans_unit, forward_subst_unit, forward_subst_utrans,
    trsm_left_lower_unit, trsm_right_upper,
};

#[cfg(test)]
mod tests {
    use super::*;

    /// End-to-end: factor a random-ish matrix and verify A ≈ L·U.
    #[test]
    fn getrf_then_reconstruct() {
        let n = 24;
        let mut a = Mat::zeros(n, n);
        // Deterministic diagonally dominant matrix.
        for j in 0..n {
            for i in 0..n {
                let v = ((i * 7 + j * 13) % 11) as f64 / 11.0 - 0.4;
                *a.at_mut(i, j) = v;
            }
            *a.at_mut(j, j) += n as f64;
        }
        let orig = a.clone();
        let info = getrf(&mut a, PivotPolicy::Static { threshold: 1e-12 });
        assert_eq!(info.perturbations, 0);

        // Reconstruct L * U.
        let mut recon = Mat::zeros(n, n);
        for j in 0..n {
            for i in 0..n {
                let mut s = 0.0;
                let kmax = i.min(j);
                for k in 0..kmax {
                    s += a.at(i, k) * a.at(k, j);
                }
                // diagonal of L is implicit 1
                s += if i <= j {
                    a.at(i, j) // U contribution when k == i
                } else {
                    a.at(i, j) * a.at(j, j) // L(i,j) * U(j,j) when k == j
                };
                *recon.at_mut(i, j) = s;
            }
        }
        for j in 0..n {
            for i in 0..n {
                assert!(
                    (recon.at(i, j) - orig.at(i, j)).abs() < 1e-9 * n as f64,
                    "mismatch at ({i},{j})"
                );
            }
        }
    }
}
