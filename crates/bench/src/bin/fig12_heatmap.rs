//! Fig. 12: performance heatmap over `P_xy x Pz` for the planar (K2D5pt)
//! and strongly non-planar (nlpkkt) matrices. Performance is computed the
//! paper's way: baseline-2D flop count divided by (simulated) factorization
//! time, reported in GFLOP/s of the modeled machine.
//!
//! ```sh
//! cargo run --release -p bench --bin fig12_heatmap
//! ```

use bench::{matrix, prepare, print_table, run_config};

const PXY: &[usize] = &[1, 2, 4, 8, 16];
const PZ: &[usize] = &[1, 2, 4, 8, 16];

fn main() {
    println!("Fig. 12 reproduction — performance heatmap (GFLOP/s, simulated)\n");
    for name in ["k2d5pt", "nlpkkt"] {
        let tm = matrix(name);
        let prep = prepare(&tm);
        println!("--- {name} ({}) ---", tm.paper_name);
        // Baseline flop count (P arbitrary; flops are config-independent up
        // to rounding): use the sequential prediction.
        let flops = prep.sym.stats().total_flops as f64;

        let mut rows = Vec::new();
        let mut best: (f64, usize, usize) = (0.0, 0, 0);
        let mut best2d = 0.0f64;
        for &pz in PZ.iter().rev() {
            let mut cells = vec![format!("Pz={pz}")];
            for &pxy in PXY {
                match run_config(&prep, pxy * pz, pz) {
                    Some(out) => {
                        let gflops = flops / out.makespan() / 1e9;
                        if gflops > best.0 {
                            best = (gflops, pxy, pz);
                        }
                        if pz == 1 {
                            best2d = best2d.max(gflops);
                        }
                        cells.push(format!("{gflops:.1}"));
                    }
                    None => cells.push("-".into()),
                }
            }
            rows.push(cells);
        }
        let headers: Vec<String> = std::iter::once("".to_string())
            .chain(PXY.iter().map(|p| format!("Pxy={p}")))
            .collect();
        let hrefs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        print_table(&hrefs, &rows);
        println!(
            "best: {:.1} GF/s at Pxy={} Pz={}  |  best 2D (Pz=1): {:.1} GF/s  |  best-case speedup {:.1}x\n",
            best.0,
            best.1,
            best.2,
            best2d,
            best.0 / best2d.max(1e-9)
        );
    }
    println!(
        "Paper shapes to verify (§V-F): the planar matrix peaks at small Pxy\n\
         and large Pz (K2D5pt: best along Pxy=24 on Edison); the strongly\n\
         non-planar one peaks along a diagonal Pz ~ Pxy/24; best-case\n\
         speedups 5-27.4x (planar) and 2.1-3.3x (non-planar)."
    );
}
