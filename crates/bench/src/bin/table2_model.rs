//! Table II: the asymptotic memory/communication/latency models, printed as
//! numeric predictions side by side with counters measured on the simulated
//! machine, plus the optimal-Pz rule of equation (8).
//!
//! ```sh
//! cargo run --release -p bench --bin table2_model
//! ```

use bench::{matrix, prepare, print_table, run_config, PZ_SWEEP};
use costmodel::{optimal_pz_planar, Alg, NonPlanarModel, PlanarModel};

fn main() {
    println!("Table II reproduction — model predictions\n");

    // Part 1: the closed-form table for a planar and a non-planar problem.
    println!("Planar model (n = 2^22, P = 4096), ratios vs 2D:");
    let pm = PlanarModel::new((1u64 << 22) as f64, 4096.0);
    let mut rows = Vec::new();
    for &pz in PZ_SWEEP {
        let p3 = pm.predict(Alg::ThreeD, pz as f64);
        let p2 = pm.predict(Alg::TwoD, 1.0);
        rows.push(vec![
            pz.to_string(),
            format!("{:.2}", p3.memory_words / p2.memory_words),
            format!("{:.2}", p2.comm_words / p3.comm_words),
            format!("{:.2}", p2.latency_msgs / p3.latency_msgs),
        ]);
    }
    print_table(&["Pz", "M3D/M2D", "W2D/W3D", "L2D/L3D"], &rows);
    println!(
        "eq. (8) optimal Pz = (1/2) log2 n = {}\n",
        optimal_pz_planar((1u64 << 22) as f64)
    );

    println!("Non-planar model (n = 1e7, P = 10000), ratios vs 2D:");
    let nm = NonPlanarModel::new(1e7, 1e4);
    let mut rows = Vec::new();
    for &pz in PZ_SWEEP {
        let p3 = nm.predict(Alg::ThreeD, pz as f64);
        let p2 = nm.predict(Alg::TwoD, 1.0);
        rows.push(vec![
            pz.to_string(),
            format!("{:.2}", p3.memory_words / p2.memory_words),
            format!("{:.2}", p2.comm_words / p3.comm_words),
            format!("{:.2}", p2.latency_msgs / p3.latency_msgs),
        ]);
    }
    print_table(&["Pz", "M3D/M2D", "W2D/W3D", "L2D/L3D"], &rows);
    println!(
        "paper §IV-C: best-case W reduction for non-planar is ~2.89x; best here = {:.2}x at Pz = {}\n",
        (1..=64)
            .map(|pz| nm.comm(Alg::TwoD, 1.0) / nm.comm(Alg::ThreeD, pz as f64))
            .fold(0.0f64, f64::max),
        nm.best_pz_for_comm(64),
    );

    // Part 2: model vs measured on the simulated machine for the planar
    // proxy (shape check: measured W ratios should track predictions).
    println!("Model vs measured (k2d5pt proxy, P = 16):");
    let tm = matrix("k2d5pt");
    let n = tm.matrix.nrows as f64;
    let prep = prepare(&tm);
    let base = run_config(&prep, 16, 1).expect("2D baseline");
    let w2_meas = base.w_fact() + base.w_red();
    let pm = PlanarModel::new(n, 16.0);
    let mut rows = Vec::new();
    for &pz in &[1usize, 2, 4, 8] {
        let out = run_config(&prep, 16, pz).expect("config");
        let w3_meas = out.w_fact() + out.w_red();
        let pred = pm.comm(Alg::TwoD, 1.0) / pm.comm(Alg::ThreeD, pz as f64);
        rows.push(vec![
            pz.to_string(),
            format!("{}", w3_meas),
            format!("{:.2}", w2_meas as f64 / w3_meas.max(1) as f64),
            format!("{:.2}", pred),
        ]);
    }
    print_table(&["Pz", "W_meas (words)", "gain_meas", "gain_model"], &rows);
}
