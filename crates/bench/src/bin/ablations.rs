//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. lookahead window (paper §II-F) — panel pipelining on/off;
//! 2. greedy inter-grid load balance vs the naive ND mapping (paper Fig. 8)
//!    — critical-path cost and measured time;
//! 3. supernode width `maxsup` — panel granularity vs communication.
//!
//! ```sh
//! cargo run --release -p bench --bin ablations
//! ```

use bench::{matrix, print_table};
use lu3d::forest::{EtreeForest, PartitionStrategy};
use lu3d::solver::{factor_only, SolverConfig};
use simgrid::TimeModel;
use slu2d::driver::Prepared;

fn main() {
    println!("Ablation 1: lookahead window (k2d5pt, 2x2x4 grid)\n");
    let tm = matrix("k2d5pt");
    let prep = Prepared::new(tm.matrix.clone(), tm.geometry, 32, 32);
    let mut rows = Vec::new();
    for lookahead in [0usize, 2, 8, 16] {
        let cfg = SolverConfig {
            pr: 2,
            pc: 2,
            pz: 4,
            lookahead,
            model: TimeModel::edison_like(),
            ..Default::default()
        };
        let out = factor_only(&prep, &cfg);
        rows.push(vec![
            lookahead.to_string(),
            format!("{:.4}", out.makespan()),
            out.lookahead_hits.to_string(),
        ]);
    }
    print_table(&["window", "T_sim (s)", "early panels"], &rows);

    println!("\nAblation 2: greedy vs naive tree partition (paper Fig. 8)\n");
    let mut rows = Vec::new();
    // The L-shaped domain produces the unbalanced elimination tree the
    // paper's Fig. 8 illustrates; the regular suite matrices are nearly
    // balanced by construction.
    let mut cases: Vec<(String, sparsemat::Csr, sparsemat::testmats::Geometry)> = vec![
        (
            "two_domains(48,24)".to_string(),
            sparsemat::matgen::two_domains(48, 24, 0.1, 5),
            sparsemat::testmats::Geometry::General,
        ),
        (
            "lshape64".to_string(),
            sparsemat::matgen::grid2d_lshape(64, 0.1, 5),
            sparsemat::testmats::Geometry::General,
        ),
    ];
    for name in ["k2d5pt", "dielfilter", "ldoor", "nlpkkt"] {
        let tm = matrix(name);
        cases.push((name.to_string(), tm.matrix.clone(), tm.geometry));
    }
    for (name, mat, geometry) in cases {
        let prep = Prepared::new(mat, geometry, 32, 32);
        let greedy =
            EtreeForest::build_with_strategy(&prep.tree, &prep.sym, 4, PartitionStrategy::Greedy);
        let naive =
            EtreeForest::build_with_strategy(&prep.tree, &prep.sym, 4, PartitionStrategy::NaiveNd);
        let tg = greedy.critical_path_cost(&prep.tree, &prep.sym);
        let tn = naive.critical_path_cost(&prep.tree, &prep.sym);
        rows.push(vec![
            name,
            format!("{:.2e}", tg as f64),
            format!("{:.2e}", tn as f64),
            format!("{:.2}x", tn as f64 / tg as f64),
        ]);
    }
    print_table(
        &[
            "matrix",
            "greedy crit-path (flop)",
            "naive crit-path (flop)",
            "naive/greedy",
        ],
        &rows,
    );
    println!("(the paper's Fig. 8 example: naive = 95 units vs greedy = 75 units)");

    println!("\nAblation 3: supernode width maxsup (k2d5pt, 2x2x2 grid)\n");
    let tm = matrix("k2d5pt");
    let mut rows = Vec::new();
    for maxsup in [8usize, 16, 32, 64] {
        let prep = Prepared::new(tm.matrix.clone(), tm.geometry, maxsup, maxsup);
        let cfg = SolverConfig {
            pr: 2,
            pc: 2,
            pz: 2,
            model: TimeModel::edison_like(),
            ..Default::default()
        };
        let out = factor_only(&prep, &cfg);
        let s = out.summary();
        rows.push(vec![
            maxsup.to_string(),
            prep.sym.nsup().to_string(),
            format!("{:.4}", out.makespan()),
            s.max_sent_msgs.to_string(),
            s.max_sent_words.to_string(),
            format!("{:.2}M", out.total_store_words as f64 / 1e6),
        ]);
    }
    print_table(
        &[
            "maxsup",
            "#supernodes",
            "T_sim (s)",
            "max msgs",
            "max words",
            "mem total",
        ],
        &rows,
    );
    println!(
        "\nSmall panels raise message counts (latency-bound); large panels\n\
         pad more zeros (memory/flop overhead). SuperLU tunes this the same way."
    );
}
