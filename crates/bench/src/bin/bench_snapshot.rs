//! Performance snapshot: one JSON document per PR with the headline
//! numbers of a fixed configuration suite — host wall-clock, simulated
//! makespan, ledger peak memory, and per-rank communication volume — so
//! the perf trajectory accumulates comparable points over time.
//!
//! ```sh
//! cargo run --release -p bench --bin bench_snapshot [OUT.json]
//! ```
//!
//! The default output path is `BENCH_pr3.json` in the current directory.
//! Matrix sizes are pinned (not `SALU_SCALE`-dependent) so snapshots from
//! different checkouts compare like for like; wall-clock is the only
//! host-sensitive field.

use bench::run_config;
use simgrid::Json;
use slu2d::driver::Prepared;
use sparsemat::testmats::{test_matrix, Scale};

/// The fixed suite: `(matrix, P, Pz)` points covering the planar 2D case,
/// a 3D-geometry case, and a non-planar KKT case, at both `Pz = 1` and a
/// replicated depth.
const POINTS: &[(&str, usize, usize)] = &[
    ("k2d5pt", 16, 1),
    ("k2d5pt", 16, 4),
    ("serena3d", 16, 1),
    ("serena3d", 16, 4),
    ("nlpkkt", 16, 4),
];

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pr3.json".to_string());
    let mut points = Vec::new();
    for &(name, p, pz) in POINTS {
        let tm = test_matrix(name, Scale::Small);
        let prep = Prepared::new(tm.matrix.clone(), tm.geometry, 32, 32);
        let t0 = std::time::Instant::now();
        let out = run_config(&prep, p, pz).expect("fixed suite configs are valid");
        let wall = t0.elapsed().as_secs_f64();
        let s = out.summary();
        points.push(Json::Obj(vec![
            ("matrix".into(), Json::str(name)),
            ("n".into(), Json::num(prep.a.nrows as f64)),
            ("p".into(), Json::num(p as f64)),
            ("pz".into(), Json::num(pz as f64)),
            ("wall_secs".into(), Json::num(wall)),
            ("makespan_secs".into(), Json::num(out.makespan())),
            (
                "max_peak_bytes".into(),
                Json::num(out.max_peak_bytes() as f64),
            ),
            (
                "total_peak_bytes".into(),
                Json::num(out.total_peak_bytes() as f64),
            ),
            ("w_fact_words".into(), Json::num(out.w_fact() as f64)),
            ("w_red_words".into(), Json::num(out.w_red() as f64)),
            (
                "total_sent_words".into(),
                Json::num(s.total_sent_words as f64),
            ),
        ]));
        println!(
            "{name:8} P={p:2} Pz={pz}  wall {wall:6.2}s  makespan {:.4}s  peak {:.2} MB  W {} words",
            out.makespan(),
            out.max_peak_bytes() as f64 / 1e6,
            out.w_fact() + out.w_red(),
        );
    }
    let doc = Json::Obj(vec![
        ("schema".into(), Json::str("salu-bench-snapshot/1")),
        ("pr".into(), Json::str("pr3")),
        ("points".into(), Json::Arr(points)),
    ]);
    std::fs::write(&out_path, doc.pretty()).unwrap_or_else(|e| {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    });
    println!("snapshot written to {out_path}");
}
