//! Performance snapshot: one JSON document per PR with the headline
//! numbers of a fixed configuration suite — host wall-clock (per-block and
//! batched Schur paths), simulated makespan, ledger peak memory, and
//! per-rank communication volume — so the perf trajectory accumulates
//! comparable points over time.
//!
//! ```sh
//! cargo run --release -p bench --bin bench_snapshot [OUT.json]
//! ```
//!
//! The default output path is `results/BENCH_pr4.json`, where the whole
//! `BENCH_*.json` trajectory lives (the campaign comparator discovers
//! baselines there — see docs/campaign.md).
//! Matrix sizes are pinned (not `SALU_SCALE`-dependent) so snapshots from
//! different checkouts compare like for like; wall-clock is the only
//! host-sensitive field. Each point runs twice — `batched_schur` off and
//! on — and reports both wall-clocks plus the speedup; the simulated
//! numbers (makespan, traffic) are path-independent by construction (the
//! batched path is bitwise identical), so they are reported once. See
//! docs/perf.md for how to read the columns.

use bench::run_config_with;
use simgrid::Json;
use slu2d::driver::Prepared;
use sparsemat::matgen;
use sparsemat::testmats::{test_matrix, Geometry, Scale};
use sparsemat::Csr;

/// One pinned configuration of the snapshot suite.
struct Point {
    name: &'static str,
    scale: &'static str,
    matrix: Csr,
    geometry: Geometry,
    p: usize,
    pz: usize,
    /// Supernode partition pins (relaxation-tree leaf size, max supernode
    /// width) passed to [`Prepared::new`].
    leaf: usize,
    maxsup: usize,
    /// Best-of-N repetitions for the wall-clock columns.
    reps: usize,
}

/// The fixed suite. The Small-scale points cover the planar 2D case, a
/// 3D-geometry case, and a non-planar KKT case at both `Pz = 1` and a
/// replicated depth — these are communication/simulation-bound, so the two
/// Schur paths tie on them. The serena3d points at small `P` are
/// Schur-dominated (large 3D separators, most wall-clock inside the
/// trailing-update GEMMs); the `serena3d-xl` 30^3 point at `P = 1` is the
/// headline: nearly the entire wall clock is trailing-update arithmetic,
/// so it isolates the batched kernel's win from simulation overheads. The
/// `P = 4` point shows the same win diluted by the simulated panel
/// broadcasts and per-rank bookkeeping a multi-rank run adds. audikw's
/// 27-point stencil produces small supernodes that mostly dispatch below
/// the batching threshold, so it tracks the hybrid's no-regression
/// behavior rather than the headline speedup.
///
/// Supernode partition pins: Small points keep the historical
/// (leaf=32, maxsup=32); Bench points use (leaf=64, maxsup=64), the
/// supernode widths the batched kernel is tuned for (register tiles
/// amortize best at w >= 64). Schur-dominated points repeat best-of-N
/// (see below).
fn suite() -> Vec<Point> {
    let small = [
        ("k2d5pt", 16, 1),
        ("k2d5pt", 16, 4),
        ("serena3d", 16, 1),
        ("serena3d", 16, 4),
        ("nlpkkt", 16, 4),
    ];
    let mut points: Vec<Point> = small
        .into_iter()
        .map(|(name, p, pz)| {
            let tm = test_matrix(name, Scale::Small);
            Point {
                name,
                scale: "small",
                matrix: tm.matrix,
                geometry: tm.geometry,
                p,
                pz,
                leaf: 32,
                maxsup: 32,
                reps: 1,
            }
        })
        .collect();
    for (p, reps) in [(1, 3), (4, 3)] {
        let tm = test_matrix("serena3d", Scale::Bench);
        points.push(Point {
            name: "serena3d",
            scale: "bench",
            matrix: tm.matrix,
            geometry: tm.geometry,
            p,
            pz: 1,
            leaf: 64,
            maxsup: 64,
            reps,
        });
    }
    // The headline Schur-dominated point: a 36^3 7-point grid (n = 46656),
    // pinned directly rather than via `Scale` so the snapshot suite can
    // choose its own size without changing the meaning of `Scale::Bench`
    // for the rest of the workspace. Same generator parameters as
    // serena3d otherwise. At this size the trailing-update GEMMs are
    // ~85% of the single-rank wall clock, so the point isolates the
    // batched kernel's win from the shared panel/simulation overheads.
    let s = 36;
    points.push(Point {
        name: "serena3d-xl",
        scale: "bench-xl",
        matrix: matgen::grid3d_7pt(s, s, s, 0.1, 15),
        geometry: Geometry::Grid3d {
            nx: s,
            ny: s,
            nz: s,
        },
        p: 1,
        pz: 1,
        leaf: 64,
        maxsup: 64,
        reps: 5,
    });
    let tm = test_matrix("audikw", Scale::Bench);
    points.push(Point {
        name: "audikw",
        scale: "bench",
        matrix: tm.matrix,
        geometry: tm.geometry,
        p: 4,
        pz: 1,
        leaf: 64,
        maxsup: 64,
        reps: 3,
    });
    points
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results/BENCH_pr4.json".to_string());
    let mut points = Vec::new();
    for pt in suite() {
        let Point {
            name,
            scale: scale_name,
            matrix,
            geometry,
            p,
            pz,
            leaf,
            maxsup,
            reps,
        } = pt;
        let prep = Prepared::new(matrix, geometry, leaf, maxsup);
        // Best-of-N wall-clock: host timing is the one noisy column, so the
        // Schur-dominated points (where the speedup is measured) repeat and
        // keep the minimum — the standard estimator for run-to-run noise.
        let mut wall = f64::INFINITY;
        let mut wall_batched = f64::INFINITY;
        let mut runs = Vec::new();
        for _ in 0..reps {
            // det-lint: allow(wall-clock): bench snapshots measure host wall time
            let t0 = std::time::Instant::now();
            let r = run_config_with(&prep, p, pz, false).expect("fixed suite configs are valid");
            wall = wall.min(t0.elapsed().as_secs_f64());
            // det-lint: allow(wall-clock): bench snapshots measure host wall time
            let t1 = std::time::Instant::now();
            let rb = run_config_with(&prep, p, pz, true).expect("fixed suite configs are valid");
            wall_batched = wall_batched.min(t1.elapsed().as_secs_f64());
            runs.push((r, rb));
        }
        let (out, out_b) = runs.pop().expect("at least one repetition");
        assert_eq!(
            out.makespan(),
            out_b.makespan(),
            "batched path changed the simulated makespan"
        );
        let speedup = wall / wall_batched;
        let s = out.summary();
        points.push(Json::Obj(vec![
            ("matrix".into(), Json::str(name)),
            ("scale".into(), Json::str(scale_name)),
            ("n".into(), Json::num(prep.a.nrows as f64)),
            ("p".into(), Json::num(p as f64)),
            ("pz".into(), Json::num(pz as f64)),
            ("wall_secs".into(), Json::num(wall)),
            ("wall_secs_batched".into(), Json::num(wall_batched)),
            ("batched_speedup".into(), Json::num(speedup)),
            ("makespan_secs".into(), Json::num(out.makespan())),
            (
                "max_peak_bytes".into(),
                Json::num(out.max_peak_bytes() as f64),
            ),
            (
                "total_peak_bytes".into(),
                Json::num(out.total_peak_bytes() as f64),
            ),
            ("w_fact_words".into(), Json::num(out.w_fact() as f64)),
            ("w_red_words".into(), Json::num(out.w_red() as f64)),
            (
                "total_sent_words".into(),
                Json::num(s.total_sent_words as f64),
            ),
        ]));
        println!(
            "{name:8} P={p:2} Pz={pz}  wall {wall:6.2}s  batched {wall_batched:6.2}s ({speedup:4.2}x)  makespan {:.4}s  peak {:.2} MB  W {} words",
            out.makespan(),
            out.max_peak_bytes() as f64 / 1e6,
            out.w_fact() + out.w_red(),
        );
    }
    let doc = Json::Obj(vec![
        ("schema".into(), Json::str("salu-bench-snapshot/2")),
        ("pr".into(), Json::str("pr4")),
        ("points".into(), Json::Arr(points)),
    ]);
    std::fs::write(&out_path, doc.pretty()).unwrap_or_else(|e| {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    });
    println!("snapshot written to {out_path}");
}
