//! Strong-scaling study (paper §V-F and §I): for a fixed problem, sweep the
//! total process count and compare the best 2D configuration against the
//! best 3D configuration at each P. The paper's claim: the 3D algorithm
//! "can use up to 16x more processors for the same problem size with
//! continued time reduction".
//!
//! ```sh
//! cargo run --release -p bench --bin strong_scaling
//! ```

use bench::{matrix, prepare, print_table};
use lu3d::solver::{factor_only, SolverConfig};
use simgrid::TimeModel;

const P_SWEEP: &[usize] = &[4, 8, 16, 32, 64, 128];

fn layer(pxy: usize) -> (usize, usize) {
    let mut pr = (pxy as f64).sqrt() as usize;
    while pr > 1 && !pxy.is_multiple_of(pr) {
        pr -= 1;
    }
    (pr.max(1), pxy / pr.max(1))
}

fn main() {
    println!("Strong scaling — best 2D vs best 3D configuration per P\n");
    for name in ["k2d5pt", "serena3d"] {
        let tm = matrix(name);
        let prep = prepare(&tm);
        println!(
            "--- {name} ({}, {:?}) n = {} ---",
            tm.paper_name, tm.class, tm.matrix.nrows
        );
        let mut rows = Vec::new();
        let mut best2d_overall = f64::INFINITY;
        let mut best3d_overall = f64::INFINITY;
        let mut p_min_2d = 0usize;
        let mut p_min_3d = 0usize;
        for &p in P_SWEEP {
            let (pr, pc) = layer(p);
            let t2 = factor_only(
                &prep,
                &SolverConfig {
                    pr,
                    pc,
                    pz: 1,
                    model: TimeModel::edison_like(),
                    ..Default::default()
                },
            )
            .makespan();
            // Best 3D over the power-of-two Pz dividing P.
            let mut t3 = f64::INFINITY;
            let mut best_pz = 1;
            let mut pz = 2usize;
            while pz <= p {
                if p % pz == 0 {
                    let (pr, pc) = layer(p / pz);
                    let t = factor_only(
                        &prep,
                        &SolverConfig {
                            pr,
                            pc,
                            pz,
                            model: TimeModel::edison_like(),
                            ..Default::default()
                        },
                    )
                    .makespan();
                    if t < t3 {
                        t3 = t;
                        best_pz = pz;
                    }
                }
                pz *= 2;
            }
            if t2 < best2d_overall {
                best2d_overall = t2;
                p_min_2d = p;
            }
            if t3 < best3d_overall {
                best3d_overall = t3;
                p_min_3d = p;
            }
            rows.push(vec![
                p.to_string(),
                format!("{t2:.5}"),
                format!("{t3:.5}"),
                format!("Pz={best_pz}"),
                format!("{:.2}x", t2 / t3),
            ]);
        }
        print_table(
            &["P", "T_2D (s)", "T_3D best (s)", "best Pz", "3D speedup"],
            &rows,
        );
        println!(
            "2D stops improving at P = {p_min_2d}; 3D at P = {p_min_3d} \
             ({}x more processes usable)\n",
            p_min_3d / p_min_2d.max(1)
        );
    }
    println!(
        "Paper §V-F / §I: the 3D algorithm keeps reducing time up to 16x\n\
         more processes than 2D on the same problem."
    );
}
