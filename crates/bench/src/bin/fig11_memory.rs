//! Fig. 11: relative memory overhead of the 3D algorithm over 2D, in
//! percent, for every test matrix across the `Pz` sweep. Overhead comes
//! from replicating the (dense) separator blocks on multiple grids; planar
//! matrices have small separators and stay cheap, non-planar ones do not.
//!
//! ```sh
//! cargo run --release -p bench --bin fig11_memory
//! ```

use bench::{prepare, print_table, run_config, scale_from_env, suite, PZ_SWEEP};

fn main() {
    let scale = scale_from_env();
    println!("Fig. 11 reproduction — relative memory overhead of 3D over 2D (%)");
    println!("(measured allocation-ledger peak summed across all ranks, P = 16)\n");
    let mut rows = Vec::new();
    for tm in suite(scale) {
        let prep = prepare(&tm);
        let base = run_config(&prep, 16, 1)
            .expect("2D baseline")
            .total_peak_bytes();
        let mut cells = vec![tm.name.to_string(), format!("{:?}", tm.class)];
        for &pz in PZ_SWEEP {
            match run_config(&prep, 16, pz) {
                Some(out) => {
                    let ovh = 100.0 * (out.total_peak_bytes() as f64 / base as f64 - 1.0);
                    cells.push(format!("{ovh:+.0}%"));
                }
                None => cells.push("-".into()),
            }
        }
        rows.push(cells);
    }
    let headers: Vec<String> = ["matrix", "class"]
        .iter()
        .map(|s| s.to_string())
        .chain(PZ_SWEEP.iter().map(|pz| format!("Pz={pz}")))
        .collect();
    let hrefs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    print_table(&hrefs, &rows);
    println!(
        "\nPaper shapes to verify (§V-E): at Pz=16, ~30% for K2D5pt (planar,\n\
         small separators) vs ~200% for nlpkkt80 (non-planar); overall range\n\
         18%-245% across the suite."
    );
}
