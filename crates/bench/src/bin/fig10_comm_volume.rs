//! Fig. 10: per-process communication volume by grid configuration, split
//! into `W_fact` (xy-plane words during 2D factorization) and `W_red`
//! (z-axis words during ancestor reduction), for a planar matrix (K2D5pt)
//! and a non-planar one (nlpkkt), at two machine sizes.
//!
//! The volumes are read from the wire ledger (`obs::commvol`) rather than
//! the legacy phase counters; every row asserts the two agree exactly, and
//! checks the delivery invariant `total_recv_words == total_sent_words`.
//! The class columns break the machine-wide volume into L-panel, U-panel,
//! and z-reduction traffic, and `waste` is the fraction of shipped words
//! that were dense-tile zero-padding (see docs/commvol.md).
//!
//! ```sh
//! cargo run --release -p bench --bin fig10_comm_volume
//! ```

use bench::{matrix, prepare, print_table, run_config, PZ_SWEEP};
use simgrid::CommClass;

fn main() {
    println!("Fig. 10 reproduction — per-process communication volume (bytes)\n");
    for name in ["k2d5pt", "nlpkkt"] {
        let tm = matrix(name);
        let prep = prepare(&tm);
        for p in [16usize, 64] {
            println!("--- {name} ({}), P = {p} ---", tm.paper_name);
            let mut rows = Vec::new();
            let mut w_prev: Option<u64> = None;
            for &pz in PZ_SWEEP {
                let Some(out) = run_config(&prep, p, pz) else {
                    continue;
                };
                // Ledger/counter conservation: the wire ledger and the
                // phase counters are independent charge paths and must
                // agree word-for-word on every rank and phase.
                for (rank, r) in out.reports.iter().enumerate() {
                    assert_eq!(
                        r.commvol.sent_words(),
                        r.total_sent_words(),
                        "rank {rank}: wire ledger != phase counters"
                    );
                    for phase in ["fact", "reduce"] {
                        assert_eq!(
                            r.commvol.phase_words(phase),
                            r.sent_words_in(phase),
                            "rank {rank}: phase `{phase}` split disagrees"
                        );
                    }
                }
                let max_phase = |phase: &str| {
                    out.reports
                        .iter()
                        .map(|r| r.commvol.phase_words(phase))
                        .max()
                        .unwrap_or(0)
                };
                let wf = max_phase("fact") * 8;
                let wr = max_phase("reduce") * 8;
                let total = wf + wr;
                let s = out.summary();
                // Delivery invariant: every sent word was consumed.
                assert_eq!(s.total_recv_words, s.total_sent_words);
                let trend = match w_prev {
                    Some(prev) if total > prev => "up".to_string(),
                    Some(_) => "down".to_string(),
                    None => "-".to_string(),
                };
                w_prev = Some(total);
                // Machine-wide class split and padding waste over the
                // packed-panel classes.
                let lw = out.class_words(CommClass::LPanel) * 8;
                let uw = out.class_words(CommClass::UPanel) * 8;
                let zw = out.class_words(CommClass::ZReduction) * 8;
                let (mut words, mut sw) = (0u64, 0u64);
                for r in &out.reports {
                    for c in [CommClass::LPanel, CommClass::UPanel, CommClass::ZReduction] {
                        let cc = r.commvol.class_cell(c);
                        words += cc.words;
                        sw += cc.struct_words;
                    }
                }
                let waste = if words == 0 {
                    0.0
                } else {
                    100.0 * (words - sw) as f64 / words as f64
                };
                rows.push(vec![
                    format!("{}x{}", p / pz, pz),
                    format!("{wf}"),
                    format!("{wr}"),
                    format!("{total}"),
                    format!("{}", s.max_recv_words * 8),
                    format!("{lw}"),
                    format!("{uw}"),
                    format!("{zw}"),
                    format!("{waste:.1}%"),
                    trend,
                ]);
            }
            print_table(
                &[
                    "Pxy x Pz",
                    "W_fact (B)",
                    "W_red (B)",
                    "W_total (B)",
                    "W_recv (B)",
                    "L-panel (B)",
                    "U-panel (B)",
                    "Z-red (B)",
                    "waste",
                    "trend",
                ],
                &rows,
            );
            println!();
        }
    }
    println!(
        "Paper shapes to verify (§V-D): W_fact falls as Pz grows; W_red grows\n\
         ~linearly with Pz and stays negligible for the planar matrix (small\n\
         separators) but becomes significant for nlpkkt, whose W_total\n\
         re-increases at large Pz (crossover at Pz=8->16 on 16 nodes).\n\
         Reported reductions: planar 3-4.7x, non-planar 2.5-3.7x."
    );
}
