//! Fig. 10: per-process communication volume by grid configuration, split
//! into `W_fact` (xy-plane words during 2D factorization) and `W_red`
//! (z-axis words during ancestor reduction), for a planar matrix (K2D5pt)
//! and a non-planar one (nlpkkt), at two machine sizes. The `W_recv`
//! column is the ingest-side counterpart (max per-rank received bytes),
//! and every row checks the delivery invariant
//! `total_recv_words == total_sent_words`.
//!
//! ```sh
//! cargo run --release -p bench --bin fig10_comm_volume
//! ```

use bench::{matrix, prepare, print_table, run_config, PZ_SWEEP};

fn main() {
    println!("Fig. 10 reproduction — per-process communication volume (bytes)\n");
    for name in ["k2d5pt", "nlpkkt"] {
        let tm = matrix(name);
        let prep = prepare(&tm);
        for p in [16usize, 64] {
            println!("--- {name} ({}), P = {p} ---", tm.paper_name);
            let mut rows = Vec::new();
            let mut w_prev: Option<u64> = None;
            for &pz in PZ_SWEEP {
                let Some(out) = run_config(&prep, p, pz) else {
                    continue;
                };
                let wf = out.w_fact() * 8;
                let wr = out.w_red() * 8;
                let total = wf + wr;
                let s = out.summary();
                // Delivery invariant: every sent word was consumed.
                assert_eq!(s.total_recv_words, s.total_sent_words);
                let trend = match w_prev {
                    Some(prev) if total > prev => "up".to_string(),
                    Some(_) => "down".to_string(),
                    None => "-".to_string(),
                };
                w_prev = Some(total);
                // Message-size distribution across every send in the run:
                // the median tracks panel-block granularity, the tail the
                // packed ancestor-reduction messages.
                let metrics = out.metrics();
                let (p50, p95) = metrics
                    .histogram("msg.send_words")
                    .map(|h| (h.quantile(0.50) * 8.0, h.quantile(0.95) * 8.0))
                    .unwrap_or((0.0, 0.0));
                rows.push(vec![
                    format!("{}x{}", p / pz, pz),
                    format!("{wf}"),
                    format!("{wr}"),
                    format!("{total}"),
                    format!("{}", s.max_recv_words * 8),
                    format!("{p50:.0}"),
                    format!("{p95:.0}"),
                    trend,
                ]);
            }
            print_table(
                &[
                    "Pxy x Pz",
                    "W_fact (B)",
                    "W_red (B)",
                    "W_total (B)",
                    "W_recv (B)",
                    "msg p50 (B)",
                    "msg p95 (B)",
                    "trend",
                ],
                &rows,
            );
            println!();
        }
    }
    println!(
        "Paper shapes to verify (§V-D): W_fact falls as Pz grows; W_red grows\n\
         ~linearly with Pz and stays negligible for the planar matrix (small\n\
         separators) but becomes significant for nlpkkt, whose W_total\n\
         re-increases at large Pz (crossover at Pz=8->16 on 16 nodes).\n\
         Reported reductions: planar 3-4.7x, non-planar 2.5-3.7x."
    );
}
