//! 2.5D dense study: measure the Solomonik-Demmel tradeoff that inspired
//! the paper (§I, §VI). Sweeps the replication factor `c` for a fixed
//! dense multiplication and prints per-rank volume by phase plus message
//! counts — showing volume falling like `1/c` in the SUMMA phase while
//! replication overhead grows linearly, giving the interior optimum in
//! total volume/time that characterizes 2.5D algorithms.
//!
//! ```sh
//! cargo run --release -p bench --bin dense25d_study
//! ```

use bench::print_table;
use dense25d::{summa_25d, DenseDist};
use densela::Mat;
use simgrid::topology::build_grid_comms;
use simgrid::{Grid3d, Machine, TimeModel, TrafficSummary};
use std::sync::Arc;

fn main() {
    let n = 384;
    let (pr, pc) = (2usize, 2usize);
    let nb = 8;
    println!("2.5D SUMMA study: n = {n}, layers of {pr}x{pc}, panel width {nb}\n");
    let mut rows = Vec::new();
    for cz in [1usize, 2, 4, 8] {
        let grid3 = Grid3d::new(pr, pc, cz);
        let dist = DenseDist::new(n, pr, pc);
        let mut s = 7u64;
        let a = Arc::new(Mat::from_fn(n, n, |_, _| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % 1000) as f64 / 500.0 - 1.0
        }));
        let b = Arc::clone(&a);
        let machine = Machine::new(grid3.size(), TimeModel::edison_like());
        let out = machine.run(move |rank| {
            let comms = build_grid_comms(rank, &grid3);
            let (my_r, my_c, my_z) = comms.coords;
            let inputs =
                (my_z == 0).then(|| (dist.tile_of(&a, my_r, my_c), dist.tile_of(&b, my_r, my_c)));
            summa_25d(rank, &comms, &dist, cz, inputs, nb);
        });
        let s = out.summary();
        let w_summa = TrafficSummary::max_sent_words_in(&out.reports, "summa");
        let w_repl = TrafficSummary::max_sent_words_in(&out.reports, "replicate");
        let w_red = TrafficSummary::max_sent_words_in(&out.reports, "reduce");
        rows.push(vec![
            cz.to_string(),
            (pr * pc * cz).to_string(),
            w_summa.to_string(),
            w_repl.to_string(),
            w_red.to_string(),
            (w_summa + w_repl + w_red).to_string(),
            s.max_sent_msgs.to_string(),
            format!("{:.5}", s.makespan),
        ]);
    }
    print_table(
        &[
            "c",
            "P",
            "W_summa",
            "W_repl",
            "W_red",
            "W_total",
            "max msgs",
            "T_sim (s)",
        ],
        &rows,
    );
    println!(
        "\nExpected (Solomonik & Demmel, cited as the paper's inspiration):\n\
         W_summa falls ~1/c; replication/reduction volume grows with c; the\n\
         total volume and the simulated time have an interior optimum.\n\
         GEMM's k-panels are independent, so message counts fall here too —\n\
         but in 2.5D *LU* the panels form a sequential dependency chain, so\n\
         replication cannot shorten the critical path: communication volume\n\
         and latency trade off inversely (paper §VI). The paper's 3D sparse\n\
         algorithm escapes that bind through elimination-tree parallelism,\n\
         cutting volume AND latency at once (see latency_study)."
    );
}
