//! Fig. 9: normalized factorization time for every matrix and every
//! `P_xy x Pz` configuration at two machine sizes, split into `T_scu`
//! (Schur-complement compute on the critical path) and `T_comm`
//! (non-overlapped communication + synchronization).
//!
//! Paper axes: 16 nodes (96 ranks) and 64 nodes (384 ranks), Pz in
//! {1,2,4,8,16}, each bar normalized by the 2D time on the smaller machine.
//! This reproduction uses P = 16 and P = 64 simulated ranks.
//!
//! ```sh
//! cargo run --release -p bench --bin fig9_normalized_time
//! ```

use bench::{
    critical_path_split, prepare, print_table, run_config_traced, scale_from_env, suite, PZ_SWEEP,
};

fn main() {
    let scale = scale_from_env();
    println!("Fig. 9 reproduction — normalized factorization time at {scale:?} scale");

    for p in [16usize, 64] {
        let nodes = if p == 16 { 16 } else { 64 };
        println!(
            "\n=== {p} simulated ranks (paper: {nodes} nodes / {} MPI ranks) ===",
            nodes * 6
        );
        let mut rows = Vec::new();
        for tm in suite(scale) {
            let prep = prepare(&tm);
            // Normalizer: the 2D algorithm on P = 16 (the paper normalizes
            // both plots by the 16-node 2D time). At p = 16 this is also the
            // Pz = 1 sweep cell, so compute the run once and reuse it.
            let base_run = run_config_traced(&prep, 16, 1).expect("2D baseline");
            let base = base_run.makespan();
            let mut cells = vec![tm.name.to_string(), format!("{:?}", tm.class)];
            let mut best = f64::INFINITY;
            let mut two_d = base;
            for &pz in PZ_SWEEP {
                let run;
                let out = if p == 16 && pz == 1 {
                    Some(&base_run)
                } else {
                    run = run_config_traced(&prep, p, pz);
                    run.as_ref()
                };
                match out {
                    Some(o) => {
                        let (tscu, tcomm) = critical_path_split(o);
                        let t = o.makespan();
                        if pz == 1 {
                            two_d = t;
                        }
                        best = best.min(t);
                        cells.push(format!(
                            "{:.2} ({:.2}+{:.2})",
                            t / base,
                            tscu / base,
                            tcomm / base
                        ));
                    }
                    None => cells.push("-".into()),
                }
            }
            cells.push(format!("{:.2}x", two_d / best));
            rows.push(cells);
        }
        let headers: Vec<String> = ["matrix", "class"]
            .iter()
            .map(|s| s.to_string())
            .chain(PZ_SWEEP.iter().map(|pz| format!("Pz={pz}")))
            .chain(["best vs 2D".to_string()])
            .collect();
        let hrefs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        print_table(&hrefs, &rows);
    }
    println!(
        "\nEach cell: T/T_base2D(16) as total (T_scu + T_comm).\n\
         Paper shapes to verify: planar matrices keep improving as Pz grows\n\
         (2-11.6x at 16 nodes, 2-16.6x at 64); extreme non-planar matrices\n\
         (serena3d, nlpkkt) can slow down at large Pz on the small machine\n\
         because shrinking the 2D grid inflates T_scu (§V-B)."
    );
}
