//! Timeline view: render text Gantt charts of a 2D run versus a 3D run of
//! the same problem on the same rank count. Makes the paper's story
//! visible: the 2D baseline's ranks spend most of the critical path in
//! communication stripes, while the 3D run shows dense parallel compute per
//! grid followed by short z-axis reductions.
//!
//! ```sh
//! cargo run --release -p bench --bin gantt
//! ```

use lu3d::solver::SolverConfig;
use simgrid::{render_gantt, TimeModel};
use slu2d::driver::Prepared;
use sparsemat::testmats::Geometry;

fn run_traced(prep: &Prepared, pr: usize, pc: usize, pz: usize) -> Vec<simgrid::RankReport> {
    // Mirror lu3d::solver::factor_only but on a tracing machine.
    use lu3d::{factor_3d, EtreeForest};
    use simgrid::topology::build_grid_comms;
    use simgrid::{Grid3d, Machine};
    use slu2d::store::BlockStore;
    use std::sync::Arc;

    let grid3 = Grid3d::new(pr, pc, pz);
    let machine = Machine::new(grid3.size(), TimeModel::edison_like()).with_tracing();
    let forest = Arc::new(EtreeForest::build(&prep.tree, &prep.sym, pz));
    let pa = Arc::clone(&prep.pa);
    let sym = Arc::clone(&prep.sym);
    let opts = slu2d::factor2d::FactorOpts::default();
    let out = machine.run(move |rank| {
        let comms = build_grid_comms(rank, &grid3);
        let (my_r, my_c, my_z) = comms.coords;
        let keep = |sn: usize| forest.keeps(sym.part.node_of_sn[sn], my_z);
        let value_pred = |bi: usize, bj: usize| {
            let (ni, nj) = (sym.part.node_of_sn[bi], sym.part.node_of_sn[bj]);
            let deeper = if forest.part_level[ni] >= forest.part_level[nj] { ni } else { nj };
            forest.factoring_grid(deeper) == my_z
        };
        let mut store = BlockStore::build_with_value_pred(
            &pa, &sym, &grid3.grid2d, my_r, my_c, &keep, &value_pred,
        );
        factor_3d(rank, &grid3, &comms, &mut store, &sym, &forest, opts);
    });
    out.reports
}

fn main() {
    let nx = 48;
    let a = sparsemat::matgen::grid2d_5pt(nx, nx, 0.1, 9);
    let prep = Prepared::new(a, Geometry::Grid2d { nx, ny: nx }, 32, 32);
    println!("2D Poisson n = {} on 8 simulated ranks\n", nx * nx);

    println!("== 2D baseline (2x4x1) ==");
    let reports = run_traced(&prep, 2, 4, 1);
    print!("{}", render_gantt(&reports, 100));

    println!("\n== 3D algorithm (1x2x4) ==");
    let reports = run_traced(&prep, 1, 2, 4);
    print!("{}", render_gantt(&reports, 100));

    let cfg2 = SolverConfig { pr: 2, pc: 4, pz: 1, ..Default::default() };
    let cfg3 = SolverConfig { pr: 1, pc: 2, pz: 4, ..Default::default() };
    let t2 = lu3d::solver::factor_only(&prep, &cfg2).makespan();
    let t3 = lu3d::solver::factor_only(&prep, &cfg3).makespan();
    println!("\nsimulated time: 2D {t2:.4}s vs 3D {t3:.4}s ({:.2}x)", t2 / t3);
}
