//! Timeline view: render text Gantt charts of a 2D run versus a 3D run of
//! the same problem on the same rank count. Makes the paper's story
//! visible: the 2D baseline's ranks spend most of the critical path in
//! communication stripes, while the 3D run shows dense parallel compute per
//! grid followed by short z-axis reductions. The critical-path report under
//! each chart attributes the makespan to phases and activity kinds.
//!
//! ```sh
//! cargo run --release -p bench --bin gantt
//! ```

use lu3d::solver::{factor_only, Output3d, SolverConfig};
use simgrid::render_gantt;
use slu2d::driver::Prepared;
use sparsemat::testmats::Geometry;

fn run_traced(prep: &Prepared, pr: usize, pc: usize, pz: usize) -> Output3d {
    let cfg = SolverConfig {
        pr,
        pc,
        pz,
        tracing: true,
        ..Default::default()
    };
    factor_only(prep, &cfg)
}

fn show(out: &Output3d) {
    print!("{}", render_gantt(&out.reports, 100));
    if let Some(cp) = out.critical_path() {
        print!("{}", cp.render());
    }
    // Receive-wait distribution: the gap between the waiting stripes of the
    // chart (p50) and its stalls (p99).
    if let Some(h) = out.metrics().histogram("recv.wait_secs") {
        println!(
            "recv wait: p50 {:.2e}s  p95 {:.2e}s  p99 {:.2e}s  (n = {})",
            h.quantile(0.50),
            h.quantile(0.95),
            h.quantile(0.99),
            h.count
        );
    }
}

fn main() {
    let nx = 48;
    let a = sparsemat::matgen::grid2d_5pt(nx, nx, 0.1, 9);
    let prep = Prepared::new(a, Geometry::Grid2d { nx, ny: nx }, 32, 32);
    println!("2D Poisson n = {} on 8 simulated ranks\n", nx * nx);

    println!("== 2D baseline (2x4x1) ==");
    let out2 = run_traced(&prep, 2, 4, 1);
    show(&out2);

    println!("\n== 3D algorithm (1x2x4) ==");
    let out3 = run_traced(&prep, 1, 2, 4);
    show(&out3);

    let (t2, t3) = (out2.makespan(), out3.makespan());
    println!(
        "\nsimulated time: 2D {t2:.4}s vs 3D {t3:.4}s ({:.2}x)",
        t2 / t3
    );
}
