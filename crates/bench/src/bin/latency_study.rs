//! Latency study: the number of messages on the critical path — the `L`
//! column of the paper's Table II, measured rather than modeled.
//!
//! The 2D algorithm's latency is `O(n)` because every rank touches every
//! supernode; the 3D algorithm's is `O(n/Pz + sqrt(n))` for planar problems
//! (equation 12), a `log n` factor better at the optimal `Pz`.
//!
//! ```sh
//! cargo run --release -p bench --bin latency_study
//! ```

use bench::{prepare, print_table, run_config, scale_from_env, suite, PZ_SWEEP};

fn main() {
    let scale = scale_from_env();
    println!("Latency study — max per-rank messages on the critical path (P = 16)\n");
    let mut rows = Vec::new();
    for tm in suite(scale) {
        let prep = prepare(&tm);
        let mut cells = vec![tm.name.to_string(), format!("{:?}", tm.class)];
        let mut base = 0u64;
        for &pz in PZ_SWEEP {
            match run_config(&prep, 16, pz) {
                Some(out) => {
                    let msgs = out.summary().max_sent_msgs;
                    if pz == 1 {
                        base = msgs;
                    }
                    cells.push(format!("{msgs} ({:.1}x)", base as f64 / msgs.max(1) as f64));
                }
                None => cells.push("-".into()),
            }
        }
        rows.push(cells);
    }
    let headers: Vec<String> = ["matrix", "class"]
        .iter()
        .map(|s| s.to_string())
        .chain(PZ_SWEEP.iter().map(|pz| format!("Pz={pz}")))
        .collect();
    let hrefs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    print_table(&hrefs, &rows);
    println!(
        "\nExpected shape (Table II): messages fall roughly like Pz for the\n\
         subtree-dominated levels, saturating at the sqrt(n) (planar) or\n\
         n^(2/3) (non-planar) replicated-ancestor term."
    );
}
