//! Table III: the test-matrix inventory — n, nnz/n, #flops in the baseline
//! 2D factorization, and the baseline factorization time.
//!
//! ```sh
//! cargo run --release -p bench --bin table3_matrices
//! ```

use bench::{prepare, print_table, run_config, scale_from_env, suite};

fn main() {
    let scale = scale_from_env();
    println!("Table III reproduction — test matrices at {scale:?} scale");
    println!("(#Flop and T_fact measured on the baseline 2D configuration, P = 16)\n");

    let mut rows = Vec::new();
    for tm in suite(scale) {
        let prep = prepare(&tm);
        let base = run_config(&prep, 16, 1).expect("2D config");
        let s = base.summary();
        rows.push(vec![
            tm.name.to_string(),
            tm.paper_name.to_string(),
            format!("{:?}", tm.class),
            format!("{:.1e}", tm.matrix.nrows as f64),
            format!("{:.1}", tm.nnz_per_row()),
            format!("{:.2e}", s.total_flops as f64),
            format!("{:.3}", s.makespan),
        ]);
    }
    print_table(
        &[
            "name",
            "paper matrix",
            "class",
            "n",
            "nnz/n",
            "#Flop",
            "T_fact (sim s)",
        ],
        &rows,
    );
    println!(
        "\npaper reference: n = 4.2e5..1.6e7, nnz/n = 4.8..82, #Flop = 4.5e10..6.0e13,\n\
         T_fact = 1.1..59.8 s on 16 Edison nodes (Table III)."
    );
}
