#![forbid(unsafe_code)]

//! Shared infrastructure for the experiment harness: scale selection, grid
//! configuration sweeps, and table formatting used by the per-figure
//! binaries.
//!
//! Every binary prints the rows/series of one table or figure from the
//! paper's evaluation section. Absolute numbers differ from the paper (the
//! substrate is a simulated machine, the matrices are scaled-down
//! structural proxies), but the *shapes* — who wins, by what factor, where
//! crossovers fall — are the reproduction targets recorded in
//! EXPERIMENTS.md.

use lu3d::solver::{factor_only, Output3d, SolverConfig};
use simgrid::TimeModel;
use slu2d::driver::Prepared;
use sparsemat::testmats::{test_matrix, Scale, TestMatrix};

/// Scale selected via the `SALU_SCALE` environment variable
/// (`tiny` | `small` | `bench`; default `small`, which keeps every harness
/// under a few minutes).
pub fn scale_from_env() -> Scale {
    match std::env::var("SALU_SCALE").as_deref() {
        Ok("tiny") => Scale::Tiny,
        Ok("bench") => Scale::Bench,
        _ => Scale::Small,
    }
}

/// The per-figure matrix list: every Table III proxy.
pub fn suite(scale: Scale) -> Vec<TestMatrix> {
    sparsemat::testmats::test_suite(scale)
}

/// One named matrix at the harness scale.
pub fn matrix(name: &str) -> TestMatrix {
    test_matrix(name, scale_from_env())
}

/// Preprocess one test matrix with the harness defaults.
pub fn prepare(tm: &TestMatrix) -> Prepared {
    Prepared::new(tm.matrix.clone(), tm.geometry, 32, 32)
}

/// The `Pz` sweep used by Figs. 9-11: `1, 2, 4, 8, 16` (clamped so every
/// layer keeps at least one rank).
pub const PZ_SWEEP: &[usize] = &[1, 2, 4, 8, 16];

/// Split `pxy` ranks into a near-square `pr x pc` layer, preferring wider
/// `pc` (SuperLU convention).
pub fn layer_shape(pxy: usize) -> (usize, usize) {
    let mut pr = (pxy as f64).sqrt() as usize;
    while pr > 1 && !pxy.is_multiple_of(pr) {
        pr -= 1;
    }
    (pr.max(1), pxy / pr.max(1))
}

/// Build the grid config for `p` total ranks and a given `pz`.
pub fn config(p: usize, pz: usize, model: TimeModel) -> Option<SolverConfig> {
    if !p.is_multiple_of(pz) {
        return None;
    }
    let pxy = p / pz;
    if pxy == 0 {
        return None;
    }
    let (pr, pc) = layer_shape(pxy);
    Some(SolverConfig {
        pr,
        pc,
        pz,
        model,
        ..Default::default()
    })
}

/// Run a factorization for one `(P, Pz)` point.
pub fn run_config(prep: &Prepared, p: usize, pz: usize) -> Option<Output3d> {
    run_config_with(prep, p, pz, false)
}

/// Like [`run_config`] with an explicit Schur-update path: `batched` routes
/// the trailing updates through the gather-GEMM-scatter kernel
/// (`SolverConfig::batched_schur`). Simulated results are identical either
/// way; only host wall-clock changes.
pub fn run_config_with(prep: &Prepared, p: usize, pz: usize, batched: bool) -> Option<Output3d> {
    let mut cfg = config(p, pz, TimeModel::edison_like())?;
    cfg.batched_schur = batched;
    Some(factor_only(prep, &cfg))
}

/// Like [`run_config`] but with span tracing on, so the output supports
/// [`Output3d::critical_path`] / [`Output3d::chrome_trace`].
pub fn run_config_traced(prep: &Prepared, p: usize, pz: usize) -> Option<Output3d> {
    let mut cfg = config(p, pz, TimeModel::edison_like())?;
    cfg.tracing = true;
    Some(factor_only(prep, &cfg))
}

/// Critical-path `(T_scu, T_comm)` decomposition — the stacked components
/// of Fig. 9. For a traced run this walks the send→recv dependency graph
/// ([`simgrid::CriticalPath`]): `T_scu` is the compute time on the actual
/// critical path, `T_comm` everything else (transfers, waits, idle). For
/// untraced runs it falls back to the clock-maximal rank's totals.
pub fn critical_path_split(out: &Output3d) -> (f64, f64) {
    if let Some(cp) = out.critical_path() {
        let comp = cp.kind_attribution().get("comp").copied().unwrap_or(0.0);
        return (comp, cp.makespan - comp);
    }
    let crit = out
        .reports
        .iter()
        .max_by(|a, b| a.clock.partial_cmp(&b.clock).unwrap())
        .expect("at least one rank");
    (crit.t_comp, crit.t_comm)
}

/// Render a simple aligned table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", line(headers.iter().map(|s| s.to_string()).collect()));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
    );
    for row in rows {
        println!("{}", line(row.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_shapes_factor_evenly() {
        for pxy in [1usize, 2, 4, 6, 8, 12, 16, 24, 48, 96] {
            let (pr, pc) = layer_shape(pxy);
            assert_eq!(pr * pc, pxy, "pxy={pxy}");
            assert!(pr <= pc);
        }
    }

    #[test]
    fn config_rejects_indivisible() {
        assert!(config(16, 3, TimeModel::zero()).is_none());
        assert!(config(16, 32, TimeModel::zero()).is_none());
        let c = config(16, 4, TimeModel::zero()).unwrap();
        assert_eq!(c.pr * c.pc * c.pz, 16);
    }
}
