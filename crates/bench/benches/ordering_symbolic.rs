//! Criterion benches for the preprocessing substrates: nested dissection
//! (both engines) and block symbolic factorization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ordering::{nested_dissection, Graph, NdOptions};
use sparsemat::matgen::{grid2d_5pt, grid3d_7pt};
use sparsemat::testmats::Geometry;
use std::hint::black_box;
use symbolic::Symbolic;

fn bench_nd_geometric(c: &mut Criterion) {
    let mut g = c.benchmark_group("nd_geometric");
    g.sample_size(10);
    for &k in &[32usize, 64, 128] {
        let a = grid2d_5pt(k, k, 0.0, 0);
        let gr = Graph::from_matrix(&a);
        g.bench_with_input(BenchmarkId::from_parameter(k * k), &k, |bch, _| {
            bch.iter(|| {
                let tree = nested_dissection(
                    &gr,
                    NdOptions {
                        leaf_size: 32,
                        geometry: Geometry::Grid2d { nx: k, ny: k },
                        ..Default::default()
                    },
                );
                black_box(tree.nodes.len())
            });
        });
    }
    g.finish();
}

fn bench_nd_multilevel(c: &mut Criterion) {
    let mut g = c.benchmark_group("nd_multilevel");
    g.sample_size(10);
    for &k in &[8usize, 12, 16] {
        let a = grid3d_7pt(k, k, k, 0.0, 0);
        let gr = Graph::from_matrix(&a);
        g.bench_with_input(BenchmarkId::from_parameter(k * k * k), &k, |bch, _| {
            bch.iter(|| {
                let tree = nested_dissection(
                    &gr,
                    NdOptions {
                        leaf_size: 32,
                        geometry: Geometry::General,
                        ..Default::default()
                    },
                );
                black_box(tree.nodes.len())
            });
        });
    }
    g.finish();
}

fn bench_symbolic(c: &mut Criterion) {
    let mut g = c.benchmark_group("block_symbolic");
    g.sample_size(10);
    for &k in &[64usize, 128] {
        let a = grid2d_5pt(k, k, 0.0, 0);
        let gr = Graph::from_matrix(&a);
        let tree = nested_dissection(
            &gr,
            NdOptions {
                leaf_size: 32,
                geometry: Geometry::Grid2d { nx: k, ny: k },
                ..Default::default()
            },
        );
        let pa = a.permute_sym(&tree.perm).symmetrize_pattern();
        g.bench_with_input(BenchmarkId::from_parameter(k * k), &k, |bch, _| {
            bch.iter(|| {
                let sym = Symbolic::analyze(&pa, &tree, 32);
                black_box(sym.stats().factor_words)
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_nd_geometric,
    bench_nd_multilevel,
    bench_symbolic
);
criterion_main!(benches);
