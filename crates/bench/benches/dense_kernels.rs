//! Criterion benches for the dense kernel substrate: GEMM, TRSM, GETRF at
//! supernodal block sizes (the paper's per-block working set).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use densela::{gemm, getrf, trsm_left_lower_unit, trsm_right_upper, Mat, PivotPolicy};
use std::hint::black_box;

fn mk(m: usize, n: usize, seed: u64) -> Mat {
    let mut s = seed.max(1);
    Mat::from_fn(m, n, |i, j| {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        let base = (s % 1000) as f64 / 500.0 - 1.0;
        if i == j {
            base + 8.0
        } else {
            base * 0.2
        }
    })
}

fn bench_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm");
    g.sample_size(20);
    for &n in &[32usize, 64, 128, 256] {
        let a = mk(n, n, 1);
        let b = mk(n, n, 2);
        g.throughput(criterion::Throughput::Elements((2 * n * n * n) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            let mut cm = Mat::zeros(n, n);
            bch.iter(|| {
                gemm(-1.0, black_box(&a), black_box(&b), 1.0, &mut cm);
            });
        });
    }
    g.finish();
}

fn bench_getrf(c: &mut Criterion) {
    let mut g = c.benchmark_group("getrf");
    g.sample_size(20);
    for &n in &[32usize, 64, 128, 256] {
        let a = mk(n, n, 3);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| {
                let mut m = a.clone();
                getrf(&mut m, PivotPolicy::Static { threshold: 1e-10 });
                black_box(m.at(n - 1, n - 1))
            });
        });
    }
    g.finish();
}

fn bench_trsm(c: &mut Criterion) {
    let mut g = c.benchmark_group("trsm");
    g.sample_size(20);
    for &n in &[32usize, 64, 128] {
        let mut lu = mk(n, n, 4);
        getrf(&mut lu, PivotPolicy::Static { threshold: 1e-10 });
        let rhs = mk(n, 64, 5);
        g.bench_with_input(BenchmarkId::new("left_lower", n), &n, |bch, _| {
            bch.iter(|| {
                let mut b = rhs.clone();
                trsm_left_lower_unit(&lu, &mut b);
                black_box(b.at(0, 0))
            });
        });
        let rhs_t = mk(64, n, 6);
        g.bench_with_input(BenchmarkId::new("right_upper", n), &n, |bch, _| {
            bch.iter(|| {
                let mut b = rhs_t.clone();
                trsm_right_upper(&lu, &mut b);
                black_box(b.at(0, 0))
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_gemm, bench_getrf, bench_trsm);
criterion_main!(benches);
