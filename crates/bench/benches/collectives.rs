//! Criterion benches for the simulated machine's collectives: real
//! wall-clock cost of broadcast/reduce/barrier across thread-ranks, which
//! bounds how fast the whole simulator can run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simgrid::{Machine, Payload, TimeModel};
use std::hint::black_box;

fn bench_bcast(c: &mut Criterion) {
    let mut g = c.benchmark_group("bcast_16ranks");
    g.sample_size(10);
    for &words in &[64usize, 4096] {
        g.bench_with_input(BenchmarkId::from_parameter(words), &words, |bch, &w| {
            bch.iter(|| {
                let m = Machine::new(16, TimeModel::zero());
                let out = m.run(move |rank| {
                    let world = rank.world();
                    let data = if rank.id() == 0 {
                        Some(Payload::F64s(vec![1.0; w]))
                    } else {
                        None
                    };
                    rank.bcast(&world, 0, data, 1).words()
                });
                black_box(out.results[15])
            });
        });
    }
    g.finish();
}

fn bench_reduce_and_barrier(c: &mut Criterion) {
    let mut g = c.benchmark_group("coll_16ranks");
    g.sample_size(10);
    g.bench_function("reduce_4096w", |bch| {
        bch.iter(|| {
            let m = Machine::new(16, TimeModel::zero());
            let out = m.run(|rank| {
                let world = rank.world();
                rank.reduce_sum(&world, 0, vec![1.0; 4096], 2).map(|v| v[0])
            });
            black_box(out.results[0])
        });
    });
    g.bench_function("barrier_x8", |bch| {
        bch.iter(|| {
            let m = Machine::new(16, TimeModel::zero());
            m.run(|rank| {
                let world = rank.world();
                for t in 0..8 {
                    rank.barrier(&world, t);
                }
            });
        });
    });
    g.finish();
}

criterion_group!(benches, bench_bcast, bench_reduce_and_barrier);
criterion_main!(benches);
