//! Criterion benches for the solver variants: LU vs Cholesky sequential
//! factorization, the distributed triangular solves, and 2D vs 2.5D SUMMA.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dense25d::{summa_25d, DenseDist};
use densela::Mat;
use lu3d::solver::{factor_and_solve, SolveStrategy, SolverConfig};
use simgrid::topology::build_grid_comms;
use simgrid::{Grid3d, Machine, TimeModel};
use slu2d::cholseq::{build_chol_store, chol_factor};
use slu2d::driver::Prepared;
use slu2d::seq::seq_factor;
use slu2d::store::{BlockStore, InitValues};
use sparsemat::matgen::grid2d_5pt;
use sparsemat::testmats::Geometry;
use std::hint::black_box;
use std::sync::Arc;

fn prep_sym(k: usize) -> Prepared {
    // unsym = 0 keeps values symmetric so the Cholesky path applies.
    Prepared::new(
        grid2d_5pt(k, k, 0.0, 0),
        Geometry::Grid2d { nx: k, ny: k },
        32,
        32,
    )
}

fn bench_lu_vs_cholesky(c: &mut Criterion) {
    let mut g = c.benchmark_group("seq_variants");
    g.sample_size(10);
    let p = prep_sym(48);
    g.bench_function("lu_seq_48x48", |bch| {
        bch.iter(|| {
            let grid = simgrid::Grid2d::new(1, 1);
            let mut store = BlockStore::build(
                &p.pa,
                &p.sym,
                &grid,
                0,
                0,
                &|_| true,
                InitValues::FromMatrix,
            );
            seq_factor(&mut store, &p.sym, 1e-10);
            black_box(store.total_words())
        });
    });
    g.bench_function("cholesky_seq_48x48", |bch| {
        bch.iter(|| {
            let mut store = build_chol_store(&p.pa, &p.sym);
            chol_factor(&mut store, &p.sym).expect("SPD");
            black_box(store.total_words())
        });
    });
    g.finish();
}

fn bench_solve_strategies(c: &mut Criterion) {
    let mut g = c.benchmark_group("solve_strategies");
    g.sample_size(10);
    let p = prep_sym(32);
    let b: Vec<f64> = (0..p.a.nrows).map(|i| i as f64 * 0.01).collect();
    for (label, strategy) in [
        ("distributed3d", SolveStrategy::Distributed3d),
        ("gather_grid0", SolveStrategy::GatherToGrid0),
    ] {
        let b = b.clone();
        g.bench_function(label, |bch| {
            bch.iter(|| {
                let cfg = SolverConfig {
                    pr: 1,
                    pc: 2,
                    pz: 2,
                    solve_strategy: strategy,
                    model: TimeModel::zero(),
                    ..Default::default()
                };
                black_box(factor_and_solve(&p, &cfg, Some(b.clone())).x)
            });
        });
    }
    g.finish();
}

fn bench_summa(c: &mut Criterion) {
    let mut g = c.benchmark_group("summa");
    g.sample_size(10);
    for cz in [1usize, 4] {
        g.bench_with_input(BenchmarkId::new("n192_2x2", cz), &cz, |bch, &cz| {
            bch.iter(|| {
                let n = 192;
                let grid3 = Grid3d::new(2, 2, cz);
                let dist = DenseDist::new(n, 2, 2);
                let a = Arc::new(Mat::from_fn(n, n, |i, j| ((i * 7 + j) % 13) as f64 - 6.0));
                let b = Arc::clone(&a);
                let machine = Machine::new(grid3.size(), TimeModel::zero());
                let out = machine.run(move |rank| {
                    let comms = build_grid_comms(rank, &grid3);
                    let (my_r, my_c, my_z) = comms.coords;
                    let inputs = (my_z == 0)
                        .then(|| (dist.tile_of(&a, my_r, my_c), dist.tile_of(&b, my_r, my_c)));
                    summa_25d(rank, &comms, &dist, cz, inputs, 8).c_tile.rows()
                });
                black_box(out.results[0])
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_lu_vs_cholesky,
    bench_solve_strategies,
    bench_summa
);
criterion_main!(benches);
