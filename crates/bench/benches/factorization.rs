//! Criterion benches for the factorization itself: sequential reference,
//! the 2D baseline, and the 3D algorithm at matched rank counts — the
//! wall-clock view that complements the simulated-time figures.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lu3d::solver::{factor_only, SolverConfig};
use simgrid::{Grid2d, TimeModel};
use slu2d::driver::Prepared;
use slu2d::seq::seq_factor;
use slu2d::store::{BlockStore, InitValues};
use sparsemat::matgen::grid2d_5pt;
use sparsemat::testmats::Geometry;
use std::hint::black_box;

fn prep(k: usize) -> Prepared {
    Prepared::new(
        grid2d_5pt(k, k, 0.1, 0),
        Geometry::Grid2d { nx: k, ny: k },
        32,
        32,
    )
}

fn bench_seq_factor(c: &mut Criterion) {
    let mut g = c.benchmark_group("factor_seq");
    g.sample_size(10);
    for &k in &[32usize, 48, 64] {
        let p = prep(k);
        g.bench_with_input(BenchmarkId::from_parameter(k * k), &k, |bch, _| {
            bch.iter(|| {
                let grid = Grid2d::new(1, 1);
                let mut store = BlockStore::build(
                    &p.pa,
                    &p.sym,
                    &grid,
                    0,
                    0,
                    &|_| true,
                    InitValues::FromMatrix,
                );
                seq_factor(&mut store, &p.sym, 1e-10);
                black_box(store.total_words())
            });
        });
    }
    g.finish();
}

fn bench_2d_vs_3d(c: &mut Criterion) {
    let mut g = c.benchmark_group("factor_dist");
    g.sample_size(10);
    let p = prep(48);
    for (label, pr, pc, pz) in [
        ("2d_2x2", 2, 2, 1),
        ("3d_2x1x2", 2, 1, 2),
        ("3d_1x1x4", 1, 1, 4),
    ] {
        g.bench_function(BenchmarkId::new(label, 48 * 48), |bch| {
            bch.iter(|| {
                let cfg = SolverConfig {
                    pr,
                    pc,
                    pz,
                    model: TimeModel::zero(),
                    ..Default::default()
                };
                black_box(factor_only(&p, &cfg).max_store_words)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_seq_factor, bench_2d_vs_3d);
criterion_main!(benches);
