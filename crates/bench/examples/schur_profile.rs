//! Profiling probe: wall-clock split of the two Schur paths at varying
//! supernode sizes on the Schur-dominated bench points.
//!
//! ```sh
//! cargo run --release -p bench --example schur_profile
//! ```

use bench::run_config_with;
use slu2d::driver::Prepared;
use sparsemat::matgen;
use sparsemat::testmats::{test_matrix, Geometry, Scale};

fn main() {
    for &(name, p) in &[
        ("serena3d-xl", 1usize),
        ("serena3d", 4),
        ("serena3d", 1),
        ("audikw", 4),
    ] {
        let (matrix, geometry) = if name == "serena3d-xl" {
            let s = 30;
            (
                matgen::grid3d_7pt(s, s, s, 0.1, 15),
                Geometry::Grid3d {
                    nx: s,
                    ny: s,
                    nz: s,
                },
            )
        } else {
            let tm = test_matrix(name, Scale::Bench);
            (tm.matrix, tm.geometry)
        };
        for &(leaf, maxsup) in &[(32usize, 32usize), (32, 64), (64, 64), (64, 96)] {
            let prep = Prepared::new(matrix.clone(), geometry, leaf, maxsup);
            slu2d::kernels::prof::take();
            slu2d::kernels::prof::take_panel();
            let t0 = std::time::Instant::now();
            let out = run_config_with(&prep, p, 1, false).unwrap();
            let wall = t0.elapsed().as_secs_f64();
            let (pb_ref, _, _, _) = slu2d::kernels::prof::take();
            let panel_ref = slu2d::kernels::prof::take_panel();
            let t1 = std::time::Instant::now();
            let out_b = run_config_with(&prep, p, 1, true).unwrap();
            let wall_b = t1.elapsed().as_secs_f64();
            let (pb_small, gather, gemm, scatter) = slu2d::kernels::prof::take();
            let panel_b = slu2d::kernels::prof::take_panel();
            // Total Schur flops (summed metric over ranks) to estimate the
            // GEMM share of the wall, and the batched path's measured
            // host GEMM throughput.
            let schur_flops = out
                .metrics()
                .histogram("gemm.flops_per_supernode")
                .map(|h| h.sum)
                .unwrap_or(0.0);
            let rate = out_b
                .metrics()
                .histogram("gemm.batched_flop_rate")
                .map(|h| h.mean())
                .unwrap_or(0.0);
            let m = out.metrics();
            let h = m.histogram("gemm.flops_per_supernode").unwrap();
            println!(
                "{name:8} P={p} leaf={leaf:2} maxsup={maxsup:2}  wall {wall:6.3}s  batched {wall_b:6.3}s ({:4.2}x)  schur_flops {schur_flops:.3e}  batched_rate {:.2} GF/s  sn_flops n={} p50={:.1e} p95={:.1e} max={:.1e}",
                wall / wall_b,
                rate / 1e9,
                h.count,
                h.quantile(0.5),
                h.quantile(0.95),
                h.max,
            );
            println!(
                "         schur cpu-time: per-block-path {pb_ref:.3}s (panel {panel_ref:.3}s) | batched-path: small {pb_small:.3}s gather {gather:.3}s gemm {gemm:.3}s scatter {scatter:.3}s (sum {:.3}s, panel {panel_b:.3}s)",
                pb_small + gather + gemm + scatter,
            );
        }
    }
}
