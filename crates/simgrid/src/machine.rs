//! The machine driver: spawns one thread per simulated rank, runs the SPMD
//! closure, and collects results plus per-rank reports.

use crate::rank::{Msg, Rank};
use crate::stats::{merged_metrics, RankReport, TrafficSummary};
use crate::timemodel::TimeModel;
use commcheck::{CommReport, SanState, WaitGraph};
use crossbeam::channel::{unbounded, Sender};
use obs::{CriticalPath, Json, MetricsRegistry, RankObs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A simulated distributed-memory machine with a fixed rank count and
/// machine model. Cheap to construct; each [`Machine::run`] spawns fresh
/// threads and channels.
#[derive(Clone, Copy, Debug)]
pub struct Machine {
    nranks: usize,
    model: TimeModel,
    tracing: bool,
    sanitize: bool,
}

/// The outcome of one SPMD run.
#[derive(Debug)]
pub struct RunResult<T> {
    /// Per-rank return values, indexed by world rank.
    pub results: Vec<T>,
    /// Per-rank traffic/time reports, indexed by world rank.
    pub reports: Vec<RankReport>,
    /// Communication-correctness report (races, leaks, counts), `None`
    /// unless the machine ran with [`Machine::with_sanitizer`].
    pub sanitizer: Option<CommReport>,
}

/// Marks a rank finished in the wait-for graph when its thread exits —
/// normally or by panic — so the deadlock detector knows it will never
/// send again.
struct DoneGuard {
    graph: Arc<WaitGraph>,
    rank: usize,
}

impl Drop for DoneGuard {
    fn drop(&mut self) {
        self.graph.mark_done(self.rank);
    }
}

/// Stops and joins the detector thread, even when a rank panic unwinds
/// through [`Machine::run`]'s join loop.
struct DetectorGuard {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Drop for DetectorGuard {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl<T> RunResult<T> {
    /// Aggregate the per-rank reports.
    pub fn summary(&self) -> TrafficSummary {
        TrafficSummary::from_reports(&self.reports)
    }

    /// Per-rank span/activity stores, `None` unless the machine ran with
    /// [`Machine::with_tracing`].
    pub fn rank_obs(&self) -> Option<Vec<RankObs>> {
        self.reports
            .iter()
            .map(|r| r.trace.clone())
            .collect::<Option<Vec<_>>>()
    }

    /// Chrome trace-event document of a traced run (load in
    /// <https://ui.perfetto.dev>). `None` when tracing was off.
    pub fn chrome_trace(&self) -> Option<Json> {
        self.rank_obs().map(|obs| obs::chrome_trace(&obs))
    }

    /// Critical path through the send→recv dependency graph of a traced
    /// run. `None` when tracing was off.
    pub fn critical_path(&self) -> Option<CriticalPath> {
        self.rank_obs().map(|obs| CriticalPath::analyze(&obs))
    }

    /// Machine-wide metrics: every rank's registry merged (always
    /// available — metrics do not require tracing).
    pub fn metrics(&self) -> MetricsRegistry {
        merged_metrics(&self.reports)
    }

    /// Machine-wide memory profile: every rank's ledger report plus the
    /// max/sum/per-class summary (always available — the ledger does not
    /// require tracing).
    pub fn mem_profile(&self) -> Json {
        let per_rank: Vec<_> = self.reports.iter().map(|r| r.memprof.clone()).collect();
        obs::memprof_json(&per_rank)
    }
}

impl Machine {
    /// A machine with `nranks` simulated processes. Panics if `nranks == 0`.
    pub fn new(nranks: usize, model: TimeModel) -> Self {
        assert!(nranks > 0, "machine needs at least one rank");
        Machine {
            nranks,
            model,
            tracing: false,
            sanitize: false,
        }
    }

    /// Enable per-rank event tracing (see [`crate::trace`]). Costs memory
    /// proportional to the number of operations; off by default.
    pub fn with_tracing(mut self) -> Self {
        self.tracing = true;
        self
    }

    /// Enable the communication sanitizer (see the `commcheck` crate):
    /// vector clocks on every message for wildcard-receive race detection,
    /// an outstanding-send table for leak accounting, and a wait-for-graph
    /// deadlock detector that aborts a deadlocked run within ~100ms naming
    /// the exact cycle. Off by default — then no clocks are allocated, no
    /// table is kept, and no detector thread runs.
    pub fn with_sanitizer(mut self) -> Self {
        self.sanitize = true;
        self
    }

    /// Number of simulated ranks.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// The machine model.
    pub fn model(&self) -> TimeModel {
        self.model
    }

    /// Run `f` as an SPMD program: one OS thread per rank, every thread
    /// calls `f(&mut rank)`. Blocks until all ranks return. A panic on any
    /// rank propagates (poisoning the run) so protocol bugs fail tests.
    pub fn run<T, F>(&self, f: F) -> RunResult<T>
    where
        T: Send + 'static,
        F: Fn(&mut Rank) -> T + Send + Sync + 'static,
    {
        let n = self.nranks;
        let mut senders: Vec<Sender<Msg>> = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let senders = Arc::new(senders);
        let f = Arc::new(f);
        let model = self.model;
        let tracing = self.tracing;

        // The wait-for graph always exists (it feeds the receive-timeout
        // backstop's dump); the sanitizer state and its detector thread are
        // created only on demand.
        let wait_graph = Arc::new(WaitGraph::new(n));
        let san: Option<Arc<SanState>> = if self.sanitize {
            Some(Arc::new(SanState::new()))
        } else {
            None
        };
        let _detector = san.as_ref().map(|_| {
            let graph = Arc::clone(&wait_graph);
            let stop = Arc::new(AtomicBool::new(false));
            let stop2 = Arc::clone(&stop);
            let handle = std::thread::Builder::new()
                .name("commcheck-detector".to_string())
                .spawn(move || graph.run_detector(&stop2))
                .expect("failed to spawn deadlock detector");
            DetectorGuard {
                stop,
                handle: Some(handle),
            }
        });

        let mut handles = Vec::with_capacity(n);
        for (world_rank, inbox) in receivers.into_iter().enumerate() {
            let senders = Arc::clone(&senders);
            let f = Arc::clone(&f);
            let graph = Arc::clone(&wait_graph);
            let san = san.clone();
            let handle = std::thread::Builder::new()
                .name(format!("simrank-{world_rank}"))
                // Factorization recursion and big local buffers: give each
                // simulated rank a roomy stack.
                .stack_size(16 << 20)
                .spawn(move || {
                    // Declared first so it drops last: the rank is marked
                    // done (never sends again) even on panic.
                    let _done = DoneGuard {
                        graph: Arc::clone(&graph),
                        rank: world_rank,
                    };
                    let started = Instant::now();
                    let mut rank =
                        Rank::new(world_rank, n, senders, inbox, model, tracing, graph, san);
                    let out = f(&mut rank);
                    let wall = started.elapsed().as_secs_f64();
                    (out, rank.into_report(wall))
                })
                .expect("failed to spawn simulated rank");
            handles.push(handle);
        }

        let mut results = Vec::with_capacity(n);
        let mut reports = Vec::with_capacity(n);
        for (world_rank, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok((out, report)) => {
                    results.push(out);
                    reports.push(report);
                }
                Err(e) => {
                    let msg = e
                        .downcast_ref::<String>()
                        .map(|s| s.as_str())
                        .or_else(|| e.downcast_ref::<&str>().copied())
                        .unwrap_or("<non-string panic>");
                    panic!("simulated rank {world_rank} panicked: {msg}");
                }
            }
        }
        // All rank threads are joined: nothing is in flight, so whatever is
        // still in the outstanding table is a genuine leak.
        let sanitizer = san.map(|s| {
            Arc::try_unwrap(s)
                .expect("sanitizer state still shared after join")
                .into_report()
        });
        RunResult {
            results,
            reports,
            sanitizer,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::Payload;

    #[test]
    fn ring_exchange() {
        let m = Machine::new(5, TimeModel::zero());
        let out = m.run(|rank| {
            let world = rank.world();
            let right = (rank.id() + 1) % 5;
            let left = (rank.id() + 4) % 5;
            rank.send(&world, right, 1, Payload::Idx(vec![rank.id()]));
            rank.recv(&world, left, 1).into_idx()[0]
        });
        assert_eq!(out.results, vec![4, 0, 1, 2, 3]);
    }

    #[test]
    fn out_of_order_delivery_is_buffered() {
        // Rank 0 sends two differently tagged messages; rank 1 receives them
        // in the opposite order.
        let m = Machine::new(2, TimeModel::zero());
        let out = m.run(|rank| {
            let world = rank.world();
            if rank.id() == 0 {
                rank.send(&world, 1, 10, Payload::F64s(vec![1.0]));
                rank.send(&world, 1, 20, Payload::F64s(vec![2.0]));
                0.0
            } else {
                let b = rank.recv(&world, 0, 20).into_f64s()[0];
                let a = rank.recv(&world, 0, 10).into_f64s()[0];
                a * 10.0 + b
            }
        });
        assert_eq!(out.results[1], 12.0);
    }

    #[test]
    fn bcast_all_sizes_all_roots() {
        for p in 1..=9usize {
            for root in 0..p {
                let m = Machine::new(p, TimeModel::zero());
                let out = m.run(move |rank| {
                    let world = rank.world();
                    let data = if rank.world().local_rank() == root {
                        Some(Payload::F64s(vec![42.0, 7.0]))
                    } else {
                        None
                    };
                    rank.bcast(&world, root, data, 3).into_f64s()
                });
                for r in &out.results {
                    assert_eq!(r, &vec![42.0, 7.0], "p={p} root={root}");
                }
                // Binomial tree sends exactly p-1 messages.
                let total: u64 = out.reports.iter().map(|r| r.total_sent_msgs()).sum();
                assert_eq!(total, (p - 1) as u64, "p={p} root={root}");
            }
        }
    }

    #[test]
    fn reduce_sum_all_sizes_all_roots() {
        for p in 1..=9usize {
            for root in 0..p {
                let m = Machine::new(p, TimeModel::zero());
                let out = m.run(move |rank| {
                    let world = rank.world();
                    let data = vec![rank.id() as f64, 1.0];
                    rank.reduce_sum(&world, root, data, 5)
                });
                let expected0 = (0..p).sum::<usize>() as f64;
                for (i, r) in out.results.iter().enumerate() {
                    if i == root {
                        assert_eq!(r.as_ref().unwrap(), &vec![expected0, p as f64]);
                    } else {
                        assert!(r.is_none());
                    }
                }
            }
        }
    }

    #[test]
    fn allreduce_and_barrier() {
        let m = Machine::new(6, TimeModel::zero());
        let out = m.run(|rank| {
            let world = rank.world();
            rank.barrier(&world, 0);
            let s = rank.allreduce_sum(&world, vec![1.0], 9)[0];
            let mx = rank.allreduce_max(&world, rank.id() as f64, 11);
            (s, mx)
        });
        for &(s, mx) in &out.results {
            assert_eq!(s, 6.0);
            assert_eq!(mx, 5.0);
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let m = Machine::new(4, TimeModel::zero());
        let out = m.run(|rank| {
            let world = rank.world();
            rank.gather_f64(&world, 2, vec![rank.id() as f64; rank.id() + 1], 1)
        });
        let g = out.results[2].as_ref().unwrap();
        for (i, v) in g.iter().enumerate() {
            assert_eq!(v.len(), i + 1);
            assert!(v.iter().all(|&x| x == i as f64));
        }
    }

    #[test]
    fn subset_communicators_isolate_traffic() {
        let m = Machine::new(4, TimeModel::zero());
        let out = m.run(|rank| {
            // Split into even/odd pairs; same tags on both communicators.
            let evens = [0usize, 2];
            let odds = [1usize, 3];
            let mine = if rank.id() % 2 == 0 {
                &evens[..]
            } else {
                &odds[..]
            };
            let other = if rank.id() % 2 == 0 {
                &odds[..]
            } else {
                &evens[..]
            };
            // SPMD discipline: create in the same order everywhere.
            let (c_even, c_odd) = if rank.id() % 2 == 0 {
                let a = rank.subset(mine);
                let b = rank.subset(other);
                (a, b)
            } else {
                let a = rank.subset(other);
                let b = rank.subset(mine);
                (a, b)
            };
            let comm = c_even.or(c_odd).unwrap();
            let peer = 1 - comm.local_rank();
            rank.send(&comm, peer, 77, Payload::Idx(vec![rank.id()]));
            rank.recv(&comm, peer, 77).into_idx()[0]
        });
        assert_eq!(out.results, vec![2, 3, 0, 1]);
    }

    #[test]
    fn clocks_model_alpha_beta() {
        let model = TimeModel {
            alpha: 1.0,
            beta: 0.1,
            flops_per_sec: 1.0,
        };
        let m = Machine::new(2, model);
        let out = m.run(|rank| {
            let world = rank.world();
            if rank.id() == 0 {
                rank.advance_compute(10); // clock = 10
                rank.send(&world, 1, 0, Payload::F64s(vec![0.0; 10])); // +2 -> 12, arrival 12
                rank.clock()
            } else {
                rank.recv(&world, 0, 0); // ready at 12, +2 transfer = 14
                rank.clock()
            }
        });
        assert!((out.results[0] - 12.0).abs() < 1e-12);
        assert!((out.results[1] - 14.0).abs() < 1e-12);
        assert!((out.reports[1].t_comm - 14.0).abs() < 1e-12);
        assert!((out.reports[0].t_comp - 10.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "panicked")]
    fn rank_panic_propagates() {
        let m = Machine::new(2, TimeModel::zero());
        let _ = m.run(|rank| {
            if rank.id() == 1 {
                panic!("boom");
            }
            // rank 0 must terminate too: it does nothing and returns.
            0
        });
    }
}
