//! The machine driver: spawns one task per simulated rank, runs the SPMD
//! closure under the configured [`Backend`], and collects results plus
//! per-rank reports.

use crate::backend::{
    Backend, DoneNotifier, EventBackend, EventScheduler, EventWiring, ExecBackend, SchedEvent,
    ThreadedBackend,
};
use crate::faultlab::{
    FailKind, FailureBoard, FaultPlan, MachineFailure, OrderlyAbort, RankFailure, RetryPolicy,
};
use crate::rank::{FaultCtx, Msg, Rank};
use crate::stats::{merged_metrics, RankReport, TrafficSummary};
use crate::timemodel::TimeModel;
use commcheck::{CommReport, SanState, WaitGraph};
use crossbeam::channel::{unbounded, Sender};
use obs::{CriticalPath, Json, MetricsRegistry, RankObs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Default wall-clock receive backstop when neither
/// [`Machine::with_recv_timeout`] nor `SALU_RECV_TIMEOUT_SECS` overrides
/// it. Generous enough for heavily oversubscribed benchmark runs, small
/// enough that a protocol bug fails a test instead of hanging CI forever.
const DEFAULT_RECV_TIMEOUT: Duration = Duration::from_secs(300);

/// Per-run receive backstop: the machine's explicit setting wins, then the
/// `SALU_RECV_TIMEOUT_SECS` environment variable, then the default. Read
/// on every run (not latched per process), so tests and multi-machine
/// processes can vary it.
fn resolve_recv_timeout(explicit: Option<Duration>) -> Duration {
    explicit.unwrap_or_else(|| {
        std::env::var("SALU_RECV_TIMEOUT_SECS")
            .ok()
            .and_then(|v| v.parse().ok())
            .map(Duration::from_secs)
            .unwrap_or(DEFAULT_RECV_TIMEOUT)
    })
}

/// A simulated distributed-memory machine with a fixed rank count and
/// machine model. Cheap to construct; each [`Machine::run`] spawns fresh
/// threads and channels.
#[derive(Clone, Debug)]
pub struct Machine {
    nranks: usize,
    model: TimeModel,
    /// Execution strategy (see [`Backend`]); threaded by default.
    backend: Backend,
    tracing: bool,
    host_profiling: bool,
    sanitize: bool,
    /// Seeded fault plan injected at the send path; `None` = healthy run.
    faults: Option<Arc<FaultPlan>>,
    /// Ack/retransmit recovery for droppable sends; `None` = drops are lost.
    retry: Option<RetryPolicy>,
    /// Simulated-time receive deadline (seconds); `None` = wait forever
    /// (up to the wall-clock backstop).
    recv_deadline: Option<f64>,
    /// Wall-clock receive backstop override; `None` falls back to
    /// `SALU_RECV_TIMEOUT_SECS`, then the 300s default. Threaded backend
    /// only — the event backend has no blocked OS threads to unstick.
    recv_timeout: Option<Duration>,
}

/// The outcome of one SPMD run.
#[derive(Debug)]
pub struct RunResult<T> {
    /// Per-rank return values, indexed by world rank.
    pub results: Vec<T>,
    /// Per-rank traffic/time reports, indexed by world rank.
    pub reports: Vec<RankReport>,
    /// Communication-correctness report (races, leaks, counts), `None`
    /// unless the machine ran with [`Machine::with_sanitizer`].
    pub sanitizer: Option<CommReport>,
}

/// Marks a rank finished in the wait-for graph when its thread exits —
/// normally or by panic — so the deadlock detector knows it will never
/// send again.
struct DoneGuard {
    graph: Arc<WaitGraph>,
    rank: usize,
}

impl Drop for DoneGuard {
    fn drop(&mut self) {
        self.graph.mark_done(self.rank);
    }
}

/// Stops and joins the detector thread, even when a rank panic unwinds
/// through [`Machine::run`]'s join loop.
struct DetectorGuard {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Drop for DetectorGuard {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl<T> RunResult<T> {
    /// Aggregate the per-rank reports.
    pub fn summary(&self) -> TrafficSummary {
        TrafficSummary::from_reports(&self.reports)
    }

    /// Per-rank span/activity stores, `None` unless the machine ran with
    /// [`Machine::with_tracing`].
    pub fn rank_obs(&self) -> Option<Vec<RankObs>> {
        self.reports
            .iter()
            .map(|r| r.trace.clone())
            .collect::<Option<Vec<_>>>()
    }

    /// Chrome trace-event document of a traced run (load in
    /// <https://ui.perfetto.dev>). `None` when tracing was off.
    pub fn chrome_trace(&self) -> Option<Json> {
        self.rank_obs().map(|obs| obs::chrome_trace(&obs))
    }

    /// Critical path through the send→recv dependency graph of a traced
    /// run. `None` when tracing was off.
    pub fn critical_path(&self) -> Option<CriticalPath> {
        self.rank_obs().map(|obs| CriticalPath::analyze(&obs))
    }

    /// Machine-wide metrics: every rank's registry merged (always
    /// available — metrics do not require tracing).
    pub fn metrics(&self) -> MetricsRegistry {
        merged_metrics(&self.reports)
    }

    /// Machine-wide memory profile: every rank's ledger report plus the
    /// max/sum/per-class summary (always available — the ledger does not
    /// require tracing).
    pub fn mem_profile(&self) -> Json {
        let per_rank: Vec<_> = self.reports.iter().map(|r| r.memprof.clone()).collect();
        obs::memprof_json(&per_rank)
    }

    /// Machine-wide host-time profile: every rank's phase attribution plus
    /// the summed phase seconds, aggregate flop rate, and folded-stack
    /// text. `None` unless the machine ran with
    /// [`Machine::with_host_profiling`].
    pub fn hostprof_profile(&self) -> Option<Json> {
        let per_rank: Option<Vec<_>> = self.reports.iter().map(|r| r.hostprof.clone()).collect();
        per_rank.map(|v| obs::hostprof_json(&v))
    }

    /// Machine-wide wire-volume profile: every rank's comm ledger report
    /// plus per-class/per-axis/per-level totals and the padding-waste
    /// ratios (always available — the ledger does not require tracing).
    pub fn commvol_profile(&self) -> Json {
        let per_rank: Vec<_> = self.reports.iter().map(|r| r.commvol.clone()).collect();
        obs::commvol_json(&per_rank)
    }
}

impl Machine {
    /// A machine with `nranks` simulated processes. Panics if `nranks == 0`.
    pub fn new(nranks: usize, model: TimeModel) -> Self {
        assert!(nranks > 0, "machine needs at least one rank");
        Machine {
            nranks,
            model,
            backend: Backend::default(),
            tracing: false,
            host_profiling: false,
            sanitize: false,
            faults: None,
            retry: None,
            recv_deadline: None,
            recv_timeout: None,
        }
    }

    /// Select the execution backend (see [`Backend`] and `docs/backends.md`).
    /// Simulated results — factor digests, makespans, every ledger — are
    /// identical either way; only host-side scheduling differs. The
    /// threaded default keeps real parallelism (required by the host-time
    /// profiler); the event backend runs arbitrarily large rank counts in
    /// one cooperative process.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Override the wall-clock receive backstop for this machine (threaded
    /// backend only). Without this, each run reads
    /// `SALU_RECV_TIMEOUT_SECS`, defaulting to 300s. The event backend
    /// never blocks an OS thread on a receive, so it ignores the backstop
    /// and detects stuckness exactly, from scheduler quiescence.
    pub fn with_recv_timeout(mut self, timeout: Duration) -> Self {
        self.recv_timeout = Some(timeout);
        self
    }

    /// Enable per-rank event tracing (see [`crate::trace`]). Costs memory
    /// proportional to the number of operations; off by default.
    pub fn with_tracing(mut self) -> Self {
        self.tracing = true;
        self
    }

    /// Enable the host-time profiler (see `obs::hostprof`): each rank
    /// attributes its thread's wall-clock time to a fixed phase taxonomy
    /// via RAII scopes, summing to 100% of the measured wall. Purely
    /// host-side — simulated clocks, results, and factor digests are
    /// untouched. When combined with [`Machine::with_tracing`], host
    /// counter tracks join the Chrome trace. Off by default.
    ///
    /// Threaded backend only: wall attribution is meaningless when the
    /// event scheduler multiplexes every rank onto one thread, so a run
    /// configured with both fails fast with a structured
    /// [`FailKind::Config`] error instead of silently dropping the data.
    pub fn with_host_profiling(mut self) -> Self {
        self.host_profiling = true;
        self
    }

    /// Enable the communication sanitizer (see the `commcheck` crate):
    /// vector clocks on every message for wildcard-receive race detection,
    /// an outstanding-send table for leak accounting, and a wait-for-graph
    /// deadlock detector that aborts a deadlocked run within ~100ms naming
    /// the exact cycle. Off by default — then no clocks are allocated, no
    /// table is kept, and no detector thread runs.
    pub fn with_sanitizer(mut self) -> Self {
        self.sanitize = true;
        self
    }

    /// Install a seeded fault plan (see [`crate::faultlab`]): messages
    /// matching its rules are dropped, duplicated, or delayed, ranks stall,
    /// and links degrade — all deterministically from the plan's seed. The
    /// wait-for-graph deadlock detector runs whenever faults are on (even
    /// without the sanitizer), so an unrecovered drop aborts the run with a
    /// cycle report instead of hanging until the wall-clock backstop.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(Arc::new(plan));
        self
    }

    /// Enable ack/retransmit recovery for droppable sends (see
    /// [`RetryPolicy`]). With recovery on, a faulted run delivers the same
    /// payload sequence as the fault-free run — results stay bitwise
    /// identical, only clocks shift.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = Some(retry);
        self
    }

    /// Fail a receive whose matching message arrives more than `secs`
    /// *simulated* seconds after the receiver started waiting. This is the
    /// primary stall-detection mechanism — deterministic and schedule-
    /// independent, unlike the wall-clock `SALU_RECV_TIMEOUT_SECS`
    /// backstop, which stays only as a last resort.
    pub fn with_recv_deadline(mut self, secs: f64) -> Self {
        self.recv_deadline = Some(secs);
        self
    }

    /// Number of simulated ranks.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// The machine model.
    pub fn model(&self) -> TimeModel {
        self.model
    }

    /// Run `f` as an SPMD program: one OS thread per rank, every thread
    /// calls `f(&mut rank)`. Blocks until all ranks return. A failure on
    /// any rank panics with the rank-attributed report of
    /// [`MachineFailure::render`] (primary cause first, cascades listed) so
    /// protocol bugs fail tests. Use [`Machine::try_run`] to handle the
    /// failure structurally instead.
    pub fn run<T, F>(&self, f: F) -> RunResult<T>
    where
        T: Send + 'static,
        F: Fn(&mut Rank) -> T + Send + Sync + 'static,
    {
        match self.try_run(f) {
            Ok(r) => r,
            Err(mf) => panic!("{}", mf.render()),
        }
    }

    /// Like [`Machine::run`], but a failing rank yields a structured
    /// [`MachineFailure`] instead of a panic. Failures are collected on a
    /// machine-wide board; the *primary* (earliest non-cascade) entry names
    /// the original failing rank even when other ranks die in its wake —
    /// the panic-collection reports the cause, not the cascade.
    pub fn try_run<T, F>(&self, f: F) -> Result<RunResult<T>, MachineFailure>
    where
        T: Send + 'static,
        F: Fn(&mut Rank) -> T + Send + Sync + 'static,
    {
        match self.backend {
            Backend::Threaded => ThreadedBackend.run(self, f),
            Backend::Event => EventBackend.run(self, f),
        }
    }

    /// The shared execution engine behind both [`ExecBackend`]
    /// implementations. One task per rank either way; `mode` decides who
    /// schedules them — the kernel (threaded) or the cooperative
    /// [`EventScheduler`] on this thread (event).
    pub(crate) fn execute<T, F>(&self, f: F, mode: Backend) -> Result<RunResult<T>, MachineFailure>
    where
        T: Send + 'static,
        F: Fn(&mut Rank) -> T + Send + Sync + 'static,
    {
        let event_mode = mode == Backend::Event;
        // Host profiling attributes *wall* time per rank thread, which only
        // means something when ranks really run concurrently: under the
        // event backend a parked task would book its entire descheduled
        // life as CommWait. This combination used to be dropped silently
        // (`salu --backend event --hostprof-out` succeeded with no data);
        // now it is rejected up front as a structured config failure.
        if self.host_profiling && event_mode {
            return Err(MachineFailure {
                failures: vec![RankFailure {
                    rank: 0,
                    phase: "config".to_string(),
                    kind: FailKind::Config {
                        detail: "host profiling requires the threaded backend: the \
                                 event scheduler multiplexes every rank onto one \
                                 thread, so per-rank wall-clock attribution would be \
                                 meaningless (docs/backends.md). Run with \
                                 Backend::Threaded or drop with_host_profiling()"
                            .to_string(),
                    },
                    seq: 0,
                }],
            });
        }
        // An orderly rank shutdown unwinds with a typed payload that the
        // join loop interprets via the failure board; the default panic
        // hook would still print "thread panicked" plus a backtrace for
        // it. Silence exactly that payload, once per process, and keep
        // the previous hook for genuine panics.
        static ORDERLY_HOOK: std::sync::Once = std::sync::Once::new();
        ORDERLY_HOOK.call_once(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                if !info.payload().is::<crate::faultlab::OrderlyAbort>() {
                    prev(info);
                }
            }));
        });

        let n = self.nranks;
        let mut senders: Vec<Sender<Msg>> = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let senders = Arc::new(senders);
        let f = Arc::new(f);
        let model = self.model;
        let tracing = self.tracing;
        // Threaded-only by contract (docs/backends.md); the event-mode
        // combination was rejected above.
        let host_profiling = self.host_profiling;
        let board = Arc::new(FailureBoard::new());

        // The wait-for graph always exists (it feeds the receive-timeout
        // backstop's dump); the sanitizer state is created only on demand.
        // The watchdog deadlock detector runs for sanitized *and* faulted
        // threaded runs: an unrecovered drop must abort with a cycle
        // report, not hang. The event backend needs no watchdog — its
        // scheduler detects stuckness synchronously from quiescence.
        let wait_graph = Arc::new(WaitGraph::new(n));
        let san: Option<Arc<SanState>> = if self.sanitize {
            Some(Arc::new(SanState::new()))
        } else {
            None
        };
        let _detector = (!event_mode && (self.sanitize || self.faults.is_some())).then(|| {
            let graph = Arc::clone(&wait_graph);
            let stop = Arc::new(AtomicBool::new(false));
            let stop2 = Arc::clone(&stop);
            let handle = std::thread::Builder::new()
                .name("commcheck-detector".to_string())
                .spawn(move || graph.run_detector(&stop2))
                .expect("failed to spawn deadlock detector");
            DetectorGuard {
                stop,
                handle: Some(handle),
            }
        });

        // Event-mode wiring: a shared event queue back to the scheduler,
        // one resume channel per rank, and the send-notification list.
        let mut event_plumbing = event_mode.then(|| {
            let (sched_tx, sched_rx) = unbounded::<SchedEvent>();
            let notify: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
            let mut resume_txs = Vec::with_capacity(n);
            let mut wirings = Vec::with_capacity(n);
            for _ in 0..n {
                let (tx, rx) = unbounded::<()>();
                resume_txs.push(tx);
                wirings.push(EventWiring {
                    sched_tx: sched_tx.clone(),
                    resume_rx: rx,
                    notify: Arc::clone(&notify),
                });
            }
            let sched = EventScheduler::new(
                n,
                sched_rx,
                resume_txs,
                notify,
                Arc::clone(&wait_graph),
                Arc::clone(&board),
            );
            (sched, wirings)
        });
        let mut wirings = event_plumbing
            .as_mut()
            .map(|(_, w)| std::mem::take(w))
            .unwrap_or_default();
        wirings.reverse(); // pop() below hands them out in rank order

        let fctx = FaultCtx {
            faults: self.faults.clone(),
            retry: self.retry,
            recv_deadline: self.recv_deadline,
            recv_timeout: resolve_recv_timeout(self.recv_timeout),
            board: Arc::clone(&board),
        };
        let mut handles = Vec::with_capacity(n);
        for (world_rank, inbox) in receivers.into_iter().enumerate() {
            let senders = Arc::clone(&senders);
            let f = Arc::clone(&f);
            let graph = Arc::clone(&wait_graph);
            let san = san.clone();
            let fctx = fctx.clone();
            let wiring = wirings.pop();
            let handle = std::thread::Builder::new()
                .name(format!("simrank-{world_rank}"))
                // Factorization recursion and big local buffers: give each
                // simulated rank a roomy stack. Lazily committed, so 4096
                // event-mode tasks reserve address space, not RAM.
                .stack_size(16 << 20)
                .spawn(move || {
                    // Declared first so it drops *last*: by the time the
                    // scheduler processes this task's Done event, the
                    // wait-for graph below already shows the rank finished.
                    let _notify_done = wiring.as_ref().map(|w| DoneNotifier {
                        rank: world_rank,
                        sched_tx: w.sched_tx.clone(),
                    });
                    // Declared second, drops first: the rank is marked
                    // done (never sends again) even on panic.
                    let _done = DoneGuard {
                        graph: Arc::clone(&graph),
                        rank: world_rank,
                    };
                    let board = Arc::clone(&fctx.board);
                    let evt = wiring.map(|w| w.into_ctl(world_rank));
                    if let Some(e) = &evt {
                        // Cooperative mode: no simulated work — not even
                        // rank construction — before the first time slice.
                        e.wait_first_resume();
                    }
                    // det-lint: allow(wall-clock): host-side wall_secs profiling only
                    let started = Instant::now();
                    let mut rank = Rank::new(
                        world_rank,
                        n,
                        senders,
                        inbox,
                        model,
                        tracing,
                        host_profiling,
                        graph,
                        san,
                        fctx,
                        evt,
                    );
                    let out =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut rank)));
                    match out {
                        Ok(v) => {
                            let wall = started.elapsed().as_secs_f64();
                            Some((v, rank.into_report(wall)))
                        }
                        Err(e) => {
                            // Orderly aborts already recorded themselves on
                            // the board; anything else is a raw panic.
                            if e.downcast_ref::<OrderlyAbort>().is_none() {
                                let message = e
                                    .downcast_ref::<String>()
                                    .cloned()
                                    .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
                                    .unwrap_or_else(|| "<non-string panic>".to_string());
                                board.record(RankFailure {
                                    rank: world_rank,
                                    phase: String::new(),
                                    kind: FailKind::Panic { message },
                                    seq: 0,
                                });
                            }
                            None
                        }
                    }
                })
                .expect("failed to spawn simulated rank");
            handles.push(handle);
        }
        // The template context holds a board reference; release it so the
        // post-join `Arc::try_unwrap` sees the sole owner.
        drop(fctx);

        // Event mode: drive the cooperative scheduler to completion on this
        // thread. Every task has terminated when this returns, so the join
        // loop below never blocks for long.
        if let Some((mut sched, _)) = event_plumbing.take() {
            sched.drive();
        }

        let mut results = Vec::with_capacity(n);
        let mut reports = Vec::with_capacity(n);
        for (world_rank, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(Some((out, report))) => {
                    results.push(out);
                    reports.push(report);
                }
                // Failure already recorded on the board.
                Ok(None) => {}
                // catch_unwind swallows unwinding panics; a join error here
                // means the thread aborted some other way.
                Err(_) => board.record(RankFailure {
                    rank: world_rank,
                    phase: String::new(),
                    kind: FailKind::Panic {
                        message: "rank thread terminated abnormally".to_string(),
                    },
                    seq: 0,
                }),
            }
        }
        let board = Arc::try_unwrap(board).expect("failure board still shared after join");
        if board.has_failure() {
            return Err(MachineFailure {
                failures: board.into_failures(),
            });
        }
        // All rank threads are joined: nothing is in flight, so whatever is
        // still in the outstanding table is a genuine leak.
        let sanitizer = san.map(|s| {
            Arc::try_unwrap(s)
                .expect("sanitizer state still shared after join")
                .into_report()
        });
        Ok(RunResult {
            results,
            reports,
            sanitizer,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::Payload;

    #[test]
    fn ring_exchange() {
        let m = Machine::new(5, TimeModel::zero());
        let out = m.run(|rank| {
            let world = rank.world();
            let right = (rank.id() + 1) % 5;
            let left = (rank.id() + 4) % 5;
            rank.send(&world, right, 1, Payload::Idx(vec![rank.id()]));
            rank.recv(&world, left, 1).into_idx()[0]
        });
        assert_eq!(out.results, vec![4, 0, 1, 2, 3]);
    }

    #[test]
    fn out_of_order_delivery_is_buffered() {
        // Rank 0 sends two differently tagged messages; rank 1 receives them
        // in the opposite order.
        let m = Machine::new(2, TimeModel::zero());
        let out = m.run(|rank| {
            let world = rank.world();
            if rank.id() == 0 {
                rank.send(&world, 1, 10, Payload::F64s(vec![1.0]));
                rank.send(&world, 1, 20, Payload::F64s(vec![2.0]));
                0.0
            } else {
                let b = rank.recv(&world, 0, 20).into_f64s()[0];
                let a = rank.recv(&world, 0, 10).into_f64s()[0];
                a * 10.0 + b
            }
        });
        assert_eq!(out.results[1], 12.0);
    }

    #[test]
    fn bcast_all_sizes_all_roots() {
        for p in 1..=9usize {
            for root in 0..p {
                let m = Machine::new(p, TimeModel::zero());
                let out = m.run(move |rank| {
                    let world = rank.world();
                    let data = if rank.world().local_rank() == root {
                        Some(Payload::F64s(vec![42.0, 7.0]))
                    } else {
                        None
                    };
                    rank.bcast(&world, root, data, 3).into_f64s()
                });
                for r in &out.results {
                    assert_eq!(r, &vec![42.0, 7.0], "p={p} root={root}");
                }
                // Binomial tree sends exactly p-1 messages.
                let total: u64 = out.reports.iter().map(|r| r.total_sent_msgs()).sum();
                assert_eq!(total, (p - 1) as u64, "p={p} root={root}");
            }
        }
    }

    #[test]
    fn reduce_sum_all_sizes_all_roots() {
        for p in 1..=9usize {
            for root in 0..p {
                let m = Machine::new(p, TimeModel::zero());
                let out = m.run(move |rank| {
                    let world = rank.world();
                    let data = vec![rank.id() as f64, 1.0];
                    rank.reduce_sum(&world, root, data, 5)
                });
                let expected0 = (0..p).sum::<usize>() as f64;
                for (i, r) in out.results.iter().enumerate() {
                    if i == root {
                        assert_eq!(r.as_ref().unwrap(), &vec![expected0, p as f64]);
                    } else {
                        assert!(r.is_none());
                    }
                }
            }
        }
    }

    #[test]
    fn allreduce_and_barrier() {
        let m = Machine::new(6, TimeModel::zero());
        let out = m.run(|rank| {
            let world = rank.world();
            rank.barrier(&world, 0);
            let s = rank.allreduce_sum(&world, vec![1.0], 9)[0];
            let mx = rank.allreduce_max(&world, rank.id() as f64, 11);
            (s, mx)
        });
        for &(s, mx) in &out.results {
            assert_eq!(s, 6.0);
            assert_eq!(mx, 5.0);
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let m = Machine::new(4, TimeModel::zero());
        let out = m.run(|rank| {
            let world = rank.world();
            rank.gather_f64(&world, 2, vec![rank.id() as f64; rank.id() + 1], 1)
        });
        let g = out.results[2].as_ref().unwrap();
        for (i, v) in g.iter().enumerate() {
            assert_eq!(v.len(), i + 1);
            assert!(v.iter().all(|&x| x == i as f64));
        }
    }

    #[test]
    fn subset_communicators_isolate_traffic() {
        let m = Machine::new(4, TimeModel::zero());
        let out = m.run(|rank| {
            // Split into even/odd pairs; same tags on both communicators.
            let evens = [0usize, 2];
            let odds = [1usize, 3];
            let mine = if rank.id() % 2 == 0 {
                &evens[..]
            } else {
                &odds[..]
            };
            let other = if rank.id() % 2 == 0 {
                &odds[..]
            } else {
                &evens[..]
            };
            // SPMD discipline: create in the same order everywhere.
            let (c_even, c_odd) = if rank.id() % 2 == 0 {
                let a = rank.subset(mine);
                let b = rank.subset(other);
                (a, b)
            } else {
                let a = rank.subset(other);
                let b = rank.subset(mine);
                (a, b)
            };
            let comm = c_even.or(c_odd).unwrap();
            let peer = 1 - comm.local_rank();
            rank.send(&comm, peer, 77, Payload::Idx(vec![rank.id()]));
            rank.recv(&comm, peer, 77).into_idx()[0]
        });
        assert_eq!(out.results, vec![2, 3, 0, 1]);
    }

    #[test]
    fn clocks_model_alpha_beta() {
        let model = TimeModel {
            alpha: 1.0,
            beta: 0.1,
            flops_per_sec: 1.0,
        };
        let m = Machine::new(2, model);
        let out = m.run(|rank| {
            let world = rank.world();
            if rank.id() == 0 {
                rank.advance_compute(10); // clock = 10
                rank.send(&world, 1, 0, Payload::F64s(vec![0.0; 10])); // +2 -> 12, arrival 12
                rank.clock()
            } else {
                rank.recv(&world, 0, 0); // ready at 12, +2 transfer = 14
                rank.clock()
            }
        });
        assert!((out.results[0] - 12.0).abs() < 1e-12);
        assert!((out.results[1] - 14.0).abs() < 1e-12);
        assert!((out.reports[1].t_comm - 14.0).abs() < 1e-12);
        assert!((out.reports[0].t_comp - 10.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "panicked")]
    fn rank_panic_propagates() {
        let m = Machine::new(2, TimeModel::zero());
        let _ = m.run(|rank| {
            if rank.id() == 1 {
                panic!("boom");
            }
            // rank 0 must terminate too: it does nothing and returns.
            0
        });
    }
}
