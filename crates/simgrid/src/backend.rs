//! Execution backends: how the simulated ranks are driven.
//!
//! The machine's SPMD contract — `f(&mut Rank)` per rank, blocking
//! receives, deterministic results — admits more than one execution
//! strategy. This module puts the strategy behind the [`ExecBackend`]
//! trait with two implementations:
//!
//! - [`ThreadedBackend`]: the original free-running mode. Every rank is an
//!   OS thread scheduled by the kernel; receives block on the channel with
//!   a wall-clock backstop, and a watchdog thread runs the deadlock
//!   detector. Real host parallelism — required by the host-time profiler,
//!   whose phase attribution only means something when ranks actually run
//!   concurrently.
//! - [`EventBackend`]: discrete-event mode. Ranks are *resumable tasks*:
//!   each still owns a (mostly parked) OS thread as its coroutine stack,
//!   but exactly one runs at any instant, driven by a cooperative
//!   scheduler on the caller's thread. A blocking receive that finds its
//!   inbox empty yields back to the scheduler instead of sleeping on the
//!   channel; a send marks its destination runnable. No wall-clock
//!   timeouts, no watchdog thread: when the ready queue empties with live
//!   ranks still blocked, the machine is provably quiescent and the
//!   scheduler resolves the situation *synchronously* from the wait-for
//!   graph (deadlock) or the failure board (cascade). This is what makes
//!   paper-scale grids — `P = 64×64 = 4096` ranks — run in one process:
//!   4096 parked tasks cost virtual address space, not CPU.
//!
//! Both backends execute the same per-rank program against the same
//! simulated clocks, so factor digests, makespans, and every `obs` ledger
//! (commvol/memprof/metrics) are bitwise identical between them — the
//! differential suite in `tests/backends.rs` pins exactly that.

use crate::faultlab::{FailureBoard, MachineFailure};
use crate::machine::{Machine, RunResult};
use crate::rank::Rank;
use commcheck::WaitGraph;
use crossbeam::channel::{Receiver, Sender};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Which execution backend drives a [`Machine`] run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Backend {
    /// One free-running OS thread per rank (kernel-scheduled).
    #[default]
    Threaded,
    /// Cooperative discrete-event scheduler; ranks are resumable tasks and
    /// exactly one runs at a time.
    Event,
}

impl Backend {
    /// Canonical lowercase name, as used by the CLI, campaign specs, and
    /// snapshot files.
    pub fn as_str(self) -> &'static str {
        match self {
            Backend::Threaded => "threaded",
            Backend::Event => "event",
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for Backend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "threaded" => Ok(Backend::Threaded),
            "event" => Ok(Backend::Event),
            other => Err(format!(
                "unknown backend '{other}' (expected 'threaded' or 'event')"
            )),
        }
    }
}

/// Which rank-local task order the solver's factorization executes
/// (docs/backends.md, "Schedules"). Orthogonal to [`Backend`]: the backend
/// decides who drives the rank tasks, the schedule decides what order each
/// rank's own program performs its communication tasks in.
///
/// Both schedules produce bitwise-identical factor digests, solutions, and
/// wire/memory ledgers; `TaskGraph` only moves *sends* earlier (to the
/// point their task-graph dependencies are satisfied), so simulated
/// makespan can shrink but no receiver-observable value changes. The
/// differential suite in `tests/schedules.rs` pins exactly that.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Schedule {
    /// Bulk-synchronous level order: every communication task runs at the
    /// program point Algorithm 1's level loop reaches it (z-reduction
    /// sends fire at the level boundary, after the whole 2D factorization
    /// of the level).
    #[default]
    Level,
    /// Task-graph order: a per-rank dependency DAG derived from symbolic
    /// analysis marks each z-reduction send ready as soon as its last
    /// producing Schur update completes, and the send fires there —
    /// overlapping reduction traffic with the remaining 2D factorization
    /// instead of idling the receiving grid at the level barrier.
    TaskGraph,
}

impl Schedule {
    /// Canonical lowercase name, as used by the CLI, campaign specs, and
    /// snapshot files.
    pub fn as_str(self) -> &'static str {
        match self {
            Schedule::Level => "level",
            Schedule::TaskGraph => "taskgraph",
        }
    }
}

impl std::fmt::Display for Schedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for Schedule {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "level" => Ok(Schedule::Level),
            "taskgraph" => Ok(Schedule::TaskGraph),
            other => Err(format!(
                "unknown schedule '{other}' (expected 'level' or 'taskgraph')"
            )),
        }
    }
}

/// An execution strategy for [`Machine`] runs. See the module docs for the
/// two implementations and their contract: identical simulated results,
/// different host-side scheduling.
pub trait ExecBackend {
    /// Run `f` as an SPMD program on `machine`, one logical rank per
    /// invocation, and collect results and per-rank reports.
    fn run<T, F>(&self, machine: &Machine, f: F) -> Result<RunResult<T>, MachineFailure>
    where
        T: Send + 'static,
        F: Fn(&mut Rank) -> T + Send + Sync + 'static;
}

/// The original free-running mode: kernel-scheduled rank threads, blocking
/// channel receives, watchdog deadlock detector, wall-clock backstop.
pub struct ThreadedBackend;

impl ExecBackend for ThreadedBackend {
    fn run<T, F>(&self, machine: &Machine, f: F) -> Result<RunResult<T>, MachineFailure>
    where
        T: Send + 'static,
        F: Fn(&mut Rank) -> T + Send + Sync + 'static,
    {
        machine.execute(f, Backend::Threaded)
    }
}

/// Discrete-event mode: ranks are cooperatively scheduled resumable tasks;
/// sends and receives become scheduler events instead of channel blocking.
pub struct EventBackend;

impl ExecBackend for EventBackend {
    fn run<T, F>(&self, machine: &Machine, f: F) -> Result<RunResult<T>, MachineFailure>
    where
        T: Send + 'static,
        F: Fn(&mut Rank) -> T + Send + Sync + 'static,
    {
        machine.execute(f, Backend::Event)
    }
}

/// What a rank task reports back to the scheduler when it stops running.
/// Exactly one of these arrives per resume: the resumed rank either parks
/// in a blocked receive or terminates (normally or by panic).
#[derive(Debug)]
pub(crate) enum SchedEvent {
    /// The rank's blocking receive found nothing and parked.
    Blocked(usize),
    /// The rank's SPMD closure returned or unwound; it will never run again.
    Done(usize),
}

/// Per-rank handle onto the event scheduler, carried inside [`Rank`] when
/// the machine runs under [`EventBackend`] (`None` under the threaded
/// backend — every hook below is then never called).
pub(crate) struct EventCtl {
    rank: usize,
    /// Rank -> scheduler: yield and termination events.
    sched_tx: Sender<SchedEvent>,
    /// Scheduler -> this rank: permission to run.
    resume_rx: Receiver<()>,
    /// Destinations of delivered sends since the scheduler last drained;
    /// the scheduler turns these into wakeups. Uncontended: only the one
    /// running rank pushes, and the scheduler drains only while no rank
    /// runs.
    notify: Arc<Mutex<Vec<usize>>>,
}

impl EventCtl {
    /// Record that a message was handed to `dst_world`'s inbox, so the
    /// scheduler can mark it runnable. Called from the send path of the
    /// (single) running rank.
    pub(crate) fn note_send(&self, dst_world: usize) {
        self.notify.lock().unwrap().push(dst_world);
    }

    /// Park until the scheduler grants another time slice. Panics if the
    /// scheduler vanished — that is a harness bug, not a protocol failure.
    pub(crate) fn yield_blocked(&self) {
        self.sched_tx
            .send(SchedEvent::Blocked(self.rank))
            .expect("event scheduler dropped its queue while ranks live");
        self.resume_rx
            .recv()
            .expect("event scheduler vanished while a rank was parked");
    }

    /// Park until the scheduler's first resume. Called once per rank task
    /// before its SPMD closure starts, establishing the one-at-a-time
    /// invariant from the very first instruction.
    pub(crate) fn wait_first_resume(&self) {
        self.resume_rx
            .recv()
            .expect("event scheduler vanished before the run started");
    }
}

/// Sends [`SchedEvent::Done`] when the rank task exits, normally or by
/// panic. Declared *before* the wait-graph done-guard in the task body so
/// it drops *after* it: by the time the scheduler processes the Done event,
/// the wait-for graph already shows the rank finished.
pub(crate) struct DoneNotifier {
    pub(crate) rank: usize,
    pub(crate) sched_tx: Sender<SchedEvent>,
}

impl Drop for DoneNotifier {
    fn drop(&mut self) {
        let _ = self.sched_tx.send(SchedEvent::Done(self.rank));
    }
}

/// Wiring the machine hands each event-mode rank task at spawn time.
pub(crate) struct EventWiring {
    pub(crate) sched_tx: Sender<SchedEvent>,
    pub(crate) resume_rx: Receiver<()>,
    pub(crate) notify: Arc<Mutex<Vec<usize>>>,
}

impl EventWiring {
    pub(crate) fn into_ctl(self, rank: usize) -> EventCtl {
        EventCtl {
            rank,
            sched_tx: self.sched_tx,
            resume_rx: self.resume_rx,
            notify: self.notify,
        }
    }
}

/// Scheduler-side view of one rank task.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TaskState {
    /// In the ready queue, waiting for a time slice.
    Ready,
    /// Currently holding the machine (at most one rank at a time).
    Running,
    /// Parked in a blocking receive with an empty inbox.
    Blocked,
    /// Terminated; never scheduled again.
    Done,
}

/// The cooperative scheduler: drives rank tasks one at a time until all
/// terminate. Runs on the caller's thread between spawn and join.
///
/// # Ready-queue ordering (deterministic, by construction)
///
/// The ready queue is strict FIFO, seeded `0..n` at start. Wakeups are
/// appended in *send order*: the one running rank pushes each delivered
/// destination onto `notify` as it sends, and [`EventScheduler::step`]
/// drains that list in order after the slice, enqueueing only
/// destinations that are currently [`TaskState::Blocked`]. A rank is
/// never queued twice (enqueueing flips it to `Ready`), and a running or
/// ready rank is never re-queued by a wakeup. Since exactly one task runs
/// at a time, the whole interleaving is a deterministic function of the
/// rank programs — *no* simulated quantity depends on it, but determinism
/// here also makes host-side behavior (iteration counts, trace file
/// layout) reproducible run-to-run.
///
/// # Spurious wakeups cannot livelock
///
/// A wakeup is *spurious* when the notified rank's blocking receive drains
/// its inbox and still has no matching message (e.g. the send carried a
/// different tag; the receive stashes it and re-parks). Each such
/// wake–recheck–park cycle consumes one ready-queue entry that only a
/// *delivered send* (or the quiescence resolver) can replenish: a blocked
/// rank is re-queued only from `notify`, never by itself. So the number of
/// spurious wakeups a rank can ever experience is bounded by the total
/// number of messages addressed to it — a rank blocked on a tag nobody
/// sends re-parks at most once per incoming message and then stays parked
/// until the machine goes quiescent, where [`Self::resolve_quiescence`]
/// either proves a deadlock or resolves cascades. There is no path that
/// re-queues a blocked rank without new information, hence no spin-wake
/// loop (regression-tested in `tests/event_backend.rs`).
pub(crate) struct EventScheduler {
    state: Vec<TaskState>,
    ready: VecDeque<usize>,
    ndone: usize,
    sched_rx: Receiver<SchedEvent>,
    resume_txs: Vec<Sender<()>>,
    notify: Arc<Mutex<Vec<usize>>>,
    wait_graph: Arc<WaitGraph>,
    board: Arc<FailureBoard>,
    /// Progress counters (`ndone`, total wakeup notifications) at the last
    /// quiescent wake-all; a second quiescence with identical counters
    /// means the survivors are cyclically stuck.
    stall_snapshot: Option<(usize, u64)>,
    /// Running count of drained send notifications (progress measure).
    nsends: u64,
}

impl EventScheduler {
    pub(crate) fn new(
        n: usize,
        sched_rx: Receiver<SchedEvent>,
        resume_txs: Vec<Sender<()>>,
        notify: Arc<Mutex<Vec<usize>>>,
        wait_graph: Arc<WaitGraph>,
        board: Arc<FailureBoard>,
    ) -> Self {
        EventScheduler {
            state: vec![TaskState::Ready; n],
            ready: (0..n).collect(),
            ndone: 0,
            sched_rx,
            resume_txs,
            notify,
            wait_graph,
            board,
            stall_snapshot: None,
            nsends: 0,
        }
    }

    /// Drive the machine to completion: every rank task terminated.
    pub(crate) fn drive(&mut self) {
        let n = self.state.len();
        while self.ndone < n {
            if let Some(r) = self.ready.pop_front() {
                self.step(r);
            } else {
                self.resolve_quiescence();
            }
        }
    }

    /// Give rank `r` a time slice and absorb the one event it produces.
    fn step(&mut self, r: usize) {
        self.state[r] = TaskState::Running;
        // A parked task cannot exit, so its resume endpoint is alive.
        self.resume_txs[r]
            .send(())
            .expect("parked rank task dropped its resume endpoint");
        match self
            .sched_rx
            .recv()
            .expect("all rank tasks vanished mid-run")
        {
            SchedEvent::Blocked(b) => {
                debug_assert_eq!(b, r, "only the running rank can yield");
                self.state[b] = TaskState::Blocked;
            }
            SchedEvent::Done(d) => {
                debug_assert_eq!(d, r, "only the running rank can terminate");
                self.state[d] = TaskState::Done;
                self.ndone += 1;
            }
        }
        // Turn the slice's sends into wakeups. Progress of any kind (a
        // send or a termination) invalidates the stall snapshot.
        let dsts: Vec<usize> = std::mem::take(&mut *self.notify.lock().unwrap());
        if !dsts.is_empty() {
            self.nsends += dsts.len() as u64;
        }
        for dst in dsts {
            if self.state[dst] == TaskState::Blocked {
                self.state[dst] = TaskState::Ready;
                self.ready.push_back(dst);
            }
        }
    }

    /// The ready queue is empty but live ranks remain: every one of them is
    /// parked in a blocking receive over an empty inbox, and — because
    /// sends are synchronous under cooperative scheduling — no message is
    /// in flight. The machine cannot move on its own. Three cases:
    ///
    /// 1. No failure on the board: the blocked ranks form a hopeless set by
    ///    construction. Publish the deadlock report synchronously (no
    ///    detector thread, no grace period — quiescence is proven, not
    ///    guessed) and wake everyone to abort with it.
    /// 2. A failure is on the board: wake everyone so waits on dead peers
    ///    resolve as cascades ([`crate::RecvError::PeerFailed`]).
    /// 3. A failure is on the board but the previous wake-all made no
    ///    progress (no termination, no send): the survivors are cyclically
    ///    stuck independent of the failure — publish the deadlock report
    ///    and wake them to abort.
    fn resolve_quiescence(&mut self) {
        let progress = (self.ndone, self.nsends);
        let stalled = self.stall_snapshot == Some(progress);
        self.stall_snapshot = Some(progress);
        if !self.board.has_failure() || stalled {
            // Deliberately ignore an empty verdict: all live ranks are
            // blocked on blocked-or-done ranks, so the stuck set is exactly
            // the blocked set and never empty here.
            let _ = self.wait_graph.detect_now();
        }
        for r in 0..self.state.len() {
            if self.state[r] == TaskState::Blocked {
                self.state[r] = TaskState::Ready;
                self.ready.push_back(r);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_round_trips_through_its_name() {
        for b in [Backend::Threaded, Backend::Event] {
            assert_eq!(b.as_str().parse::<Backend>().unwrap(), b);
        }
        assert!("mpi".parse::<Backend>().is_err());
        assert_eq!(Backend::default(), Backend::Threaded);
    }

    #[test]
    fn schedule_round_trips_through_its_name() {
        for s in [Schedule::Level, Schedule::TaskGraph] {
            assert_eq!(s.as_str().parse::<Schedule>().unwrap(), s);
        }
        assert!("async".parse::<Schedule>().is_err());
        assert_eq!(Schedule::default(), Schedule::Level);
    }
}
