//! Message payloads and their word accounting.

/// Data carried by one simulated message.
///
/// The word count (8-byte units, matching the paper's "number of words
/// sent") is what the traffic counters and the β term of the time model
/// charge for.
#[derive(Clone, Debug, PartialEq)]
pub enum Payload {
    /// No data: synchronization-only messages (barriers).
    Empty,
    /// Numeric data (matrix blocks, reduction operands).
    F64s(Vec<f64>),
    /// Index data (block ids, structural metadata).
    Idx(Vec<usize>),
    /// A structural header plus numeric body, sent as one message — the
    /// shape of a packed supernodal panel (block ids + block values).
    Packed { meta: Vec<usize>, data: Vec<f64> },
}

impl Payload {
    /// Number of 8-byte words this payload occupies on the wire.
    pub fn words(&self) -> u64 {
        match self {
            Payload::Empty => 0,
            Payload::F64s(v) => v.len() as u64,
            Payload::Idx(v) => v.len() as u64,
            Payload::Packed { meta, data } => (meta.len() + data.len()) as u64,
        }
    }

    /// Unwrap an `F64s` payload; panics on other variants (a protocol error
    /// in SPMD code, always a bug).
    pub fn into_f64s(self) -> Vec<f64> {
        match self {
            Payload::F64s(v) => v,
            other => panic!("expected F64s payload, got {:?}", kind(&other)),
        }
    }

    /// Unwrap an `Idx` payload.
    pub fn into_idx(self) -> Vec<usize> {
        match self {
            Payload::Idx(v) => v,
            other => panic!("expected Idx payload, got {:?}", kind(&other)),
        }
    }

    /// Unwrap a `Packed` payload.
    pub fn into_packed(self) -> (Vec<usize>, Vec<f64>) {
        match self {
            Payload::Packed { meta, data } => (meta, data),
            other => panic!("expected Packed payload, got {:?}", kind(&other)),
        }
    }
}

fn kind(p: &Payload) -> &'static str {
    match p {
        Payload::Empty => "Empty",
        Payload::F64s(_) => "F64s",
        Payload::Idx(_) => "Idx",
        Payload::Packed { .. } => "Packed",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_counts() {
        assert_eq!(Payload::Empty.words(), 0);
        assert_eq!(Payload::F64s(vec![0.0; 5]).words(), 5);
        assert_eq!(Payload::Idx(vec![0; 3]).words(), 3);
        assert_eq!(
            Payload::Packed {
                meta: vec![1, 2],
                data: vec![0.0; 10]
            }
            .words(),
            12
        );
    }

    #[test]
    #[should_panic(expected = "expected F64s")]
    fn wrong_unwrap_panics() {
        Payload::Empty.into_f64s();
    }
}
