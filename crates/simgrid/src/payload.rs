//! Message payloads and their word accounting.

/// Data carried by one simulated message.
///
/// The word count (8-byte units, matching the paper's "number of words
/// sent") is what the traffic counters and the β term of the time model
/// charge for.
#[derive(Clone, Debug, PartialEq)]
pub enum Payload {
    /// No data: synchronization-only messages (barriers).
    Empty,
    /// Numeric data (matrix blocks, reduction operands).
    F64s(Vec<f64>),
    /// Index data (block ids, structural metadata).
    Idx(Vec<usize>),
    /// A structural header plus numeric body, sent as one message — the
    /// shape of a packed supernodal panel (block ids + block values).
    Packed { meta: Vec<usize>, data: Vec<f64> },
}

/// The variant of a [`Payload`], for structured kind-mismatch reporting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PayloadKind {
    Empty,
    F64s,
    Idx,
    Packed,
}

/// A typed unwrap found the wrong payload variant — a protocol error in
/// SPMD code. Carried up to the rank-failure machinery, which attaches the
/// message provenance (src/ctx/tag/phase); see `Rank::recv_f64s` and
/// friends.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KindMismatch {
    pub expected: PayloadKind,
    pub got: PayloadKind,
}

impl std::fmt::Display for KindMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "expected {:?} payload, got {:?}",
            self.expected, self.got
        )
    }
}

impl Payload {
    /// Number of 8-byte words this payload occupies on the wire.
    pub fn words(&self) -> u64 {
        match self {
            Payload::Empty => 0,
            Payload::F64s(v) => v.len() as u64,
            Payload::Idx(v) => v.len() as u64,
            Payload::Packed { meta, data } => (meta.len() + data.len()) as u64,
        }
    }

    /// Number of 8-byte words carrying structural content, for the wire
    /// ledger's padding-waste audit. `Empty` and `Idx` payloads are all
    /// structure; an `F64s` payload counts its nonzero entries; a `Packed`
    /// panel counts its meta header plus, per block, `nonzero_rows × cols`
    /// — rows that are entirely zero are padding shipped only because the
    /// block was padded to a dense supernodal tile. Always `<= words()`.
    /// A `Packed` payload whose meta does not follow the `pack_blocks`
    /// layout `[count, (id, rows, cols)*]` is counted as all structure.
    pub fn struct_words(&self) -> u64 {
        match self {
            Payload::Empty => 0,
            Payload::F64s(v) => v.iter().filter(|x| **x != 0.0).count() as u64,
            Payload::Idx(v) => v.len() as u64,
            Payload::Packed { meta, data } => {
                let Some((&count, rest)) = meta.split_first() else {
                    return self.words();
                };
                if rest.len() != 3 * count {
                    return self.words();
                }
                let mut off = 0usize;
                let mut sw = meta.len() as u64;
                for b in 0..count {
                    let rows = rest[3 * b + 1];
                    let cols = rest[3 * b + 2];
                    let len = rows * cols;
                    if off + len > data.len() {
                        return self.words();
                    }
                    let blk = &data[off..off + len];
                    let nz_rows = (0..rows)
                        .filter(|&i| (0..cols).any(|j| blk[j * rows + i] != 0.0))
                        .count();
                    sw += (nz_rows * cols) as u64;
                    off += len;
                }
                sw
            }
        }
    }

    /// Which variant this payload is.
    pub fn kind(&self) -> PayloadKind {
        match self {
            Payload::Empty => PayloadKind::Empty,
            Payload::F64s(_) => PayloadKind::F64s,
            Payload::Idx(_) => PayloadKind::Idx,
            Payload::Packed { .. } => PayloadKind::Packed,
        }
    }

    /// Unwrap an `F64s` payload, reporting the actual kind on mismatch.
    pub fn try_into_f64s(self) -> Result<Vec<f64>, KindMismatch> {
        match self {
            Payload::F64s(v) => Ok(v),
            other => Err(KindMismatch {
                expected: PayloadKind::F64s,
                got: other.kind(),
            }),
        }
    }

    /// Unwrap an `Idx` payload, reporting the actual kind on mismatch.
    pub fn try_into_idx(self) -> Result<Vec<usize>, KindMismatch> {
        match self {
            Payload::Idx(v) => Ok(v),
            other => Err(KindMismatch {
                expected: PayloadKind::Idx,
                got: other.kind(),
            }),
        }
    }

    /// Unwrap a `Packed` payload, reporting the actual kind on mismatch.
    pub fn try_into_packed(self) -> Result<(Vec<usize>, Vec<f64>), KindMismatch> {
        match self {
            Payload::Packed { meta, data } => Ok((meta, data)),
            other => Err(KindMismatch {
                expected: PayloadKind::Packed,
                got: other.kind(),
            }),
        }
    }

    /// Unwrap an `F64s` payload; panics on other variants. Prefer the
    /// provenance-carrying `Rank::recv_f64s` at receive sites.
    pub fn into_f64s(self) -> Vec<f64> {
        self.try_into_f64s().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Unwrap an `Idx` payload; panics on other variants.
    pub fn into_idx(self) -> Vec<usize> {
        self.try_into_idx().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Unwrap a `Packed` payload; panics on other variants.
    pub fn into_packed(self) -> (Vec<usize>, Vec<f64>) {
        self.try_into_packed().unwrap_or_else(|e| panic!("{e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_counts() {
        assert_eq!(Payload::Empty.words(), 0);
        assert_eq!(Payload::F64s(vec![0.0; 5]).words(), 5);
        assert_eq!(Payload::Idx(vec![0; 3]).words(), 3);
        assert_eq!(
            Payload::Packed {
                meta: vec![1, 2],
                data: vec![0.0; 10]
            }
            .words(),
            12
        );
    }

    #[test]
    fn struct_words_counts_nonzero_rows() {
        assert_eq!(Payload::Empty.struct_words(), 0);
        assert_eq!(Payload::Idx(vec![0; 3]).struct_words(), 3);
        assert_eq!(Payload::F64s(vec![1.0, 0.0, 2.0, 0.0]).struct_words(), 2);
        // One 3x2 block (column-major) whose middle row is all zero:
        // only 2 of 3 rows carry structure -> 4 data words + 4 meta words.
        let p = Payload::Packed {
            meta: vec![1, 7, 3, 2],
            data: vec![1.0, 0.0, 3.0, 4.0, 0.0, 6.0],
        };
        assert_eq!(p.words(), 10);
        assert_eq!(p.struct_words(), 8);
        // Malformed meta falls back to all-structure.
        let bad = Payload::Packed {
            meta: vec![2, 7, 3, 2],
            data: vec![0.0; 6],
        };
        assert_eq!(bad.struct_words(), bad.words());
    }

    #[test]
    #[should_panic(expected = "expected F64s")]
    fn wrong_unwrap_panics() {
        Payload::Empty.into_f64s();
    }

    #[test]
    fn try_unwrap_reports_both_kinds() {
        let e = Payload::Idx(vec![1]).try_into_f64s().unwrap_err();
        assert_eq!(e.expected, PayloadKind::F64s);
        assert_eq!(e.got, PayloadKind::Idx);
        assert_eq!(e.to_string(), "expected F64s payload, got Idx");
        assert_eq!(Payload::F64s(vec![2.0]).try_into_f64s().unwrap(), vec![2.0]);
        assert!(Payload::Empty.try_into_idx().is_err());
        assert!(Payload::Empty.try_into_packed().is_err());
    }
}
