//! Communicators: ordered subsets of world ranks with a private message
//! context, mirroring `MPI_Comm`.

use std::sync::Arc;

/// A communicator: an ordered list of world ranks plus a context id that
/// isolates its messages from every other communicator's.
///
/// Created by [`crate::Rank::world`] and [`crate::Rank::subset`]. Cheap to
/// clone (the member list is shared).
#[derive(Clone, Debug)]
pub struct Comm {
    /// Context id: tags are namespaced by this so identical user tags on
    /// different communicators never match each other.
    pub(crate) ctx: u64,
    /// World ranks of the members, in local-rank order.
    pub(crate) members: Arc<Vec<usize>>,
    /// The owning rank's position in `members`.
    pub(crate) my_local: usize,
}

impl Comm {
    /// Number of ranks in this communicator.
    #[inline]
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// The calling rank's local rank within this communicator.
    #[inline]
    pub fn local_rank(&self) -> usize {
        self.my_local
    }

    /// World rank of local rank `local`.
    #[inline]
    pub fn world_rank_of(&self, local: usize) -> usize {
        self.members[local]
    }

    /// The member list (world ranks, in local order).
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Local rank of a given world rank, if a member.
    pub fn local_rank_of_world(&self, world: usize) -> Option<usize> {
        self.members.iter().position(|&w| w == world)
    }
}
